#!/usr/bin/env python3
"""Memory-node sizing: capacity vs power vs system cost (Table IV).

Walks the DIMM catalog of the paper's Table IV and reports, for each
build-out of eight memory-nodes: pooled capacity, node and system TDP,
capacity efficiency (GB/W), and the perf/W retained given the measured
MC-DLA(B) speedup -- the Section V-C analysis as a sizing tool.

Run:  python examples/memory_node_sizing.py
"""

from repro import ParallelStrategy, design_point, simulate
from repro.memnode.dimm import DIMM_CATALOG
from repro.memnode.power import memory_node_power, perf_per_watt_gain
from repro.units import TB, fmt_bytes, harmonic_mean


def measure_speedup() -> float:
    """A quick MC-DLA(B)/DC-DLA estimate over two bracketing workloads."""
    speedups = []
    for network in ("VGG-E", "RNN-LSTM-2"):
        dc = simulate(design_point("DC-DLA"), network, 512,
                      ParallelStrategy.DATA)
        mc = simulate(design_point("MC-DLA(B)"), network, 512,
                      ParallelStrategy.DATA)
        speedups.append(mc.speedup_over(dc))
    return harmonic_mean(speedups)


def main() -> None:
    speedup = measure_speedup()
    print(f"Measured MC-DLA(B) speedup (quick estimate): "
          f"{speedup:.2f}x\n")

    header = (f"{'DIMM':<14} {'pool':>10} {'node TDP':>9} "
              f"{'system':>8} {'GB/W':>6} {'perf/W':>7}")
    print(header)
    print("-" * len(header))
    for dimm in DIMM_CATALOG:
        report = memory_node_power(dimm)
        ppw = perf_per_watt_gain(speedup, dimm)
        print(f"{dimm.name:<14} "
              f"{fmt_bytes(report.added_capacity_bytes):>10} "
              f"{report.node_tdp_w:>7.0f} W "
              f"{report.system_overhead * 100:>+6.1f}% "
              f"{report.node_gb_per_watt:>6.1f} {ppw:>6.2f}x")

    print("\nGuidance (Section V-C):")
    low = memory_node_power(DIMM_CATALOG[0])
    high = memory_node_power(DIMM_CATALOG[-1])
    print(f"- power-limited chassis: 8 GB RDIMMs add only "
          f"{low.system_overhead * 100:.0f}% system power")
    print(f"- capacity-focused: 128 GB LRDIMMs pool "
          f"{high.added_capacity_bytes / TB:.1f} TB at the best GB/W")


if __name__ == "__main__":
    main()
