#!/usr/bin/env python3
"""Interconnect tuning: rings, message sizes, and striping.

Explores the collective-communication design space of Section III-B:
how ring length, synchronization size, and multi-ring striping interact
-- the analysis behind the paper's Figure 9 and its choice of the
16-node MC-DLA ring.

Run:  python examples/collective_tuning.py
"""

from repro.collectives.multi_ring import (RingChannel,
                                          striped_collective_time)
from repro.collectives.ring_algorithm import (Primitive, all_reduce_time,
                                              collective_time)
from repro.units import GBPS, KB, MB, fmt_time

LINK = 50 * GBPS


def sweep_ring_sizes() -> None:
    print("All-reduce latency vs ring size (8 MB synchronization):")
    for n in (2, 4, 8, 16, 24, 36):
        t = all_reduce_time(n, 8 * MB, LINK)
        print(f"  {n:>2} nodes: {fmt_time(t)}")
    overhead = all_reduce_time(16, 8 * MB, LINK) \
        / all_reduce_time(8, 8 * MB, LINK) - 1
    print(f"  -> adding 8 memory-nodes to the ring costs only "
          f"{overhead * 100:.1f}%\n")


def sweep_message_sizes() -> None:
    print("Where the 16-node ring hurts: small synchronization sizes")
    print(f"  {'size':>8} {'8-node':>12} {'16-node':>12} {'penalty':>9}")
    for size in (4 * KB, 64 * KB, 1 * MB, 8 * MB, 64 * MB):
        t8 = all_reduce_time(8, size, LINK)
        t16 = all_reduce_time(16, size, LINK)
        label = f"{size // KB} KB" if size < MB else f"{size // MB} MB"
        print(f"  {label:>8} {fmt_time(t8):>12} {fmt_time(t16):>12} "
              f"{(t16 / t8 - 1) * 100:>8.1f}%")
    print("  -> but small messages are not the bottleneck "
          "(Amdahl's law)\n")


def compare_striping() -> None:
    print("Multi-ring striping (64 MB all-reduce):")
    balanced = [RingChannel(16, LINK)] * 3
    unbalanced = [RingChannel(8, LINK), RingChannel(12, LINK),
                  RingChannel(20, LINK)]
    single = [RingChannel(16, LINK)]
    for label, channels in (("1 ring        ", single),
                            ("3 rings (MC-DLA)", balanced),
                            ("3 rings (folded)", unbalanced)):
        t = striped_collective_time(Primitive.ALL_REDUCE, channels,
                                    64 * MB)
        print(f"  {label}: {fmt_time(t)}")
    print("  -> the folded design's 20-hop ring bottlenecks striping\n")


def compare_primitives() -> None:
    print("Primitives on the MC-DLA 16-node ring (8 MB):")
    for primitive in Primitive:
        t = collective_time(primitive, 16, 8 * MB, LINK)
        print(f"  {primitive.value:<11}: {fmt_time(t)}")


def main() -> None:
    sweep_ring_sizes()
    sweep_message_sizes()
    compare_striping()
    compare_primitives()


if __name__ == "__main__":
    main()
