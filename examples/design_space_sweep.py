#!/usr/bin/env python3
"""Design-space sweep: all six design points over all eight benchmarks.

Reproduces the paper's Figure 13 view interactively: throughput of every
design normalized to the infinite-memory oracle, for data- and
model-parallel training, plus the harmonic-mean summary speedups.

Run:  python examples/design_space_sweep.py [batch]
"""

import sys

from repro import BENCHMARK_NAMES, DESIGN_ORDER, harmonic_mean
from repro.experiments.fig13_performance import run_fig13
from repro.experiments.matrix import evaluation_matrix
from repro.training.parallel import ParallelStrategy


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    print(f"Sweeping {len(DESIGN_ORDER)} designs x "
          f"{len(BENCHMARK_NAMES)} workloads x 2 strategies "
          f"at batch {batch} ...\n")

    matrix = evaluation_matrix(batch)
    fig13 = run_fig13(batch, matrix)

    for strategy, label in ((ParallelStrategy.DATA, "data-parallel"),
                            (ParallelStrategy.MODEL, "model-parallel")):
        print(f"== {label}: performance normalized to DC-DLA(O) ==")
        print(f"{'network':<12}" + "".join(f"{d:>11}"
                                           for d in DESIGN_ORDER))
        for network in BENCHMARK_NAMES:
            cells = "".join(
                f"{fig13.perf(strategy, network, d):>11.3f}"
                for d in DESIGN_ORDER)
            print(f"{network:<12}{cells}")
        speedup = fig13.mean_speedup("MC-DLA(B)", strategy)
        print(f"MC-DLA(B) harmonic-mean speedup over DC-DLA: "
              f"{speedup:.2f}x\n")

    overall = fig13.mean_speedup("MC-DLA(B)")
    print(f"Overall MC-DLA(B) speedup: {overall:.2f}x "
          f"(paper reports 2.8x)")

    # Iteration-time detail for the curious.
    times = [matrix.result("MC-DLA(B)", n,
                           ParallelStrategy.DATA).iteration_time
             for n in BENCHMARK_NAMES]
    fastest = BENCHMARK_NAMES[times.index(min(times))]
    print(f"Fastest workload on MC-DLA(B): {fastest} "
          f"({min(times) * 1e3:.1f} ms/iteration)")
    print(f"Harmonic-mean DP oracle fraction: "
          f"{harmonic_mean([fig13.perf(ParallelStrategy.DATA, n, 'MC-DLA(B)') for n in BENCHMARK_NAMES]) * 100:.0f}%")


if __name__ == "__main__":
    main()
