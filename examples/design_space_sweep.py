#!/usr/bin/env python3
"""Design-space sweep: all six design points over all eight benchmarks.

Reproduces the paper's Figure 13 view interactively: throughput of every
design normalized to the infinite-memory oracle, for data- and
model-parallel training, plus the harmonic-mean summary speedups.

The grid runs through the campaign engine, so it fans out across
worker processes and replays from the shared disk cache on a second
invocation.

Run:  python examples/design_space_sweep.py [batch] [--jobs N]
      [--cache-dir DIR | --no-cache]
"""

import argparse

from repro import BENCHMARK_NAMES, DESIGN_ORDER, harmonic_mean
from repro.campaign import ResultCache, default_cache_dir
from repro.experiments.fig13_performance import run_fig13
from repro.experiments.matrix import compute_evaluation_matrix
from repro.training.parallel import ParallelStrategy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("batch", nargs="?", type=int, default=512)
    parser.add_argument("-j", "--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir
                            else default_cache_dir())

    print(f"Sweeping {len(DESIGN_ORDER)} designs x "
          f"{len(BENCHMARK_NAMES)} workloads x 2 strategies "
          f"at batch {args.batch} (jobs={args.jobs}) ...\n")

    matrix = compute_evaluation_matrix(args.batch, jobs=args.jobs,
                                       cache=cache)
    fig13 = run_fig13(args.batch, matrix)

    for strategy, label in ((ParallelStrategy.DATA, "data-parallel"),
                            (ParallelStrategy.MODEL, "model-parallel")):
        print(f"== {label}: performance normalized to DC-DLA(O) ==")
        print(f"{'network':<12}" + "".join(f"{d:>11}"
                                           for d in DESIGN_ORDER))
        for network in BENCHMARK_NAMES:
            cells = "".join(
                f"{fig13.perf(strategy, network, d):>11.3f}"
                for d in DESIGN_ORDER)
            print(f"{network:<12}{cells}")
        speedup = fig13.mean_speedup("MC-DLA(B)", strategy)
        print(f"MC-DLA(B) harmonic-mean speedup over DC-DLA: "
              f"{speedup:.2f}x\n")

    overall = fig13.mean_speedup("MC-DLA(B)")
    print(f"Overall MC-DLA(B) speedup: {overall:.2f}x "
          f"(paper reports 2.8x)")

    # Iteration-time detail for the curious.
    times = [matrix.result("MC-DLA(B)", n,
                           ParallelStrategy.DATA).iteration_time
             for n in BENCHMARK_NAMES]
    fastest = BENCHMARK_NAMES[times.index(min(times))]
    print(f"Fastest workload on MC-DLA(B): {fastest} "
          f"({min(times) * 1e3:.1f} ms/iteration)")
    dp_fracs = [fig13.perf(ParallelStrategy.DATA, n, "MC-DLA(B)")
                for n in BENCHMARK_NAMES]
    print(f"Harmonic-mean DP oracle fraction: "
          f"{harmonic_mean(dp_fracs) * 100:.0f}%")


if __name__ == "__main__":
    main()
