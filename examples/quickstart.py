#!/usr/bin/env python3
"""Quickstart: compare MC-DLA against the DGX-style baseline.

Simulates one data-parallel training iteration of VGG-E (batch 512 per
worker, 8 workers) on the device-centric baseline and on the proposed
memory-centric design, and prints the latency breakdown the paper's
Figure 11 stacks.

Run:  python examples/quickstart.py [network] [batch]
"""

import sys

from repro import ParallelStrategy, design_point, simulate
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "VGG-E"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 512

    print(f"Simulating one training iteration of {network} "
          f"(batch {batch}/worker, 8 workers, data-parallel)\n")

    results = {}
    for name in ("DC-DLA", "HC-DLA", "MC-DLA(B)", "DC-DLA(O)"):
        config = design_point(name)
        results[name] = simulate(config, network, batch,
                                 ParallelStrategy.DATA)

    header = (f"{'design':<10} {'iteration':>12} {'compute':>12} "
              f"{'sync':>12} {'migration':>12} {'migrated':>12}")
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        b = r.breakdown
        print(f"{name:<10} {fmt_time(r.iteration_time):>12} "
              f"{fmt_time(b.compute):>12} {fmt_time(b.sync):>12} "
              f"{fmt_time(b.vmem):>12} "
              f"{fmt_bytes(r.round_trip_bytes_per_device):>12}")

    dc, mc = results["DC-DLA"], results["MC-DLA(B)"]
    oracle = results["DC-DLA(O)"]
    print(f"\nMC-DLA(B) speedup over DC-DLA: "
          f"{mc.speedup_over(dc):.2f}x")
    print(f"MC-DLA(B) reaches {mc.performance_vs(oracle) * 100:.0f}% "
          f"of an infinite-memory oracle")
    if not dc.fits_in_device_memory:
        print(f"(the workload does NOT fit in 16 GB of device memory: "
              f"virtualization is mandatory)")


if __name__ == "__main__":
    main()
