#!/usr/bin/env python3
"""User productivity (paper Section V-E): train a model that cannot fit.

Builds an end-to-end video-captioning workload (per-frame CNN encoders +
encoder/decoder LSTMs) whose training footprint exceeds device memory by
an order of magnitude, then:

1. shows that a conventional device cannot hold it (the memory capacity
   wall),
2. walks the Table I runtime API: the memory manager allocates every
   migrated tensor in device-remote memory (``malloc_remote``), issues
   the overlay copies (``memcpy_async`` with LocalToRemote /
   RemoteToLocal), and frees them (``free_remote``),
3. simulates a training iteration on DC-DLA and MC-DLA(B).

Run:  python examples/train_oom_video_model.py [frames] [batch]
"""

import sys

from repro import ParallelStrategy, design_point, simulate
from repro.dnn.models.video import VideoSpec, build_video_net
from repro.units import GB, fmt_bytes, fmt_time
from repro.vmem.manager import MemoryManager
from repro.vmem.runtime_api import DeviceRuntime


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 64

    spec = VideoSpec(frames=frames)
    net = build_video_net(spec)
    footprint = net.training_footprint_bytes(batch)
    device_mem = 16 * GB

    print(f"Workload: {net.name} ({frames} frames + "
          f"{spec.caption_steps} caption steps, batch {batch})")
    print(f"Layers: {len(net)}, weights: "
          f"{fmt_bytes(net.weight_bytes())}")
    print(f"Training footprint: {fmt_bytes(footprint)} vs "
          f"{fmt_bytes(device_mem)} of device memory "
          f"-> {footprint / device_mem:.1f}x over the capacity wall\n")

    # -- The Table I runtime API in action --------------------------------
    manager = MemoryManager()
    plan = manager.plan(net, batch)
    runtime = DeviceRuntime()
    print(f"Memory manager plans {len(plan.offloaded)} offloads "
          f"({fmt_bytes(plan.offload_bytes)}) and "
          f"{len(plan.recomputed)} recomputes per iteration")
    pointers = manager.execute_forward(plan, runtime)
    peak = runtime.live_remote_bytes
    manager.execute_backward(plan, runtime, pointers)
    print(f"Peak device-remote residency: {fmt_bytes(peak)}; "
          f"modeled overlay time: {fmt_time(runtime.clock)}; "
          f"remote pool drained: "
          f"{runtime.live_remote_bytes == 0}\n")

    # -- System-level comparison ------------------------------------------
    for name in ("DC-DLA", "MC-DLA(B)"):
        result = simulate(design_point(name), net, batch,
                          ParallelStrategy.DATA)
        b = result.breakdown
        print(f"{name:<10} iteration {fmt_time(result.iteration_time)} "
              f"(compute {fmt_time(b.compute)}, "
              f"migration {fmt_time(b.vmem)})")

    dc = simulate(design_point("DC-DLA"), net, batch,
                  ParallelStrategy.DATA)
    mc = simulate(design_point("MC-DLA(B)"), net, batch,
                  ParallelStrategy.DATA)
    print(f"\nMC-DLA(B) trains this previously-untrainable model "
          f"{mc.speedup_over(dc):.2f}x faster than PCIe-based "
          f"virtualization")


if __name__ == "__main__":
    main()
