"""Regenerates Table IV: memory-node power, and Section V-C perf/W."""

from conftest import emit

from repro.experiments.fig13_performance import run_fig13
from repro.experiments.tab4_power import format_tab4, run_tab4

# Table IV's published rows: node TDP (W) and GB/W per DIMM type.
PAPER_ROWS = {
    "8GB-RDIMM": (29.0, 2.8),
    "16GB-RDIMM": (66.0, 2.4),
    "32GB-LRDIMM": (87.0, 3.7),
    "64GB-LRDIMM": (102.0, 6.3),
    "128GB-LRDIMM": (127.0, 10.1),
}


def test_tab04_power(benchmark, matrix):
    fig13 = run_fig13(matrix=matrix)
    result = benchmark.pedantic(run_tab4, args=(fig13,), rounds=1,
                                iterations=1)
    emit("Table IV (memory-node power)", format_tab4(result))

    for report in result.reports:
        tdp, gbw = PAPER_ROWS[report.dimm.name]
        assert abs(report.node_tdp_w - tdp) < 1e-9
        assert abs(report.node_gb_per_watt - gbw) < 0.06

    # Perf/W improves despite the added nodes (paper: 2.1x-2.6x), and
    # the low-power build-out is the more efficient one.
    assert result.perf_per_watt_low_power > result.perf_per_watt_high_capacity
    assert result.perf_per_watt_high_capacity > 1.2
    # The 128 GB LRDIMM build-out adds ~10 TB of pooled memory.
    assert 9.5 < result.pool_capacity_tb < 10.5
