"""Regenerates the Section V-E user-productivity study."""

from conftest import emit

from repro.experiments.user_productivity import (
    format_user_productivity, run_user_productivity)


def test_user_productivity(benchmark):
    result = benchmark.pedantic(run_user_productivity, rounds=1,
                                iterations=1)
    emit("Section V-E (user productivity)",
         format_user_productivity(result))

    # The capacity wall: long clips cannot fit device memory, but the
    # memory-node pool holds every configuration in the sweep.
    assert result.max_frames_in_hbm < max(p.frames
                                          for p in result.points)
    assert result.max_frames_in_pool == max(p.frames
                                            for p in result.points)
    # Footprint grows with clip length; MC-DLA keeps winning.
    footprints = [p.footprint_bytes for p in result.points]
    assert footprints == sorted(footprints)
    assert all(p.speedup > 2.0 for p in result.points)
