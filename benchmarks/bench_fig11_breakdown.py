"""Regenerates Figure 11: latency breakdown per design and workload."""

from conftest import emit

from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.fig11_breakdown import format_fig11, run_fig11
from repro.training.parallel import ParallelStrategy


def test_fig11a_data_parallel(benchmark, matrix):
    result = benchmark.pedantic(run_fig11,
                                args=(ParallelStrategy.DATA, matrix),
                                rounds=1, iterations=1)
    emit("Figure 11(a) data-parallel", format_fig11(result))

    # Memory virtualization bottlenecks DC-DLA on most workloads
    # (paper: 14 of 16 across both strategies).
    assert result.vmem_bound_count("DC-DLA") >= 6
    # HC-DLA trades virtualization latency for synchronization time.
    assert result.hc_dla_vmem_reduction() > 0.5
    assert result.hc_dla_sync_increase() > 0.5
    # DC-DLA spends the least time on synchronization of all designs.
    for network in BENCHMARK_NAMES:
        dc_sync = result.raw[(network, "DC-DLA")].sync
        assert dc_sync <= result.raw[(network, "HC-DLA")].sync + 1e-12
        assert dc_sync <= result.raw[(network, "MC-DLA(B)")].sync + 1e-12


def test_fig11b_model_parallel(benchmark, matrix):
    result = benchmark.pedantic(run_fig11,
                                args=(ParallelStrategy.MODEL, matrix),
                                rounds=1, iterations=1)
    emit("Figure 11(b) model-parallel", format_fig11(result))

    for network in BENCHMARK_NAMES:
        # Oracle bars carry no virtualization latency at all.
        assert result.raw[(network, "DC-DLA(O)")].vmem == 0.0
        # The memory-centric designs slash DC-DLA's virtualization time.
        dc = result.raw[(network, "DC-DLA")].vmem
        mc = result.raw[(network, "MC-DLA(B)")].vmem
        assert mc < dc / 4
