"""Benchmark: the serving comparison -- six designs to SLO collapse.

Runs the serving ladder through the shared campaign cache and emits
the reproduction table: the device-centric baseline's knee sits an
order of magnitude below the memory-centric designs', while MC-DLA(B)
holds within a few percent of the infinite-memory oracle's goodput.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.serving_comparison import (
    MC_DESIGNS, format_serving_comparison, run_serving_comparison)


def test_serving_comparison(benchmark):
    study = benchmark.pedantic(run_serving_comparison, rounds=1,
                               iterations=1)
    emit("Serving: six designs under rising load until SLO collapse",
         format_serving_comparison(study))
    dc = study.knee_goodput("DC-DLA")
    for design in MC_DESIGNS:
        assert study.knee_goodput(design) > dc


def test_serving_tail_amplification(benchmark):
    """Bursty arrivals stretch the DC baseline's tail far more than
    the memory-centric designs'."""
    from repro.core.design_points import design_point
    from repro.serving import simulate_serving

    def run():
        return {
            design: simulate_serving(
                design_point(design), "GPT2", arrival="bursty",
                rate=800.0, n_requests=512).serving
            for design in ("DC-DLA", "MC-DLA(B)")}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[design, s.latency_p50 * 1e3, s.latency_p99 * 1e3,
             f"{s.tail_amplification:.2f}x",
             f"{s.slo_attainment * 100:.1f}%"]
            for design, s in stats.items()]
    from repro.experiments.report import format_table
    emit("Serving tail amplification under bursty (MMPP) arrivals",
         format_table(["design", "p50 (ms)", "p99 (ms)", "tail amp",
                       "SLO att."], rows,
                      title="GPT2 @ 800 req/s bursty, 50 ms SLO"))
    assert stats["MC-DLA(B)"].latency_p99 < stats["DC-DLA"].latency_p99
