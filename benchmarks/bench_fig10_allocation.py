"""Regenerates Figure 10: LOCAL vs BW_AWARE allocation latency."""

from conftest import emit

from repro.experiments.fig10_allocation import format_fig10, run_fig10


def test_fig10_allocation(benchmark):
    result = benchmark(run_fig10)
    emit("Figure 10 (page allocation policies)", format_fig10(result))

    for point in result.points:
        # BW_AWARE reads both memory-nodes concurrently: exactly half
        # the LOCAL latency, with pages split evenly (+-1 page).
        assert abs(point.speedup - 2.0) < 1e-9
        assert abs(point.placement_skew) <= 1
