"""Regenerates Section V-D: multi-device scalability."""

from conftest import emit

from repro.experiments.scalability import (format_scalability,
                                           run_scalability)


def test_scalability(benchmark):
    result = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    emit("Section V-D (scalability)", format_scalability(result))

    # Virtualization-free training scales nearly perfectly ...
    assert result.mean_scaling("DC-DLA (no virtualization)", 4) > 3.8
    assert result.mean_scaling("DC-DLA (no virtualization)", 8) > 7.6
    # ... the PCIe bottleneck erodes DC-DLA's scaling ...
    assert result.mean_scaling("DC-DLA (virtualized)", 8) < 6.0
    # ... and MC-DLA regains it.
    assert result.mean_scaling("MC-DLA(B)", 8) > \
        result.mean_scaling("DC-DLA (virtualized)", 8) * 1.5
