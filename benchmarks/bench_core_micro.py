"""Microbenchmarks of the simulator's hot paths.

These time the substrate primitives themselves (GEMM timing, ring
collectives, schedule construction, full iteration simulation) so
regressions in the simulator's own performance are visible.

Simulation-level benchmarks come in *cold* and *warm* variants.  The
vectorized core memoizes pricing process-wide
(:mod:`repro.core.pricing`), so a naive ``benchmark(simulate, ...)``
times cache replay from its second round on.  Cold variants clear
every pricing memo in the round's setup hook and measure real
simulation work; warm variants deliberately keep the memos hot and
measure the cached steady state the campaign engine actually runs at.
"""

from repro.accelerator.device import BASELINE_DEVICE
from repro.collectives.ring_algorithm import all_reduce_time
from repro.core import pricing
from repro.core.design_points import dc_dla, mc_dla_bw
from repro.core.optable import schedule_ops
from repro.core.schedule import build_iteration_ops, plan_iteration
from repro.core.simulator import simulate
from repro.core.timeline import run_timeline
from repro.dnn.registry import build_network
from repro.dnn.shapes import Gemm
from repro.training.parallel import ParallelStrategy
from repro.units import GBPS, MB


def _cold(benchmark, fn):
    """Best-of-N with every pricing memo emptied before each round."""
    return benchmark.pedantic(fn, setup=pricing.clear_caches,
                              rounds=5, iterations=1)


def test_bench_gemm_timing(benchmark):
    gemm = Gemm(512 * 196, 512, 1152)
    time = benchmark(BASELINE_DEVICE.pe_array.gemm_time, gemm,
                     BASELINE_DEVICE.hbm)
    assert time > 0


def test_bench_ring_allreduce_model(benchmark):
    latency = benchmark(all_reduce_time, 16, 8 * MB, 50 * GBPS)
    assert latency > 0


def test_bench_schedule_construction_cold(benchmark):
    net = build_network("GoogLeNet")
    config = mc_dla_bw()

    def build():
        plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
        return build_iteration_ops(plan, config)

    ops = _cold(benchmark, build)
    assert len(ops) > 200


def test_bench_schedule_construction_warm(benchmark):
    net = build_network("GoogLeNet")
    config = mc_dla_bw()

    def build():
        plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
        return build_iteration_ops(plan, config)

    build()  # prewarm the pricing memos
    ops = benchmark(build)
    assert len(ops) > 200


def test_bench_timeline_scheduler_scalar(benchmark):
    """The scalar reference list scheduler (pure, no caches)."""
    net = build_network("RNN-GRU")
    config = dc_dla()
    plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
    ops = build_iteration_ops(plan, config)
    result = benchmark(run_timeline, ops)
    assert result.makespan > 0


def test_bench_timeline_scheduler_columnar(benchmark):
    """The columnar scheduler on the same op program."""
    net = build_network("RNN-GRU")
    config = dc_dla()
    plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
    ops = build_iteration_ops(plan, config)
    result = benchmark(schedule_ops, ops)
    assert result.makespan > 0


def test_bench_full_simulation_cold(benchmark):
    config = mc_dla_bw()
    result = _cold(benchmark, lambda: simulate(
        config, "VGG-E", 512, ParallelStrategy.DATA))
    assert result.iteration_time > 0


def test_bench_full_simulation_warm(benchmark):
    config = mc_dla_bw()
    simulate(config, "VGG-E", 512, ParallelStrategy.DATA)  # prewarm
    result = benchmark(simulate, config, "VGG-E", 512,
                       ParallelStrategy.DATA)
    assert result.iteration_time > 0
