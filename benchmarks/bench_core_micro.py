"""Microbenchmarks of the simulator's hot paths.

These time the substrate primitives themselves (GEMM timing, ring
collectives, schedule construction, full iteration simulation) so
regressions in the simulator's own performance are visible.
"""

from repro.accelerator.device import BASELINE_DEVICE
from repro.collectives.ring_algorithm import all_reduce_time
from repro.core.design_points import dc_dla, mc_dla_bw
from repro.core.schedule import build_iteration_ops, plan_iteration
from repro.core.simulator import simulate
from repro.core.timeline import run_timeline
from repro.dnn.registry import build_network
from repro.dnn.shapes import Gemm
from repro.training.parallel import ParallelStrategy
from repro.units import GBPS, MB


def test_bench_gemm_timing(benchmark):
    gemm = Gemm(512 * 196, 512, 1152)
    time = benchmark(BASELINE_DEVICE.pe_array.gemm_time, gemm,
                     BASELINE_DEVICE.hbm)
    assert time > 0


def test_bench_ring_allreduce_model(benchmark):
    latency = benchmark(all_reduce_time, 16, 8 * MB, 50 * GBPS)
    assert latency > 0


def test_bench_schedule_construction(benchmark):
    net = build_network("GoogLeNet")
    config = mc_dla_bw()

    def build():
        plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
        return build_iteration_ops(plan, config)

    ops = benchmark(build)
    assert len(ops) > 200


def test_bench_timeline_scheduler(benchmark):
    net = build_network("RNN-GRU")
    config = dc_dla()
    plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
    ops = build_iteration_ops(plan, config)
    result = benchmark(run_timeline, ops)
    assert result.makespan > 0


def test_bench_full_simulation(benchmark):
    config = mc_dla_bw()
    result = benchmark(simulate, config, "VGG-E", 512,
                       ParallelStrategy.DATA)
    assert result.iteration_time > 0
