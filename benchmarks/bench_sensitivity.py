"""Regenerates the Section V-B sensitivity studies."""

from conftest import emit

from repro.experiments.sensitivity import (format_sensitivity,
                                           run_sensitivity)


def test_sensitivity(benchmark):
    result = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    emit("Section V-B (sensitivity studies)", format_sensitivity(result))

    baseline = result.study("baseline").measured_gap
    # PCIe gen4 narrows the gap (paper: 2.8x -> 2.1x) ...
    assert result.study("pcie-gen4").measured_gap < baseline
    assert result.dc_gen4_improvement > 0.2
    # ... cDMA compression narrows it on CNNs (paper: -> 2.3x) ...
    assert result.study("cdma-compression").measured_gap < baseline
    # ... faster devices widen it (paper: -> 3.2x) ...
    assert result.study("tpuv2-device").measured_gap > baseline
    # ... and a DGX-2-class node keeps MC-DLA ahead (paper: 2.9x).
    assert result.study("dgx2-node").measured_gap > baseline * 0.9
