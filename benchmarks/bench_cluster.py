"""Benchmark: the cluster comparison -- policies x designs, one pool.

Runs the scheduler study through the shared campaign cache and emits
the reproduction table: at equal pool capacity every memory-centric
design out-schedules the device-centric baseline on tail JCT and job
throughput, and the scheduling policy only narrows the gap.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.cluster_comparison import (
    MC_DESIGNS, format_cluster_comparison, run_cluster_comparison)


def test_cluster_comparison(benchmark):
    study = benchmark.pedantic(run_cluster_comparison, rounds=1,
                               iterations=1)
    emit("Cluster: scheduling policies x designs over a shared pool",
         format_cluster_comparison(study))
    for policy in study.policies:
        dc = study.at("DC-DLA", policy)
        for design in MC_DESIGNS:
            assert study.at(design, policy).jct_p95 < dc.jct_p95
            assert study.throughput_gain(design, policy) > 1.0


def test_cluster_preemption_tradeoff(benchmark):
    """Preemption converts head-of-line blocking into checkpoint
    traffic: mean queueing drops, the preemption ledger fills."""
    from repro.cluster import simulate_cluster
    from repro.core.design_points import design_point
    from repro.units import TB

    def run():
        config = design_point("DC-DLA")
        kwargs = dict(policy="fifo", job_mix="balanced", n_jobs=20,
                      seed=0, arrival_rate=0.05, pool_capacity=1 * TB)
        return (simulate_cluster(config, **kwargs).cluster,
                simulate_cluster(config, preempt_after=120.0,
                                 **kwargs).cluster)

    blocked, preempting = benchmark.pedantic(run, rounds=1,
                                             iterations=1)
    from repro.experiments.report import format_table
    rows = [[label, f"{s.queue_delay_mean:.1f}", f"{s.jct_p95:.1f}",
             s.preemptions, f"{s.checkpoint_bytes / 1e9:.1f}"]
            for label, s in (("fifo", blocked),
                             ("fifo+preempt", preempting))]
    emit("Cluster preemption: queueing vs checkpoint traffic",
         format_table(["scheduler", "wait (s)", "JCT p95 (s)",
                       "evictions", "ckpt GB"], rows,
                      title="DC-DLA, balanced mix, 1 TiB pool"))
    assert preempting.queue_delay_mean < blocked.queue_delay_mean
    assert preempting.preemptions > 0
