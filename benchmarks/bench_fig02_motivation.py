"""Regenerates Figure 2: device generations vs PCIe virtualization."""

from conftest import emit

from repro.experiments.fig2_motivation import format_fig2, run_fig2


def test_fig02_motivation(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    emit("Figure 2 (motivation)", format_fig2(result))

    for network in ("AlexNet", "GoogLeNet", "VGG-E", "ResNet"):
        series = result.series(network)
        # Newer devices run the network strictly faster ...
        times = [p.time_oracle for p in series]
        assert times == sorted(times, reverse=True)
        # ... while the PCIe virtualization overhead keeps growing.
        overheads = [p.overhead for p in series]
        assert overheads == sorted(overheads)
        assert overheads[-1] > 0.8  # TPUv2-class: mostly migration stalls
        assert result.generation_speedup(network) > 10.0
