"""Regenerates Figure 12: CPU memory bandwidth usage per design."""

from conftest import emit

from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.fig12_cpu_bandwidth import format_fig12, run_fig12


def test_fig12_cpu_bandwidth(benchmark, matrix):
    result = benchmark.pedantic(run_fig12, args=(matrix,), rounds=1,
                                iterations=1)
    emit("Figure 12 (CPU memory bandwidth usage)", format_fig12(result))

    for network in BENCHMARK_NAMES:
        dc = result.bar("DC-DLA", network)
        hc = result.bar("HC-DLA", network)
        mc = result.bar("MC-DLA(B)", network)
        # The memory-centric design consumes no host bandwidth at all.
        assert mc.avg_data_gbps == mc.avg_model_gbps == mc.max_gbps == 0.0
        # HC-DLA's 75 GB/s-per-device channel dwarfs DC-DLA's PCIe.
        assert hc.max_gbps > dc.max_gbps
        assert hc.avg_data_gbps >= dc.avg_data_gbps

    # HC-DLA eats most of its (already over-provisioned) socket.
    assert result.worst_case_fraction("HC-DLA") > 0.6
    # DC-DLA's demand is bounded by 4 devices x 16 GB/s per socket.
    assert result.worst_case_fraction("DC-DLA") <= 64.0 / 80.0 + 1e-9
