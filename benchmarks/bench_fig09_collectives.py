"""Regenerates Figure 9: collective latency vs ring size."""

from conftest import emit

from repro.collectives.ring_algorithm import Primitive
from repro.experiments.fig9_collectives import format_fig9, run_fig9


def test_fig09_collectives(benchmark):
    result = benchmark(run_fig9)
    emit("Figure 9 (ring collectives)", format_fig9(result))

    # All-gather and all-reduce asymptote toward 2x their 2-node cost
    # (monotone up to the +-1% wiggle of 4 KB chunk quantization);
    # pipelined broadcast stays essentially flat.
    for primitive in (Primitive.ALL_GATHER, Primitive.ALL_REDUCE):
        series = result.normalized[primitive]
        assert all(b >= a - 0.03 for a, b in zip(series, series[1:]))
        assert 1.9 < series[-1] < 2.1
    assert result.normalized[Primitive.BROADCAST][-1] < 1.05

    # The paper's headline: a 16-node MC-DLA ring costs ~7% over the
    # 8-node DC-DLA ring at the 8 MB synchronization size.
    assert 0.04 < result.mc_dla_overhead < 0.12
