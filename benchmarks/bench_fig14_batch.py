"""Regenerates Figure 14: batch-size sensitivity of the MC-DLA speedup."""

from conftest import emit

from repro.experiments.fig14_batch_sensitivity import (format_fig14,
                                                       run_fig14)


def test_fig14_batch_sensitivity(benchmark):
    result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    emit("Figure 14 (batch-size sensitivity)", format_fig14(result))

    # MC-DLA(B) wins at every batch size (robustness, paper: avg 2.17x).
    for batch in result.batches:
        assert result.batch_mean(batch) > 1.3
    assert 1.6 < result.overall_mean < 3.5
