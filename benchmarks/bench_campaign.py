"""Micro-benchmark: the campaign engine's three build modes.

Times the full evaluation grid (6 designs x 8 workloads x 2
strategies) built three ways -- cold serial, process-pool parallel,
and warm-cache replay -- and emits the comparison to
``benchmarks/results/``.  Warm replay must beat cold simulation by a
wide margin; that gap is what the disk cache buys every CI run.
"""

from __future__ import annotations

import os
import time

from conftest import emit

from repro.campaign import ResultCache, run_campaign
from repro.core import pricing
from repro.experiments.matrix import evaluation_points
from repro.experiments.report import format_table

_TIMINGS: dict[str, float] = {}
_POINTS = evaluation_points(512)
_JOBS = min(4, os.cpu_count() or 1)


def _timed(label: str, fn) -> None:
    start = time.perf_counter()
    report = fn()
    _TIMINGS[label] = time.perf_counter() - start
    report.raise_failures()


def test_campaign_cold_serial(benchmark):
    # Cold means cold: the session-scoped figure benches (and any
    # earlier round) leave the process-wide pricing memos hot, which
    # would time cache replay instead of simulation.
    benchmark.pedantic(
        lambda: _timed("cold serial (jobs=1)",
                       lambda: run_campaign(_POINTS, jobs=1)),
        setup=pricing.clear_caches, rounds=1, iterations=1)


def test_campaign_warm_serial(benchmark):
    # Runs after cold (file order): the memos the cold round populated
    # stay hot, so this measures the memoized steady state.
    benchmark.pedantic(
        lambda: _timed("warm serial (jobs=1)",
                       lambda: run_campaign(_POINTS, jobs=1)),
        rounds=1, iterations=1)


def test_campaign_parallel(benchmark):
    benchmark.pedantic(
        lambda: _timed(f"process pool (jobs={_JOBS})",
                       lambda: run_campaign(_POINTS, jobs=_JOBS)),
        rounds=1, iterations=1)


def test_campaign_warm_cache(benchmark, tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("campaign-cache"))
    run_campaign(_POINTS, cache=cache).raise_failures()  # prewarm

    def replay():
        report = run_campaign(_POINTS, cache=cache)
        assert all(o.cached for o in report.outcomes)
        return report

    benchmark.pedantic(
        lambda: _timed("warm cache replay", replay),
        rounds=1, iterations=1)

    cold = _TIMINGS.get("cold serial (jobs=1)")
    rows = [[label, f"{seconds * 1e3:.0f}",
             (f"{cold / seconds:.1f}x" if cold else "-")]
            for label, seconds in _TIMINGS.items()]
    emit("Campaign engine build modes",
         format_table(["mode", "time (ms)", "vs cold serial"], rows,
                      title=f"Evaluation matrix ({len(_POINTS)} cells)"))
    if cold is not None:
        assert _TIMINGS["warm cache replay"] < cold
