"""Regenerates the pipeline-parallel comparison study."""

from conftest import emit

from repro.core.design_points import DESIGN_ORDER
from repro.dnn.registry import TRANSFORMER_NAMES
from repro.experiments.pipeline_comparison import (
    format_pipeline_comparison, run_pipeline_comparison)


def test_pipeline_comparison(benchmark):
    study = benchmark.pedantic(run_pipeline_comparison, rounds=1,
                               iterations=1)
    emit("Pipeline parallelism: schedules x designs on transformers",
         format_pipeline_comparison(study))

    for network in TRANSFORMER_NAMES:
        for design in DESIGN_ORDER:
            # 1F1B's bounded activation stash strictly beats GPipe's
            # fill-drain bubble on every design.
            assert study.schedule_gap(network, design) > 0
            # Microbatched pipelining beats flat data-parallel weak
            # scaling on transformer stacks everywhere.
            data = study.result(network, design, "data")
            piped = study.result(network, design, "pipeline/1f1b")
            assert piped.iteration_time < data.iteration_time
        # The device-centric design pays the largest fill-drain
        # penalty; memory-centric designs shrink the schedule gap.
        assert study.schedule_gap(network, "DC-DLA") \
            > study.schedule_gap(network, "MC-DLA(B)")
