"""Shared benchmark fixtures.

The evaluation matrix (6 designs x 8 workloads x 2 strategies) backs
Figures 11-13; it is computed once per session through the campaign
engine's shared disk cache (``benchmarks/.cache`` unless
``$REPRO_CACHE_DIR`` overrides it), so a re-run of the harness replays
the grid from disk instead of re-simulating, and every figure reports
consistent numbers, exactly like a single simulator campaign would.

``emit`` writes each experiment's reproduction table both to the real
terminal (bypassing pytest's capture, so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` records the paper's
rows/series) and to ``benchmarks/results/<id>.txt`` for later diffing.

The disk cache (and the in-process pricing memos of
:mod:`repro.core.pricing`) means a timing taken here can measure
*cache replay*, not simulation.  That is intended for the figure
benches -- their job is reproducing the paper's tables consistently --
but any benchmark claiming to measure simulation cost must say which
side it is on: cold variants clear the pricing memos in their setup
hook (``benchmark.pedantic(..., setup=pricing.clear_caches)``) and
avoid the disk cache; warm variants keep both hot on purpose.  The
committed ``BENCH_*.json`` baselines are produced by ``python -m
repro bench``, which runs cold with ``cache=None`` and never touches
``benchmarks/.cache``.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.campaign import CACHE_DIR_ENV
from repro.experiments.matrix import evaluation_matrix

RESULTS_DIR = Path(__file__).parent / "results"

#: The harness-wide campaign cache; content-addressing on the code
#: fingerprint keeps it safe to persist across edits.  Exporting the
#: env var (rather than threading a cache_dir through one call site)
#: routes *every* ``evaluation_matrix`` consumer through the cache,
#: including Figure 14's internal per-batch grids.
#:
#: Because this directory persists across harness runs (each a fresh
#: interpreter with its own ``PYTHONHASHSEED``), cache keys must be
#: hash-order independent: ``repro.campaign.points.canonicalize``
#: sorts set-typed values before hashing, and
#: ``tests/test_campaign_serving.py::TestHashSeedDeterminism`` holds
#: the key derivation to that across different hash seeds.
#:
#: Keys must also cover the *built* config, not just the point axes:
#: the per-policy benchmark matrices (``bench_prefetch.py``) build the
#: same (design, network, batch) cells under different factory-baked
#: prefetch policies, and a key without the full config fingerprint
#: would silently replay one policy's cached numbers as another's.
#: ``run_campaign`` therefore keys on ``point.describe(factory)`` --
#: the canonical image of the materialized ``SystemConfig`` -- held to
#: by ``tests/test_campaign_prefetch.py::TestConfigFingerprintKeys``.
CACHE_DIR = Path(os.environ.setdefault(
    CACHE_DIR_ENV, str(Path(__file__).parent / ".cache")))


@pytest.fixture(scope="session")
def matrix():
    return evaluation_matrix(512)


def emit(title: str, text: str) -> None:
    """Record a figure's reproduction table in the benchmark log."""
    banner = "=" * 72
    block = f"\n{banner}\n{title}\n{banner}\n{text}\n"
    # Under the project's tee-sys capture mode this reaches the real
    # console (and any tee) even when the test passes.
    print(block, flush=True)

    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
