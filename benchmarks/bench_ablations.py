"""Regenerates the design-choice ablation studies."""

from conftest import emit

from repro.experiments.ablations import format_ablations, run_ablations


def test_ablations(benchmark):
    result = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    emit("Ablation studies", format_ablations(result))

    # Deeper pinned-buffer windows help, with diminishing returns.
    w1 = result.row("offload-window", "w=1").mean_iteration_time
    w2 = result.row("offload-window", "w=2").mean_iteration_time
    w8 = result.row("offload-window", "w=8").mean_iteration_time
    assert w1 > w2 >= w8

    # Recomputing cheap layers beats migrating them on a PCIe channel.
    on = result.row("recompute-rule", "recompute-on")
    off = result.row("recompute-rule", "recompute-off")
    assert on.mean_iteration_time < off.mean_iteration_time

    # Sharing PCIe uplinks hurts the baseline badly.
    dedicated = result.row("pcie-uplinks", "dedicated")
    shared = result.row("pcie-uplinks", "shared")
    assert shared.mean_iteration_time > 1.5 * dedicated.mean_iteration_time

    # The Figure 7(c) ring beats both strawmen at equal budgets.
    ring = result.row("interconnect", "fig7c-ring").mean_iteration_time
    folded = result.row("interconnect",
                        "fig7b-folded").mean_iteration_time
    derivative = result.row("interconnect",
                            "fig7a-derivative").mean_iteration_time
    assert ring < folded and ring < derivative
