"""Regenerates the Section VI scale-out feasibility sketch."""

from conftest import emit

from repro.experiments.scaleout import format_scaleout, run_scaleout


def test_scaleout(benchmark):
    result = benchmark.pedantic(run_scaleout, rounds=1, iterations=1)
    emit("Section VI (scale-out plane)", format_scaleout(result))

    base = result.point(1)
    big = result.point(16)
    # Virtualization bandwidth per device is preserved at scale ...
    assert big.vmem_bw_per_device == base.vmem_bw_per_device
    # ... the memory pool grows linearly ...
    assert big.pooled_capacity == 16 * base.pooled_capacity
    # ... and collective latency grows far sub-linearly (ring
    # algorithm: the per-step segment shrinks as rings grow).
    assert big.allreduce_latency < 2.0 * base.allreduce_latency
    # Switch provisioning stays sane (radix-18 crossbars).
    assert big.plane.switches_needed <= 48
