"""Regenerates Figure 13: performance of the six design points."""

from conftest import emit

from repro.core.design_points import DESIGN_ORDER
from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.fig13_performance import format_fig13, run_fig13
from repro.experiments.matrix import STRATEGIES
from repro.training.parallel import ParallelStrategy


def test_fig13_performance(benchmark, matrix):
    result = benchmark.pedantic(run_fig13, kwargs={"matrix": matrix},
                                rounds=1, iterations=1)
    emit("Figure 13 (performance)", format_fig13(result))

    # Who wins, everywhere: the oracle bounds every design, MC-DLA(B)
    # beats every other buildable design, and DC-DLA is the slowest.
    for strategy in STRATEGIES:
        for network in BENCHMARK_NAMES:
            perfs = {d: result.perf(strategy, network, d)
                     for d in DESIGN_ORDER}
            assert all(p <= 1.0 + 1e-9 for p in perfs.values())
            best_buildable = max(p for d, p in perfs.items()
                                 if d != "DC-DLA(O)")
            assert perfs["MC-DLA(B)"] >= best_buildable - 1e-9
            # Every memory-centric design beats the baseline (HC-DLA
            # may lose to DC-DLA on sync-bound model-parallel RNNs --
            # the paper only claims HC-DLA wins on average).
            for design in ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)"):
                assert perfs[design] > perfs["DC-DLA"]
            assert perfs["MC-DLA(L)"] <= perfs["MC-DLA(B)"] + 1e-9

    # Headline factors (paper: 3.5x DP, 2.1x MP, 2.8x overall).
    dp = result.mean_speedup("MC-DLA(B)", ParallelStrategy.DATA)
    mp = result.mean_speedup("MC-DLA(B)", ParallelStrategy.MODEL)
    overall = result.mean_speedup("MC-DLA(B)")
    assert 2.0 < dp < 5.0
    assert 1.5 < mp < 3.0
    assert 1.8 < overall < 3.8
    assert dp > mp  # data-parallel benefits more, as in the paper

    # MC-DLA(B) approaches the unbuildable oracle (paper: 84-99%; our
    # GoogLeNet floor is lower because its inception stem pays more
    # recompute + offload-window stalls -- see EXPERIMENTS.md).
    lo, mean, hi = result.oracle_fraction_range()
    assert lo > 0.6 and mean > 0.8 and hi > 0.95
