"""Benchmark: prefetch policies x designs across the four modes.

Runs the policy study through the shared campaign cache and emits the
reproduction tables: the clairvoyant oracle strictly reduces offload
stall versus the on-demand baseline on every memory-centric design,
the cost-model policy tracks the oracle almost exactly, and the
stride predictor pays for its speculation in wasted bytes on branchy
graphs and in evictions on long regular streams.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.prefetch_comparison import (
    MC_DESIGNS, format_prefetch_comparison, run_prefetch_comparison)
from repro.vmem.prefetch import ON_DEMAND


def test_prefetch_comparison(benchmark):
    study = benchmark.pedantic(run_prefetch_comparison, rounds=1,
                               iterations=1)
    emit("Prefetch policies x designs x modes",
         format_prefetch_comparison(study))
    for design in MC_DESIGNS:
        assert study.stall_reduction(design) > 0.0
        oracle = study.stall("training", design, "clairvoyant")
        for policy in study.policies:
            assert oracle <= study.stall("training", design, policy) \
                + 1e-12
    # The serving-time memory wall moves with the policy too.
    for design in MC_DESIGNS:
        oracle = study.at("serving", design, "clairvoyant").serving
        demand = study.at("serving", design, ON_DEMAND).serving
        assert oracle.latency_p99 <= demand.latency_p99 + 1e-12


def test_prefetch_policy_swing(benchmark):
    """The headline of the far-memory prefetching literature: policy
    choice alone swings exposed stall by an integer factor."""
    from repro.core.design_points import design_point
    from repro.core.simulator import simulate
    import dataclasses

    def run():
        base = design_point("MC-DLA(B)")
        results = {}
        for policy in ("on-demand", "next-op", "clairvoyant"):
            config = dataclasses.replace(base,
                                         prefetch_policy=policy)
            results[policy] = simulate(config, "VGG-E", 512)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.experiments.report import format_table
    rows = [[policy, f"{r.prefetch.stall_seconds * 1e3:.2f}",
             f"{r.iteration_time * 1e3:.1f}"]
            for policy, r in results.items()]
    emit("Prefetch policy swing on MC-DLA(B) / VGG-E",
         format_table(["policy", "stall (ms)", "iter (ms)"], rows,
                      title="policy choice swings exposed stall"))
    worst = results["next-op"].prefetch.stall_seconds
    best = results["clairvoyant"].prefetch.stall_seconds
    assert worst > 2.0 * max(best, 1e-9)
