"""Tests for repro.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (GB, GBPS, KB, MB, TB, fmt_bandwidth, fmt_bytes,
                         fmt_time, harmonic_mean)


class TestConstants:
    def test_binary_sizes_chain(self):
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_decimal_bandwidth(self):
        assert GBPS == 1e9


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert fmt_bytes(512) == "512.00 B"
        assert fmt_bytes(1536) == "1.50 KiB"
        assert fmt_bytes(3 * GB) == "3.00 GiB"
        assert fmt_bytes(2 * TB) == "2.00 TiB"

    def test_fmt_time_scales(self):
        assert fmt_time(2.0) == "2.000 s"
        assert fmt_time(3e-3) == "3.000 ms"
        assert fmt_time(4e-6) == "4.000 us"
        assert fmt_time(5e-9) == "5.0 ns"

    def test_fmt_bandwidth_decimal(self):
        assert fmt_bandwidth(25 * GBPS) == "25.0 GB/s"


class TestHarmonicMean:
    def test_single_value(self):
        assert harmonic_mean([3.0]) == pytest.approx(3.0)

    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=32))
    def test_bounded_by_min_and_max(self, values):
        mean = harmonic_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(st.floats(min_value=0.1, max_value=1e6),
           st.integers(min_value=1, max_value=16))
    def test_constant_list_is_identity(self, value, count):
        assert harmonic_mean([value] * count) == pytest.approx(value)
