"""Integration tests: suite execution, renderings, CLI, and cache.

Small two-cell suites keep the unit-level assertions fast; the golden
snapshot and the cross-process cache test run the shipped quick suite
(the same slice CI smokes via ``python -m repro claims --quick``).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios.claims import at_least, ratio_at_least
from repro.scenarios.cli import main as claims_cli
from repro.scenarios.dsl import DesignSpec, Scenario, WorkloadSpec
from repro.scenarios.paper import paper_suite
from repro.scenarios.runner import ClaimSuite, run_suite
from repro.scenarios.verdict import (Status, render_csv, render_json,
                                     render_text)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _scenario(name, design="mc-hbm", **kwargs):
    return Scenario(name=name, system=DesignSpec(design, **kwargs),
                    workload=WorkloadSpec(network="AlexNet"))


def _tiny_suite():
    return ClaimSuite(
        name="tiny",
        scenarios=(_scenario("dc", "dc"), _scenario("mc")),
        claims=(
            ratio_at_least("mc-wins", "iteration_time",
                           numerators=("dc",), denominators=("mc",),
                           threshold=1.0, strict=True),
            at_least("impossible", "iteration_time",
                     scenarios=("dc",), bound=1e9),
        ))


def _failing_factory(quick=False):
    """A suite whose single claim can never hold (CI exit-code probe)."""
    return ClaimSuite(
        name="doomed", scenarios=(_scenario("mc"),),
        claims=(at_least("impossible", "iteration_time",
                         scenarios=("mc",), bound=1e9),))


class TestRunSuite:
    @pytest.fixture(scope="class")
    def report(self):
        return run_suite(_tiny_suite())

    def test_verdicts_in_claim_order(self, report):
        assert [v.claim for v in report.verdicts] \
            == ["mc-wins", "impossible"]
        assert report.verdict("mc-wins").status is Status.PASS
        assert report.verdict("impossible").status is Status.FAIL
        assert not report.ok
        assert report.counts == {"PASS": 1, "FAIL": 1, "ERROR": 0}

    def test_fingerprints_cover_every_scenario(self, report):
        names = [name for name, _ in report.fingerprints]
        assert names == ["dc", "mc"]
        assert all(len(fp) == 64 for _, fp in report.fingerprints)
        assert report.n_cells == 2

    def test_renderings_agree_on_verdicts(self, report):
        text = render_text(report)
        assert "mc-wins" in text and "FAIL" in text
        assert report.summary() in text
        rows = render_csv(report).strip().splitlines()
        assert rows[0].startswith("claim,status,")
        assert len(rows) == 3
        payload = json.loads(render_json(report))
        assert payload["counts"] == report.counts
        assert set(payload["scenarios"]) == {"dc", "mc"}

    def test_failed_cell_errors_its_claims_only(self):
        # The bogus factory kwarg kills one cell; the claim that binds
        # it reports ERROR while the healthy cell's claim still PASSes.
        suite = ClaimSuite(
            name="half-broken",
            scenarios=(_scenario("ok"),
                       _scenario("broken",
                                 overrides=(("bogus_kwarg", 1),))),
            claims=(
                at_least("healthy", "iteration_time",
                         scenarios=("ok",), bound=0.0),
                at_least("doomed", "iteration_time",
                         scenarios=("broken",), bound=0.0),
            ))
        report = run_suite(suite)
        assert report.verdict("healthy").status is Status.PASS
        doomed = report.verdict("doomed")
        assert doomed.status is Status.ERROR
        assert "'broken' failed" in doomed.detail


class TestSuiteValidation:
    def test_duplicate_scenarios(self):
        with pytest.raises(ValueError, match="duplicate scenario"):
            ClaimSuite(name="s",
                       scenarios=(_scenario("a"), _scenario("a")),
                       claims=())

    def test_duplicate_claims(self):
        claim = at_least("c", "iteration_time", scenarios=("a",),
                         bound=0.0)
        with pytest.raises(ValueError, match="duplicate claim"):
            ClaimSuite(name="s", scenarios=(_scenario("a"),),
                       claims=(claim, claim))

    def test_undeclared_scenario(self):
        claim = at_least("c", "iteration_time",
                         scenarios=("a", "ghost"), bound=0.0)
        with pytest.raises(ValueError, match="ghost"):
            ClaimSuite(name="s", scenarios=(_scenario("a"),),
                       claims=(claim,))


class TestGolden:
    def test_quick_suite_scalars(self, golden):
        report = run_suite(paper_suite(quick=True))
        golden.check("claims", report.scalars())


class TestCli:
    def test_failing_claim_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "verdicts.json"
        rc = claims_cli(["--no-cache", "--format", "json",
                         "-o", str(out)],
                        suite_factory=_failing_factory)
        assert rc == 1
        payload = json.loads(out.read_text())
        assert payload["counts"]["FAIL"] == 1
        assert "1 FAIL" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        assert claims_cli(["--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_list_prints_fingerprints(self, capsys):
        rc = claims_cli(["--quick", "--list"])
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.strip().splitlines()
        suite = paper_suite(quick=True)
        assert len(lines) == len(suite.scenarios)
        fingerprint, name = lines[0].split(maxsplit=1)
        assert suite.scenario(name).fingerprint() == fingerprint

    def test_cache_round_trip_in_process(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["--format", "csv", "--cache-dir", str(cache_dir)]
        rc = claims_cli(argv, suite_factory=_failing_factory)
        cold = capsys.readouterr()
        rc2 = claims_cli(argv, suite_factory=_failing_factory)
        warm = capsys.readouterr()
        assert rc == rc2 == 1
        assert "0 cached" in cold.err
        assert "1 cached" in warm.err
        assert cold.out == warm.out


@pytest.mark.integration
class TestCrossProcessCache:
    """Scenario-lowered cells replay byte-identically from the shared
    campaign cache across fresh interpreter processes (acceptance
    criterion: two cold runs, one cache, byte-identical JSON)."""

    def _run(self, cache_dir: Path, out: Path) -> str:
        result = subprocess.run(
            [sys.executable, "-m", "repro", "claims", "--quick",
             "--format", "json", "--cache-dir", str(cache_dir),
             "-o", str(out)],
            capture_output=True, text=True, timeout=600,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
        assert result.returncode == 0, result.stderr
        return result.stderr

    def test_replay_is_byte_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first_out = tmp_path / "first.json"
        second_out = tmp_path / "second.json"
        first_log = self._run(cache_dir, first_out)
        assert "0 cached" in first_log
        second_log = self._run(cache_dir, second_out)
        assert "0 cached" not in second_log
        assert first_out.read_bytes() == second_out.read_bytes()
        payload = json.loads(first_out.read_text())
        assert payload["counts"]["FAIL"] == 0
        assert payload["counts"]["ERROR"] == 0
