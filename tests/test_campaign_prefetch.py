"""Prefetch cells in the campaign engine: grid, cache keys, CLI,
cross-process byte identity, and the golden policy-study snapshot."""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (CampaignPoint, ResultCache, prefetch_grid,
                            run_campaign)
from repro.campaign.cli import main as campaign_cli
from repro.core.design_points import design_point
from repro.vmem.prefetch import PREFETCH_POLICY_ORDER

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Module state a factory can bake into its configs without the point
#: axes noticing -- the historical cache-drift scenario.
_BAKED = {"policy": "on-demand"}


def baked_factory(name, **kwargs):
    """A factory whose behavior depends on module state, not axes."""
    return dataclasses.replace(design_point(name, **kwargs),
                               prefetch_policy=_BAKED["policy"])


class TestPrefetchGrid:
    def test_shape_and_labels(self):
        points = prefetch_grid(("DC-DLA", "MC-DLA(B)"), ("AlexNet",),
                               ("on-demand", "clairvoyant"))
        assert len(points) == 4
        assert {p.label for p in points} == {
            "DC-DLA|on-demand", "MC-DLA(B)|on-demand",
            "DC-DLA|clairvoyant", "MC-DLA(B)|clairvoyant"}
        for point in points:
            assert dict(point.replacements)["prefetch_policy"] \
                in ("on-demand", "clairvoyant")

    def test_policy_lands_in_describe(self):
        point = prefetch_grid(("DC-DLA",), ("AlexNet",),
                              ("stride",))[0]
        description = point.describe()
        assert ["prefetch_policy", "stride"] \
            in description["replacements"]

    def test_policy_variants_key_distinct_cache_entries(self,
                                                        tmp_path):
        cache = ResultCache(tmp_path, code_version="pinned")
        keys = {
            cache.key(point.describe(design_point), "factory")
            for point in prefetch_grid(
                ("MC-DLA(B)",), ("AlexNet",), PREFETCH_POLICY_ORDER)}
        assert len(keys) == len(PREFETCH_POLICY_ORDER)


class TestConfigFingerprintKeys:
    """Regression: bench cache keys must cover the built config.

    A factory that bakes state the point axes do not carry (here the
    module-level ``_BAKED_POLICY``) used to key identically across
    that state -- a stale cached result for one prefetch policy would
    silently replay as another's.  Keying on ``describe(factory)``
    (the full config fingerprint) makes the entries distinct.
    """

    def test_key_tracks_factory_behavior(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="pinned")
        point = CampaignPoint("MC-DLA(B)", "AlexNet", batch=64)
        old = _BAKED["policy"]
        try:
            _BAKED["policy"] = "on-demand"
            key_a = cache.key(point.describe(baked_factory), "f")
            _BAKED["policy"] = "clairvoyant"
            key_b = cache.key(point.describe(baked_factory), "f")
        finally:
            _BAKED["policy"] = old
        assert key_a != key_b

    def test_no_stale_replay_across_policies(self, tmp_path):
        point = CampaignPoint("MC-DLA(B)", "VGG-E", batch=64)
        cache = ResultCache(tmp_path / "cache")
        old = _BAKED["policy"]
        try:
            _BAKED["policy"] = "on-demand"
            first = run_campaign([point], cache=cache,
                                 factory=baked_factory)
            first.raise_failures()
            assert first.cached_count == 0
            _BAKED["policy"] = "clairvoyant"
            second = run_campaign([point], cache=cache,
                                  factory=baked_factory)
            second.raise_failures()
            # The flipped factory must MISS the cache, not replay the
            # on-demand numbers.
            assert second.cached_count == 0
            a = first.outcomes[0].result
            b = second.outcomes[0].result
            assert a.prefetch.policy == "on-demand"
            assert b.prefetch.policy == "clairvoyant"
            assert b.prefetch.stall_seconds \
                < a.prefetch.stall_seconds
            # And replaying with the same state is still a hit.
            third = run_campaign([point], cache=cache,
                                 factory=baked_factory)
            assert third.cached_count == 1
            assert third.outcomes[0].result == b
        finally:
            _BAKED["policy"] = old

    def test_unbuildable_point_is_isolated_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good = CampaignPoint("MC-DLA(B)", "AlexNet", batch=64)
        bad = CampaignPoint("MC-DLA(B)", "AlexNet", batch=64,
                            replacements=(("prefetch_policy",
                                           "no-such-policy"),),
                            label="bad")
        report = run_campaign([good, bad], cache=cache)
        assert report.outcomes[0].ok
        assert not report.outcomes[1].ok
        assert "no-such-policy" in report.outcomes[1].error


class TestPrefetchCampaignCli:
    def test_prefetch_axis_json(self, tmp_path, capsys):
        out = tmp_path / "prefetch.json"
        code = campaign_cli([
            "--designs", "MC-DLA(B)", "--networks", "AlexNet",
            "--strategies", "data",
            "--prefetch-policies", "on-demand,clairvoyant",
            "--no-cache", "--quiet", "--format", "json",
            "-o", str(out)])
        assert code == 0
        rows = json.loads(out.read_text())
        assert len(rows) == 2
        by_policy = {r["prefetch_policy"]: r for r in rows}
        assert set(by_policy) == {"on-demand", "clairvoyant"}
        assert by_policy["clairvoyant"]["stall_seconds"] \
            <= by_policy["on-demand"]["stall_seconds"]
        for row in rows:
            assert 0.0 <= row["prefetch_hit_rate"] <= 1.0
            assert row["prefetch"]["policy"] == row["prefetch_policy"]

    def test_unknown_policy_rejected(self, capsys):
        code = campaign_cli(["--prefetch-policies", "belady",
                             "--no-cache", "--quiet"])
        assert code == 2
        assert "unknown prefetch policy" in capsys.readouterr().err

    def test_csv_has_prefetch_columns(self, tmp_path):
        out = tmp_path / "prefetch.csv"
        code = campaign_cli([
            "--designs", "MC-DLA(B)", "--networks", "AlexNet",
            "--strategies", "data",
            "--prefetch-policies", "stride",
            "--no-cache", "--quiet", "--format", "csv",
            "-o", str(out)])
        assert code == 0
        header = out.read_text().splitlines()[0].split(",")
        for column in ("prefetch_policy", "stall_seconds",
                       "prefetch_hit_rate", "wasted_prefetch_bytes",
                       "prefetch_evictions"):
            assert column in header


class TestCrossProcessByteIdentity:
    """The new axis caches and replays byte-identically across two
    fresh interpreter processes (the satellite's exact scenario)."""

    def _run(self, cache_dir: Path, out: Path) -> str:
        result = subprocess.run(
            [sys.executable, "-m", "repro", "campaign",
             "--designs", "DC-DLA,MC-DLA(B)",
             "--networks", "AlexNet", "--strategies", "data",
             "--prefetch-policies", "on-demand,clairvoyant,stride",
             "--cache-dir", str(cache_dir), "--quiet",
             "--format", "json", "-o", str(out)],
            capture_output=True, text=True, timeout=600,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
        assert result.returncode == 0, result.stderr
        return result.stderr

    def test_replay_is_byte_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first_out = tmp_path / "first.json"
        second_out = tmp_path / "second.json"
        first_log = self._run(cache_dir, first_out)
        assert "6 cells: 0 from cache, 6 simulated" in first_log
        second_log = self._run(cache_dir, second_out)
        assert "6 cells: 6 from cache, 0 simulated" in second_log
        cold = json.loads(first_out.read_text())
        warm = json.loads(second_out.read_text())
        for rows in (cold, warm):
            for row in rows:
                row.pop("cached")  # hit/miss differs by design
        assert json.dumps(cold, sort_keys=True) \
            == json.dumps(warm, sort_keys=True)


@pytest.mark.golden
def test_prefetch_comparison_golden(golden):
    """Key scalars of the quick policy study, pinned."""
    from repro.experiments.prefetch_comparison import (
        run_prefetch_comparison)
    study = run_prefetch_comparison(modes=("training",),
                                    training_network="AlexNet")
    golden.check("prefetch", study.scalars())
