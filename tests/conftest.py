"""Shared test fixtures: golden-snapshot comparison machinery.

``pytest --update-golden`` refreshes every ``tests/golden/*.json``
snapshot instead of asserting against it; a normal run compares each
experiment's key scalars against the committed snapshot so refactors
cannot silently drift the paper's numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Relative tolerance for float comparison: tight enough to catch any
#: modelling change, loose enough to survive benign float-summation
#: reorderings across Python versions.
GOLDEN_RTOL = 1e-9


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json snapshots from the current "
             "code instead of asserting against them")


class GoldenComparator:
    """Loads, compares, and (on demand) rewrites golden snapshots."""

    def __init__(self, update: bool) -> None:
        self.update = update

    def check(self, name: str, scalars: dict) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        if self.update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(scalars, indent=2,
                                       sort_keys=True) + "\n")
            return
        if not path.exists():
            pytest.fail(
                f"missing golden snapshot {path.name}; run "
                f"`pytest --update-golden` once and commit the file")
        golden = json.loads(path.read_text())
        assert sorted(golden) == sorted(scalars), (
            f"{name}: scalar key set changed; rerun --update-golden "
            f"if intentional")
        for key in sorted(golden):
            expected, actual = golden[key], scalars[key]
            if isinstance(expected, float) and isinstance(actual, float):
                assert actual == pytest.approx(expected,
                                               rel=GOLDEN_RTOL), (
                    f"{name}[{key}] drifted: "
                    f"golden {expected!r} != current {actual!r}")
            else:
                assert actual == expected, (
                    f"{name}[{key}] drifted: "
                    f"golden {expected!r} != current {actual!r}")


@pytest.fixture(scope="session")
def golden(request) -> GoldenComparator:
    return GoldenComparator(
        update=request.config.getoption("--update-golden"))
