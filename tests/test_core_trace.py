"""Tests for the timeline trace exporter and bar renderers."""

import json

import pytest

from repro.core.design_points import dc_dla
from repro.core.schedule import build_iteration_ops, plan_iteration
from repro.core.timeline import EngineKind, OpList, run_timeline
from repro.core.trace import (engine_utilization, to_chrome_trace,
                              to_records)
from repro.dnn.registry import build_network
from repro.experiments.report import format_bars, format_stacked_bars
from repro.training.parallel import ParallelStrategy


@pytest.fixture(scope="module")
def alexnet_timeline():
    config = dc_dla()
    plan = plan_iteration(build_network("AlexNet"), config, 64,
                          ParallelStrategy.DATA)
    return run_timeline(build_iteration_ops(plan, config))


class TestRecords:
    def test_records_sorted_and_complete(self, alexnet_timeline):
        records = to_records(alexnet_timeline)
        assert len(records) == len(alexnet_timeline.scheduled)
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)
        first = records[0]
        assert set(first) == {"uid", "tag", "engine", "start", "finish",
                              "duration", "nbytes"}

    def test_durations_consistent(self, alexnet_timeline):
        for r in to_records(alexnet_timeline):
            assert r["finish"] == pytest.approx(r["start"]
                                                + r["duration"])


class TestChromeTrace:
    def test_valid_json_with_all_engines(self, alexnet_timeline):
        doc = json.loads(to_chrome_trace(alexnet_timeline))
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(metadata) == 4  # one row per engine
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, "no duration events exported"
        for event in slices:
            assert event["dur"] > 0
            assert event["cat"] in ("compute", "migration",
                                    "collective", "other")

    def test_categories_assigned_by_tag(self, alexnet_timeline):
        doc = json.loads(to_chrome_trace(alexnet_timeline))
        by_cat = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_cat.setdefault(e["cat"], []).append(e["name"])
        assert any(n.startswith("fwd:") for n in by_cat["compute"])
        assert any(n.startswith("offload:")
                   for n in by_cat["migration"])
        assert any(n.startswith("sync-bwd:")
                   for n in by_cat["collective"])

    def test_timestamps_in_microseconds(self, alexnet_timeline):
        doc = json.loads(to_chrome_trace(alexnet_timeline))
        longest = max((e for e in doc["traceEvents"] if e["ph"] == "X"),
                      key=lambda e: e["ts"] + e["dur"])
        assert longest["ts"] + longest["dur"] == pytest.approx(
            alexnet_timeline.makespan * 1e6, rel=1e-6)


class TestUtilization:
    def test_fractions_bounded(self, alexnet_timeline):
        util = engine_utilization(alexnet_timeline)
        assert set(util) == {e.value for e in EngineKind}
        for fraction in util.values():
            assert 0.0 <= fraction <= 1.0 + 1e-9

    def test_dc_dla_is_dma_bound(self, alexnet_timeline):
        util = engine_utilization(alexnet_timeline)
        assert util["dma-out"] > util["comm"]

    def test_empty_timeline(self):
        util = engine_utilization(run_timeline(OpList()))
        assert all(v == 0.0 for v in util.values())


class TestBarRenderers:
    def test_format_bars(self):
        out = format_bars(["a", "bb"], [1.0, 0.5], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_format_bars_validation(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            format_bars(["a"], [-1.0])
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0], width=0)

    def test_format_stacked_bars(self):
        out = format_stacked_bars(["x"], [[0.5, 0.25, 0.25]], width=8)
        line = out.splitlines()[-1]
        assert line.count("#") == 4
        assert line.count("=") == 2
        assert line.count("~") == 2

    def test_format_stacked_bars_validation(self):
        with pytest.raises(ValueError):
            format_stacked_bars(["x"], [[1.0] * 5])
        with pytest.raises(ValueError):
            format_stacked_bars(["x", "y"], [[1.0]])
