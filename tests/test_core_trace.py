"""Tests for the timeline trace exporter and bar renderers."""

import json

import pytest

from repro.core.design_points import dc_dla, design_point
from repro.core.schedule import build_iteration_ops, plan_iteration
from repro.core.simulator import iteration_timeline
from repro.core.timeline import EngineKind, OpList, run_timeline
from repro.core.trace import (TAG_CATEGORIES, engine_utilization,
                              register_tag_category, tag_category,
                              to_chrome_trace, to_records)
from repro.dnn.registry import build_network
from repro.experiments.report import format_bars, format_stacked_bars
from repro.training.parallel import ParallelStrategy


@pytest.fixture(scope="module")
def alexnet_timeline():
    config = dc_dla()
    plan = plan_iteration(build_network("AlexNet"), config, 64,
                          ParallelStrategy.DATA)
    return run_timeline(build_iteration_ops(plan, config))


@pytest.fixture(scope="module")
def pipeline_timeline():
    return iteration_timeline(design_point("MC-DLA(B)"), "GPT2", 64,
                              ParallelStrategy.PIPELINE)


class TestRecords:
    def test_records_sorted_and_complete(self, alexnet_timeline):
        records = to_records(alexnet_timeline)
        assert len(records) == len(alexnet_timeline.scheduled)
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)
        first = records[0]
        assert set(first) == {"uid", "tag", "engine", "channel",
                              "start", "finish", "duration", "nbytes"}
        assert first["channel"] == 0  # SPMD timelines stay on channel 0

    def test_durations_consistent(self, alexnet_timeline):
        for r in to_records(alexnet_timeline):
            assert r["finish"] == pytest.approx(r["start"]
                                                + r["duration"])


class TestChromeTrace:
    def test_valid_json_with_all_engines(self, alexnet_timeline):
        doc = json.loads(to_chrome_trace(alexnet_timeline))
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(metadata) == 4  # one row per engine
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, "no duration events exported"
        for event in slices:
            assert event["dur"] > 0
            assert event["cat"] in ("compute", "migration",
                                    "collective", "other")

    def test_categories_assigned_by_tag(self, alexnet_timeline):
        doc = json.loads(to_chrome_trace(alexnet_timeline))
        by_cat = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_cat.setdefault(e["cat"], []).append(e["name"])
        assert any(n.startswith("fwd:") for n in by_cat["compute"])
        assert any(n.startswith("offload:")
                   for n in by_cat["migration"])
        assert any(n.startswith("sync-bwd:")
                   for n in by_cat["collective"])

    def test_timestamps_in_microseconds(self, alexnet_timeline):
        doc = json.loads(to_chrome_trace(alexnet_timeline))
        longest = max((e for e in doc["traceEvents"] if e["ph"] == "X"),
                      key=lambda e: e["ts"] + e["dur"])
        assert longest["ts"] + longest["dur"] == pytest.approx(
            alexnet_timeline.makespan * 1e6, rel=1e-6)


class TestCategories:
    def test_known_prefixes(self):
        assert tag_category("fwd:conv1") == "compute"
        assert tag_category("offload:conv1") == "migration"
        assert tag_category("sync-dw:s3") == "collective"
        assert tag_category("send-act:s0>s1:m2") == "pipeline"
        assert tag_category("send-grad:s1>s0:m2") == "pipeline"
        assert tag_category("bubble:s4") == "bubble"

    def test_unknown_prefix_falls_back_to_other(self):
        assert tag_category("warp-drive:x") == "other"
        with pytest.raises(KeyError, match="register_tag_category"):
            tag_category("warp-drive:x", strict=True)

    def test_register_tag_category(self):
        register_tag_category("zb-w", "compute")
        try:
            assert tag_category("zb-w:s0:m1", strict=True) == "compute"
        finally:
            del TAG_CATEGORIES["zb-w"]

    def test_register_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            register_tag_category("has:colon", "compute")
        with pytest.raises(ValueError):
            register_tag_category("", "compute")
        with pytest.raises(ValueError):
            register_tag_category("ok", "")


class TestPipelineTrace:
    def test_rows_per_stage(self, pipeline_timeline):
        doc = json.loads(to_chrome_trace(pipeline_timeline))
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(metadata) == 8 * 4  # 8 stages x 4 engines
        names = {e["args"]["name"] for e in metadata}
        assert "stage0/compute" in names
        assert "stage7/dma-in" in names

    def test_pipeline_categories_present(self, pipeline_timeline):
        doc = json.loads(to_chrome_trace(pipeline_timeline))
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"compute", "migration", "pipeline"} <= cats
        assert "other" not in cats

    def test_bubble_events_fill_compute_gaps(self, pipeline_timeline):
        doc = json.loads(to_chrome_trace(pipeline_timeline,
                                         include_bubbles=True))
        bubbles = [e for e in doc["traceEvents"]
                   if e["cat"] == "bubble"]
        assert bubbles
        assert all(e["dur"] > 0 for e in bubbles)
        plain = json.loads(to_chrome_trace(pipeline_timeline))
        assert not [e for e in plain["traceEvents"]
                    if e["cat"] == "bubble"]

    def test_fleet_average_utilization_bounded(self, pipeline_timeline):
        util = engine_utilization(pipeline_timeline)
        for fraction in util.values():
            assert 0.0 <= fraction <= 1.0 + 1e-9


class TestTraceCli:
    def test_writes_trace_json(self, tmp_path, capsys):
        from repro.__main__ import main
        out = tmp_path / "iter.trace.json"
        code = main(["trace", "MC-DLA(B)", "GPT2", "--batch", "32",
                     "--strategy", "pipeline", "-o", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert any(e["cat"] == "bubble" for e in doc["traceEvents"])

    def test_rejects_unknown_design_and_network(self, capsys):
        from repro.__main__ import main
        assert main(["trace", "NOPE", "GPT2"]) == 2
        assert "unknown design" in capsys.readouterr().err
        assert main(["trace", "DC-DLA", "NOPE"]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestUtilization:
    def test_fractions_bounded(self, alexnet_timeline):
        util = engine_utilization(alexnet_timeline)
        assert set(util) == {e.value for e in EngineKind}
        for fraction in util.values():
            assert 0.0 <= fraction <= 1.0 + 1e-9

    def test_dc_dla_is_dma_bound(self, alexnet_timeline):
        util = engine_utilization(alexnet_timeline)
        assert util["dma-out"] > util["comm"]

    def test_empty_timeline(self):
        util = engine_utilization(run_timeline(OpList()))
        assert all(v == 0.0 for v in util.values())

    def test_per_channel_matches_fleet_average(self, pipeline_timeline):
        per = engine_utilization(pipeline_timeline, per_channel=True)
        channels = pipeline_timeline.channels
        assert set(per) == {f"{engine.value}[{channel}]"
                            for channel in channels
                            for engine in EngineKind}
        fleet = engine_utilization(pipeline_timeline)
        for engine in EngineKind:
            mean = (sum(per[f"{engine.value}[{c}]"] for c in channels)
                    / len(channels))
            assert mean == pytest.approx(fleet[engine.value])

    def test_per_channel_spmd_collapses_to_fleet(self,
                                                 alexnet_timeline):
        per = engine_utilization(alexnet_timeline, per_channel=True)
        fleet = engine_utilization(alexnet_timeline)
        assert per == {f"{engine.value}[0]": fleet[engine.value]
                       for engine in EngineKind}

    def test_per_channel_empty_timeline(self):
        per = engine_utilization(run_timeline(OpList()),
                                 per_channel=True)
        assert all(v == 0.0 for v in per.values())


class TestBarRenderers:
    def test_format_bars(self):
        out = format_bars(["a", "bb"], [1.0, 0.5], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_format_bars_validation(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            format_bars(["a"], [-1.0])
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0], width=0)

    def test_format_stacked_bars(self):
        out = format_stacked_bars(["x"], [[0.5, 0.25, 0.25]], width=8)
        line = out.splitlines()[-1]
        assert line.count("#") == 4
        assert line.count("=") == 2
        assert line.count("~") == 2

    def test_format_stacked_bars_validation(self):
        with pytest.raises(ValueError):
            format_stacked_bars(["x"], [[1.0] * 5])
        with pytest.raises(ValueError):
            format_stacked_bars(["x", "y"], [[1.0]])
