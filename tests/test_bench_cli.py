"""Tests of ``python -m repro bench`` (the perf-baseline harness)."""

from __future__ import annotations

import json

import pytest

from repro import bench


@pytest.fixture
def fake_suites(monkeypatch):
    """Replace the real workloads with instant deterministic fakes."""
    calls = []

    def fake(quick: bool) -> dict[str, float]:
        calls.append(quick)
        return ({"tiny-quick": 0.040} if quick
                else {"big-cold": 0.200, "big-scalar": 1.0})

    monkeypatch.setattr(bench, "_SUITE_FNS",
                        {name: fake for name in bench.SUITES})
    monkeypatch.setattr(bench, "calibration_spin", lambda: 0.010)
    monkeypatch.setattr(bench, "_time",
                        lambda fn, *, cold: fn() if callable(fn) else fn)
    return calls


class TestCalibration:
    def test_spin_is_positive_and_repeatable(self):
        a = bench.calibration_spin()
        b = bench.calibration_spin()
        assert a > 0 and b > 0
        assert min(a, b) / max(a, b) > 0.2  # same order of magnitude

    def test_bench_path_naming(self, tmp_path):
        assert (bench.bench_path("campaign", tmp_path)
                == tmp_path / "BENCH_campaign.json")


class TestCheckSection:
    BASE = {"entries": {
        "fast": {"seconds": 0.100, "normalized": 10.0},
        "tiny": {"seconds": 0.001, "normalized": 0.1}}}

    def test_within_tolerance_passes(self):
        current = {"entries": {
            "fast": {"seconds": 0.110, "normalized": 11.0}}}
        assert bench.check_section("s", "full", current, self.BASE) == []

    def test_real_regression_fails(self):
        current = {"entries": {
            "fast": {"seconds": 0.150, "normalized": 15.0}}}
        problems = bench.check_section("s", "full", current, self.BASE)
        assert len(problems) == 1 and "fast" in problems[0]

    def test_spin_jitter_alone_does_not_fail(self):
        # Normalized inflated (slow spin) but raw seconds steady.
        current = {"entries": {
            "fast": {"seconds": 0.102, "normalized": 15.0}}}
        assert bench.check_section("s", "full", current, self.BASE) == []

    def test_noise_floor_exempts_sub_ms_entries(self):
        current = {"entries": {
            "tiny": {"seconds": 0.003, "normalized": 0.3}}}
        assert bench.check_section("s", "full", current, self.BASE) == []

    def test_new_entries_are_ignored(self):
        current = {"entries": {
            "brand-new": {"seconds": 9.0, "normalized": 900.0}}}
        assert bench.check_section("s", "full", current, self.BASE) == []


class TestMain:
    def test_unknown_suite_is_rejected(self, capsys):
        assert bench.main(["--suites", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_update_writes_all_baselines(self, fake_suites, tmp_path):
        rc = bench.main(["--update", "--root", str(tmp_path)])
        assert rc == 0
        for suite in bench.SUITES:
            doc = json.loads(bench.bench_path(suite, tmp_path).read_text())
            assert set(doc) >= {"suite", "calibration_seconds",
                                "full", "quick"}
            assert doc["full"]["speedup"] == 5.0  # 1.0 / 0.200
            assert "tiny-quick" in doc["quick"]["entries"]

    def test_check_passes_against_own_baseline(self, fake_suites,
                                               tmp_path):
        assert bench.main(["--update", "--root", str(tmp_path)]) == 0
        assert bench.main(["--quick", "--root", str(tmp_path)]) == 0
        assert bench.main(["--root", str(tmp_path)]) == 0

    def test_missing_baseline_fails(self, fake_suites, tmp_path):
        assert bench.main(["--quick", "--root", str(tmp_path)]) == 1

    def test_doctored_baseline_fails(self, fake_suites, tmp_path,
                                     capsys):
        bench.main(["--update", "--root", str(tmp_path)])
        for suite in bench.SUITES:
            path = bench.bench_path(suite, tmp_path)
            doc = json.loads(path.read_text())
            for section in ("full", "quick"):
                for cell in doc[section]["entries"].values():
                    cell["seconds"] /= 3
                    cell["normalized"] /= 3
            path.write_text(json.dumps(doc))
        assert bench.main(["--quick", "--root", str(tmp_path)]) == 1
        assert "FAILED" in capsys.readouterr().err
