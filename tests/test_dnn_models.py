"""Tests for the eight Table III benchmark networks.

Layer counts, parameter counts, and arithmetic are checked against the
published figures of each network's defining paper.
"""

import pytest

from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind
from repro.dnn.models.rnn import RNN_SPECS, build_rnn
from repro.dnn.registry import (BENCHMARK_NAMES, CNN_NAMES, RNN_NAMES,
                                all_benchmarks, benchmark_info,
                                build_network)


class TestRegistry:
    def test_eight_benchmarks_in_paper_order(self):
        assert BENCHMARK_NAMES == ("AlexNet", "GoogLeNet", "VGG-E",
                                   "ResNet", "RNN-GEMV", "RNN-LSTM-1",
                                   "RNN-LSTM-2", "RNN-GRU")
        assert len(CNN_NAMES) == 4 and len(RNN_NAMES) == 4

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            benchmark_info("LeNet")
        with pytest.raises(KeyError):
            build_network("LeNet")

    def test_builders_cached(self):
        assert build_network("AlexNet") is build_network("AlexNet")

    def test_applications_match_table_iii(self):
        assert benchmark_info("RNN-GEMV").application \
            == "Speech recognition"
        assert benchmark_info("RNN-LSTM-1").application \
            == "Machine translation"
        assert benchmark_info("RNN-LSTM-2").application \
            == "Language modeling"

    def test_all_benchmarks_validate(self):
        for info in all_benchmarks():
            net = build_network(info.name)
            assert isinstance(net, Network)
            net.validate()


class TestLearnedLayerCounts:
    """Table III's '# of layers' column."""

    @pytest.mark.parametrize("name,count", [
        ("AlexNet", 8), ("GoogLeNet", 58), ("VGG-E", 19), ("ResNet", 34),
    ])
    def test_cnn_layer_counts(self, name, count):
        assert build_network(name).learned_layer_count == count

    @pytest.mark.parametrize("name,timesteps", [
        ("RNN-GEMV", 50), ("RNN-LSTM-1", 25), ("RNN-LSTM-2", 25),
        ("RNN-GRU", 187),
    ])
    def test_rnn_timesteps(self, name, timesteps):
        net = build_network(name)
        cells = [l for l in net.layers if l.is_recurrent]
        assert len(cells) == timesteps


class TestParameterCounts:
    def test_alexnet_params_near_61m(self):
        params = build_network("AlexNet").weight_bytes() / 4
        assert 56e6 < params < 62e6  # 61M with biases; we omit biases

    def test_vgg19_params_near_143m(self):
        params = build_network("VGG-E").weight_bytes() / 4
        assert 138e6 < params < 145e6

    def test_googlenet_params_near_7m(self):
        params = build_network("GoogLeNet").weight_bytes() / 4
        assert 5.5e6 < params < 8e6

    def test_resnet34_params_near_21m(self):
        params = build_network("ResNet").weight_bytes() / 4
        assert 20e6 < params < 23e6

    def test_fc_dominates_alexnet_weights(self):
        net = build_network("AlexNet")
        fc = sum(l.weight_elems for l in net.layers
                 if l.kind is LayerKind.FC)
        assert fc > 0.9 * net.weight_bytes() / 4


class TestArithmetic:
    def test_vgg19_fwd_macs_near_19_6g(self):
        macs = build_network("VGG-E").fwd_macs(1)
        assert 19e9 < macs < 20.5e9

    def test_resnet34_fwd_macs_near_3_6g(self):
        macs = build_network("ResNet").fwd_macs(1)
        assert 3.4e9 < macs < 3.9e9

    def test_alexnet_fwd_macs_near_0_7g(self):
        macs = build_network("AlexNet").fwd_macs(1)
        assert 0.6e9 < macs < 0.8e9

    def test_googlenet_fwd_macs_near_1_5g(self):
        macs = build_network("GoogLeNet").fwd_macs(1)
        assert 1.3e9 < macs < 1.8e9


class TestCnnStructure:
    def test_feature_maps_dominate_cnn_memory(self):
        # Section V-A: CNN feature maps, not weights, dominate training
        # memory at realistic batch sizes.
        for name in CNN_NAMES:
            net = build_network(name)
            assert net.feature_map_bytes(512) > 4 * net.weight_bytes()

    def test_vgg_footprint_exceeds_device_memory(self):
        # The memory capacity wall: VGG-E at batch 512 cannot fit in a
        # 16 GB device (Section II-B's motivation).
        footprint = build_network("VGG-E").training_footprint_bytes(512)
        assert footprint > 16 * (1024 ** 3)

    def test_resnet_has_residual_adds(self):
        net = build_network("ResNet")
        adds = [l for l in net.layers if l.kind is LayerKind.ELTWISE]
        assert len(adds) == 16  # one per basic block

    def test_googlenet_has_nine_inception_concats(self):
        net = build_network("GoogLeNet")
        concats = [l for l in net.layers if l.kind is LayerKind.CONCAT]
        assert len(concats) == 9


class TestRnnStructure:
    def test_weights_dominate_rnn_memory_per_sample(self):
        # Section V-A: recurrent layers are weight-heavy.
        for name in ("RNN-LSTM-2",):
            net = build_network(name)
            assert net.weight_bytes() > net.feature_map_bytes(1)

    def test_cells_share_one_weight_group(self):
        net = build_network("RNN-GRU")
        groups = {l.weight_group for l in net.layers if l.is_recurrent}
        assert len(groups) == 1

    def test_per_timestep_inputs(self):
        spec = RNN_SPECS["RNN-GEMV"]
        net = build_rnn(spec)
        inputs = [l for l in net.layers if l.kind is LayerKind.INPUT]
        assert len(inputs) == spec.timesteps

    def test_lstm_state_includes_gates_and_cell(self):
        spec = RNN_SPECS["RNN-LSTM-1"]
        assert spec.state_elems == 6 * spec.hidden
        assert spec.gates == 4

    def test_gru_gate_multiplier(self):
        spec = RNN_SPECS["RNN-GRU"]
        assert spec.gates == 3
        assert spec.state_elems == 4 * spec.hidden

    def test_lstm2_weights_exceed_1gb(self):
        # The big language-model LSTM synchronizes >1 GB of dW.
        assert build_network("RNN-LSTM-2").weight_bytes() > 1e9

    def test_cell_dag_is_a_chain(self):
        net = build_network("RNN-LSTM-1")
        cells = [l.name for l in net.layers if l.is_recurrent]
        for earlier, later in zip(cells, cells[1:]):
            assert earlier in net.predecessors(later)
