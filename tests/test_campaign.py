"""Tests for the campaign layer: points, cache, runner, and CLI.

The acceptance property: evaluation-matrix cells are byte-identical
whether computed serially, via the process pool, or replayed from the
on-disk cache (frozen-dataclass equality compares every float exactly,
so ``==`` is the byte-identity assertion).
"""

import json

import pytest

from repro.campaign import (CampaignError, CampaignPoint, ResultCache,
                            grid, run_campaign)
from repro.campaign.cache import code_fingerprint
from repro.campaign.cli import main as campaign_cli
from repro.campaign.points import canonicalize
from repro.core.design_points import design_point
from repro.core.metrics import SimulationResult
from repro.core.simulator import simulate
from repro.experiments.matrix import evaluation_points
from repro.interconnect.link import PCIE_GEN4
from repro.training.parallel import ParallelStrategy

SMALL_GRID = grid(("DC-DLA", "MC-DLA(B)"), ("AlexNet", "RNN-GEMV"),
                  (512,), (ParallelStrategy.DATA,))


def _lethal_factory(design, **overrides):
    """Pool-worker factory that hard-kills its process for one design
    -- the shape of an OOM kill or segfault mid-cell (module-level so
    pool workers can unpickle it)."""
    if design == "MC-DLA(B)":
        import os
        os._exit(1)
    return design_point(design, **overrides)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestPoints:
    def test_grid_shape_and_order(self):
        points = grid(("DC-DLA",), ("AlexNet", "VGG-E"), (256, 512),
                      (ParallelStrategy.DATA, ParallelStrategy.MODEL))
        assert len(points) == 4 * 2
        assert points[0].strategy is ParallelStrategy.DATA
        assert points[-1].strategy is ParallelStrategy.MODEL
        assert points[0].batch == 256

    def test_build_config_with_overrides_and_replacements(self):
        point = CampaignPoint(
            "DC-DLA", "AlexNet",
            overrides=(("pcie", PCIE_GEN4),),
            replacements=(("offload_window", 4),))
        config = point.build_config()
        assert config.offload_window == 4
        assert config.vmem.channel.peak_bw \
            == pytest.approx(PCIE_GEN4.uni_bw)

    def test_label_defaults_to_design(self):
        point = CampaignPoint("DC-DLA", "AlexNet")
        assert point.name == "DC-DLA"
        assert CampaignPoint("DC-DLA", "AlexNet", label="x").name == "x"

    def test_canonicalize_is_json_stable(self):
        payload = canonicalize((("pcie", PCIE_GEN4),
                                ("strategy", ParallelStrategy.DATA)))
        assert json.dumps(payload) == json.dumps(payload)
        assert "__dataclass__" in json.dumps(payload)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            CampaignPoint("DC-DLA", "AlexNet", batch=0)


class TestSerialization:
    def test_json_round_trip_is_exact(self):
        result = simulate(design_point("DC-DLA"), "AlexNet", 512,
                          ParallelStrategy.DATA)
        replayed = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert replayed == result
        assert replayed.breakdown == result.breakdown

    def test_strategy_survives(self):
        result = simulate(design_point("MC-DLA(B)"), "RNN-GEMV", 512,
                          ParallelStrategy.MODEL)
        replayed = SimulationResult.from_dict(result.to_dict())
        assert replayed.strategy is ParallelStrategy.MODEL


class TestCache:
    def test_miss_then_hit(self, cache):
        first = run_campaign(SMALL_GRID, cache=cache)
        assert all(not o.cached for o in first.outcomes)
        assert len(cache) == len(SMALL_GRID)
        second = run_campaign(SMALL_GRID, cache=cache)
        assert all(o.cached for o in second.outcomes)
        assert second.results == first.results

    def test_code_version_invalidates_and_prunes(self, tmp_path):
        old = ResultCache(tmp_path, code_version="v-old")
        new = ResultCache(tmp_path, code_version="v-new")
        run_campaign(SMALL_GRID[:1], cache=old)
        assert old.generation_root.is_dir()
        report = run_campaign(SMALL_GRID[:1], cache=new)
        assert not report.outcomes[0].cached
        # The first write of the new generation prunes the old one.
        assert not old.generation_root.exists()
        assert len(new) == 1

    def test_corrupt_entry_is_a_miss(self, cache):
        run_campaign(SMALL_GRID[:1], cache=cache)
        (entry,) = cache.generation_root.glob("*/*.json")
        entry.write_text("{not json")
        report = run_campaign(SMALL_GRID[:1], cache=cache)
        assert not report.outcomes[0].cached
        assert report.outcomes[0].ok

    def test_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestRunner:
    def test_serial_pool_and_replay_are_byte_identical(self, cache):
        """The acceptance criterion, on the paper's full grid."""
        points = evaluation_points(512)
        serial = run_campaign(points, jobs=1)
        pooled = run_campaign(points, jobs=2, cache=cache)
        replayed = run_campaign(points, jobs=1, cache=cache)
        assert all(o.cached for o in replayed.outcomes)
        assert serial.results == pooled.results
        assert serial.results == replayed.results

    def test_failing_cell_does_not_kill_the_sweep(self):
        bad = CampaignPoint("DC-DLA", "AlexNet",
                            replacements=(("offload_window", 0),),
                            label="broken")
        report = run_campaign(SMALL_GRID + (bad,))
        assert len(report.failures) == 1
        assert "windows must be >= 1" in report.failures[0].error
        assert sum(o.ok for o in report.outcomes) == len(SMALL_GRID)
        with pytest.raises(CampaignError):
            report.raise_failures()

    def test_failing_cell_in_pool(self):
        bad = CampaignPoint("DC-DLA", "AlexNet",
                            replacements=(("offload_window", 0),),
                            label="broken")
        report = run_campaign(SMALL_GRID + (bad,), jobs=2)
        assert len(report.failures) == 1
        assert sum(o.ok for o in report.outcomes) == len(SMALL_GRID)

    def test_worker_death_recovers_surviving_cells(self):
        """Regression: a worker hard-exit breaks the whole pool, so
        every in-flight cell sees ``BrokenProcessPool``.  Innocent
        cells must still produce their (byte-identical) results; only
        the cell that kills its private retry worker again is failed,
        with a clear error."""
        points = grid(("DC-DLA", "HC-DLA", "MC-DLA(B)"), ("AlexNet",),
                      (256,), (ParallelStrategy.DATA,))
        report = run_campaign(points, jobs=2, factory=_lethal_factory)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.point.design == "MC-DLA(B)"
        assert "worker process died" in failure.error
        assert "MC-DLA(B)" in failure.error
        survivors = [o for o in report.outcomes if o.ok]
        assert len(survivors) == 2
        healthy = run_campaign([o.point for o in survivors])
        assert {o.point.key: o.result
                for o in survivors} == healthy.results

    def test_duplicate_keys_rejected(self):
        clash = CampaignPoint("DC-DLA", "AlexNet", label="x")
        other = CampaignPoint("MC-DLA(B)", "AlexNet", label="x")
        with pytest.raises(ValueError, match="unique label"):
            run_campaign((clash, other))

    def test_result_lookup(self):
        report = run_campaign(SMALL_GRID)
        result = report.result("DC-DLA", "AlexNet", 512,
                               ParallelStrategy.DATA)
        assert result.system == "DC-DLA"
        with pytest.raises(KeyError):
            report.result("DC-DLA", "nope", 512, ParallelStrategy.DATA)

    def test_progress_callback(self):
        seen = []
        run_campaign(SMALL_GRID,
                     progress=lambda o, done, total:
                     seen.append((done, total)))
        assert seen == [(i + 1, len(SMALL_GRID))
                        for i in range(len(SMALL_GRID))]


class TestCli:
    def test_json_output(self, tmp_path, capsys):
        code = campaign_cli([
            "--designs", "DC-DLA", "--networks", "AlexNet",
            "--strategies", "data", "--no-cache", "--format", "json",
            "--quiet"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["design"] == "DC-DLA"
        assert rows[0]["iteration_time"] > 0

    def test_second_run_hits_cache(self, tmp_path, capsys):
        argv = ["--designs", "MC-DLA(B)", "--networks", "RNN-GEMV",
                "--strategies", "data", "--cache-dir",
                str(tmp_path / "c"), "--quiet"]
        assert campaign_cli(argv) == 0
        first = capsys.readouterr().err
        assert "0 from cache, 1 simulated" in first
        assert campaign_cli(argv) == 0
        second = capsys.readouterr().err
        assert "1 from cache, 0 simulated" in second

    def test_csv_output_to_file(self, tmp_path):
        out = tmp_path / "grid.csv"
        code = campaign_cli([
            "--designs", "DC-DLA", "--networks", "AlexNet",
            "--strategies", "data", "--no-cache", "--format", "csv",
            "--output", str(out), "--quiet"])
        assert code == 0
        header, row = out.read_text().strip().splitlines()
        assert header.startswith("design,network,batch,strategy")
        assert row.startswith("DC-DLA,AlexNet,512,data-parallel")

    def test_unknown_design_rejected(self, capsys):
        assert campaign_cli(["--designs", "NOPE"]) == 2
        assert "unknown design" in capsys.readouterr().err


class TestMatrixIntegration:
    def test_matrix_via_cache_matches_uncached(self, tmp_path):
        from repro.experiments.matrix import compute_evaluation_matrix
        cache = ResultCache(tmp_path / "m")
        fresh = compute_evaluation_matrix(512)
        warmed = compute_evaluation_matrix(512, cache=cache)
        replayed = compute_evaluation_matrix(512, jobs=2, cache=cache)
        assert fresh.results == warmed.results
        assert fresh.results == replayed.results
