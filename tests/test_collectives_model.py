"""Tests for the ring-algorithm latency models (paper Figure 9)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives.multi_ring import (RingChannel, stripe_bytes,
                                          striped_collective_time)
from repro.collectives.ring_algorithm import (CollectiveSpec, Primitive,
                                              all_gather_time,
                                              all_reduce_time,
                                              broadcast_time,
                                              collective_time)
from repro.units import GBPS, KB, MB

BW = 50 * GBPS
#: Idealized spec (no fixed latencies) for algebraic identities.
IDEAL = CollectiveSpec(hop_latency=0.0, chunk_overhead=0.0)


class TestAnalyticForms:
    def test_all_reduce_is_twice_all_gather(self):
        for n in (2, 4, 8, 16):
            ar = all_reduce_time(n, 8 * MB, BW, IDEAL)
            ag = all_gather_time(n, 8 * MB, BW, IDEAL)
            assert ar == pytest.approx(2 * ag)

    def test_all_reduce_ideal_closed_form(self):
        # 2 (n-1)/n * S / B.
        n, size = 8, 8 * MB
        expected = 2 * (n - 1) / n * size / BW
        assert all_reduce_time(n, size, BW, IDEAL) == pytest.approx(expected)

    def test_broadcast_pipelines(self):
        # Pipelined broadcast costs ~S/B regardless of ring length.
        t8 = broadcast_time(8, 8 * MB, BW, IDEAL)
        t32 = broadcast_time(32, 8 * MB, BW, IDEAL)
        assert t32 < 1.05 * t8

    def test_mc_dla_16_vs_8_overhead_near_7_percent(self):
        t8 = all_reduce_time(8, 8 * MB, BW, IDEAL)
        t16 = all_reduce_time(16, 8 * MB, BW, IDEAL)
        assert t16 / t8 == pytest.approx((30 / 16) / (14 / 8))
        assert t16 / t8 - 1 == pytest.approx(0.0714, abs=1e-3)

    def test_small_messages_penalize_long_rings(self):
        # With per-hop latency, a 16-node ring hurts at 4 KB ...
        spec = CollectiveSpec()
        small_ratio = all_reduce_time(16, 4 * KB, BW, spec) \
            / all_reduce_time(8, 4 * KB, BW, spec)
        big_ratio = all_reduce_time(16, 8 * MB, BW, spec) \
            / all_reduce_time(8, 8 * MB, BW, spec)
        # ... much more than at the 8 MB synchronization size.
        assert small_ratio > 1.5
        assert big_ratio < 1.15

    def test_zero_bytes_is_free(self):
        for primitive in Primitive:
            assert collective_time(primitive, 8, 0, BW) == 0.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            all_gather_time(1, MB, BW)
        with pytest.raises(ValueError):
            all_reduce_time(4, -1, BW)
        with pytest.raises(ValueError):
            broadcast_time(4, MB, 0)
        with pytest.raises(ValueError):
            CollectiveSpec(chunk_bytes=0)


class TestMonotonicity:
    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=1, max_value=256))
    def test_time_monotone_in_message_size(self, n, size_mb):
        for primitive in Primitive:
            smaller = collective_time(primitive, n, size_mb * MB, BW)
            larger = collective_time(primitive, n, 2 * size_mb * MB, BW)
            assert larger > smaller

    @given(st.integers(min_value=2, max_value=32),
           st.integers(min_value=1, max_value=64))
    def test_time_monotone_in_ring_size_ideal(self, n, size_mb):
        for primitive in Primitive:
            t_n = collective_time(primitive, n, size_mb * MB, BW, IDEAL)
            t_2n = collective_time(primitive, 2 * n, size_mb * MB, BW,
                                   IDEAL)
            assert t_2n >= t_n * 0.999

    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=1, max_value=64))
    def test_doubling_bandwidth_halves_ideal_time(self, n, size_mb):
        t1 = all_reduce_time(n, size_mb * MB, BW, IDEAL)
        t2 = all_reduce_time(n, size_mb * MB, 2 * BW, IDEAL)
        assert t1 == pytest.approx(2 * t2)


class TestMultiRing:
    def test_stripe_proportional_to_bandwidth(self):
        channels = [RingChannel(8, BW), RingChannel(8, BW / 2)]
        shares = stripe_bytes(channels, 9 * MB)
        assert shares[0] == pytest.approx(6 * MB)
        assert shares[1] == pytest.approx(3 * MB)

    def test_balanced_striping_matches_single_fat_ring(self):
        # Three equal rings carrying S/3 each == one ring at 3x rate.
        channels = [RingChannel(8, BW)] * 3
        striped = striped_collective_time(Primitive.ALL_REDUCE, channels,
                                          9 * MB, IDEAL)
        fat = all_reduce_time(8, 9 * MB, 3 * BW, IDEAL)
        assert striped == pytest.approx(fat)

    def test_slowest_ring_bottlenecks(self):
        balanced = [RingChannel(8, BW)] * 3
        unbalanced = [RingChannel(8, BW), RingChannel(12, BW),
                      RingChannel(20, BW)]
        t_bal = striped_collective_time(Primitive.ALL_REDUCE, balanced,
                                        24 * MB)
        t_unb = striped_collective_time(Primitive.ALL_REDUCE, unbalanced,
                                        24 * MB)
        assert t_unb > t_bal

    def test_zero_bytes_free(self):
        assert striped_collective_time(Primitive.BROADCAST,
                                       [RingChannel(8, BW)], 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            stripe_bytes([], MB)
        with pytest.raises(ValueError):
            RingChannel(1, BW)
        with pytest.raises(ValueError):
            RingChannel(8, 0.0)
        with pytest.raises(ValueError):
            striped_collective_time(Primitive.BROADCAST,
                                    [RingChannel(8, BW)], -5)
