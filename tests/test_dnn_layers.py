"""Tests for repro.dnn.layers."""

import pytest

from repro.dnn.layers import (CHEAP_KINDS, RECURRENT_KINDS, WEIGHTED_KINDS,
                              Layer, LayerKind)
from repro.dnn.shapes import Gemm
from repro.units import FP32_BYTES


def conv_layer(out_elems=100, weight_elems=64):
    return Layer(name="conv", kind=LayerKind.CONV, out_elems=out_elems,
                 weight_elems=weight_elems,
                 gemms=(Gemm(10, 10, 8, m_per_sample=True),))


class TestLayerValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Layer(name="", kind=LayerKind.ACT, out_elems=1)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            Layer(name="x", kind=LayerKind.ACT, out_elems=-1)

    def test_rejects_weights_on_unweighted_kind(self):
        with pytest.raises(ValueError):
            Layer(name="pool", kind=LayerKind.POOL, out_elems=4,
                  weight_elems=2)

    def test_weighted_kinds_accept_weights(self):
        for kind in WEIGHTED_KINDS:
            Layer(name="w", kind=kind, out_elems=4, weight_elems=2)


class TestLayerTaxonomy:
    def test_cheap_kinds_are_recomputable(self):
        assert LayerKind.ACT in CHEAP_KINDS
        assert LayerKind.POOL in CHEAP_KINDS
        assert LayerKind.CONV not in CHEAP_KINDS
        assert LayerKind.LSTM_CELL not in CHEAP_KINDS

    def test_recurrent_kinds(self):
        assert RECURRENT_KINDS == {LayerKind.RNN_CELL,
                                   LayerKind.LSTM_CELL,
                                   LayerKind.GRU_CELL}

    def test_is_cheap_flag(self):
        relu = Layer(name="r", kind=LayerKind.ACT, out_elems=4,
                     stream_elems=8)
        assert relu.is_cheap
        assert not conv_layer().is_cheap


class TestLayerSizing:
    def test_out_bytes_scales_with_batch(self):
        layer = conv_layer(out_elems=100)
        assert layer.out_bytes(1) == 100 * FP32_BYTES
        assert layer.out_bytes(32) == 32 * 100 * FP32_BYTES

    def test_weight_bytes(self):
        assert conv_layer(weight_elems=64).weight_bytes == 256

    def test_fwd_macs(self):
        layer = conv_layer()
        assert layer.fwd_macs(4) == 4 * 10 * 10 * 8

    def test_bwd_macs_double_forward(self):
        layer = conv_layer()
        assert layer.bwd_macs(4) == 2 * layer.fwd_macs(4)

    def test_bwd_gemms_shapes(self):
        layer = conv_layer()
        fwd = layer.fwd_gemms(2)[0]
        dx, dw = layer.bwd_gemms(2)
        assert (dx.m, dx.n, dx.k) == (fwd.m, fwd.k, fwd.n)
        assert (dw.m, dw.n, dw.k) == (fwd.k, fwd.n, fwd.m)
        assert dx.macs == dw.macs == fwd.macs

    def test_stream_bytes(self):
        relu = Layer(name="r", kind=LayerKind.ACT, out_elems=4,
                     stream_elems=8)
        assert relu.fwd_stream_bytes(16) == 8 * 16 * FP32_BYTES

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            conv_layer().out_bytes(0)
        with pytest.raises(ValueError):
            conv_layer().fwd_macs(-1)
