"""Integration tests: the paper's headline claims, end to end.

Ported onto the claims engine (dogfooding): the evaluation-grid
assertions now live in :func:`repro.scenarios.paper.paper_training_suite`
as executable claims, and this module just runs the suite and asserts
every verdict is PASS.  One parametrized test per claim keeps failures
as granular as the old hand-rolled asserts, and each failure message
carries the measured statistic, the claimed relation, the margin, and
the worst offending cell -- strictly more informative than a bare
``assert a > b``.
"""

import pytest

from repro.scenarios.paper import paper_training_suite
from repro.scenarios.runner import run_suite
from repro.scenarios.verdict import Status, render_text

pytestmark = pytest.mark.integration

_SUITE = paper_training_suite()


@pytest.fixture(scope="module")
def report():
    return run_suite(_SUITE)


@pytest.mark.parametrize("claim",
                         [claim.name for claim in _SUITE.claims])
def test_claim_passes(report, claim):
    verdict = report.verdict(claim)
    assert verdict.status is Status.PASS, (
        f"{verdict.claim}: {verdict.status.value} "
        f"(measured {verdict.measured!r}, expected "
        f"{verdict.expected}, margin {verdict.margin!r}"
        f"{'; ' + verdict.detail if verdict.detail else ''})")


def test_whole_grid_passes(report):
    # Belt and braces: the rendered verdict table names any claim the
    # parametrization above would also catch, and guards against a
    # suite whose claim list shrank by accident.
    assert len(report.verdicts) >= 20
    assert report.ok, "\n" + render_text(report)


def test_grid_covers_the_paper_matrix(report):
    # 6 designs x 8 workloads x 2 strategies, simulated once each.
    assert report.n_cells == 96
