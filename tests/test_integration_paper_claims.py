"""Integration tests: the paper's headline claims, end to end.

These run the full stack (workload -> partition -> migration plan ->
schedule -> timeline) and check the *shape* of the paper's results:
who wins, by roughly what factor, and where the crossovers fall.
"""

import pytest

from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.simulator import simulate
from repro.dnn.registry import BENCHMARK_NAMES, CNN_NAMES
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def grid():
    configs = {name: design_point(name) for name in DESIGN_ORDER}
    results = {}
    for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
        for network in BENCHMARK_NAMES:
            for name, config in configs.items():
                results[(name, network, strategy)] = simulate(
                    config, network, 512, strategy)
    return results


def speedups(grid, design, strategy, networks=BENCHMARK_NAMES):
    return [grid[("DC-DLA", n, strategy)].iteration_time
            / grid[(design, n, strategy)].iteration_time
            for n in networks]


class TestHeadlineSpeedups:
    def test_overall_mean_near_2_8x(self, grid):
        pooled = []
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            pooled.extend(speedups(grid, "MC-DLA(B)", strategy))
        mean = harmonic_mean(pooled)
        assert 2.0 < mean < 3.8  # paper: 2.8x

    def test_data_parallel_gains_exceed_model_parallel(self, grid):
        dp = harmonic_mean(speedups(grid, "MC-DLA(B)",
                                    ParallelStrategy.DATA))
        mp = harmonic_mean(speedups(grid, "MC-DLA(B)",
                                    ParallelStrategy.MODEL))
        assert dp > mp > 1.5  # paper: 3.5x vs 2.1x

    def test_every_workload_benefits(self, grid):
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            for s in speedups(grid, "MC-DLA(B)", strategy):
                assert s > 1.4

    def test_hc_dla_helps_on_average_but_less(self, grid):
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            hc = harmonic_mean(speedups(grid, "HC-DLA", strategy))
            mc = harmonic_mean(speedups(grid, "MC-DLA(B)", strategy))
            assert mc > hc
        assert harmonic_mean(
            speedups(grid, "HC-DLA", ParallelStrategy.DATA)) > 1.0


class TestDesignOrdering:
    def test_bw_aware_beats_local_beats_star(self, grid):
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            b = harmonic_mean(speedups(grid, "MC-DLA(B)", strategy))
            l = harmonic_mean(speedups(grid, "MC-DLA(L)", strategy))
            s = harmonic_mean(speedups(grid, "MC-DLA(S)", strategy))
            assert b > l > s

    def test_local_close_to_bw_aware(self, grid):
        # Paper: MC-DLA(L) reaches ~96% of MC-DLA(B).
        pooled_b, pooled_l = [], []
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            pooled_b.extend(speedups(grid, "MC-DLA(B)", strategy))
            pooled_l.extend(speedups(grid, "MC-DLA(L)", strategy))
        ratio = harmonic_mean(pooled_l) / harmonic_mean(pooled_b)
        assert 0.85 < ratio < 1.0

    def test_oracle_bounds_everything(self, grid):
        for (design, network, strategy), result in grid.items():
            oracle = grid[("DC-DLA(O)", network, strategy)]
            assert result.iteration_time \
                >= oracle.iteration_time - 1e-12

    def test_mc_dla_b_within_reach_of_oracle(self, grid):
        fracs = []
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            for network in BENCHMARK_NAMES:
                mc = grid[("MC-DLA(B)", network, strategy)]
                oracle = grid[("DC-DLA(O)", network, strategy)]
                fracs.append(oracle.iteration_time / mc.iteration_time)
        assert harmonic_mean(fracs) > 0.8  # paper: 95% average
        assert max(fracs) > 0.95


class TestBottleneckStructure:
    def test_dc_dla_is_vmem_bound_on_most_workloads(self, grid):
        vmem_bound = 0
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            for network in BENCHMARK_NAMES:
                b = grid[("DC-DLA", network, strategy)].breakdown
                if b.vmem > b.compute + b.sync:
                    vmem_bound += 1
        assert vmem_bound >= 10  # paper: 14 of 16

    def test_dc_dla_has_cheapest_sync(self, grid):
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            for network in BENCHMARK_NAMES:
                dc = grid[("DC-DLA", network, strategy)].breakdown.sync
                for design in ("HC-DLA", "MC-DLA(S)", "MC-DLA(B)"):
                    other = grid[(design, network,
                                  strategy)].breakdown.sync
                    assert dc <= other + 1e-12

    def test_mc_dla_never_touches_host_memory(self, grid):
        for design in ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)",
                       "DC-DLA(O)"):
            for strategy in (ParallelStrategy.DATA,
                             ParallelStrategy.MODEL):
                for network in BENCHMARK_NAMES:
                    r = grid[(design, network, strategy)]
                    assert r.host_traffic_bytes_per_device == 0

    def test_cnn_footprints_exceed_device_memory(self, grid):
        # The capacity wall that motivates virtualization (Section II).
        for network in ("VGG-E", "ResNet", "GoogLeNet"):
            r = grid[("DC-DLA", network, ParallelStrategy.DATA)]
            assert not r.fits_in_device_memory

    def test_byte_conservation_across_designs(self, grid):
        # Offloaded bytes depend on the workload, not on the design.
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            for network in CNN_NAMES:
                sizes = {grid[(d, network, strategy)]
                         .offload_bytes_per_device
                         for d in ("DC-DLA", "HC-DLA", "MC-DLA(S)",
                                   "MC-DLA(L)", "MC-DLA(B)")}
                assert len(sizes) == 1
