"""Hypothesis metamorphic/property tests for the prefetch engine.

The issue's four properties:

* doubling pool (vmem channel) or link bandwidth never increases
  stall time;
* prefetch hit rate lies in [0, 1] (with a consistent timeliness
  histogram);
* wasted prefetch bytes are zero under the clairvoyant oracle;
* eviction never drops a tensor that is live in the current schedule
  window.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.multi_ring import RingChannel
from repro.core.design_points import design_point
from repro.core.simulator import simulate
from repro.core.system import CollectiveModel, SystemConfig
from repro.interconnect.builders import VmemChannel
from repro.vmem.prefetch import (PREFETCH_POLICY_ORDER, FetchSite,
                                 PrefetchContext, choose_victim,
                                 prefetch_policy)

DESIGNS = ("DC-DLA", "HC-DLA", "MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)")

designs = st.sampled_from(DESIGNS)
networks = st.sampled_from(["AlexNet", "GoogLeNet", "RNN-LSTM-1"])
policies = st.sampled_from(PREFETCH_POLICY_ORDER)
batches = st.sampled_from([64, 256])
scales = st.sampled_from([2.0, 3.0, 8.0])


def with_policy(config: SystemConfig, policy: str) -> SystemConfig:
    return dataclasses.replace(config, prefetch_policy=policy)


def scale_vmem_bandwidth(config: SystemConfig,
                         factor: float) -> SystemConfig:
    """The same design with a ``factor``-times-faster pool channel."""
    channel = config.vmem.channel
    faster = VmemChannel(channel.target,
                         peak_bw=channel.peak_bw * factor,
                         concurrent_bw=channel.concurrent_bw * factor)
    return dataclasses.replace(
        config, vmem=dataclasses.replace(config.vmem, channel=faster))


def scale_link_bandwidth(config: SystemConfig,
                         factor: float) -> SystemConfig:
    """The same design with ``factor``-times-faster collective rings."""
    channels = tuple(RingChannel(size=c.size,
                                 bandwidth=c.bandwidth * factor)
                     for c in config.collectives.channels)
    return dataclasses.replace(
        config, collectives=CollectiveModel(
            channels=channels, spec=config.collectives.spec))


class TestBandwidthMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(designs, networks, policies, scales)
    def test_faster_pool_never_increases_stall(self, design, network,
                                               policy, factor):
        base = with_policy(design_point(design), policy)
        slow = simulate(base, network, 256)
        fast = simulate(scale_vmem_bandwidth(base, factor),
                        network, 256)
        assert fast.prefetch.stall_seconds \
            <= slow.prefetch.stall_seconds + 1e-12
        assert fast.iteration_time <= slow.iteration_time + 1e-12

    @settings(max_examples=10, deadline=None)
    @given(designs, networks, policies)
    def test_faster_links_never_increase_stall(self, design, network,
                                               policy):
        base = with_policy(design_point(design), policy)
        slow = simulate(base, network, 256)
        fast = simulate(scale_link_bandwidth(base, 2.0), network, 256)
        assert fast.prefetch.stall_seconds \
            <= slow.prefetch.stall_seconds + 1e-12
        assert fast.iteration_time <= slow.iteration_time + 1e-12


class TestStatsInvariants:
    @settings(max_examples=15, deadline=None)
    @given(designs, networks, policies, batches)
    def test_hit_rate_in_unit_interval(self, design, network, policy,
                                       batch):
        result = simulate(with_policy(design_point(design), policy),
                          network, batch)
        stats = result.prefetch
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.late + stats.jit + stats.early \
            == stats.n_prefetches
        assert stats.stall_seconds >= 0.0
        assert 0 <= stats.wasted_bytes <= stats.prefetch_bytes

    @settings(max_examples=10, deadline=None)
    @given(designs, networks, batches)
    def test_clairvoyant_never_wastes(self, design, network, batch):
        result = simulate(with_policy(design_point(design),
                                      "clairvoyant"), network, batch)
        assert result.prefetch.wasted_bytes == 0
        assert result.prefetch.evictions == 0


# Engine-level strategies: random-but-valid fetch contexts.


@st.composite
def contexts(draw):
    n_sites = draw(st.integers(min_value=0, max_value=40))
    steps = draw(st.lists(st.integers(min_value=0, max_value=3),
                          min_size=n_sites, max_size=n_sites))
    use_steps = []
    current = 0
    for delta in steps:
        current += delta
        use_steps.append(current)
    n_steps = (use_steps[-1] + 1) if use_steps else 1
    window = draw(st.integers(min_value=1, max_value=4))
    stash = draw(st.integers(min_value=1, max_value=6))
    nbytes = draw(st.integers(min_value=0, max_value=1 << 20))
    return PrefetchContext(
        n_steps=n_steps,
        sites=tuple(FetchSite(f"t{i}", u, nbytes)
                    for i, u in enumerate(use_steps)),
        step_seconds=tuple(1.0 for _ in range(n_steps)),
        fetch_seconds=tuple(0.5 for _ in use_steps),
        window=window, stash=stash)


class TestScheduleInvariants:
    @settings(max_examples=60, deadline=None)
    @given(contexts(), policies)
    def test_every_policy_produces_a_valid_schedule(self, ctx, policy):
        sched = prefetch_policy(policy).plan(ctx)
        assert len(sched.issues) == len(ctx.sites)
        assert sched.evictions >= 0
        for issue, site in zip(sched.issues, ctx.sites):
            assert issue.site == site
            if issue.gate_step is not None:
                assert 0 <= issue.gate_step < site.use_step
        for waste in sched.waste:
            assert 0 <= waste.before_site < len(ctx.sites)
            if waste.gate_step is not None:
                assert waste.gate_step \
                    < ctx.sites[waste.before_site].use_step

    @settings(max_examples=60, deadline=None)
    @given(contexts())
    def test_stride_eviction_accounting_balances(self, ctx):
        sched = prefetch_policy("stride").plan(ctx)
        refetches = [i for i in sched.issues if i.refetch]
        evict_waste = [w for w in sched.waste
                       if w.label.startswith("evict:")]
        assert len(refetches) == sched.evictions == len(evict_waste)
        # An evicted tensor is re-fetched on demand, never dropped.
        for issue in refetches:
            assert issue.gate_step == issue.site.use_step - 1 \
                or (issue.gate_step is None
                    and issue.site.use_step == 0)

    @settings(max_examples=60, deadline=None)
    @given(contexts())
    def test_clairvoyant_clean_on_any_context(self, ctx):
        sched = prefetch_policy("clairvoyant").plan(ctx)
        assert sched.wasted_bytes == 0
        assert sched.evictions == 0
        assert all(i.gate_step is None for i in sched.issues)


class TestEvictionLiveWindow:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=0, max_size=12),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=1, max_value=8))
    def test_victim_is_never_live(self, uses, frontier, window):
        residents = [FetchSite(f"t{i}", u, 1)
                     for i, u in enumerate(uses)]
        victim = choose_victim(residents, frontier, window)
        evictable = [s for s in residents
                     if s.use_step > frontier + window]
        if victim is None:
            # None only when nothing is safely evictable.
            assert not evictable
        else:
            site = residents[victim]
            assert site.use_step > frontier + window
            # Belady among evictables: the furthest future use.
            assert site.use_step \
                == max(s.use_step for s in evictable)
