"""Unit tests: the scenario DSL and its lowering onto campaign points."""

import pytest

from repro.campaign.points import canonical_fingerprint
from repro.core.design_points import design_point
from repro.scenarios.dsl import (DesignSpec, FleetSpec, Scenario,
                                 TrafficSpec, WorkloadSpec)
from repro.scenarios.lowering import (PIM_INTERNAL_AMPLIFICATION,
                                      composite_device, lower_scenario,
                                      pim_bandwidth_scale,
                                      scenario_design_point, with_pim)
from repro.training.parallel import ParallelStrategy
from repro.units import TB


def _training(name="s", design="mc-hbm", network="AlexNet", **kwargs):
    return Scenario(name=name, system=DesignSpec(design),
                    workload=WorkloadSpec(network=network), **kwargs)


class TestDesignSpec:
    def test_resolves_aliases(self):
        assert DesignSpec("mc-hbm").design == "MC-DLA(B)"
        assert DesignSpec("oracle").design == "DC-DLA(O)"

    def test_unknown_design_raises(self):
        with pytest.raises(KeyError, match="unknown design"):
            DesignSpec("TPU-pod")

    def test_overrides_sorted_and_scalar_only(self):
        spec = DesignSpec("dc", overrides=(("n_devices", 4),
                                           ("compression", 2.0)))
        assert spec.overrides == (("compression", 2.0),
                                  ("n_devices", 4))
        with pytest.raises(ValueError, match="JSON scalar"):
            DesignSpec("dc", overrides=(("device", object()),))

    def test_device_mix_canonicalized(self):
        spec = DesignSpec("mc-hbm",
                          device_mix=(("volta", 4), ("pascal", 4)))
        assert spec.device_mix == (("Pascal", 4), ("Volta", 4))

    def test_device_mix_rejects_duplicates_and_bad_counts(self):
        with pytest.raises(ValueError, match="repeats"):
            DesignSpec("mc-hbm",
                       device_mix=(("Volta", 4), ("volta", 4)))
        with pytest.raises(ValueError, match="positive"):
            DesignSpec("mc-hbm", device_mix=(("Volta", 0),))
        with pytest.raises(KeyError, match="unknown generation"):
            DesignSpec("mc-hbm", device_mix=(("Ampere", 8),))

    def test_pim_fraction_bounds(self):
        with pytest.raises(ValueError, match="pim_fraction"):
            DesignSpec("mc-hbm", pim_fraction=1.0)
        with pytest.raises(ValueError, match="pim_fraction"):
            DesignSpec("mc-hbm", pim_fraction=-0.1)


class TestScenarioValidation:
    def test_workload_names_resolve(self):
        s = _training(network="bert")
        assert s.workload.network == "BERT-Large"

    def test_fault_aliases_resolve(self):
        assert _training(fault_model="flaky").fault_model \
            == "flaky-link"
        assert _training(fault_model="healthy").fault_model == "none"

    def test_traffic_and_fleet_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            Scenario(name="s", system=DesignSpec("dc"),
                     workload=WorkloadSpec(network="GPT2"),
                     traffic=TrafficSpec(), fleet=FleetSpec())

    def test_fleet_excludes_workload(self):
        with pytest.raises(ValueError, match="own job"):
            Scenario(name="s", system=DesignSpec("dc"),
                     workload=WorkloadSpec(network="AlexNet"),
                     fleet=FleetSpec())

    def test_needs_workload_or_fleet(self):
        with pytest.raises(ValueError, match="needs a workload"):
            Scenario(name="s", system=DesignSpec("dc"))

    def test_unknown_prefetch_policy(self):
        with pytest.raises(ValueError, match="prefetch"):
            _training(prefetch_policy="psychic")

    def test_mode(self):
        assert _training().mode == "training"
        assert Scenario(name="s", system=DesignSpec("dc"),
                        workload=WorkloadSpec(network="GPT2"),
                        traffic=TrafficSpec()).mode == "serving"
        assert Scenario(name="s", system=DesignSpec("dc"),
                        fleet=FleetSpec()).mode == "cluster"


class TestRoundTrip:
    SCENARIOS = [
        _training(),
        _training(fault_model="storm", prefetch_policy="clairvoyant"),
        Scenario(name="hetero",
                 system=DesignSpec("mc-hbm", pim_fraction=0.25,
                                   device_mix=(("Pascal", 4),
                                               ("Volta", 4))),
                 workload=WorkloadSpec(network="VGG-E", batch=256,
                                       strategy="pipeline",
                                       microbatches=4,
                                       schedule="gpipe")),
        Scenario(name="serve", system=DesignSpec("dc"),
                 workload=WorkloadSpec(network="GPT2"),
                 traffic=TrafficSpec(rate=800.0, batcher="continuous",
                                     max_wait_ms=0.0)),
        Scenario(name="fleet",
                 system=DesignSpec("mc-s", overrides=(("n_devices", 4),)),
                 fleet=FleetSpec(policy="sjf", n_jobs=8,
                                 pool_capacity=1 * TB,
                                 preempt_after=30.0)),
    ]

    @pytest.mark.parametrize("scenario", SCENARIOS,
                             ids=lambda s: s.name)
    def test_to_from_dict_exact(self, scenario):
        data = scenario.to_dict()
        rebuilt = Scenario.from_dict(data)
        assert rebuilt == scenario
        assert rebuilt.to_dict() == data

    def test_fingerprint_distinguishes_every_field(self):
        base = _training()
        assert base.fingerprint() == _training().fingerprint()
        for other in (_training(network="VGG-E"),
                      _training(design="dc"),
                      _training(fault_model="storm"),
                      _training(prefetch_policy="stride"),
                      *self.SCENARIOS[2:]):
            assert other.fingerprint() != base.fingerprint()

    def test_fingerprint_matches_canonical_image(self):
        s = _training()
        assert s.fingerprint() == canonical_fingerprint(s)


class TestLowering:
    def test_training_point(self):
        point = lower_scenario(_training(name="cell"))
        assert point.label == "cell"
        assert point.key == ("cell", "AlexNet", 512,
                             ParallelStrategy.DATA)
        assert point.build_config(scenario_design_point).name \
            == "MC-DLA(B)"

    def test_fault_and_prefetch_ride_in_replacements(self):
        point = lower_scenario(_training(
            fault_model="storm", prefetch_policy="stride"))
        config = point.build_config(scenario_design_point)
        assert config.fault_model == "storm"
        assert config.prefetch_policy == "stride"

    def test_pipeline_knobs(self):
        s = Scenario(name="pp", system=DesignSpec("dc"),
                     workload=WorkloadSpec(network="GPT2", batch=64,
                                           strategy="pipeline",
                                           microbatches=4,
                                           schedule="gpipe"))
        point = lower_scenario(s)
        assert point.strategy is ParallelStrategy.PIPELINE
        config = point.build_config(scenario_design_point)
        assert config.pipeline_schedule == "gpipe"
        assert config.pipeline_microbatches == 4

    def test_serving_point(self):
        s = Scenario(name="sv", system=DesignSpec("mc-hbm"),
                     workload=WorkloadSpec(network="GPT2"),
                     traffic=TrafficSpec(rate=200.0, slo_ms=40.0,
                                         max_wait_ms=2.0))
        point = lower_scenario(s)
        assert point.is_serving
        knobs = dict(point.serving)
        assert knobs["rate"] == 200.0
        assert knobs["slo"] == 0.04
        assert knobs["max_wait"] == 0.002

    def test_cluster_point(self):
        s = Scenario(name="cl", system=DesignSpec("mc-hbm"),
                     fleet=FleetSpec(n_jobs=8, pool_capacity=1 * TB))
        point = lower_scenario(s)
        assert point.is_cluster
        knobs = dict(point.cluster)
        assert knobs["n_jobs"] == 8
        assert knobs["pool_capacity"] == 1 * TB
        assert point.network == "mix:balanced"

    def test_cache_keys_distinguish_dsl_axes(self):
        plain = lower_scenario(_training(name="x"))
        pim = lower_scenario(Scenario(
            name="x", system=DesignSpec("mc-hbm", pim_fraction=0.25),
            workload=WorkloadSpec(network="AlexNet")))
        assert canonical_fingerprint(
            plain.describe(scenario_design_point)) \
            != canonical_fingerprint(pim.describe(scenario_design_point))


class TestCompositeDevice:
    def test_worst_member_gates_every_resource(self):
        mix = (("Kepler", 4), ("Volta", 4))
        device = composite_device(mix)
        assert device.name == "mix(Keplerx4+Voltax4)"
        # Kepler loses on MACs, bandwidth, and capacity alike.
        assert device.pe_array.peak_macs_per_sec \
            == composite_device((("Kepler", 8),)).pe_array.peak_macs_per_sec
        assert device.hbm.bandwidth == 288e9
        assert device.hbm.capacity \
            == composite_device((("Kepler", 1),)).hbm.capacity

    def test_fleet_width_is_sum_of_counts(self):
        config = scenario_design_point(
            "MC-DLA(B)", device_mix=(("Pascal", 2), ("Volta", 2)))
        assert config.n_devices == 4

    def test_homogeneous_mix_equals_generation(self):
        mixed = scenario_design_point("MC-DLA(B)",
                                      device_mix=(("Volta", 8),))
        assert mixed.device.pe_array \
            == design_point("MC-DLA(B)").device.pe_array


class TestPim:
    def test_scale_identity_at_zero(self):
        assert pim_bandwidth_scale(0.0, 900e9, 2048e9) == 1.0

    def test_scale_peaks_at_knee(self):
        hbm, pim = 900e9, 2048e9
        knee = pim / (pim + hbm)
        at_knee = pim_bandwidth_scale(knee, hbm, pim)
        assert at_knee > pim_bandwidth_scale(knee - 0.1, hbm, pim)
        assert at_knee > pim_bandwidth_scale(min(knee + 0.2, 0.99),
                                             hbm, pim)

    def test_pim_requires_memory_node(self):
        with pytest.raises(ValueError, match="memory-node"):
            scenario_design_point("DC-DLA", pim_fraction=0.25)

    def test_pim_scales_device_bandwidth(self):
        base = design_point("MC-DLA(B)")
        pim = with_pim(base, 0.5)
        node_bw = base.memory_node.memory_bandwidth
        expected = pim_bandwidth_scale(
            0.5, base.device.hbm.bandwidth,
            node_bw * PIM_INTERNAL_AMPLIFICATION)
        assert pim.device.hbm.bandwidth \
            == pytest.approx(base.device.hbm.bandwidth * expected)
