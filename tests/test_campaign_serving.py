"""Serving cells in the campaign engine: grid, cache, CLI, hash seeds."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (CampaignPoint, ResultCache, run_campaign,
                            serving_grid)
from repro.campaign.cli import main as campaign_cli
from repro.campaign.points import canonicalize

SRC = str(Path(__file__).resolve().parent.parent / "src")


def small_serving_grid():
    return serving_grid(("DC-DLA", "MC-DLA(B)"), ("GPT2",),
                        (200.0, 800.0), n_requests=64)


class TestServingGrid:
    def test_shape_and_labels_unique(self):
        points = small_serving_grid()
        assert len(points) == 2 * 2
        labels = {p.label for p in points}
        assert len(labels) == len(points)
        assert all(p.is_serving for p in points)

    def test_serving_knobs_in_describe(self):
        point = small_serving_grid()[0]
        description = point.describe()
        served = dict(point.serving)
        assert description["serving"]
        assert served["rate"] == 200.0
        assert served["slo"] == 0.05

    def test_non_serving_point_not_serving(self):
        assert not CampaignPoint("DC-DLA", "AlexNet").is_serving

    def test_batch_policies_axis(self):
        points = serving_grid(("DC-DLA",), ("GPT2",), (100.0,),
                              batch_policies=((4, 1.0), (16, 5.0)))
        assert len(points) == 2
        assert {dict(p.serving)["max_batch"] for p in points} == {4, 16}


class TestServingCampaign:
    def test_serial_pool_and_replay_byte_identical(self, tmp_path):
        points = small_serving_grid()
        cache = ResultCache(tmp_path / "cache")
        serial = run_campaign(points).raise_failures()
        pooled = run_campaign(points, jobs=2,
                              cache=cache).raise_failures()
        replayed = run_campaign(points, cache=cache).raise_failures()
        assert replayed.cached_count == len(points)
        for a, b, c in zip(serial.outcomes, pooled.outcomes,
                           replayed.outcomes):
            assert a.result == b.result == c.result
            assert a.result.serving is not None

    def test_mixed_training_and_serving_campaign(self):
        from repro.campaign import grid
        points = grid(("DC-DLA",), ("AlexNet",)) + small_serving_grid()
        report = run_campaign(points).raise_failures()
        modes = [o.result.mode.value for o in report.outcomes]
        assert modes.count("training") == 1
        assert modes.count("serving") == 4

    def test_cli_serving_axis_json(self, tmp_path, capsys):
        out = tmp_path / "serving.json"
        code = campaign_cli([
            "--designs", "MC-DLA(B)", "--networks", "GPT2",
            "--strategies", "data", "--arrival-rates", "200",
            "--slo-ms", "50", "--batch-policies", "8x2",
            "--requests", "64", "--no-cache", "--quiet",
            "--format", "json", "-o", str(out)])
        assert code == 0
        rows = json.loads(out.read_text())
        serving_rows = [r for r in rows if r["mode"] == "serving"]
        assert len(serving_rows) == 1
        row = serving_rows[0]
        assert row["serving"]["n_requests"] == 64
        assert row["latency_p99"] >= row["latency_p50"] > 0
        assert row["goodput"] > 0

    def test_cli_rejects_bad_policy(self, capsys):
        code = campaign_cli([
            "--designs", "DC-DLA", "--networks", "GPT2",
            "--arrival-rates", "100", "--batch-policies", "eight"])
        assert code == 2
        assert "bad axis value" in capsys.readouterr().err

    def test_cli_rejects_continuous_on_non_transformers(self, capsys):
        code = campaign_cli([
            "--designs", "DC-DLA", "--networks", "AlexNet,GPT2",
            "--arrival-rates", "100", "--batcher", "continuous"])
        assert code == 2
        err = capsys.readouterr().err
        assert "continuous" in err and "AlexNet" in err

    def test_cli_table_shows_serving_metrics(self, capsys):
        code = campaign_cli([
            "--designs", "MC-DLA(B)", "--networks", "GPT2",
            "--strategies", "data", "--arrival-rates", "200",
            "--requests", "64", "--no-cache", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "p99 (ms)" in out and "SLO att." in out
        assert "req/s" in out

    def test_continuous_wait_axis_collapses(self):
        points = serving_grid(("MC-DLA(B)",), ("GPT2",), (100.0,),
                              batch_policies=((8, 1.0), (8, 10.0)),
                              batcher="continuous")
        assert len(points) == 1
        assert dict(points[0].serving)["max_wait"] == 0.0

    def test_continuous_stats_report_zero_wait(self):
        from repro.core.design_points import design_point
        from repro.serving import simulate_serving
        result = simulate_serving(
            design_point("MC-DLA(B)"), "GPT2", rate=20.0,
            n_requests=16, batcher="continuous", decode_steps=4,
            max_wait=0.010)
        assert result.serving.max_wait == 0.0


class TestHashSeedDeterminism:
    """The cache key must not depend on ``PYTHONHASHSEED``.

    ``canonicalize`` used to fall back to ``repr`` for sets, whose
    iteration order follows the process hash seed -- two runs of the
    same campaign could then key the same cell differently and never
    share cache entries.
    """

    def test_canonicalize_sorts_sets(self):
        image_a = canonicalize({"b", "a", "c", "long-string-1"})
        image_b = canonicalize({"long-string-1", "c", "a", "b"})
        assert image_a == image_b
        assert image_a == {"__set__": ['"a"', '"b"', '"c"',
                                       '"long-string-1"']} \
            or image_a["__set__"] == sorted(image_a["__set__"])

    def test_canonicalize_frozenset_and_nested(self):
        nested = {"k": frozenset({3, 1, 2})}
        assert canonicalize(nested) == canonicalize(
            {"k": frozenset({2, 3, 1})})

    def test_cache_key_stable_across_hash_seeds(self, tmp_path):
        """Regression: run the key derivation under two different
        ``PYTHONHASHSEED`` values and demand identical digests."""
        script = (
            "import json\n"
            "from repro.campaign import CampaignPoint, ResultCache\n"
            "from repro.campaign.cache import code_fingerprint\n"
            "point = CampaignPoint('MC-DLA(B)', 'GPT2',\n"
            "    overrides=(('tags', frozenset({'a', 'b', 'c'})),),\n"
            "    serving=(('rate', 200.0), ('seed', 1)))\n"
            "cache = ResultCache('unused', code_version='pinned')\n"
            "print(json.dumps([\n"
            "    cache.key(point.describe(), 'factory'),\n"
            "    code_fingerprint()]))\n"
        )
        digests = []
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH=SRC)
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            digests.append(json.loads(proc.stdout))
        assert digests[0] == digests[1]


class TestServingComparisonExperiment:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments.serving_comparison import (
            run_serving_comparison)
        return run_serving_comparison(rates=(200.0, 800.0, 1600.0),
                                      n_requests=128)

    def test_all_cells_present(self, study):
        from repro.core.design_points import DESIGN_ORDER
        assert set(study.stats) == {(d, r) for d in DESIGN_ORDER
                                    for r in study.rates}

    def test_memory_centric_beats_dc_baseline_at_knee(self, study):
        """The acceptance criterion: every MC design sustains strictly
        higher goodput at its SLO knee than the DC baseline."""
        from repro.experiments.serving_comparison import MC_DESIGNS
        dc = study.knee_goodput("DC-DLA")
        for design in MC_DESIGNS:
            assert study.knee_goodput(design) > dc

    def test_oracle_upper_bounds_everyone(self, study):
        for rate in study.rates:
            oracle = study.at("DC-DLA(O)", rate)
            for design in ("DC-DLA", "MC-DLA(B)"):
                assert study.at(design, rate).latency_p50 \
                    >= oracle.latency_p50 - 1e-12

    def test_format_mentions_knee(self, study):
        from repro.experiments.serving_comparison import (
            format_serving_comparison)
        text = format_serving_comparison(study)
        assert "SLO knee per design" in text
        assert "goodput" in text
