"""Property tests of the columnar op table vs the scalar op list.

Hypothesis drives random DAG-shaped op programs through both
containers and both schedulers and holds them to exact equality:

* identical start/finish/busy/makespan for every op (bitwise float
  equality -- both schedulers walk ops in uid order and accumulate in
  the same sequence);
* stable event order: ``ops_on`` never reorders ops, even across
  equal timestamps (zero-duration ops pile up on one instant);
* ``prev_slot_finish`` is exactly the engine-slot free time the
  scheduler saw when each op was issued;
* validation parity: both containers reject the same malformed ops.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optable import (ENGINE_CODE, ColumnarTimeline, OpTable,
                                schedule_ops, schedule_table)
from repro.core.timeline import EngineKind, OpList, run_timeline

ENGINES = tuple(EngineKind)


@st.composite
def op_programs(draw):
    """A random valid op program: (engine, duration, deps, channel)."""
    n = draw(st.integers(min_value=0, max_value=40))
    program = []
    for uid in range(n):
        engine = draw(st.sampled_from(ENGINES))
        # Mix zero durations in aggressively: equal timestamps are the
        # interesting ordering case.
        duration = draw(st.one_of(
            st.just(0.0),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False)))
        deps = (draw(st.lists(st.integers(0, uid - 1), max_size=4,
                              unique=True))
                if uid else [])
        channel = draw(st.integers(min_value=0, max_value=2))
        nbytes = draw(st.integers(min_value=0, max_value=1 << 20))
        program.append((engine, duration, deps, channel, nbytes))
    return program


def build_both(program) -> tuple[OpList, OpTable]:
    op_list, table = OpList(), OpTable()
    for i, (engine, duration, deps, channel, nbytes) in enumerate(program):
        tag = f"op{i}"
        a = op_list.add(engine, duration, deps, tag, nbytes=nbytes,
                        channel=channel)
        b = table.add(engine, duration, deps, tag, nbytes=nbytes,
                      channel=channel)
        assert a == b == i
    return op_list, table


class TestSchedulerEquivalence:
    @given(op_programs())
    @settings(max_examples=100, deadline=None)
    def test_schedules_identically(self, program):
        op_list, table = build_both(program)
        ref = run_timeline(op_list)
        col = schedule_table(table)

        assert col.makespan == ref.makespan
        assert col.busy == ref.busy
        assert col.busy_per_channel == ref.busy_per_channel
        assert col.channels == ref.channels
        for uid in range(len(program)):
            assert col.finish_of(uid) == ref.finish_of(uid)
            assert col.scheduled[uid].start == ref.scheduled[uid].start

    @given(op_programs())
    @settings(max_examples=75, deadline=None)
    def test_no_reordering_across_equal_timestamps(self, program):
        """``ops_on`` preserves issue (uid) order on both cores.

        With many zero-duration ops sharing one timestamp, a sort by
        start time could legally permute them; the contract is
        stronger -- event order IS uid order, always.
        """
        op_list, table = build_both(program)
        ref = run_timeline(op_list)
        col = schedule_table(table)
        for engine in ENGINES:
            for channel in (None, 0, 1, 2):
                ref_ops = ref.ops_on(engine, channel)
                col_ops = col.ops_on(engine, channel)
                assert ([s.op.uid for s in col_ops]
                        == [s.op.uid for s in ref_ops])
                uids = [s.op.uid for s in col_ops]
                assert uids == sorted(uids)

    @given(op_programs())
    @settings(max_examples=100, deadline=None)
    def test_prev_slot_finish_matches_scheduler_state(self, program):
        """The recorded slot-free time replays the scheduler exactly."""
        _, table = build_both(program)
        col = schedule_table(table)
        slot_free: dict[tuple[EngineKind, int], float] = {}
        for uid in range(len(program)):
            engine = table.engines[uid]
            channel = table.channels[uid]
            assert (col.prev_slot_finish[uid]
                    == slot_free.get((engine, channel), 0.0))
            slot_free[(engine, channel)] = col.finish_of(uid)

    @given(op_programs())
    @settings(max_examples=60, deadline=None)
    def test_as_arrays_mirrors_columns(self, program):
        _, table = build_both(program)
        col = schedule_table(table)
        arrays = col.as_arrays()
        n = len(program)
        assert all(arrays[k].shape == (n,) for k in arrays)
        for uid in range(n):
            assert arrays["engine"][uid] == ENGINE_CODE[table.engines[uid]]
            assert arrays["duration"][uid] == table.durations[uid]
            assert arrays["start"][uid] == col.scheduled[uid].start
            assert arrays["finish"][uid] == col.finish_of(uid)
            assert arrays["nbytes"][uid] == table.nbytes[uid]
            assert arrays["channel"][uid] == table.channels[uid]


class TestContainerParity:
    def test_schedule_ops_dispatches_both(self):
        op_list, table = build_both(
            [(EngineKind.COMPUTE, 1.0, [], 0, 0),
             (EngineKind.DMA_IN, 2.0, [0], 0, 8)])
        assert isinstance(schedule_ops(table), ColumnarTimeline)
        ref = schedule_ops(op_list)
        assert ref.makespan == schedule_ops(table).makespan

    def test_validation_parity_forward_dep(self):
        for container in (OpList(), OpTable()):
            container.add(EngineKind.COMPUTE, 1.0, [], "a")
            try:
                container.add(EngineKind.COMPUTE, 1.0, [5], "b")
            except ValueError as exc:
                assert "cycle" in str(exc)
            else:  # pragma: no cover - failure path
                raise AssertionError("forward dep accepted")

    def test_validation_parity_negative_fields(self):
        for kwargs in ({"duration": -1.0}, {"nbytes": -1},
                       {"channel": -1}):
            for container in (OpList(), OpTable()):
                base = {"engine": EngineKind.COMPUTE, "duration": 1.0,
                        "deps": [], "tag": "x", "nbytes": 0,
                        "channel": 0, **kwargs}
                try:
                    container.add(base.pop("engine"),
                                  base.pop("duration"),
                                  base.pop("deps"), base.pop("tag"),
                                  **base)
                except ValueError:
                    continue
                raise AssertionError(  # pragma: no cover
                    f"{type(container).__name__} accepted {kwargs}")

    def test_lazy_ops_materialization(self):
        _, table = build_both(
            [(EngineKind.COMPUTE, 1.0, [], 0, 0),
             (EngineKind.COMM, 0.5, [0], 1, 16)])
        ops = table.ops
        assert ops is table.ops  # cached
        assert [o.uid for o in ops] == [0, 1]
        table.add(EngineKind.DMA_OUT, 0.1, [1], "late")
        assert len(table.ops) == 3  # cache invalidated by add
