"""The prefetch-comparison study and its ``repro prefetch`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as repro_main
from repro.core.design_points import DESIGN_ORDER
from repro.experiments.prefetch_comparison import (
    MC_DESIGNS, MODES, comparison_points, format_prefetch_comparison,
    run_prefetch_comparison, scalars_json)
from repro.vmem.prefetch import ON_DEMAND, PREFETCH_POLICY_ORDER


@pytest.fixture(scope="module")
def quick_study():
    return run_prefetch_comparison(modes=("training",),
                                   training_network="AlexNet")


class TestStudy:
    def test_covers_every_design_and_policy(self, quick_study):
        for design in DESIGN_ORDER:
            for policy in PREFETCH_POLICY_ORDER:
                result = quick_study.at("training", design, policy)
                assert result.prefetch.policy == policy

    def test_full_grid_shape(self):
        points = comparison_points()
        assert len(points) == (len(MODES) * len(DESIGN_ORDER)
                               * len(PREFETCH_POLICY_ORDER))
        assert len({p.label for p in points}) == len(points)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            comparison_points(modes=("training", "chaos"))

    def test_clairvoyant_strictly_reduces_stall_on_mc(self,
                                                      quick_study):
        for design in MC_DESIGNS:
            assert quick_study.stall_reduction(design) > 0.0

    def test_stall_accessors_consistent(self, quick_study):
        stall = quick_study.stall("training", "MC-DLA(B)", ON_DEMAND)
        result = quick_study.at("training", "MC-DLA(B)", ON_DEMAND)
        assert stall == result.prefetch.stall_seconds

    def test_formatting_has_tables_and_headlines(self, quick_study):
        text = format_prefetch_comparison(quick_study)
        assert "Prefetch policies x designs: training" in text
        assert "clairvoyant removes offload stall" in text
        assert "stride speculation moved" in text
        for policy in PREFETCH_POLICY_ORDER:
            assert policy in text

    def test_formatting_survives_policy_subsets(self):
        """Regression: headlines referencing on-demand/stride must not
        crash when --policies sweeps a subset without them."""
        study = run_prefetch_comparison(
            policies=("clairvoyant",), modes=("training",),
            training_network="AlexNet")
        text = format_prefetch_comparison(study)
        assert "lowest-stall policy per design" in text
        assert "removes offload stall" not in text
        assert "stride speculation" not in text

    def test_scalars_json_is_deterministic(self, quick_study):
        a = scalars_json(quick_study)
        b = scalars_json(run_prefetch_comparison(
            modes=("training",), training_network="AlexNet"))
        assert a == b


class TestPrefetchCli:
    def test_quick_json_output(self, tmp_path):
        out = tmp_path / "study.json"
        code = repro_main(["prefetch", "--quick", "--format", "json",
                           "-o", str(out)])
        assert code == 0
        scalars = json.loads(out.read_text())
        assert any(key.startswith("training/MC-DLA(B)/clairvoyant")
                   for key in scalars)

    def test_quick_table_output(self, capsys):
        assert repro_main(["prefetch", "--quick"]) == 0
        text = capsys.readouterr().out
        assert "Prefetch policies x designs: training" in text

    def test_unknown_policy_rejected(self, capsys):
        assert repro_main(["prefetch", "--policies", "belady"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_mode_rejected(self, capsys):
        assert repro_main(["prefetch", "--modes", "chaos"]) == 2
        assert "unknown mode" in capsys.readouterr().err

    def test_listed_in_usage(self, capsys):
        assert repro_main([]) == 0
        assert "prefetch" in capsys.readouterr().out
