"""Tests for parallel-training partitioning (paper Figure 3)."""

import pytest

from repro.collectives.ring_algorithm import Primitive
from repro.dnn.registry import build_network
from repro.training.backprop import expand
from repro.training.parallel import (ParallelStrategy, SyncOp, partition,
                                     total_sync_bytes)
from repro.vmem.policy import MigrationPolicy


class TestDataParallel:
    def test_weak_scaling_keeps_full_batch(self):
        net = build_network("AlexNet")
        parts = {p.name: p for p in partition(net, 512,
                                              ParallelStrategy.DATA, 8)}
        solo = {p.name: p for p in partition(net, 512,
                                             ParallelStrategy.DATA, 1)}
        # Per-device compute does not shrink with more workers.
        assert parts["conv1"].fwd_macs == solo["conv1"].fwd_macs
        assert parts["conv1"].out_shard_bytes \
            == solo["conv1"].out_shard_bytes

    def test_dw_allreduce_per_weighted_layer(self):
        net = build_network("VGG-E")
        parts = {p.name: p for p in partition(net, 512,
                                              ParallelStrategy.DATA, 8)}
        conv = parts["conv1_1"]
        assert conv.bwd_sync is not None
        assert conv.bwd_sync.primitive is Primitive.ALL_REDUCE
        assert conv.bwd_sync.nbytes \
            == net.layer("conv1_1").weight_bytes
        # No forward synchronization in data-parallel training.
        assert all(p.fwd_sync is None for p in parts.values())
        # Unweighted layers synchronize nothing.
        assert parts["relu1"].bwd_sync is None

    def test_single_device_never_synchronizes(self):
        net = build_network("AlexNet")
        parts = partition(net, 512, ParallelStrategy.DATA, 1)
        assert total_sync_bytes(parts) == 0

    def test_recurrent_dw_synchronized_once_per_group(self):
        net = build_network("RNN-GRU")
        parts = partition(net, 512, ParallelStrategy.DATA, 8)
        syncs = [p for p in parts if p.bwd_sync is not None]
        assert len(syncs) == 1
        # The sync fires at the group's first cell (last backward step).
        assert syncs[0].name == "cell_t0"
        assert syncs[0].bwd_sync.nbytes \
            == net.layer("cell_t0").weight_bytes


class TestModelParallel:
    def test_gemms_sharded_across_devices(self):
        net = build_network("VGG-E")
        mp = {p.name: p for p in partition(net, 512,
                                           ParallelStrategy.MODEL, 8)}
        dp = {p.name: p for p in partition(net, 512,
                                           ParallelStrategy.DATA, 8)}
        conv = net.layer("conv3_1")
        assert mp["conv3_1"].fwd_macs \
            == pytest.approx(dp["conv3_1"].fwd_macs / 8, rel=0.05)
        assert mp["conv3_1"].fwd_gemms[0].n \
            == conv.gemms[0].n // 8

    def test_layer_boundary_collectives(self):
        net = build_network("AlexNet")
        parts = {p.name: p for p in partition(net, 512,
                                              ParallelStrategy.MODEL, 8)}
        conv2 = parts["conv2"]
        assert conv2.fwd_sync.primitive is Primitive.ALL_GATHER
        assert conv2.fwd_sync.nbytes == net.layer("conv2").out_bytes(512)
        assert conv2.bwd_sync.primitive is Primitive.ALL_REDUCE

    def test_mp_syncs_more_than_dp(self):
        # Section II-C: model-parallel training synchronizes much more
        # (feature-map-sized collectives at every layer boundary vs a
        # single dW all-reduce per weighted layer).
        for name, factor in (("VGG-E", 50), ("AlexNet", 5)):
            net = build_network(name)
            mp = total_sync_bytes(partition(net, 512,
                                            ParallelStrategy.MODEL, 8))
            dp = total_sync_bytes(partition(net, 512,
                                            ParallelStrategy.DATA, 8))
            assert mp > factor * dp

    def test_gathered_feature_map_is_migrated_full_size(self):
        net = build_network("VGG-E")
        parts = {p.name: p for p in partition(net, 512,
                                              ParallelStrategy.MODEL, 8)}
        assert parts["conv1_1"].out_shard_bytes \
            == net.layer("conv1_1").out_bytes(512)

    def test_cheap_layers_split_without_sync(self):
        net = build_network("VGG-E")
        parts = {p.name: p for p in partition(net, 512,
                                              ParallelStrategy.MODEL, 8)}
        relu = parts["relu1"]
        assert relu.fwd_sync is None and relu.bwd_sync is None

    def test_rnn_cell_dx_sized_per_timestep(self):
        net = build_network("RNN-GEMV")
        parts = {p.name: p for p in partition(net, 512,
                                              ParallelStrategy.MODEL, 8)}
        cell = parts["cell_t5"]
        x_t = net.layer("x_t5").out_elems
        prev = net.layer("cell_t4").out_elems
        assert cell.bwd_sync.nbytes == (x_t + prev) * 512 * 4


class TestValidation:
    def test_rejects_bad_inputs(self):
        net = build_network("AlexNet")
        with pytest.raises(ValueError):
            partition(net, 0, ParallelStrategy.DATA, 8)
        with pytest.raises(ValueError):
            partition(net, 512, ParallelStrategy.DATA, 0)
        with pytest.raises(ValueError):
            SyncOp(Primitive.ALL_REDUCE, 0)


class TestTrainingStep:
    def test_backward_is_reverse_forward_without_inputs(self):
        net = build_network("AlexNet")
        plans = MigrationPolicy().plan(net, 64)
        step = expand(net, plans)
        assert step.fwd_order[0] == "data"
        assert "data" not in step.bwd_order
        non_input = [n for n in step.fwd_order if n != "data"]
        assert list(step.bwd_order) == list(reversed(non_input))

    def test_prefetch_and_recompute_sites_partition_tensors(self):
        net = build_network("AlexNet")
        plans = MigrationPolicy().plan(net, 64)
        step = expand(net, plans)
        prefetched = {p for ps in step.prefetch_sites.values()
                      for p in ps}
        recomputed = {p for ps in step.recompute_sites.values()
                      for p in ps}
        assert prefetched.isdisjoint(recomputed)
        assert "conv1" in prefetched
        assert "relu1" in recomputed

    def test_oracle_step_has_no_sites(self):
        net = build_network("AlexNet")
        plans = MigrationPolicy(virtualize=False).plan(net, 64)
        step = expand(net, plans)
        assert not step.prefetch_sites and not step.recompute_sites
