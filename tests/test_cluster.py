"""Tests for repro.cluster: jobs, oracle, pool, policies, event loop."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import (CostOracle, JobKind, JobSpec, MemoryPool,
                           QueueEntry, Release, earliest_start,
                           generate_jobs, select_next, simulate_cluster,
                           spill_dilation, spill_penalty)
from repro.cluster.jobs import JOB_MIX_NAMES
from repro.cluster.oracle import JobProfile
from repro.cluster.simulator import percentile
from repro.core.design_points import design_point
from repro.core.metrics import ClusterStats, ExecutionMode, SimulationResult
from repro.units import GB, TB


@pytest.fixture(scope="module")
def mc_config():
    return design_point("MC-DLA(B)")


@pytest.fixture(scope="module")
def dc_config():
    return design_point("DC-DLA")


def profile_of(devices, service, pool_bytes, *, jid=0, arrival=0.0,
               state_bytes=0, vmem_share=0.5, preemptible=True,
               network="AlexNet"):
    """A hand-built profile for policy/loop tests (no oracle)."""
    spec = JobSpec(jid=jid, arrival=arrival, kind=JobKind.TRAINING,
                   network=network, batch=512, iterations=1,
                   width=devices)
    return JobProfile(spec=spec, devices=devices, service=service,
                      pool_bytes=pool_bytes, state_bytes=state_bytes,
                      vmem_share=vmem_share, preemptible=preemptible)


class TestJobGeneration:
    def test_deterministic(self):
        a = generate_jobs("balanced", 16, seed=3)
        b = generate_jobs("balanced", 16, seed=3)
        assert a == b

    def test_seed_changes_stream(self):
        assert generate_jobs("balanced", 16, seed=0) != \
            generate_jobs("balanced", 16, seed=1)

    def test_arrivals_monotone_and_ids_sequential(self):
        jobs = generate_jobs("training", 32, seed=0)
        assert [j.jid for j in jobs] == list(range(32))
        assert all(a.arrival <= b.arrival
                   for a, b in zip(jobs, jobs[1:]))

    def test_widths_respect_node(self):
        jobs = generate_jobs("balanced", 64, seed=0, node_width=4)
        assert all(j.width <= 4 for j in jobs)

    def test_serving_jobs_have_rates(self):
        jobs = generate_jobs("serving", 16, seed=0)
        assert all(j.kind is JobKind.SERVING and j.rate > 0
                   for j in jobs)

    def test_every_mix_generates(self):
        for mix in JOB_MIX_NAMES:
            assert len(generate_jobs(mix, 4, seed=0)) == 4

    def test_validation(self):
        with pytest.raises(KeyError):
            generate_jobs("nope", 4)
        with pytest.raises(ValueError):
            generate_jobs("balanced", 0)
        with pytest.raises(ValueError):
            generate_jobs("balanced", 4, arrival_rate=0.0)
        with pytest.raises(ValueError):
            JobSpec(jid=0, arrival=-1.0, kind=JobKind.TRAINING,
                    network="AlexNet", batch=512)
        with pytest.raises(ValueError):
            JobSpec(jid=0, arrival=0.0, kind=JobKind.SERVING,
                    network="GPT2", batch=8, rate=0.0)


class TestCostOracle:
    def test_training_width_scaling(self, mc_config):
        oracle = CostOracle(mc_config)
        full = oracle.profile(JobSpec(
            jid=0, arrival=0.0, kind=JobKind.TRAINING,
            network="AlexNet", batch=512, iterations=10, width=8))
        half = oracle.profile(JobSpec(
            jid=1, arrival=0.0, kind=JobKind.TRAINING,
            network="AlexNet", batch=512, iterations=10, width=4))
        assert full.devices == 8 and half.devices == 4
        # Work conserved: half the devices, twice the time.
        assert half.service == pytest.approx(2 * full.service)
        # Per-device working set is constant (weak scaling).
        assert half.pool_bytes * 2 == full.pool_bytes

    def test_pool_bytes_zero_without_virtualization(self):
        oracle = CostOracle(design_point("DC-DLA(O)"))
        profile = oracle.profile(JobSpec(
            jid=0, arrival=0.0, kind=JobKind.TRAINING,
            network="VGG-E", batch=512, iterations=5, width=8))
        assert profile.pool_bytes == 0

    def test_pipeline_gangs_whole_node(self, mc_config):
        oracle = CostOracle(mc_config)
        profile = oracle.profile(JobSpec(
            jid=0, arrival=0.0, kind=JobKind.PIPELINE,
            network="GPT2", batch=256, iterations=4, width=1))
        assert profile.devices == mc_config.n_devices
        assert profile.preemptible

    def test_serving_tenants_not_preemptible(self, mc_config):
        oracle = CostOracle(mc_config)
        profile = oracle.profile(JobSpec(
            jid=0, arrival=0.0, kind=JobKind.SERVING,
            network="GPT2", batch=8, rate=100.0, trace_seed=1))
        assert not profile.preemptible
        assert profile.devices == mc_config.n_devices
        assert profile.service > 0

    def test_memoizes_by_job_class(self, mc_config):
        oracle = CostOracle(mc_config)
        spec = JobSpec(jid=0, arrival=0.0, kind=JobKind.TRAINING,
                       network="AlexNet", batch=512, iterations=3,
                       width=8)
        oracle.profile(spec)
        n = len(oracle._memo)
        oracle.profile(JobSpec(jid=1, arrival=9.0,
                               kind=JobKind.TRAINING,
                               network="AlexNet", batch=512,
                               iterations=7, width=2))
        assert len(oracle._memo) == n  # same class, no new simulate


class TestMemoryPool:
    def test_reserve_release_roundtrip(self):
        pool = MemoryPool(100)
        assert pool.fits(100) and not pool.fits(101)
        pool.reserve(60)
        assert pool.reserved == 60 and not pool.fits(41)
        pool.release(60)
        assert pool.reserved == 0

    def test_oversubscription_raises_limit(self):
        pool = MemoryPool(100, oversubscription=1.5)
        pool.reserve(150)
        assert pool.overflow_fraction == pytest.approx(50 / 150)
        assert pool.utilization == 1.0
        assert pool.pressure == pytest.approx(1.5)
        with pytest.raises(ValueError):
            pool.reserve(1)

    def test_no_overflow_below_capacity(self):
        pool = MemoryPool(100)
        pool.reserve(80)
        assert pool.overflow_fraction == 0.0
        assert pool.utilization == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryPool(0)
        with pytest.raises(ValueError):
            MemoryPool(100, oversubscription=0.5)
        pool = MemoryPool(100)
        with pytest.raises(ValueError):
            pool.release(1)

    def test_spill_penalty_by_design(self, mc_config, dc_config):
        # DC virtualizes over PCIe already: spilling costs nothing.
        assert spill_penalty(dc_config) == 0.0
        # MC falls from its fast links onto PCIe: a real penalty.
        assert spill_penalty(mc_config) > 1.0
        assert spill_penalty(design_point("DC-DLA(O)")) == 0.0

    def test_spill_dilation(self):
        profile = profile_of(4, 10.0, 50 * GB, vmem_share=0.5)
        assert spill_dilation(profile, 0.0, 8.0) == 1.0
        assert spill_dilation(profile, 0.5, 8.0) == pytest.approx(3.0)
        no_pool = profile_of(4, 10.0, 0)
        assert spill_dilation(no_pool, 0.9, 8.0) == 1.0
        with pytest.raises(ValueError):
            spill_dilation(profile, 1.5, 8.0)
        with pytest.raises(ValueError):
            spill_dilation(profile, 0.5, -1.0)


class TestPolicies:
    def queue(self, *profiles):
        return [QueueEntry(p, p.service) for p in profiles]

    def test_fifo_blocks_on_head(self):
        big = profile_of(8, 10.0, 0, jid=0)
        small = profile_of(1, 1.0, 0, jid=1)
        pool = MemoryPool(1 * TB)
        queue = self.queue(big, small)
        assert select_next("fifo", queue, 4, pool) is None
        assert select_next("fifo", queue, 8, pool) == 0

    def test_sjf_picks_shortest_fitting(self):
        pool = MemoryPool(1 * TB)
        queue = self.queue(profile_of(8, 5.0, 0, jid=0),
                           profile_of(2, 9.0, 0, jid=1),
                           profile_of(2, 3.0, 0, jid=2))
        assert select_next("sjf", queue, 2, pool) == 2

    def test_pool_fit_packs_biggest_reservation(self):
        pool = MemoryPool(100 * GB)
        queue = self.queue(
            profile_of(2, 5.0, 90 * GB, jid=0),   # too big: 10 free
            profile_of(1, 5.0, 6 * GB, jid=1),
            profile_of(1, 5.0, 9 * GB, jid=2))
        pool.reserve(90 * GB)
        assert select_next("pool-fit", queue, 8, pool) == 2

    def test_gang_backfills_only_short_jobs(self):
        pool = MemoryPool(1 * TB)
        head = profile_of(8, 50.0, 0, jid=0)      # needs the node
        long_fill = profile_of(2, 100.0, 0, jid=1)
        short_fill = profile_of(2, 5.0, 0, jid=2)
        queue = self.queue(head, long_fill, short_fill)
        # 4 devices free; the other 4 release in 10s -> head starts
        # then.  Only the 5s job may jump the queue.
        releases = (Release(time=10.0, devices=4, pool_bytes=0),)
        assert select_next("gang", queue, 4, pool, releases) == 2

    def test_gang_starts_head_when_it_fits(self):
        pool = MemoryPool(1 * TB)
        queue = self.queue(profile_of(4, 50.0, 0, jid=0))
        assert select_next("gang", queue, 8, pool) == 0

    def test_earliest_start_walks_releases(self):
        pool = MemoryPool(100 * GB)
        pool.reserve(80 * GB)
        entry = QueueEntry(profile_of(6, 1.0, 50 * GB), 1.0)
        releases = (Release(time=5.0, devices=4, pool_bytes=0),
                    Release(time=9.0, devices=4, pool_bytes=60 * GB))
        assert earliest_start(entry, 2, pool, releases) == 9.0
        assert earliest_start(entry, 2, pool, ()) is None

    def test_empty_queue_and_unknown_policy(self):
        pool = MemoryPool(1 * TB)
        assert select_next("fifo", [], 8, pool) is None
        with pytest.raises(KeyError):
            select_next("wfq", self.queue(profile_of(1, 1.0, 0)), 8,
                        pool)


class TestClusterSimulator:
    def synthetic(self, *widths_services, arrival_gap=0.0):
        jobs = []
        for i, (width, iters) in enumerate(widths_services):
            jobs.append(JobSpec(jid=i, arrival=i * arrival_gap,
                                kind=JobKind.TRAINING,
                                network="AlexNet", batch=512,
                                iterations=iters, width=width))
        return tuple(jobs)

    def test_conservation_and_causality(self, mc_config):
        jobs = self.synthetic((8, 4), (4, 2), (2, 3), (1, 5),
                              arrival_gap=1.0)
        result = simulate_cluster(mc_config, jobs=jobs,
                                  fleet_devices=8)
        stats = result.cluster
        assert stats.n_jobs == len(jobs)
        assert stats.jct_p50 <= stats.jct_p95
        assert stats.queue_delay_mean >= 0.0
        assert stats.makespan == result.iteration_time

    def test_serial_fifo_makespan(self, mc_config):
        # Two node-wide jobs arriving together must serialize.
        oracle = CostOracle(mc_config)
        jobs = self.synthetic((8, 5), (8, 5))
        one = oracle.profile(jobs[0]).service
        result = simulate_cluster(mc_config, jobs=jobs,
                                  fleet_devices=8, policy="fifo")
        assert result.cluster.makespan == pytest.approx(2 * one)
        assert result.cluster.device_utilization == pytest.approx(1.0)

    def test_narrow_jobs_run_concurrently(self, mc_config):
        oracle = CostOracle(mc_config)
        jobs = self.synthetic((4, 5), (4, 5))
        one = oracle.profile(jobs[0]).service
        result = simulate_cluster(mc_config, jobs=jobs,
                                  fleet_devices=8)
        assert result.cluster.makespan == pytest.approx(one)

    def test_mode_and_result_roundtrip(self, mc_config):
        result = simulate_cluster(mc_config, n_jobs=6, seed=1)
        assert result.mode is ExecutionMode.CLUSTER
        rebuilt = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result

    def test_cluster_stats_roundtrip_exact(self, mc_config):
        stats = simulate_cluster(mc_config, n_jobs=6, seed=2).cluster
        rebuilt = ClusterStats.from_dict(
            json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats

    def test_deterministic_across_runs(self, mc_config):
        a = simulate_cluster(mc_config, policy="sjf", n_jobs=10,
                             seed=4)
        b = simulate_cluster(mc_config, policy="sjf", n_jobs=10,
                             seed=4)
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)

    def test_pool_contention_queues_jobs(self, mc_config):
        # Two jobs whose reservations cannot coexist in a tiny pool.
        jobs = self.synthetic((8, 5), (8, 5))
        oracle = CostOracle(mc_config)
        need = oracle.profile(jobs[0]).pool_bytes
        contended = simulate_cluster(
            mc_config, jobs=jobs, fleet_devices=16,
            pool_capacity=need + need // 2)
        roomy = simulate_cluster(
            mc_config, jobs=jobs, fleet_devices=16,
            pool_capacity=4 * need)
        assert contended.cluster.jct_p95 > roomy.cluster.jct_p95
        assert contended.cluster.fragmentation > 0.0

    def test_oversubscription_admits_but_dilates(self, mc_config):
        jobs = self.synthetic((8, 5), (8, 5))
        oracle = CostOracle(mc_config)
        need = oracle.profile(jobs[0]).pool_bytes
        capacity = need + need // 2
        strict = simulate_cluster(mc_config, jobs=jobs,
                                  fleet_devices=16,
                                  pool_capacity=capacity)
        oversub = simulate_cluster(mc_config, jobs=jobs,
                                   fleet_devices=16,
                                   pool_capacity=capacity,
                                   oversubscription=2.0)
        # Both jobs now run side by side: no queueing...
        assert oversub.cluster.queue_delay_mean == 0.0
        assert strict.cluster.queue_delay_mean > 0.0
        # ...but the overflow spills, so each runs slower than alone.
        solo = oracle.profile(jobs[0]).service
        assert oversub.cluster.makespan > solo
        assert oversub.cluster.pool_pressure > 1.0

    def test_preemption_unblocks_and_bills_checkpoints(self, mc_config):
        oracle = CostOracle(mc_config)
        long_job = JobSpec(jid=0, arrival=0.0, kind=JobKind.TRAINING,
                           network="AlexNet", batch=512,
                           iterations=400, width=8)
        late = JobSpec(jid=1, arrival=1.0, kind=JobKind.TRAINING,
                       network="AlexNet", batch=512, iterations=5,
                       width=8)
        blocked = simulate_cluster(mc_config, jobs=(long_job, late),
                                   fleet_devices=8)
        assert blocked.cluster.preemptions == 0
        solo = oracle.profile(long_job).service
        preempting = simulate_cluster(mc_config,
                                      jobs=(long_job, late),
                                      fleet_devices=8,
                                      preempt_after=2.0)
        stats = preempting.cluster
        assert stats.preemptions >= 1
        assert stats.checkpoint_bytes > 0
        assert preempting.breakdown.vmem > 0.0
        # The long job pays the checkpoint/restore on top of its work.
        assert stats.makespan > solo

    def test_serving_tenants_survive_preemption_pressure(self,
                                                         mc_config):
        tenant = JobSpec(jid=0, arrival=0.0, kind=JobKind.SERVING,
                         network="GPT2", batch=8, rate=50.0,
                         trace_seed=0)
        late = JobSpec(jid=1, arrival=0.5, kind=JobKind.TRAINING,
                       network="AlexNet", batch=512, iterations=5,
                       width=8)
        result = simulate_cluster(mc_config, jobs=(tenant, late),
                                  fleet_devices=8, preempt_after=1.0)
        # The tenant is not preemptible: the trainer must wait.
        assert result.cluster.preemptions == 0

    def test_validation(self, mc_config):
        with pytest.raises(ValueError):
            simulate_cluster(mc_config, fleet_devices=4)  # < node
        with pytest.raises(ValueError):
            simulate_cluster(mc_config, n_jobs=4,
                             pool_capacity=1 * GB)  # jobs can't fit
        with pytest.raises(ValueError):
            simulate_cluster(mc_config, n_jobs=4, preempt_after=0.0)
        with pytest.raises(KeyError):
            simulate_cluster(mc_config, n_jobs=4, policy="wfq")
        with pytest.raises(ValueError):
            simulate_cluster(mc_config, jobs=())

    def test_backfill_window_uses_dilated_wall_clock(self, mc_config):
        """A backfill candidate that fits the head gang's window only
        when quoting its undilated runtime must be held back once its
        own spill overflow is priced in."""
        from repro.cluster.simulator import estimated_wall_seconds
        pool = MemoryPool(100 * GB, oversubscription=2.0)
        pool.reserve(90 * GB)
        profile = profile_of(2, 9.0, 60 * GB, vmem_share=1.0)
        penalty = spill_penalty(mc_config)
        wall = estimated_wall_seconds(9.0, profile, pool, penalty)
        # (90 + 60 resident over 100 physical) spills 1/3 of pages.
        assert wall == pytest.approx(9.0 * (1 + penalty / 3))
        # Against a 10s head reservation, only the dilated figure
        # makes gang backfill reject the candidate.
        head = profile_of(8, 50.0, 0, jid=0)
        queue = [QueueEntry(head, 50.0), QueueEntry(profile, wall)]
        releases = (Release(time=10.0, devices=6, pool_bytes=90 * GB),)
        assert select_next("gang", queue, 2, pool, releases) is None
        # Jobs without pool pressure are unaffected by the estimate.
        free = profile_of(2, 9.0, 0)
        assert estimated_wall_seconds(9.0, free, pool, penalty) == 9.0

    @given(remaining=st.floats(min_value=-1e-6, max_value=1e4,
                               allow_nan=False),
           reserved_gb=st.integers(min_value=0, max_value=150),
           pool_gb=st.integers(min_value=0, max_value=50),
           vmem_share=st.floats(min_value=0.0, max_value=1.0,
                                allow_nan=False))
    def test_wall_estimate_never_negative(self, remaining, reserved_gb,
                                          pool_gb, vmem_share):
        """Property: repeated preemption/restart accounting can leave
        float dust below zero in a job's remaining work; the wall
        estimate must clamp it, or SJF ordering and backfill windows
        would act on negative durations."""
        from repro.cluster.simulator import estimated_wall_seconds
        pool = MemoryPool(100 * GB, oversubscription=2.0)
        pool.reserve(reserved_gb * GB)
        profile = profile_of(2, 9.0, pool_gb * GB,
                             vmem_share=vmem_share)
        penalty = spill_penalty(design_point("MC-DLA(B)"))
        wall = estimated_wall_seconds(remaining, profile, pool,
                                      penalty)
        assert wall >= 0.0
        if remaining <= 0.0:
            assert wall == 0.0
        else:
            assert wall >= remaining

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 0)


class TestClusterCli:
    def test_quick_smoke(self, capsys):
        from repro.cluster.cli import main
        assert main(["--quick"]) == 0
        out = capsys.readouterr().out
        assert "JCT" in out and "pool" in out

    def test_json_format(self, capsys):
        from repro.cluster.cli import main
        assert main(["--quick", "--format", "json",
                     "--design", "mc-hbm"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "cluster"
        assert payload["cluster"]["policy"] == "fifo"

    def test_bad_design(self, capsys):
        from repro.cluster.cli import main
        assert main(["--design", "tpu-pod"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_impossible_pool_reports_cleanly(self, capsys):
        from repro.cluster.cli import main
        assert main(["--quick", "--pool-gb", "1"]) == 2
        assert "pool" in capsys.readouterr().err


class TestClusterComparison:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments.cluster_comparison import (
            run_cluster_comparison)
        return run_cluster_comparison(policies=("fifo",), n_jobs=10,
                                      cache=None)

    def test_mc_beats_dc_on_tail_jct(self, study):
        """The acceptance claim: at equal pool capacity, at least one
        memory-centric design beats DC-DLA on JCT p95 (in fact all
        three do, on throughput too)."""
        dc = study.at("DC-DLA", "fifo")
        for design in ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)"):
            assert study.at(design, "fifo").jct_p95 < dc.jct_p95
            assert study.throughput_gain(design, "fifo") > 1.0

    def test_deterministic_json(self, study):
        """Two uncached runs produce byte-identical JSON."""
        from repro.experiments.cluster_comparison import (
            run_cluster_comparison)
        again = run_cluster_comparison(policies=("fifo",), n_jobs=10,
                                       cache=None)
        assert json.dumps(study.scalars(), sort_keys=True) == \
            json.dumps(again.scalars(), sort_keys=True)

    def test_format_renders(self, study):
        from repro.experiments.cluster_comparison import (
            format_cluster_comparison)
        text = format_cluster_comparison(study)
        assert "JCT p95" in text
        assert "DC-DLA" in text and "MC-DLA(B)" in text