"""Tests for the migration policy and memory manager."""

import pytest

from repro.dnn.registry import build_network
from repro.vmem.allocator import PlacementPolicy
from repro.vmem.driver import default_layout
from repro.vmem.manager import MemoryManager
from repro.vmem.policy import (MigrationAction, MigrationPolicy,
                               offload_traffic_bytes,
                               round_trip_traffic_bytes)
from repro.vmem.runtime_api import CopyDirection, DeviceRuntime


class TestMigrationPolicy:
    def test_offloads_heavy_layers_recomputes_cheap(self):
        net = build_network("AlexNet")
        plans = {p.producer: p for p in MigrationPolicy().plan(net, 64)}
        assert plans["conv1"].action is MigrationAction.OFFLOAD
        assert plans["fc6"].action is MigrationAction.OFFLOAD
        assert plans["relu1"].action is MigrationAction.RECOMPUTE
        assert plans["pool1"].action is MigrationAction.RECOMPUTE
        assert plans["data"].action is MigrationAction.RESIDENT

    def test_virtualize_false_makes_everything_resident(self):
        net = build_network("AlexNet")
        policy = MigrationPolicy(virtualize=False)
        assert all(p.action is MigrationAction.RESIDENT
                   for p in policy.plan(net, 64))

    def test_recompute_disabled_offloads_cheap_layers(self):
        net = build_network("AlexNet")
        policy = MigrationPolicy(recompute_cheap=False)
        plans = {p.producer: p for p in policy.plan(net, 64)}
        assert plans["relu1"].action is MigrationAction.OFFLOAD

    def test_offload_after_last_forward_consumer(self):
        net = build_network("ResNet")
        plans = {p.producer: p for p in MigrationPolicy().plan(net, 64)}
        # A residual block input feeds both the conv path and the
        # shortcut: it may only leave after the later consumer.
        plan = plans["pool1"]
        assert plan.offload_after == net.last_forward_consumer("pool1")

    def test_traffic_accounting(self):
        net = build_network("VGG-E")
        plans = MigrationPolicy().plan(net, 64)
        offload = offload_traffic_bytes(plans)
        assert offload == net.virtualized_bytes(64)
        assert round_trip_traffic_bytes(plans) == 2 * offload


class TestMemoryManager:
    def test_plan_summary(self):
        manager = MemoryManager()
        net = build_network("AlexNet")
        plan = manager.plan(net, 64)
        assert plan.network == "AlexNet"
        assert plan.offload_bytes == net.virtualized_bytes(64)
        assert len(plan.offloaded) == 8   # conv1-5, fc6-8
        assert plan.tensor("conv1").nbytes > 0
        with pytest.raises(KeyError):
            plan.tensor("nope")

    def test_forward_backward_execution_roundtrip(self):
        manager = MemoryManager()
        net = build_network("AlexNet")
        plan = manager.plan(net, 8)
        rt = DeviceRuntime(layout=default_layout())
        pointers = manager.execute_forward(plan, rt)
        assert set(pointers) == {t.producer for t in plan.offloaded}
        assert rt.live_remote_bytes > 0
        manager.execute_backward(plan, rt, pointers)
        assert rt.live_remote_bytes == 0
        # Every offload got exactly one matching prefetch.
        out = [e for e in rt.events
               if e.direction is CopyDirection.LOCAL_TO_REMOTE]
        back = [e for e in rt.events
                if e.direction is CopyDirection.REMOTE_TO_LOCAL]
        assert len(out) == len(back) == len(plan.offloaded)
        assert sum(e.size for e in out) == plan.offload_bytes

    def test_backward_detects_leaks(self):
        manager = MemoryManager()
        net = build_network("AlexNet")
        plan = manager.plan(net, 8)
        rt = DeviceRuntime(layout=default_layout())
        pointers = manager.execute_forward(plan, rt)
        pointers["ghost"] = pointers[next(iter(pointers))]
        with pytest.raises((ValueError, KeyError)):
            manager.execute_backward(plan, rt, pointers)

    def test_bw_aware_execution_is_faster(self):
        manager = MemoryManager()
        net = build_network("AlexNet")
        plan = manager.plan(net, 8)
        fast = DeviceRuntime(layout=default_layout(),
                             policy=PlacementPolicy.BW_AWARE)
        slow = DeviceRuntime(layout=default_layout(),
                             policy=PlacementPolicy.LOCAL)
        manager.execute_backward(plan, fast,
                                 manager.execute_forward(plan, fast))
        manager.execute_backward(plan, slow,
                                 manager.execute_forward(plan, slow))
        assert fast.clock == pytest.approx(slow.clock / 2)
