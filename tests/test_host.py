"""Tests for the host CPU substrate (paper Figure 12's accounting)."""

import pytest

from repro.host.cpu import (HYPOTHETICAL_HC, POWER9, XEON, CpuSocketSpec,
                            socket_usage)
from repro.units import GBPS


class TestSockets:
    def test_published_socket_bandwidths(self):
        assert XEON.mem_bandwidth == 80 * GBPS
        assert POWER9.mem_bandwidth == 120 * GBPS
        assert HYPOTHETICAL_HC.mem_bandwidth == 300 * GBPS

    def test_four_devices_per_socket(self):
        assert XEON.devices_per_socket == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSocketSpec("bad", 0.0)
        with pytest.raises(ValueError):
            CpuSocketSpec("bad", GBPS, devices_per_socket=0)


class TestSocketUsage:
    def test_average_usage(self):
        # 4 devices x 10 GB over a 1 s iteration = 40 GB/s sustained.
        usage = socket_usage(XEON, 10 * GBPS, 1.0, 8 * GBPS)
        assert usage.avg_bytes_per_sec == pytest.approx(40 * GBPS)
        assert usage.avg_fraction == pytest.approx(0.5)

    def test_peak_usage(self):
        usage = socket_usage(HYPOTHETICAL_HC, 0.0, 1.0, 75 * GBPS)
        assert usage.max_bytes_per_sec == pytest.approx(300 * GBPS)
        assert usage.max_fraction == pytest.approx(1.0)

    def test_hc_dla_can_saturate_its_socket(self):
        # The paper's HC-DLA: 4 devices x 75 GB/s == the whole socket.
        usage = socket_usage(HYPOTHETICAL_HC, 75 * GBPS, 1.0, 75 * GBPS)
        assert usage.avg_fraction == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            socket_usage(XEON, GBPS, 0.0, GBPS)
        with pytest.raises(ValueError):
            socket_usage(XEON, -1.0, 1.0, GBPS)
