"""Branch coverage for the two least-covered modules:
``repro.experiments.report`` and ``repro.core.trace`` (strict-mode
tag fallback, inference-timeline export).
"""

from __future__ import annotations

import json

import pytest

from repro.core.design_points import design_point
from repro.core.schedule import build_inference_ops, plan_inference
from repro.core.timeline import EngineKind, OpList, run_timeline
from repro.core.trace import (TAG_CATEGORIES, engine_utilization,
                              register_tag_category, tag_category,
                              to_chrome_trace, to_records)
from repro.dnn.registry import build_network
from repro.experiments.report import (format_bars, format_series,
                                      format_stacked_bars, format_table,
                                      percent)
from repro.training.parallel import ParallelStrategy


class TestFormatTable:
    def test_floats_render_three_decimals(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_title_and_separator(self):
        text = format_table(["a", "bb"], [["1", "2"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", "+"}

    def test_untitled_table_has_no_title_line(self):
        text = format_table(["a"], [["1"]])
        assert text.splitlines()[0].startswith("a")

    def test_column_width_tracks_longest_cell(self):
        text = format_table(["a"], [["wide-cell"]])
        header = text.splitlines()[0]
        assert len(header) == len("wide-cell")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatSeries:
    def test_pairs_rendered(self):
        assert format_series("s", [1, 2], [0.5, 1.5]) \
            == "s: 1=0.500, 2=1.500"

    def test_empty_series(self):
        assert format_series("s", [], []) == "s: "


class TestPercent:
    def test_rounding(self):
        assert percent(0.8765) == "87.6%"  # 87.65 floats just below
        assert percent(0.0) == "0.0%"
        assert percent(1.0) == "100.0%"


class TestFormatBars:
    def test_peak_scales_to_width(self):
        text = format_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_all_zero_values_draw_no_bars(self):
        text = format_bars(["a"], [0.0])
        assert "#" not in text

    def test_title_line(self):
        assert format_bars(["a"], [1.0], title="T").splitlines()[0] \
            == "T"

    def test_empty_inputs_allowed(self):
        assert format_bars([], []) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0], width=0)
        with pytest.raises(ValueError):
            format_bars(["a"], [-1.0])


class TestFormatStackedBars:
    def test_segments_use_distinct_characters(self):
        text = format_stacked_bars(["a"], [[1.0, 1.0, 2.0]], width=8)
        bar = text.splitlines()[0]
        assert bar.count("#") == 2
        assert bar.count("=") == 2
        assert bar.count("~") == 4

    def test_zero_peak_draws_nothing(self):
        text = format_stacked_bars(["a"], [[0.0, 0.0]])
        assert "#" not in text and "=" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            format_stacked_bars(["a", "b"], [[1.0]])
        with pytest.raises(ValueError):
            format_stacked_bars(["a"], [[1.0, 1.0, 1.0, 1.0]])  # chars
        with pytest.raises(ValueError):
            format_stacked_bars(["a"], [[-1.0, 0.0]])


class TestStrictTagFallback:
    def test_unknown_prefix_falls_back_to_other(self):
        assert tag_category("quantum-leap:x") == "other"
        assert tag_category("no-colon-tag") == "other"

    def test_strict_mode_raises_with_registration_hint(self):
        with pytest.raises(KeyError) as excinfo:
            tag_category("quantum-leap:x", strict=True)
        assert "register_tag_category" in str(excinfo.value)
        assert "quantum-leap" in str(excinfo.value)

    def test_strict_mode_passes_registered_prefixes(self):
        for prefix, category in TAG_CATEGORIES.items():
            assert tag_category(f"{prefix}:probe", strict=True) \
                == category

    def test_wfetch_registered_as_migration(self):
        assert tag_category("wfetch:b0_qkv", strict=True) == "migration"

    def test_registration_updates_strict_lookups(self):
        register_tag_category("zz-custom", "compute")
        try:
            assert tag_category("zz-custom:op", strict=True) == "compute"
        finally:
            TAG_CATEGORIES.pop("zz-custom")

    def test_register_validation(self):
        with pytest.raises(ValueError):
            register_tag_category("", "compute")
        with pytest.raises(ValueError):
            register_tag_category("a:b", "compute")
        with pytest.raises(ValueError):
            register_tag_category("fine", "")


class TestInferenceTimelineExport:
    @pytest.fixture(scope="class")
    def timeline(self):
        config = design_point("DC-DLA")
        plan = plan_inference(build_network("AlexNet"), config, 32,
                              ParallelStrategy.DATA)
        return run_timeline(build_inference_ops(plan, config))

    def test_every_tag_categorizes_strictly(self, timeline):
        for scheduled in timeline.scheduled:
            tag_category(scheduled.op.tag, strict=True)

    def test_records_include_weight_fetches(self, timeline):
        records = to_records(timeline)
        assert any(r["tag"].startswith("wfetch:") for r in records)
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)

    def test_chrome_trace_files_fetches_under_migration(self, timeline):
        payload = json.loads(to_chrome_trace(timeline))
        cats = {e["cat"] for e in payload["traceEvents"]
                if e["name"].startswith("wfetch:")}
        assert cats == {"migration"}

    def test_utilization_shows_dma_pressure(self, timeline):
        util = engine_utilization(timeline)
        assert 0.0 < util["dma-in"] <= 1.0
        assert util["dma-out"] == 0.0  # inference pushes nothing back

    def test_single_op_utilization_is_full(self):
        ops = OpList()
        ops.add(EngineKind.COMPUTE, 1.0, [], tag="fwd:x")
        util = engine_utilization(run_timeline(ops))
        assert util["compute"] == 1.0
        assert util["comm"] == 0.0
