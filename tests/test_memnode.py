"""Tests for the memory-node substrate (paper Figure 6, Table IV)."""

import pytest

from repro.memnode.dimm import (DDR4_8GB_RDIMM, DDR4_128GB_LRDIMM,
                                DIMM_CATALOG, DimmSpec, dimm_by_name)
from repro.memnode.dma import DmaEngine
from repro.memnode.memory_node import MemoryNodeSpec, node_with_dimm
from repro.memnode.power import (DGX_SYSTEM_TDP_W, max_pool_capacity,
                                 memory_node_power, perf_per_watt_gain,
                                 table_iv)
from repro.units import GB, GBPS, TB


class TestDimmCatalog:
    def test_five_table_iv_rows(self):
        assert len(DIMM_CATALOG) == 5
        names = [d.name for d in DIMM_CATALOG]
        assert names[0] == "8GB-RDIMM" and names[-1] == "128GB-LRDIMM"

    def test_capacity_ordering(self):
        caps = [d.capacity for d in DIMM_CATALOG]
        assert caps == sorted(caps)

    def test_gb_per_watt_table_iv(self):
        assert DDR4_8GB_RDIMM.gb_per_watt == pytest.approx(2.76, abs=0.05)
        assert DDR4_128GB_LRDIMM.gb_per_watt == pytest.approx(10.08,
                                                              abs=0.05)

    def test_lookup(self):
        assert dimm_by_name("64GB-LRDIMM").tdp_watts == 10.2
        with pytest.raises(KeyError):
            dimm_by_name("256GB-LRDIMM")

    def test_validation(self):
        with pytest.raises(ValueError):
            DimmSpec("x", "DIMM", 8 * GB, 1.0)
        with pytest.raises(ValueError):
            DimmSpec("x", "RDIMM", 0, 1.0)


class TestDmaEngine:
    def test_transfer_time(self):
        dma = DmaEngine(setup_latency=1e-6)
        assert dma.transfer_time(10 * GBPS, 10 * GBPS) \
            == pytest.approx(1.0 + 1e-6)
        assert dma.transfer_time(0, GBPS) == 0.0

    def test_bandwidth_cap(self):
        dma = DmaEngine(max_bandwidth=5 * GBPS)
        assert dma.effective_bandwidth(10 * GBPS) == 5 * GBPS
        assert dma.effective_bandwidth(2 * GBPS) == 2 * GBPS

    def test_validation(self):
        with pytest.raises(ValueError):
            DmaEngine(setup_latency=-1)
        with pytest.raises(ValueError):
            DmaEngine().transfer_time(-1, GBPS)
        with pytest.raises(ValueError):
            DmaEngine().effective_bandwidth(0)


class TestMemoryNode:
    def test_capacity_range_of_section_iii(self):
        # 8 GB RDIMMs -> 80 GB; 128 GB LRDIMMs -> 1.25 TiB (paper: 1.3 TB).
        assert node_with_dimm(DDR4_8GB_RDIMM).capacity == 80 * GB
        assert node_with_dimm(DDR4_128GB_LRDIMM).capacity == 1280 * GB

    def test_table_ii_bandwidth(self):
        node = MemoryNodeSpec()
        assert node.memory_bandwidth == 256 * GBPS

    def test_link_partitioning(self):
        node = MemoryNodeSpec()  # N=6 links, M=2 groups
        assert node.links_per_group == 3
        assert node.group_link_bw == 75 * GBPS
        assert node.group_capacity == node.capacity // 2
        assert node.group_memory_bw == 128 * GBPS

    def test_device_read_bandwidth_link_limited(self):
        # 3 links x 25 GB/s < 128 GB/s DIMM share: links are the bound.
        node = MemoryNodeSpec()
        assert node.device_read_bandwidth() == 75 * GBPS

    def test_transfer_time_includes_dma_setup(self):
        node = MemoryNodeSpec()
        t = node.transfer_time(75 * GBPS)
        assert t == pytest.approx(1.0 + node.dma.setup_latency)

    def test_node_tdp(self):
        assert node_with_dimm(DDR4_8GB_RDIMM).tdp_watts \
            == pytest.approx(29.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryNodeSpec(link_groups=7)
        with pytest.raises(ValueError):
            MemoryNodeSpec(n_dimms=0)


class TestPower:
    def test_table_iv_rows(self):
        rows = table_iv()
        tdps = [r.node_tdp_w for r in rows]
        assert tdps == [29.0, 66.0, 87.0, 102.0, 127.0]

    def test_system_overhead_brackets(self):
        # Paper: +7% with 8 GB RDIMMs, +31% with 128 GB LRDIMMs.
        low = memory_node_power(DDR4_8GB_RDIMM)
        high = memory_node_power(DDR4_128GB_LRDIMM)
        assert low.system_overhead == pytest.approx(0.0725, abs=0.001)
        assert high.system_overhead == pytest.approx(0.3175, abs=0.001)
        assert low.system_tdp_w == DGX_SYSTEM_TDP_W + 232

    def test_perf_per_watt_section_vc(self):
        # With the paper's 2.8x speedup: 2.6x down to 2.1x perf/W.
        assert perf_per_watt_gain(2.8, DDR4_8GB_RDIMM) \
            == pytest.approx(2.61, abs=0.01)
        assert perf_per_watt_gain(2.8, DDR4_128GB_LRDIMM) \
            == pytest.approx(2.13, abs=0.01)

    def test_pool_capacity_10_4_tb(self):
        node = node_with_dimm(DDR4_128GB_LRDIMM)
        assert max_pool_capacity(node) == pytest.approx(10 * TB, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_node_power(DDR4_8GB_RDIMM, n_nodes=0)
        with pytest.raises(ValueError):
            perf_per_watt_gain(0.0, DDR4_8GB_RDIMM)
        with pytest.raises(ValueError):
            max_pool_capacity(node_with_dimm(DDR4_8GB_RDIMM), 0)
