"""Tests for the iteration schedule builder."""


from repro.core.design_points import dc_dla, dc_dla_oracle, mc_dla_bw
from repro.core.schedule import build_iteration_ops, plan_iteration
from repro.core.timeline import EngineKind, run_timeline
from repro.dnn.registry import build_network
from repro.training.parallel import ParallelStrategy


def ops_by_prefix(ops, prefix):
    return [op for op in ops.ops if op.tag.startswith(prefix)]


class TestIterationPlan:
    def test_traffic_accounting(self):
        net = build_network("AlexNet")
        plan = plan_iteration(net, dc_dla(), 64, ParallelStrategy.DATA)
        assert plan.offload_bytes_per_device \
            == net.virtualized_bytes(64)
        assert plan.round_trip_bytes_per_device \
            == 2 * plan.offload_bytes_per_device

    def test_oracle_plan_migrates_nothing(self):
        net = build_network("AlexNet")
        plan = plan_iteration(net, dc_dla_oracle(), 64,
                              ParallelStrategy.DATA)
        assert plan.offload_bytes_per_device == 0

    def test_sync_accounting_matches_partition(self):
        net = build_network("VGG-E")
        plan = plan_iteration(net, dc_dla(), 512, ParallelStrategy.DATA)
        assert plan.sync_bytes_per_iteration == net.weight_bytes()


class TestOpConstruction:
    def test_one_fwd_and_bwd_op_per_layer(self):
        net = build_network("AlexNet")
        plan = plan_iteration(net, dc_dla(), 64, ParallelStrategy.DATA)
        ops = build_iteration_ops(plan, dc_dla())
        non_input = len(net) - 1
        assert len(ops_by_prefix(ops, "fwd:")) == non_input
        assert len(ops_by_prefix(ops, "bwd:")) == non_input

    def test_offload_prefetch_pairing(self):
        net = build_network("AlexNet")
        config = dc_dla()
        plan = plan_iteration(net, config, 64, ParallelStrategy.DATA)
        ops = build_iteration_ops(plan, config)
        offloads = {op.tag.split(":")[1]
                    for op in ops_by_prefix(ops, "offload:")}
        prefetches = {op.tag.split(":")[1]
                      for op in ops_by_prefix(ops, "prefetch:")}
        assert offloads == prefetches
        # Byte conservation: offloaded == prefetched, exactly once each.
        out_bytes = sum(op.nbytes
                        for op in ops_by_prefix(ops, "offload:"))
        in_bytes = sum(op.nbytes
                       for op in ops_by_prefix(ops, "prefetch:"))
        assert out_bytes == in_bytes == plan.offload_bytes_per_device

    def test_prefetch_depends_on_its_offload(self):
        net = build_network("AlexNet")
        config = dc_dla()
        plan = plan_iteration(net, config, 64, ParallelStrategy.DATA)
        ops = build_iteration_ops(plan, config)
        offload_uid = {op.tag.split(":")[1]: op.uid
                       for op in ops_by_prefix(ops, "offload:")}
        for op in ops_by_prefix(ops, "prefetch:"):
            tensor = op.tag.split(":")[1]
            assert offload_uid[tensor] in op.deps

    def test_recompute_ops_for_cheap_layers(self):
        net = build_network("AlexNet")
        config = dc_dla()
        plan = plan_iteration(net, config, 64, ParallelStrategy.DATA)
        ops = build_iteration_ops(plan, config)
        recomputed = {op.tag.split(":")[1]
                      for op in ops_by_prefix(ops, "recompute:")}
        assert "relu1" in recomputed and "pool1" in recomputed
        assert "conv1" not in recomputed

    def test_dp_sync_ops_only_backward(self):
        net = build_network("VGG-E")
        config = dc_dla()
        plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
        ops = build_iteration_ops(plan, config)
        assert not ops_by_prefix(ops, "sync-fwd:")
        assert len(ops_by_prefix(ops, "sync-bwd:")) == 19

    def test_mp_sync_ops_both_directions(self):
        net = build_network("AlexNet")
        config = dc_dla()
        plan = plan_iteration(net, config, 512, ParallelStrategy.MODEL)
        ops = build_iteration_ops(plan, config)
        assert len(ops_by_prefix(ops, "sync-fwd:")) > 0
        assert len(ops_by_prefix(ops, "sync-bwd:")) > 0

    def test_oracle_emits_no_dma_ops(self):
        net = build_network("VGG-E")
        config = dc_dla_oracle()
        plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
        ops = build_iteration_ops(plan, config)
        assert not ops_by_prefix(ops, "offload:")
        assert not ops_by_prefix(ops, "prefetch:")
        assert not ops_by_prefix(ops, "recompute:")


class TestScheduleSemantics:
    def test_offload_window_backpressure(self):
        """A slow channel with a full pinned-buffer window stalls
        forward compute: makespan grows beyond pure compute."""
        net = build_network("VGG-E")
        slow = dc_dla()
        fast = mc_dla_bw()
        plan_slow = plan_iteration(net, slow, 512, ParallelStrategy.DATA)
        plan_fast = plan_iteration(net, fast, 512, ParallelStrategy.DATA)
        t_slow = run_timeline(build_iteration_ops(plan_slow, slow))
        t_fast = run_timeline(build_iteration_ops(plan_fast, fast))
        assert t_slow.makespan > 2 * t_fast.makespan

    def test_makespan_at_least_compute(self):
        net = build_network("ResNet")
        for config in (dc_dla(), mc_dla_bw(), dc_dla_oracle()):
            plan = plan_iteration(net, config, 512, ParallelStrategy.DATA)
            result = run_timeline(build_iteration_ops(plan, config))
            assert result.makespan \
                >= result.busy_time(EngineKind.COMPUTE) - 1e-9

    def test_rnn_chain_schedules(self):
        net = build_network("RNN-LSTM-1")
        config = mc_dla_bw()
        plan = plan_iteration(net, config, 512, ParallelStrategy.MODEL)
        result = run_timeline(build_iteration_ops(plan, config))
        assert result.makespan > 0
