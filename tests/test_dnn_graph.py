"""Tests for repro.dnn.graph (the network DAG)."""

import pytest

from repro.dnn.graph import Network, NetworkSummary, input_layer
from repro.dnn.layers import Layer, LayerKind
from repro.dnn.shapes import fc_gemm
from repro.units import FP32_BYTES


def linear_net(depth=3):
    """input -> fc1 -> fc2 -> ... (each 10 wide)."""
    net = Network("linear")
    net.add_layer(input_layer("in", 10))
    prev = "in"
    for i in range(1, depth + 1):
        net.add_layer(Layer(name=f"fc{i}", kind=LayerKind.FC,
                            out_elems=10, weight_elems=100,
                            gemms=(fc_gemm(10, 10),)),
                      inputs=[prev])
        prev = f"fc{i}"
    net.validate()
    return net


def diamond_net():
    """input -> a -> {b, c} -> d (concat)."""
    net = Network("diamond")
    net.add_layer(input_layer("in", 8))
    net.add_layer(Layer(name="a", kind=LayerKind.FC, out_elems=8,
                        weight_elems=64, gemms=(fc_gemm(8, 8),)),
                  inputs=["in"])
    for branch in ("b", "c"):
        net.add_layer(Layer(name=branch, kind=LayerKind.FC, out_elems=4,
                            weight_elems=32, gemms=(fc_gemm(4, 8),)),
                      inputs=["a"])
    net.add_layer(Layer(name="d", kind=LayerKind.CONCAT, out_elems=8,
                        stream_elems=16), inputs=["b", "c"])
    net.validate()
    return net


class TestConstruction:
    def test_rejects_duplicate_names(self):
        net = Network("n")
        net.add_layer(input_layer("in", 4))
        with pytest.raises(ValueError):
            net.add_layer(input_layer("in", 4))

    def test_rejects_unknown_producer(self):
        net = Network("n")
        with pytest.raises(ValueError):
            net.add_layer(Layer(name="x", kind=LayerKind.ACT,
                                out_elems=1), inputs=["ghost"])

    def test_validate_rejects_orphan_noninput(self):
        net = Network("n")
        net.add_layer(Layer(name="orphan", kind=LayerKind.ACT,
                            out_elems=1))
        with pytest.raises(ValueError):
            net.validate()

    def test_layer_lookup_and_membership(self):
        net = linear_net()
        assert "fc1" in net
        assert "nope" not in net
        assert net.layer("fc1").kind is LayerKind.FC
        assert len(net) == 4


class TestOrdering:
    def test_insertion_order_is_topological(self):
        net = diamond_net()
        order = net.layer_names
        assert order.index("a") < order.index("b")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_predecessors_and_successors_sorted(self):
        net = diamond_net()
        assert net.predecessors("d") == ["b", "c"]
        assert net.successors("a") == ["b", "c"]

    def test_last_forward_consumer(self):
        net = diamond_net()
        assert net.last_forward_consumer("a") == "c"
        assert net.last_forward_consumer("d") == "d"  # no consumers

    def test_reuse_distance_shrinks_toward_output(self):
        net = linear_net(depth=5)
        distances = [net.reuse_distance(f"fc{i}") for i in range(1, 6)]
        assert distances == sorted(distances, reverse=True)
        assert net.reuse_distance("fc5") == 0


class TestAccounting:
    def test_weight_bytes(self):
        net = linear_net(depth=3)
        assert net.weight_bytes() == 3 * 100 * FP32_BYTES

    def test_weight_groups_counted_once(self):
        net = Network("shared")
        net.add_layer(input_layer("in", 4))
        prev = "in"
        for t in range(3):
            net.add_layer(Layer(name=f"cell{t}",
                                kind=LayerKind.RNN_CELL, out_elems=4,
                                weight_elems=16, weight_group="g"),
                          inputs=[prev])
            prev = f"cell{t}"
        assert net.weight_bytes() == 16 * FP32_BYTES
        assert net.learned_layer_count == 1

    def test_feature_map_bytes(self):
        net = linear_net(depth=2)
        # input (10) + fc1 (10) + fc2 (10) elems per sample.
        assert net.feature_map_bytes(2) == 2 * 30 * FP32_BYTES

    def test_virtualized_bytes_excludes_input_and_cheap(self):
        net = diamond_net()
        # a, b, c are FC (offloadable); d is a cheap concat; input out.
        expected = (8 + 4 + 4) * 1 * FP32_BYTES
        assert net.virtualized_bytes(1) == expected

    def test_training_footprint_is_o_of_depth(self):
        shallow = linear_net(depth=2).training_footprint_bytes(4)
        deep = linear_net(depth=8).training_footprint_bytes(4)
        assert deep > shallow

    def test_macs_aggregation(self):
        net = linear_net(depth=3)
        assert net.fwd_macs(2) == 3 * 2 * 10 * 10
        assert net.bwd_macs(2) == 2 * net.fwd_macs(2)


class TestSummary:
    def test_summary_fields(self):
        summary = NetworkSummary.of(linear_net(depth=3), batch=4)
        assert summary.name == "linear"
        assert summary.layer_count == 4
        assert summary.learned_layers == 3
        assert summary.weight_mbytes > 0
        assert summary.fwd_gmacs > 0
