"""The fault-injection engine: model, lowering, recovery, campaigns.

The acceptance property: the null fault model is provably inert --
``fault_model="none"`` configs produce results byte-identical to the
pre-fault code path (frozen-dataclass ``to_dict`` equality compares
every float exactly), across all six designs and every execution mode.
Seeded fault runs are deterministic and snapshot into
``tests/golden/faults.json``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.__main__ import main as repro_main
from repro.campaign import fault_grid, grid
from repro.campaign.cli import _CSV_FIELDS
from repro.campaign.cli import main as campaign_cli
from repro.cluster.jobs import JobKind, JobSpec
from repro.cluster.oracle import CostOracle
from repro.cluster.simulator import ClusterSimulator, simulate_cluster
from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.metrics import FaultStats, SimulationResult
from repro.core.simulator import simulate
from repro.core.trace import cluster_chrome_trace
from repro.experiments.faults_comparison import (
    MODES, comparison_points, format_fault_comparison,
    run_fault_comparison, scalars_json)
from repro.faults import (FAULT_MODEL_ORDER, FaultModel,
                          active_fault_model, degraded_config,
                          fault_model, healthy_config)
from repro.serving import (BatchPolicy, ServingLedger, compute_stats,
                           simulate_serving)
from repro.training.parallel import ParallelStrategy


def faulted(design: str, model: str):
    return dataclasses.replace(design_point(design), fault_model=model)


class TestFaultModel:
    def test_registry_covers_order(self):
        for name in FAULT_MODEL_ORDER:
            assert fault_model(name).name == name

    def test_unknown_model_raises_with_known_list(self):
        with pytest.raises(KeyError, match="flaky-link"):
            fault_model("meteor-strike")

    def test_null_model_is_null(self):
        null = FaultModel()
        assert null.is_null
        assert null.bandwidth_multiplier == 1.0
        assert null.compute_multiplier == 1.0
        assert not null.flaps

    def test_every_preset_except_none_is_active(self):
        for name in FAULT_MODEL_ORDER:
            assert fault_model(name).is_null == (name == "none")

    def test_flap_windows_deterministic_and_disjoint(self):
        model = fault_model("flaky-link")
        windows = [model.flap_window(k) for k in range(1, 21)]
        assert windows == [model.flap_window(k) for k in range(1, 21)]
        for k, (start, end) in enumerate(windows, start=1):
            assert k * model.flap_period <= start
            assert end <= (k + 1) * model.flap_period
            assert end - start == pytest.approx(model.flap_duration)
        for (_, end), (start, _) in zip(windows, windows[1:]):
            assert end < start

    def test_in_flap_matches_windows(self):
        model = fault_model("flaky-link")
        start, end = model.flap_window(3)
        midpoint = 0.5 * (start + end)
        assert model.in_flap(midpoint)
        assert not model.in_flap(start - 1e-6)
        assert not model.in_flap(end + 1e-6)

    def test_flap_duration_bound_enforced(self):
        with pytest.raises(ValueError, match="0.75"):
            FaultModel(name="x", flap_period=10.0, flap_duration=9.0,
                       link_degradation=0.5)

    def test_bandwidth_multiplier_blends_duty(self):
        model = FaultModel(name="x", flap_period=10.0,
                           flap_duration=5.0, link_degradation=0.5)
        # 50% duty at half bandwidth -> 75% mean bandwidth.
        assert model.bandwidth_multiplier == pytest.approx(0.75)
        assert model.standing_multiplier == 1.0

    def test_standing_derating(self):
        model = fault_model("degraded-link")
        assert model.standing_multiplier == pytest.approx(0.5)
        assert model.bandwidth_multiplier == pytest.approx(0.5)


class TestInertness:
    """The null model must be byte-invisible everywhere."""

    @pytest.mark.parametrize("design", DESIGN_ORDER)
    @pytest.mark.parametrize("network", ("AlexNet", "RNN-GEMV"))
    def test_training_grid_byte_identical(self, design, network):
        base = simulate(design_point(design), network, 256)
        none = simulate(faulted(design, "none"), network, 256)
        assert none.faults is None
        assert none.to_dict() == base.to_dict()

    def test_serving_byte_identical(self):
        knobs = dict(rate=400.0, n_requests=64, seed=0, slo=0.05)
        base = simulate_serving(design_point("MC-DLA(B)"), "GPT2",
                                **knobs)
        none = simulate_serving(faulted("MC-DLA(B)", "none"), "GPT2",
                                **knobs)
        assert none.faults is None
        assert none.to_dict() == base.to_dict()

    def test_cluster_byte_identical(self):
        base = simulate_cluster(design_point("MC-DLA(B)"), n_jobs=6,
                                seed=0)
        none = simulate_cluster(faulted("MC-DLA(B)", "none"), n_jobs=6,
                                seed=0)
        assert none.faults is None
        assert none.to_dict() == base.to_dict()

    def test_active_fault_model_none_for_null(self):
        assert active_fault_model(design_point("DC-DLA")) is None
        assert active_fault_model(faulted("DC-DLA", "none")) is None
        assert active_fault_model(
            faulted("DC-DLA", "storm")).name == "storm"

    def test_unknown_fault_model_rejected_on_config(self):
        with pytest.raises(ValueError, match="fault model"):
            faulted("DC-DLA", "meteor-strike")


class TestLowering:
    def test_degraded_config_scales_fabric(self):
        config = faulted("MC-DLA(B)", "degraded-link")
        degraded = degraded_config(config)
        assert degraded.fault_model == "none"
        assert degraded.vmem.channel.peak_bw == pytest.approx(
            0.5 * config.vmem.channel.peak_bw)

    def test_degraded_config_slows_straggler_gang(self):
        config = faulted("DC-DLA(O)", "straggler")
        model = fault_model("straggler")
        degraded = degraded_config(config)
        assert degraded.device.pe_array.frequency == pytest.approx(
            config.device.pe_array.frequency
            / model.compute_multiplier)

    def test_healthy_config_strips_model(self):
        config = faulted("MC-DLA(B)", "storm")
        healthy = healthy_config(config)
        assert healthy.fault_model == "none"
        assert healthy.vmem.channel.peak_bw \
            == design_point("MC-DLA(B)").vmem.channel.peak_bw


class TestTrainingFaults:
    def test_storm_slows_and_reports(self):
        result = simulate(faulted("MC-DLA(B)", "storm"), "VGG-E", 512)
        healthy = simulate(design_point("MC-DLA(B)"), "VGG-E", 512)
        stats = result.faults
        assert stats is not None and stats.model == "storm"
        assert result.iteration_time > healthy.iteration_time
        assert stats.slowdown == pytest.approx(
            result.iteration_time / healthy.iteration_time)
        assert stats.availability == pytest.approx(1 / stats.slowdown)
        assert stats.injected_events > 0

    def test_deterministic(self):
        a = simulate(faulted("MC-DLA(S)", "flaky-link"), "AlexNet", 256)
        b = simulate(faulted("MC-DLA(S)", "flaky-link"), "AlexNet", 256)
        assert a.to_dict() == b.to_dict()

    def test_link_faults_leave_compute_untouched(self):
        """A degraded fabric stretches sync and migration but cannot
        slow the PE array itself (only ``straggler`` does that)."""
        healthy = simulate(design_point("MC-DLA(B)"), "AlexNet", 256)
        for model in ("flaky-link", "degraded-link"):
            result = simulate(faulted("MC-DLA(B)", model),
                              "AlexNet", 256)
            assert result.breakdown.compute == pytest.approx(
                healthy.breakdown.compute)
            assert result.iteration_time >= healthy.iteration_time

    def test_fault_stats_round_trip(self):
        result = simulate(faulted("MC-DLA(B)", "storm"), "AlexNet", 256)
        restored = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert restored.faults == result.faults
        assert restored == result

    def test_fault_stats_validation(self):
        with pytest.raises(ValueError, match="non-null model"):
            FaultStats(model="none", injected_events=0,
                       degraded_seconds=0.0, slowdown=1.0, retries=0,
                       shed_requests=0, timed_out_requests=0,
                       recovery_bytes=0, availability=1.0)
        with pytest.raises(ValueError, match="slowdown"):
            FaultStats(model="storm", injected_events=0,
                       degraded_seconds=0.0, slowdown=0.0, retries=0,
                       shed_requests=0, timed_out_requests=0,
                       recovery_bytes=0, availability=1.0)


class TestServingFaults:
    def test_storm_sheds_and_times_out(self):
        result = simulate_serving(
            faulted("MC-DLA(B)", "storm"), "GPT2",
            batcher="continuous", rate=2000.0, n_requests=128,
            seed=0, slo=0.02, max_batch=8)
        stats = result.faults
        assert stats is not None
        assert stats.shed_requests + stats.timed_out_requests > 0
        offered = (result.serving.n_requests + stats.shed_requests
                   + stats.timed_out_requests)
        assert offered == 128
        assert stats.availability == pytest.approx(
            result.serving.n_requests / offered)

    def test_deterministic(self):
        knobs = dict(rate=800.0, n_requests=64, seed=3, slo=0.05)
        a = simulate_serving(faulted("MC-DLA(B)", "storm"), "GPT2",
                             **knobs)
        b = simulate_serving(faulted("MC-DLA(B)", "storm"), "GPT2",
                             **knobs)
        assert a.to_dict() == b.to_dict()

    def test_zero_request_stats_are_zeroed(self):
        """Regression: an all-shed ledger must not divide by zero."""
        ledger = ServingLedger(completed=(), busy=0.0, n_batches=0,
                               work_items=0, n_shed=5)
        stats = compute_stats(
            ledger, arrival="poisson", batcher="dynamic",
            policy=BatchPolicy(max_batch=8, max_wait=0.002),
            slo=0.05, offered_rate=100.0, n_servers=1)
        assert stats.n_requests == 0
        assert stats.throughput == 0.0
        assert stats.latency_p99 == 0.0
        assert stats.slo_attainment == 0.0


#: Explicit node-loss recovery scenario: four long jobs whose
#: reservations exactly fill the pool, so losing a quarter of it must
#: force-evict a tenant (each job stays under the post-loss floor).
def _node_loss_jobs():
    return tuple(JobSpec(jid=j, arrival=0.0, kind=JobKind.TRAINING,
                         network="AlexNet", batch=256,
                         iterations=4000, width=2) for j in range(4))


def _node_loss_pool(config) -> int:
    oracle = CostOracle(design_point(config.name))
    return 4 * oracle.profile(_node_loss_jobs()[0]).pool_bytes


class TestClusterFaults:
    def test_node_loss_evicts_and_retries(self):
        config = faulted("MC-DLA(B)", "node-loss")
        result = simulate_cluster(
            config, jobs=_node_loss_jobs(), fleet_devices=8,
            pool_capacity=_node_loss_pool(config),
            oversubscription=1.0)
        stats = result.faults
        assert stats is not None and stats.model == "node-loss"
        assert stats.injected_events >= 1
        assert stats.retries >= 1
        assert stats.recovery_bytes > 0
        assert stats.slowdown > 1.0
        assert stats.availability < 1.0
        assert result.cluster.preemptions >= stats.retries

    def test_node_loss_deterministic(self):
        config = faulted("MC-DLA(B)", "node-loss")
        kwargs = dict(jobs=_node_loss_jobs(), fleet_devices=8,
                      pool_capacity=_node_loss_pool(config),
                      oversubscription=1.0)
        assert simulate_cluster(config, **kwargs).to_dict() \
            == simulate_cluster(config, **kwargs).to_dict()

    def test_flaky_link_dilates_in_flight_jobs(self):
        result = simulate_cluster(faulted("MC-DLA(B)", "flaky-link"),
                                  n_jobs=6, seed=0,
                                  oversubscription=1.5)
        stats = result.faults
        assert stats is not None
        assert stats.slowdown >= 1.0
        assert stats.degraded_seconds >= 0.0

    def test_fault_event_renders_in_chrome_trace(self):
        config = faulted("MC-DLA(B)", "node-loss")
        sim = ClusterSimulator(config, fleet_devices=8,
                               pool_capacity=_node_loss_pool(config),
                               oversubscription=1.0)
        ledger, _ = sim.run(_node_loss_jobs())
        fault_events = [e for e in ledger.events if e[0] == "fault"]
        assert fault_events and fault_events[0][1] == -1
        trace = json.loads(cluster_chrome_trace(ledger.events))
        instants = [e for e in trace["traceEvents"]
                    if e.get("cat") == "fault"]
        assert len(instants) == len(fault_events)
        assert all(e["ph"] == "i" for e in instants)


class TestCampaignAxis:
    BASE = grid(("DC-DLA", "MC-DLA(B)"), ("AlexNet",), (256,),
                (ParallelStrategy.DATA,))

    def test_fault_grid_labels_and_replacements(self):
        points = fault_grid(self.BASE, ("none", "storm"))
        assert len(points) == 2 * len(self.BASE)
        labels = {p.label for p in points}
        assert "DC-DLA|none" in labels and "MC-DLA(B)|storm" in labels
        for point in points:
            models = [v for k, v in point.replacements
                      if k == "fault_model"]
            assert len(models) == 1
            assert point.label.endswith(f"|{models[0]}")

    def test_fault_grid_overrides_existing_model(self):
        seeded = dataclasses.replace(
            self.BASE[0], replacements=(("fault_model", "storm"),))
        (point,) = fault_grid((seeded,), ("flaky-link",))
        assert dict(point.replacements)["fault_model"] == "flaky-link"

    def test_fault_grid_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            fault_grid(self.BASE, ("chaos",))

    def test_csv_prefix_fields_stable(self):
        """CI cuts columns 1-15; fault columns must append later."""
        assert _CSV_FIELDS[:15] == (
            "design", "network", "batch", "strategy", "n_devices",
            "iteration_time", "throughput", "compute", "sync", "vmem",
            "offload_bytes_per_device", "sync_bytes",
            "host_traffic_bytes_per_device", "fits_in_device_memory",
            "bubble_fraction")
        assert _CSV_FIELDS[-1] == "cached"
        assert "fault_model" in _CSV_FIELDS

    def test_cli_fault_axis_csv(self, tmp_path):
        out = tmp_path / "faults.csv"
        code = campaign_cli([
            "--designs", "DC-DLA", "--networks", "AlexNet",
            "--batches", "256", "--strategies", "data",
            "--fault-models", "none,storm", "--no-cache",
            "--format", "csv", "-o", str(out), "-q"])
        assert code == 0
        header, *rows = out.read_text().strip().split("\n")
        assert header.split(",") == list(_CSV_FIELDS)
        assert len(rows) == 2
        by_model = {r.split(",")[0]: r for r in rows}
        assert by_model["DC-DLA|storm"].split(",")[
            _CSV_FIELDS.index("fault_model")] == "storm"
        assert by_model["DC-DLA|none"].split(",")[
            _CSV_FIELDS.index("fault_model")] == ""

    def test_cli_rejects_unknown_fault_model(self, capsys):
        code = campaign_cli(["--fault-models", "chaos", "--no-cache"])
        assert code == 2
        assert "unknown fault model" in capsys.readouterr().err


@pytest.fixture(scope="module")
def quick_study():
    return run_fault_comparison(modes=("training",),
                                training_network="AlexNet")


class TestFaultsStudy:
    def test_covers_every_design_and_model(self, quick_study):
        for design in DESIGN_ORDER:
            for model in FAULT_MODEL_ORDER:
                result = quick_study.at("training", design, model)
                assert result.system == design

    def test_full_grid_shape(self):
        points = comparison_points()
        assert len(points) == (len(MODES) * len(DESIGN_ORDER)
                               * len(FAULT_MODEL_ORDER))
        assert len({p.label for p in points}) == len(points)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            comparison_points(modes=("training", "chaos"))

    def test_none_is_never_slower(self, quick_study):
        """Fault injection can only take performance away."""
        for design in DESIGN_ORDER:
            baseline = quick_study.at("training", design,
                                      "none").iteration_time
            for model in FAULT_MODEL_ORDER:
                result = quick_study.at("training", design, model)
                assert result.iteration_time >= baseline - 1e-12
                if result.faults is not None:
                    assert result.faults.slowdown >= 1.0 - 1e-9

    def test_formatting_has_tables_and_headlines(self, quick_study):
        text = format_fault_comparison(quick_study)
        assert "Fault models x designs: training" in text
        assert "worst storm slowdown (training)" in text
        for model in FAULT_MODEL_ORDER:
            assert model in text

    def test_scalars_json_is_deterministic(self, quick_study):
        again = run_fault_comparison(modes=("training",),
                                     training_network="AlexNet")
        assert scalars_json(quick_study) == scalars_json(again)

    def test_golden_snapshot(self, quick_study, golden):
        golden.check("faults", quick_study.scalars())


class TestFaultsCli:
    def test_quick_json_output(self, tmp_path):
        out = tmp_path / "study.json"
        code = repro_main(["faults", "--quick", "--format", "json",
                           "-o", str(out)])
        assert code == 0
        scalars = json.loads(out.read_text())
        assert any(key.endswith("/slowdown") for key in scalars)

    def test_rejects_unknown_model(self, capsys):
        code = repro_main(["faults", "--fault-models", "chaos"])
        assert code == 2
        assert "unknown fault model" in capsys.readouterr().err
