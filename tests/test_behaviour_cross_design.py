"""Behavioral tests across design-point variations.

Each test states one causal claim from the paper ("X helps because Y")
and verifies the simulator reproduces it -- these are the checks that
distinguish a system model from a curve fit.
"""

import pytest

from repro.accelerator.generations import PASCAL, TPUV2
from repro.core.design_points import dc_dla, dc_dla_oracle, mc_dla_bw
from repro.core.simulator import simulate
from repro.interconnect.link import NVLINK2, PCIE_GEN4
from repro.training.parallel import ParallelStrategy


class TestHostChannelEffects:
    def test_pcie_gen4_speeds_up_dc_dla(self):
        gen3 = simulate(dc_dla(), "VGG-E", 512)
        gen4 = simulate(dc_dla(pcie=PCIE_GEN4), "VGG-E", 512)
        assert gen4.iteration_time < gen3.iteration_time
        # ... but cannot beat the oracle.
        oracle = simulate(dc_dla_oracle(), "VGG-E", 512)
        assert gen4.iteration_time > oracle.iteration_time

    def test_pcie_gen4_does_not_affect_oracle_compute(self):
        gen3 = simulate(dc_dla(), "VGG-E", 512)
        gen4 = simulate(dc_dla(pcie=PCIE_GEN4), "VGG-E", 512)
        assert gen4.breakdown.compute \
            == pytest.approx(gen3.breakdown.compute)

    def test_compression_reduces_migration_latency_only(self):
        plain = simulate(dc_dla(), "VGG-E", 512)
        cdma = simulate(dc_dla(compression=2.6), "VGG-E", 512)
        assert cdma.breakdown.vmem < plain.breakdown.vmem / 2
        assert cdma.breakdown.sync == pytest.approx(plain.breakdown.sync)
        # Offload *bytes* are accounted uncompressed (same tensors).
        assert cdma.offload_bytes_per_device \
            == plain.offload_bytes_per_device

    def test_shared_uplinks_hurt_only_virtualized_runs(self):
        shared = simulate(dc_dla(shared_uplinks=True), "VGG-E", 512)
        dedicated = simulate(dc_dla(), "VGG-E", 512)
        assert shared.iteration_time > dedicated.iteration_time
        assert shared.breakdown.compute \
            == pytest.approx(dedicated.breakdown.compute)


class TestDeviceSpeedEffects:
    def test_faster_devices_widen_the_gap(self):
        """Section V-B: on TPUv2-class devices, DC-DLA becomes fully
        migration-bound, so MC-DLA's advantage grows."""
        def gap(device):
            dc = simulate(dc_dla(device=device), "VGG-E", 512)
            mc = simulate(mc_dla_bw(device=device), "VGG-E", 512)
            return mc.speedup_over(dc)
        assert gap(TPUV2) > gap(PASCAL)

    def test_faster_device_shrinks_compute_not_vmem(self):
        slow = simulate(dc_dla(device=PASCAL), "VGG-E", 512)
        fast = simulate(dc_dla(device=TPUV2), "VGG-E", 512)
        assert fast.breakdown.compute < slow.breakdown.compute
        assert fast.breakdown.vmem == pytest.approx(slow.breakdown.vmem,
                                                    rel=1e-6)


class TestInterconnectEffects:
    def test_nvlink2_speeds_up_both_sync_and_vmem_on_mc(self):
        base = simulate(mc_dla_bw(), "RNN-LSTM-2", 512)
        fat = simulate(mc_dla_bw(link=NVLINK2), "RNN-LSTM-2", 512)
        assert fat.breakdown.sync < base.breakdown.sync
        assert fat.breakdown.vmem < base.breakdown.vmem

    def test_more_devices_slow_collectives_only(self):
        """Weak scaling: 16-device rings are longer, so dW all-reduce
        costs more, but per-device compute and migration stay put."""
        small = simulate(dc_dla(n_devices=8), "RNN-LSTM-2", 512)
        large = simulate(dc_dla(n_devices=16), "RNN-LSTM-2", 512)
        assert large.breakdown.sync > small.breakdown.sync
        assert large.breakdown.compute \
            == pytest.approx(small.breakdown.compute)
        assert large.breakdown.vmem \
            == pytest.approx(small.breakdown.vmem, rel=1e-6)


class TestWorkloadCharacter:
    def test_cnns_are_fmap_dominated_rnns_weight_dominated(self):
        """Section V-A's taxonomy drives which designs win where."""
        vgg = simulate(dc_dla(), "VGG-E", 512)
        lstm = simulate(dc_dla(), "RNN-LSTM-2", 512)
        # VGG's migrated fmaps dwarf its synchronized weights ...
        assert vgg.offload_bytes_per_device > 10 * vgg.sync_bytes
        # ... while the big LSTM synchronizes more than it migrates
        # per timestep-chunk (weights > activations per step).
        assert lstm.sync_bytes > lstm.offload_bytes_per_device / 25

    def test_model_parallel_migrates_more_per_device(self):
        dp = simulate(mc_dla_bw(), "VGG-E", 512, ParallelStrategy.DATA)
        mp = simulate(mc_dla_bw(), "VGG-E", 512, ParallelStrategy.MODEL)
        # Gathered full-size feature maps vs per-worker shards.
        assert mp.offload_bytes_per_device \
            == pytest.approx(dp.offload_bytes_per_device, rel=1e-6)
        assert mp.sync_bytes > dp.sync_bytes

    def test_oracle_iteration_is_pure_compute_plus_sync(self):
        result = simulate(dc_dla_oracle(), "ResNet", 512)
        assert result.breakdown.vmem == 0.0
        assert result.iteration_time \
            <= result.breakdown.compute + result.breakdown.sync + 1e-9
