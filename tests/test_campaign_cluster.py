"""Campaign integration of cluster cells: grids, dispatch, caching."""

import json

import pytest

from repro.campaign import (CampaignPoint, ResultCache, cluster_grid,
                            run_campaign)
from repro.core.metrics import ExecutionMode
from repro.units import TB

QUICK = dict(n_jobs=6, pool_capacity=1 * TB)


class TestClusterGrid:
    def test_shape_and_labels(self):
        points = cluster_grid(("DC-DLA", "MC-DLA(B)"),
                              policies=("fifo", "sjf"),
                              job_mixes=("balanced",),
                              oversubscription=(1.0, 1.5), **QUICK)
        assert len(points) == 8
        labels = {p.label for p in points}
        assert "DC-DLA|fifo|balanced|os1" in labels
        assert "MC-DLA(B)|sjf|balanced|os1.5" in labels
        assert all(p.is_cluster and not p.is_serving for p in points)
        assert all(p.network == "mix:balanced" for p in points)

    def test_knobs_ride_in_cluster_tuple(self):
        (point,) = cluster_grid(("DC-DLA",), policies=("gang",),
                                seed=7, preempt_after=60.0, **QUICK)
        knobs = dict(point.cluster)
        assert knobs["policy"] == "gang"
        assert knobs["seed"] == 7
        assert knobs["preempt_after"] == 60.0
        assert knobs["pool_capacity"] == 1 * TB

    def test_describe_includes_cluster(self):
        (point,) = cluster_grid(("DC-DLA",), **QUICK)
        description = point.describe()
        assert description["cluster"]
        # The description must be JSON-stable (it feeds the cache key).
        json.dumps(description, sort_keys=True)

    def test_serving_and_cluster_are_exclusive(self):
        with pytest.raises(ValueError):
            CampaignPoint("DC-DLA", "GPT2",
                          serving=(("rate", 100.0),),
                          cluster=(("policy", "fifo"),))


class TestClusterDispatch:
    @pytest.fixture(scope="class")
    def points(self):
        return cluster_grid(("MC-DLA(B)", "DC-DLA(O)"),
                            policies=("fifo",), **QUICK)

    def test_serial_run(self, points):
        report = run_campaign(points).raise_failures()
        for outcome in report.outcomes:
            assert outcome.result.mode is ExecutionMode.CLUSTER
            assert outcome.result.cluster is not None
            assert outcome.result.cluster.policy == "fifo"

    def test_pooled_matches_serial(self, points):
        serial = run_campaign(points).raise_failures()
        pooled = run_campaign(points, jobs=2).raise_failures()
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert a.result == b.result

    def test_cache_replay_byte_identical(self, points, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_campaign(points, cache=cache).raise_failures()
        assert all(not o.cached for o in cold.outcomes)
        warm = run_campaign(points, cache=cache).raise_failures()
        assert all(o.cached for o in warm.outcomes)
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert json.dumps(a.result.to_dict(), sort_keys=True) == \
                json.dumps(b.result.to_dict(), sort_keys=True)

    def test_failures_reported_per_cell(self):
        bad = cluster_grid(("MC-DLA(B)",), policies=("fifo",),
                           n_jobs=6, pool_capacity=1)  # nothing fits
        report = run_campaign(bad)
        assert len(report.failures) == 1
        assert "pool" in report.failures[0].error


class TestClusterCampaignCli:
    def test_cluster_cells_via_cli(self, tmp_path, capsys):
        from repro.campaign.cli import main
        out = tmp_path / "cluster.json"
        code = main(["--designs", "MC-DLA(B)", "--strategies", "",
                     "--policies", "fifo", "--cluster-jobs", "6",
                     "--pool-gb", "1024", "--no-cache", "--quiet",
                     "--format", "json", "-o", str(out)])
        assert code == 0
        rows = json.loads(out.read_text())
        assert len(rows) == 1
        row = rows[0]
        assert row["mode"] == "cluster"
        assert row["cluster"]["n_jobs"] == 6
        assert row["jct_p95"] >= row["jct_p50"] > 0

    def test_cluster_csv_columns(self, tmp_path):
        from repro.campaign.cli import main
        out = tmp_path / "cluster.csv"
        code = main(["--designs", "MC-DLA(B)", "--strategies", "",
                     "--policies", "fifo", "--cluster-jobs", "6",
                     "--pool-gb", "1024", "--no-cache", "--quiet",
                     "--format", "csv", "-o", str(out)])
        assert code == 0
        header, row = out.read_text().strip().splitlines()
        fields = dict(zip(header.split(","), row.split(",")))
        assert fields["mode"] == "cluster"
        assert float(fields["jct_p95"]) > 0
        assert 0.0 <= float(fields["pool_utilization"]) <= 1.0
        assert fields["preemptions"] == "0"

    def test_unknown_policy_rejected(self, capsys):
        from repro.campaign.cli import main
        assert main(["--policies", "wfq", "--quiet"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_mix_rejected(self, capsys):
        from repro.campaign.cli import main
        assert main(["--policies", "fifo", "--job-mixes", "nope",
                     "--quiet"]) == 2
        assert "unknown job mix" in capsys.readouterr().err

    def test_table_renders_cluster_columns(self, capsys):
        from repro.campaign.cli import main
        code = main(["--designs", "MC-DLA(B)", "--strategies", "",
                     "--policies", "fifo", "--cluster-jobs", "6",
                     "--pool-gb", "1024", "--no-cache", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "JCT p95" in out and "pool util" in out
        assert "jobs/h" in out
