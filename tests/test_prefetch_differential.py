"""Differential guards for the prefetch-policy refactor.

Two contracts from the issue:

* the ``on-demand`` policy must reproduce the seed's schedules --
  gate structure and legacy DMA pricing -- byte-for-byte (the golden
  figure snapshots in ``tests/golden/`` pin the resulting numbers, and
  the structural tests here pin the mechanism);
* the ``clairvoyant`` oracle must weakly dominate every other policy
  on stall seconds across the full design x network matrix, and
  strictly beat on-demand on every memory-centric design for the
  convolutional stress workloads.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.metrics import ExecutionMode
from repro.core.schedule import (build_iteration_ops, plan_iteration,
                                 plan_training_prefetch)
from repro.core.simulator import simulate
from repro.core.system import SystemConfig
from repro.dnn.registry import BENCHMARK_NAMES, build_network
from repro.training.parallel import ParallelStrategy
from repro.vmem.prefetch import ON_DEMAND, PREFETCH_POLICY_ORDER

MC_DESIGNS = ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)")
CONV_NETWORKS = ("AlexNet", "GoogLeNet", "VGG-E", "ResNet")


def with_policy(config: SystemConfig, policy: str) -> SystemConfig:
    return dataclasses.replace(config, prefetch_policy=policy)


@pytest.fixture(scope="module")
def policy_matrix():
    """(design, network, policy) -> SimulationResult, full matrix."""
    results = {}
    for design in DESIGN_ORDER:
        base = design_point(design)
        for network in BENCHMARK_NAMES:
            for policy in PREFETCH_POLICY_ORDER:
                results[(design, network, policy)] = simulate(
                    with_policy(base, policy), network, 256)
    return results


class TestOnDemandIsTheSeed:
    """The refactor's baseline is structurally the seed's scheduler."""

    def test_default_policy_is_on_demand(self):
        assert design_point("DC-DLA").prefetch_policy == ON_DEMAND

    @pytest.mark.parametrize("design", ("DC-DLA", "MC-DLA(B)"))
    @pytest.mark.parametrize("network", ("AlexNet", "GoogLeNet"))
    def test_on_demand_gates_and_pricing_match_seed(self, design,
                                                    network):
        """Re-derive the seed's emission inline and compare op-for-op.

        The seed gated each backward-step prefetch on the compute of
        ``prefetch_window`` steps earlier and priced every DMA at the
        always-contended ``vmem.transfer_time``.
        """
        config = design_point(design)
        net_plan = plan_iteration(build_network(network), config, 256,
                                  ParallelStrategy.DATA)
        ops = build_iteration_ops(net_plan, config)

        uid_of = {op.uid: op for op in ops.ops}
        bwd_computes = [op.uid for op in ops.ops
                        if op.tag.startswith("bwd:")]
        step_of = {uid_of[uid].tag.split(":", 1)[1]: index
                   for index, uid in enumerate(bwd_computes)}
        offload_of = {op.tag.split(":", 1)[1]: op.uid
                      for op in ops.ops
                      if op.tag.startswith("offload:")}

        prefetches = [op for op in ops.ops
                      if op.tag.startswith("prefetch:")]
        assert prefetches, "stress test must offload something"
        for op in prefetches:
            producer = op.tag.split(":", 1)[1]
            # Seed pricing: always-contended transfer time.
            assert op.duration == config.vmem.transfer_time(op.nbytes)
            # Seed gating: the offload plus (step - window)'s compute.
            consumer = net_plan.step.prefetch_sites
            use_step = next(step_of[name]
                            for name, producers in consumer.items()
                            if producer in producers)
            expected = {offload_of[producer]}
            if use_step >= config.prefetch_window:
                expected.add(
                    bwd_computes[use_step - config.prefetch_window])
            assert set(op.deps) == expected
        # No speculative traffic on the baseline.
        assert not any(op.tag.startswith("waste:") for op in ops.ops)

    def test_explicit_schedule_matches_implicit(self):
        config = design_point("MC-DLA(B)")
        plan = plan_iteration(build_network("AlexNet"), config, 256,
                              ParallelStrategy.DATA)
        sched = plan_training_prefetch(plan, config)
        implicit = build_iteration_ops(plan, config)
        explicit = build_iteration_ops(plan, config, prefetch=sched)
        assert implicit.ops == explicit.ops

    def test_on_demand_result_round_trips_exactly(self, policy_matrix):
        result = policy_matrix[("MC-DLA(B)", "VGG-E", ON_DEMAND)]
        from repro.core.metrics import SimulationResult
        replayed = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert replayed == result
        assert replayed.prefetch == result.prefetch


class TestClairvoyantDominance:
    def test_weakly_dominates_everywhere(self, policy_matrix):
        """Oracle stall <= every policy's stall on every cell."""
        for design in DESIGN_ORDER:
            for network in BENCHMARK_NAMES:
                oracle = policy_matrix[(design, network,
                                        "clairvoyant")]
                for policy in PREFETCH_POLICY_ORDER:
                    other = policy_matrix[(design, network, policy)]
                    assert (oracle.prefetch.stall_seconds
                            <= other.prefetch.stall_seconds + 1e-12), \
                        (design, network, policy)

    def test_weakly_dominates_on_iteration_time(self, policy_matrix):
        for design in DESIGN_ORDER:
            for network in BENCHMARK_NAMES:
                oracle = policy_matrix[(design, network,
                                        "clairvoyant")]
                for policy in PREFETCH_POLICY_ORDER:
                    other = policy_matrix[(design, network, policy)]
                    assert (oracle.iteration_time
                            <= other.iteration_time + 1e-12), \
                        (design, network, policy)

    def test_strictly_beats_on_demand_on_mc_designs(self,
                                                    policy_matrix):
        """The acceptance headline, on the convolutional stress set."""
        for design in MC_DESIGNS:
            for network in CONV_NETWORKS:
                oracle = policy_matrix[(design, network,
                                        "clairvoyant")]
                baseline = policy_matrix[(design, network, ON_DEMAND)]
                assert (oracle.prefetch.stall_seconds
                        < baseline.prefetch.stall_seconds), \
                    (design, network)

    def test_oracle_never_wastes_or_evicts(self, policy_matrix):
        for (_, _, policy), result in policy_matrix.items():
            if policy == "clairvoyant":
                assert result.prefetch.wasted_bytes == 0
                assert result.prefetch.evictions == 0


class TestPolicyAxisInvariants:
    def test_hit_rate_and_histogram_consistent(self, policy_matrix):
        for result in policy_matrix.values():
            stats = result.prefetch
            assert 0.0 <= stats.hit_rate <= 1.0
            assert stats.late + stats.jit + stats.early \
                == stats.n_prefetches
            assert stats.wasted_bytes <= stats.prefetch_bytes

    def test_oracle_design_has_no_prefetch_traffic(self,
                                                   policy_matrix):
        for policy in PREFETCH_POLICY_ORDER:
            result = policy_matrix[("DC-DLA(O)", "VGG-E", policy)]
            assert result.prefetch.n_prefetches == 0
            assert result.prefetch.prefetch_bytes == 0
            assert result.prefetch.stall_seconds == 0.0

    def test_policy_recorded_in_stats(self, policy_matrix):
        for (_, _, policy), result in policy_matrix.items():
            assert result.prefetch.policy == policy


class TestOtherModes:
    @pytest.mark.parametrize("policy", PREFETCH_POLICY_ORDER)
    def test_pipeline_carries_stats_and_oracle_dominates(self, policy):
        config = with_policy(design_point("MC-DLA(B)"), policy)
        result = simulate(config, "GPT2", 64,
                          ParallelStrategy.PIPELINE)
        assert result.prefetch is not None
        assert result.prefetch.policy == policy
        oracle = simulate(with_policy(design_point("MC-DLA(B)"),
                                      "clairvoyant"),
                          "GPT2", 64, ParallelStrategy.PIPELINE)
        assert oracle.prefetch.stall_seconds \
            <= result.prefetch.stall_seconds + 1e-12

    @pytest.mark.parametrize("policy", PREFETCH_POLICY_ORDER)
    def test_inference_weight_stream_is_policy_gated(self, policy):
        config = with_policy(design_point("DC-DLA"), policy)
        result = simulate(config, "GPT2", 8,
                          mode=ExecutionMode.INFERENCE)
        assert result.prefetch is not None
        assert result.prefetch.n_prefetches > 0
        oracle = simulate(with_policy(design_point("DC-DLA"),
                                      "clairvoyant"),
                          "GPT2", 8, mode=ExecutionMode.INFERENCE)
        assert oracle.prefetch.stall_seconds \
            <= result.prefetch.stall_seconds + 1e-12

    def test_contention_pricing_never_slower_than_legacy(self):
        """Policy-engine DMAs ride the blended bandwidth >= the
        always-contended legacy bandwidth, so vmem busy time can only
        shrink when moving off the baseline."""
        for design in ("DC-DLA", "MC-DLA(B)"):
            base = design_point(design)
            legacy = simulate(base, "VGG-E", 256)
            refined = simulate(with_policy(base, "cost-model"),
                               "VGG-E", 256)
            assert refined.breakdown.vmem \
                <= legacy.breakdown.vmem + 1e-12

    def test_waste_ops_tagged_migration_in_trace(self):
        from repro.core.trace import tag_category
        assert tag_category("waste:mispredict:x", strict=True) \
            == "migration"


class TestClusterExposure:
    def test_on_demand_exposure_is_conservative(self):
        from repro.cluster.oracle import CostOracle
        from repro.cluster.jobs import generate_jobs
        config = design_point("MC-DLA(B)")
        spec = generate_jobs("balanced", 4, seed=0,
                             arrival_rate=0.05, node_width=8)[0]
        profile = CostOracle(config).profile(spec)
        assert profile.exposure == 1.0

    def test_smarter_policy_reduces_exposure(self):
        from repro.cluster.oracle import CostOracle
        from repro.cluster.jobs import generate_jobs
        base = design_point("MC-DLA(B)")
        specs = generate_jobs("balanced", 6, seed=0,
                              arrival_rate=0.05, node_width=8)
        spec = next(s for s in specs if s.kind.value == "training")
        on_demand = CostOracle(base).profile(spec)
        oracle = CostOracle(with_policy(base,
                                        "clairvoyant")).profile(spec)
        assert oracle.exposure < on_demand.exposure

    def test_exposure_scales_spill_dilation(self):
        from repro.cluster.pool import spill_dilation
        from repro.cluster.oracle import CostOracle
        from repro.cluster.jobs import generate_jobs
        base = design_point("MC-DLA(B)")
        specs = generate_jobs("balanced", 6, seed=0,
                              arrival_rate=0.05, node_width=8)
        spec = next(s for s in specs if s.kind.value == "training")
        slow = CostOracle(base).profile(spec)
        fast = CostOracle(with_policy(base,
                                      "clairvoyant")).profile(spec)
        assert spill_dilation(fast, 0.5, 4.0) \
            < spill_dilation(slow, 0.5, 4.0)
        assert spill_dilation(fast, 0.5, 4.0) >= 1.0
