"""Golden per-layer shape tests against the networks' published tables.

These pin the exact feature-map and weight dimensions of well-known
layers, so any regression in the builder arithmetic (padding, stride,
grouping, inception wiring) is caught at the layer it happens.
"""

import pytest

from repro.dnn.registry import build_network
from repro.units import FP32_BYTES


def out_elems(net_name, layer_name):
    return build_network(net_name).layer(layer_name).out_elems


def weight_elems(net_name, layer_name):
    return build_network(net_name).layer(layer_name).weight_elems


class TestAlexNetGolden:
    @pytest.mark.parametrize("layer,h,w,c", [
        ("conv1", 55, 55, 96),
        ("conv2", 27, 27, 256),
        ("conv3", 13, 13, 384),
        ("conv4", 13, 13, 384),
        ("conv5", 13, 13, 256),
    ])
    def test_conv_feature_maps(self, layer, h, w, c):
        assert out_elems("AlexNet", layer) == h * w * c

    @pytest.mark.parametrize("layer,params", [
        ("conv1", 96 * 3 * 121),
        ("conv2", 256 * 48 * 25),      # groups=2: half the inputs
        ("conv3", 384 * 256 * 9),
        ("conv4", 384 * 192 * 9),      # groups=2
        ("conv5", 256 * 192 * 9),      # groups=2
        ("fc6", 6 * 6 * 256 * 4096),
        ("fc7", 4096 * 4096),
        ("fc8", 4096 * 1000),
    ])
    def test_weights(self, layer, params):
        assert weight_elems("AlexNet", layer) == params


class TestVggGolden:
    @pytest.mark.parametrize("layer,h,c", [
        ("conv1_1", 224, 64), ("conv2_1", 112, 128),
        ("conv3_1", 56, 256), ("conv4_1", 28, 512),
        ("conv5_4", 14, 512),
    ])
    def test_stage_resolutions(self, layer, h, c):
        assert out_elems("VGG-E", layer) == h * h * c

    def test_fc6_is_the_biggest_layer(self):
        net = build_network("VGG-E")
        fc6 = net.layer("fc6").weight_elems
        assert fc6 == 7 * 7 * 512 * 4096
        assert fc6 == max(l.weight_elems for l in net.layers)


class TestGoogLeNetGolden:
    def test_stem(self):
        assert out_elems("GoogLeNet", "conv1") == 112 * 112 * 64
        assert out_elems("GoogLeNet", "conv2") == 56 * 56 * 192

    @pytest.mark.parametrize("tag,channels,side", [
        ("3a", 256, 28), ("3b", 480, 28), ("4a", 512, 14),
        ("4e", 832, 14), ("5b", 1024, 7),
    ])
    def test_inception_output_channels(self, tag, channels, side):
        assert out_elems("GoogLeNet", f"inc{tag}_out") \
            == side * side * channels

    def test_branch_wiring(self):
        net = build_network("GoogLeNet")
        # The concat consumes the four branches' activations, whose
        # producers are the branch convolutions.
        branch_convs = []
        for relu in net.predecessors("inc3a_out"):
            (conv,) = net.predecessors(relu)
            branch_convs.append(conv)
        assert branch_convs == ["inc3a_1x1", "inc3a_3x3", "inc3a_5x5",
                                "inc3a_proj"]

    def test_classifier(self):
        assert weight_elems("GoogLeNet", "fc") == 1024 * 1000


class TestResNetGolden:
    @pytest.mark.parametrize("layer,side,c", [
        ("s1b1_conv1", 56, 64), ("s2b1_conv1", 28, 128),
        ("s3b1_conv1", 14, 256), ("s4b1_conv1", 7, 512),
    ])
    def test_stage_downsampling(self, layer, side, c):
        assert out_elems("ResNet", layer) == side * side * c

    def test_residual_add_wiring(self):
        net = build_network("ResNet")
        preds = net.predecessors("s1b1_add")
        # Identity shortcut: the add consumes the block input directly.
        assert "pool1" in preds and "s1b1_bn2" in preds

    def test_projection_free_shortcut_on_downsample(self):
        net = build_network("ResNet")
        short = net.layer("s2b1_short")
        assert short.weight_elems == 0  # option A: parameter-free
        assert short.out_elems == 28 * 28 * 128

    def test_classifier(self):
        assert weight_elems("ResNet", "fc") == 512 * 1000


class TestRnnGolden:
    @pytest.mark.parametrize("name,weights_mb", [
        ("RNN-GEMV", 2 * 2560 * 2560 * FP32_BYTES / 2 ** 20),
        ("RNN-LSTM-1", 4 * 1024 * 2048 * FP32_BYTES / 2 ** 20),
        ("RNN-LSTM-2", 4 * 8192 * (1024 + 8192) * FP32_BYTES / 2 ** 20),
        ("RNN-GRU", 3 * 2816 * 5632 * FP32_BYTES / 2 ** 20),
    ])
    def test_cell_weight_sizes(self, name, weights_mb):
        net = build_network(name)
        assert net.weight_bytes() / 2 ** 20 == pytest.approx(weights_mb)

    def test_lstm2_gate_gemms(self):
        net = build_network("RNN-LSTM-2")
        cell = net.layer("cell_t0")
        x_gemm, h_gemm = cell.gemms
        assert (x_gemm.n, x_gemm.k) == (4 * 8192, 1024)
        assert (h_gemm.n, h_gemm.k) == (4 * 8192, 8192)
