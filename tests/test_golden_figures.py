"""Golden regression snapshots of every paper figure/table experiment.

Each test folds one experiment's result object into a flat dict of key
scalars (the numbers the paper's claims hang on) and compares it
against ``tests/golden/<name>.json``.  Refresh intentionally with
``pytest --update-golden`` and review the diff like any other code
change -- these snapshots are the contract that refactors preserve the
reproduction's physics.
"""

from __future__ import annotations

import pytest

from repro.core.design_points import DESIGN_ORDER
from repro.dnn.registry import BENCHMARK_NAMES, CNN_NAMES
from repro.experiments.matrix import evaluation_matrix
from repro.training.parallel import ParallelStrategy
from repro.units import MB

pytestmark = pytest.mark.golden


@pytest.fixture(scope="module")
def matrix():
    return evaluation_matrix(512)


def test_fig2_golden(golden):
    from repro.experiments.fig2_motivation import run_fig2
    result = run_fig2()
    scalars = {}
    for network in CNN_NAMES:
        series = result.series(network)
        scalars[f"{network}/speedup"] = result.generation_speedup(network)
        newest = series[-1]
        scalars[f"{network}/{newest.generation}/overhead"] = \
            newest.overhead
        scalars[f"{network}/{series[0].generation}/overhead"] = \
            series[0].overhead
    golden.check("fig2", scalars)


def test_fig9_golden(golden):
    from repro.collectives.ring_algorithm import Primitive
    from repro.experiments.fig9_collectives import run_fig9
    result = run_fig9()
    scalars = {"mc_dla_overhead": result.mc_dla_overhead}
    for primitive in Primitive:
        for nodes in (8, 16, 36):
            scalars[f"{primitive.value}/{nodes}"] = \
                result.at(primitive, nodes)
    golden.check("fig9", scalars)


def test_fig10_golden(golden):
    from repro.experiments.fig10_allocation import run_fig10
    result = run_fig10()
    scalars = {}
    for point in result.points:
        size = point.size_bytes // MB
        scalars[f"{size}MiB/local_ms"] = point.latency_local * 1e3
        scalars[f"{size}MiB/bw_aware_ms"] = point.latency_bw_aware * 1e3
        scalars[f"{size}MiB/speedup"] = point.speedup
        scalars[f"{size}MiB/skew"] = point.placement_skew
    golden.check("fig10", scalars)


@pytest.mark.parametrize("strategy,label", [
    (ParallelStrategy.DATA, "data"),
    (ParallelStrategy.MODEL, "model"),
])
def test_fig11_golden(golden, matrix, strategy, label):
    from repro.experiments.fig11_breakdown import run_fig11
    result = run_fig11(strategy, matrix)
    scalars = {
        "hc_vmem_reduction": result.hc_dla_vmem_reduction(),
        "hc_sync_increase": result.hc_dla_sync_increase(),
        "dc_vmem_bound_count": result.vmem_bound_count("DC-DLA"),
    }
    for design in DESIGN_ORDER:
        raw = result.raw[("VGG-E", design)]
        scalars[f"VGG-E/{design}/compute"] = raw.compute
        scalars[f"VGG-E/{design}/sync"] = raw.sync
        scalars[f"VGG-E/{design}/vmem"] = raw.vmem
    golden.check(f"fig11_{label}", scalars)


def test_fig12_golden(golden, matrix):
    from repro.experiments.fig12_cpu_bandwidth import (FIG12_DESIGNS,
                                                      run_fig12)
    result = run_fig12(matrix)
    scalars = {}
    for design in FIG12_DESIGNS:
        scalars[f"{design}/worst_fraction"] = \
            result.worst_case_fraction(design)
        bar = result.bar(design, "VGG-E")
        scalars[f"{design}/VGG-E/avg_dp"] = bar.avg_data_gbps
        scalars[f"{design}/VGG-E/avg_mp"] = bar.avg_model_gbps
        scalars[f"{design}/VGG-E/max"] = bar.max_gbps
    golden.check("fig12", scalars)


def test_fig13_golden(golden, matrix):
    from repro.experiments.fig13_performance import run_fig13
    result = run_fig13(512, matrix)
    lo, mean, hi = result.oracle_fraction_range()
    scalars = {
        "mcb_speedup_dp": result.mean_speedup("MC-DLA(B)",
                                              ParallelStrategy.DATA),
        "mcb_speedup_mp": result.mean_speedup("MC-DLA(B)",
                                              ParallelStrategy.MODEL),
        "mcb_speedup_overall": result.mean_speedup("MC-DLA(B)"),
        "hc_speedup_dp": result.mean_speedup("HC-DLA",
                                             ParallelStrategy.DATA),
        "hc_speedup_mp": result.mean_speedup("HC-DLA",
                                             ParallelStrategy.MODEL),
        "oracle_fraction_lo": lo,
        "oracle_fraction_mean": mean,
        "oracle_fraction_hi": hi,
        "local_vs_bw": (result.mean_speedup("MC-DLA(L)")
                        / result.mean_speedup("MC-DLA(B)")),
    }
    for design in DESIGN_ORDER:
        scalars[f"AlexNet/dp/{design}"] = result.perf(
            ParallelStrategy.DATA, "AlexNet", design)
    golden.check("fig13", scalars)


def test_fig14_golden(golden):
    from repro.experiments.fig14_batch_sensitivity import run_fig14
    result = run_fig14()
    scalars = {"overall_mean": result.overall_mean}
    for batch in result.batches:
        scalars[f"b{batch}/dp"] = result.batch_mean(
            batch, ParallelStrategy.DATA)
        scalars[f"b{batch}/mp"] = result.batch_mean(
            batch, ParallelStrategy.MODEL)
    for network in BENCHMARK_NAMES:
        scalars[f"b512x2048/{network}"] = result.speedup(
            2048, ParallelStrategy.DATA, network)
    golden.check("fig14", scalars)


def test_tab4_golden(golden, matrix):
    from repro.experiments.fig13_performance import run_fig13
    from repro.experiments.tab4_power import run_tab4
    result = run_tab4(run_fig13(512, matrix))
    scalars = {
        "measured_speedup": result.measured_speedup,
        "perf_per_watt_low_power": result.perf_per_watt_low_power,
        "perf_per_watt_high_capacity":
            result.perf_per_watt_high_capacity,
        "pool_capacity_tb": result.pool_capacity_tb,
    }
    for report in result.reports:
        scalars[f"{report.dimm.name}/node_tdp_w"] = report.node_tdp_w
        scalars[f"{report.dimm.name}/gb_per_watt"] = \
            report.node_gb_per_watt
        scalars[f"{report.dimm.name}/system_overhead"] = \
            report.system_overhead
    golden.check("tab4", scalars)


def test_serving_golden(golden):
    """The new subsystem earns a snapshot too: the SLO-knee summary of
    a reduced serving ladder must stay put."""
    from repro.experiments.serving_comparison import (
        run_serving_comparison)
    study = run_serving_comparison(rates=(200.0, 1600.0),
                                   n_requests=128)
    scalars = {}
    for design in DESIGN_ORDER:
        for rate in study.rates:
            s = study.at(design, rate)
            scalars[f"{design}/{rate:g}/p99"] = s.latency_p99
            scalars[f"{design}/{rate:g}/goodput"] = s.goodput
            scalars[f"{design}/{rate:g}/attainment"] = s.slo_attainment
    golden.check("serving", scalars)


def test_cluster_golden(golden):
    """Key scalars of a reduced cluster comparison (two policies, a
    shorter job stream) pin the scheduler's physics: JCT percentiles,
    queueing, pool occupancy, and the preemption ledger."""
    from repro.experiments.cluster_comparison import (
        run_cluster_comparison)
    study = run_cluster_comparison(policies=("fifo", "sjf"),
                                   n_jobs=12, cache=None)
    golden.check("cluster", study.scalars())
