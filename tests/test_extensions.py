"""Tests for the extension modules: scale-out plane, memory-node ASICs,
the video workload, and the CLI."""

import pytest

from repro.dnn.models.video import VideoSpec, build_video_net
from repro.interconnect.switch import (ScaleOutPlane, SwitchSpec,
                                       datacenter_plane)
from repro.memnode.engines import CompressionUnit, EncryptionUnit
from repro.units import GB, GBPS, MB


class TestSwitchSpec:
    def test_nvswitch_defaults(self):
        spec = SwitchSpec()
        assert spec.radix == 18
        assert spec.port_bw == 25 * GBPS

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchSpec(radix=1)
        with pytest.raises(ValueError):
            SwitchSpec(port_bw=0)


class TestScaleOutPlane:
    def test_datacenter_plane_counts(self):
        plane = datacenter_plane(4)
        assert plane.n_devices == 32
        assert plane.n_memory_nodes == 32
        assert plane.total_nodes == 64
        assert plane.total_plane_ports == 64 * 3

    def test_switch_provisioning(self):
        plane = datacenter_plane(1)
        # 16 nodes x 3 links = 48 ports / radix 18 -> 3 switches.
        assert plane.switches_needed == 3

    def test_ring_channels_span_all_nodes(self):
        plane = datacenter_plane(2)
        channels = plane.ring_channels()
        assert len(channels) == 3
        assert all(c.size == plane.total_nodes for c in channels)

    def test_collective_spec_adds_switch_hop(self):
        plane = datacenter_plane(1)
        spec = plane.collective_spec()
        assert spec.hop_latency > plane.link.latency

    def test_vmem_bandwidth_balanced_plane(self):
        # Equal device/memory counts: device-side links are the bound.
        plane = datacenter_plane(4)
        assert plane.vmem_bandwidth_per_device() == 75 * GBPS

    def test_vmem_bandwidth_memory_starved_plane(self):
        plane = ScaleOutPlane(n_devices=16, n_memory_nodes=4)
        # 4 nodes x 3 links x 25 GB/s shared by 16 devices.
        assert plane.vmem_bandwidth_per_device() \
            == pytest.approx(4 * 75 * GBPS / 16)

    def test_no_memory_nodes_no_vmem(self):
        plane = ScaleOutPlane(n_devices=8, n_memory_nodes=0)
        assert plane.vmem_bandwidth_per_device() == 0.0

    def test_pooled_capacity(self):
        plane = datacenter_plane(2)
        assert plane.pooled_capacity(1280 * GB) == 16 * 1280 * GB
        with pytest.raises(ValueError):
            plane.pooled_capacity(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleOutPlane(n_devices=1, n_memory_nodes=0)
        with pytest.raises(ValueError):
            ScaleOutPlane(n_devices=8, n_memory_nodes=-1)
        with pytest.raises(ValueError):
            datacenter_plane(0)


class TestCompressionUnit:
    def test_wire_bytes(self):
        unit = CompressionUnit(ratio=2.6)
        assert unit.wire_bytes(260 * MB) == pytest.approx(100 * MB)

    def test_transfer_time_link_bound(self):
        unit = CompressionUnit(ratio=2.0, throughput=1000 * GBPS)
        t = unit.transfer_time(32 * GBPS, 16 * GBPS)
        assert t == pytest.approx(1.0)  # 16 GB on the wire at 16 GB/s

    def test_transfer_time_engine_bound(self):
        unit = CompressionUnit(ratio=100.0, throughput=10 * GBPS)
        t = unit.transfer_time(10 * GBPS, 16 * GBPS)
        assert t == pytest.approx(1.0)  # engine caps at 10 GB/s input

    def test_effective_bandwidth(self):
        unit = CompressionUnit(ratio=2.6, throughput=200 * GBPS)
        assert unit.effective_bandwidth(16 * GBPS) \
            == pytest.approx(41.6 * GBPS)
        assert unit.effective_bandwidth(100 * GBPS) == 200 * GBPS

    def test_zero_and_validation(self):
        unit = CompressionUnit()
        assert unit.transfer_time(0, GBPS) == 0.0
        with pytest.raises(ValueError):
            CompressionUnit(ratio=0.9)
        with pytest.raises(ValueError):
            unit.transfer_time(-1, GBPS)
        with pytest.raises(ValueError):
            unit.effective_bandwidth(0)


class TestEncryptionUnit:
    def test_transfer_time_cipher_bound(self):
        unit = EncryptionUnit(throughput=50 * GBPS, latency=0.0)
        assert unit.transfer_time(100 * GBPS, 150 * GBPS) \
            == pytest.approx(2.0)

    def test_transfer_time_wire_bound(self):
        unit = EncryptionUnit(throughput=500 * GBPS, latency=0.0)
        assert unit.transfer_time(100 * GBPS, 100 * GBPS) \
            == pytest.approx(1.0)

    def test_effective_bandwidth(self):
        unit = EncryptionUnit(throughput=100 * GBPS)
        assert unit.effective_bandwidth(150 * GBPS) == 100 * GBPS

    def test_validation(self):
        with pytest.raises(ValueError):
            EncryptionUnit(throughput=0)
        with pytest.raises(ValueError):
            EncryptionUnit(latency=-1)


class TestVideoWorkload:
    def test_structure(self):
        net = build_video_net(VideoSpec(frames=4))
        assert net.validate() is None
        cells = [l for l in net.layers if l.is_recurrent]
        assert len(cells) == 4 + 20  # encoder + decoder timesteps

    def test_footprint_scales_with_frames(self):
        short = build_video_net(VideoSpec(frames=4))
        long = build_video_net(VideoSpec(frames=8))
        assert long.training_footprint_bytes(64) \
            > 1.5 * short.training_footprint_bytes(64)

    def test_exceeds_capacity_wall(self):
        net = build_video_net(VideoSpec(frames=16))
        assert net.training_footprint_bytes(64) > 16 * GB

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoSpec(frames=0)


class TestCli:
    def test_list_and_unknown(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        assert "fig13" in capsys.readouterr().out
        assert main(["not-an-experiment"]) == 2

    def test_runs_a_cheap_experiment(self, capsys):
        from repro.__main__ import main
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "BW_AWARE" in out and "2.00x" in out
