"""Tests for the transformer workload family."""

import pytest

from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.simulator import simulate
from repro.dnn.layers import (CHEAP_KINDS, WEIGHTED_KINDS, Layer,
                              LayerKind)
from repro.dnn.models.transformer import (TRANSFORMER_SPECS,
                                          TransformerSpec,
                                          build_transformer)
from repro.dnn.registry import (BENCHMARK_NAMES, TRANSFORMER_NAMES,
                                WORKLOAD_NAMES, benchmark_info,
                                build_network)
from repro.dnn.shapes import attention_gemms, token_fc_gemm
from repro.training.parallel import ParallelStrategy


class TestShapes:
    def test_attention_gemms_quadratic_in_sequence(self):
        score, context = attention_gemms(seq=128, heads=8, head_dim=64)
        expected = 8 * 128 * 128 * 64
        assert score.at_batch(1).macs == expected
        assert context.at_batch(1).macs == expected
        double, _ = attention_gemms(seq=256, heads=8, head_dim=64)
        assert double.at_batch(1).macs == 4 * expected

    def test_token_fc_scales_with_sequence_and_batch(self):
        gemm = token_fc_gemm(seq=128, out_features=512, in_features=256)
        assert gemm.at_batch(4).m == 4 * 128
        assert gemm.at_batch(1).macs == 128 * 512 * 256


class TestLayerKinds:
    def test_new_kinds_classified(self):
        assert LayerKind.LAYERNORM in CHEAP_KINDS
        assert LayerKind.GELU in CHEAP_KINDS
        assert LayerKind.ATTENTION not in CHEAP_KINDS
        assert LayerKind.EMBEDDING in WEIGHTED_KINDS
        assert LayerKind.LAYERNORM in WEIGHTED_KINDS
        assert LayerKind.ATTENTION not in WEIGHTED_KINDS

    def test_attention_layer_cannot_carry_weights(self):
        with pytest.raises(ValueError):
            Layer(name="a", kind=LayerKind.ATTENTION, out_elems=8,
                  weight_elems=8)


class TestSpecs:
    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            TransformerSpec("bad", blocks=2, hidden=100, heads=16,
                            seq=64, vocab=1000)

    def test_parameter_counts_match_model_class(self):
        # BERT-Large is the 340M-class, GPT-2 the 117M-class (both
        # modeled without biases; GPT-2 ties the LM head).
        bert = build_network("BERT-Large")
        assert 320e6 < bert.weight_bytes() / 4 < 345e6
        gpt2 = build_network("GPT2")
        assert 110e6 < gpt2.weight_bytes() / 4 < 130e6

    def test_tied_head_counts_once(self):
        net = build_transformer(TRANSFORMER_SPECS["GPT2"])
        embed = net.layer("embed")
        head = net.layer("lm_head")
        assert embed.weight_group == head.weight_group
        untied = sum(layer.weight_bytes for layer in net.layers)
        assert net.weight_bytes() == untied - head.weight_bytes


class TestNetworks:
    @pytest.mark.parametrize("name", TRANSFORMER_NAMES)
    def test_validates_and_has_expected_structure(self, name):
        net = build_network(name)
        net.validate()
        spec = TRANSFORMER_SPECS[name]
        kinds = {layer.kind for layer in net.layers}
        assert {LayerKind.EMBEDDING, LayerKind.ATTENTION,
                LayerKind.LAYERNORM, LayerKind.GELU} <= kinds
        attention = [layer for layer in net.layers
                     if layer.kind is LayerKind.ATTENTION]
        assert len(attention) == spec.blocks

    def test_registry_separation(self):
        assert len(BENCHMARK_NAMES) == 8
        assert not set(TRANSFORMER_NAMES) & set(BENCHMARK_NAMES)
        assert WORKLOAD_NAMES == BENCHMARK_NAMES + TRANSFORMER_NAMES
        info = benchmark_info("GPT2")
        assert info.family == "transformer"
        assert not info.is_cnn

    def test_footprint_exceeds_device_memory(self):
        # The raison d'etre: transformer training cannot fit on-device.
        device = design_point("DC-DLA").device
        for name in TRANSFORMER_NAMES:
            net = build_network(name)
            assert net.training_footprint_bytes(64) \
                > device.memory_capacity


class TestSimulation:
    @pytest.mark.parametrize("design", DESIGN_ORDER)
    def test_runs_on_every_design_under_flat_strategies(self, design):
        config = design_point(design)
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            result = simulate(config, "GPT2", 32, strategy)
            assert result.iteration_time > 0
            assert result.breakdown.compute > 0

    def test_memory_centric_beats_device_centric(self):
        dc = simulate(design_point("DC-DLA"), "BERT-Large", 64,
                      ParallelStrategy.DATA)
        mc = simulate(design_point("MC-DLA(B)"), "BERT-Large", 64,
                      ParallelStrategy.DATA)
        assert mc.speedup_over(dc) > 1.0
