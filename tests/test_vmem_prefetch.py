"""Unit tests of the pluggable prefetch/eviction policy engine."""

from __future__ import annotations

import pytest

from repro.core.metrics import PrefetchStats
from repro.core.timeline import EngineKind, OpList, run_timeline
from repro.vmem.prefetch import (ON_DEMAND, PREFETCH_POLICY_ORDER,
                                 FetchIssue, FetchSite, PrefetchContext,
                                 PrefetchSchedule, WasteFetch,
                                 choose_victim, collect_prefetch_stats,
                                 prefetch_policy)


def make_context(use_steps, n_steps=None, step_time=1.0,
                 fetch_time=0.5, nbytes=100, window=2, stash=8):
    """A uniform context over the given consumer steps."""
    if n_steps is None:
        n_steps = max(use_steps) + 1 if use_steps else 0
    sites = tuple(FetchSite(producer=f"t{i}", use_step=u, nbytes=nbytes)
                  for i, u in enumerate(use_steps))
    return PrefetchContext(
        n_steps=n_steps, sites=sites,
        step_seconds=tuple(step_time for _ in range(n_steps)),
        fetch_seconds=tuple(fetch_time for _ in sites),
        window=window, stash=stash)


class TestRegistry:
    def test_all_policies_resolve(self):
        for name in PREFETCH_POLICY_ORDER:
            assert prefetch_policy(name).name == name

    def test_unknown_policy_raises_with_known_list(self):
        with pytest.raises(KeyError, match="on-demand"):
            prefetch_policy("fifo")

    def test_axis_has_five_policies(self):
        assert len(PREFETCH_POLICY_ORDER) == 5
        assert PREFETCH_POLICY_ORDER[0] == ON_DEMAND


class TestValidation:
    def test_negative_site_fields_rejected(self):
        with pytest.raises(ValueError):
            FetchSite("x", -1, 10)
        with pytest.raises(ValueError):
            FetchSite("x", 0, -10)

    def test_context_rejects_out_of_range_site(self):
        with pytest.raises(ValueError, match="outside"):
            make_context([5], n_steps=3)

    def test_context_rejects_unordered_sites(self):
        with pytest.raises(ValueError, match="use order"):
            make_context([3, 1])

    def test_context_rejects_misaligned_estimates(self):
        with pytest.raises(ValueError):
            PrefetchContext(n_steps=2, sites=(),
                            step_seconds=(1.0,), fetch_seconds=(),
                            window=2, stash=8)

    def test_issue_gate_must_precede_use(self):
        site = FetchSite("x", 3, 10)
        with pytest.raises(ValueError):
            FetchIssue(site, 3)
        with pytest.raises(ValueError):
            FetchIssue(site, -1)
        assert FetchIssue(site, None).gate_step is None

    def test_waste_validation(self):
        with pytest.raises(ValueError):
            WasteFetch(before_site=-1, gate_step=None, nbytes=1,
                       label="x")
        with pytest.raises(ValueError):
            WasteFetch(before_site=0, gate_step=None, nbytes=-1,
                       label="x")

    def test_schedule_rejects_negative_evictions(self):
        with pytest.raises(ValueError):
            PrefetchSchedule(policy="x", issues=(), evictions=-1)


class TestBaselinePolicies:
    def test_on_demand_reproduces_window_gates(self):
        ctx = make_context([0, 1, 2, 3, 4], window=2)
        sched = prefetch_policy("on-demand").plan(ctx)
        gates = [i.gate_step for i in sched.issues]
        assert gates == [None, None, 0, 1, 2]
        assert sched.waste == () and sched.evictions == 0

    def test_next_op_gates_one_step_before(self):
        ctx = make_context([0, 2, 4])
        sched = prefetch_policy("next-op").plan(ctx)
        assert [i.gate_step for i in sched.issues] == [None, 1, 3]

    def test_clairvoyant_is_ungated_and_clean(self):
        ctx = make_context(list(range(10)))
        sched = prefetch_policy("clairvoyant").plan(ctx)
        assert all(i.gate_step is None for i in sched.issues)
        assert sched.wasted_bytes == 0
        assert sched.evictions == 0

    def test_empty_context_plans_empty_schedule(self):
        ctx = make_context([])
        for name in PREFETCH_POLICY_ORDER:
            sched = prefetch_policy(name).plan(ctx)
            assert sched.issues == () and sched.wasted_bytes == 0


class TestCostModel:
    def test_jit_gate_matches_latency_model(self):
        # step time 1s, fetch 1.5s: the fetch for step u needs to
        # start two steps early (gate completion at u-2 -> start at
        # prefix[u-1], 1s of compute left >= ... only gate u-3 gives
        # 2s >= 1.5s of lead).
        ctx = make_context([6], step_time=1.0, fetch_time=1.5)
        sched = prefetch_policy("cost-model").plan(ctx)
        gate = sched.issues[0].gate_step
        # prefix[gate+1] + 1.5 <= prefix[6] -> gate + 1 + 1.5 <= 6
        assert gate == 3

    def test_impossible_deadline_goes_ungated(self):
        ctx = make_context([1], step_time=0.1, fetch_time=10.0)
        sched = prefetch_policy("cost-model").plan(ctx)
        assert sched.issues[0].gate_step is None

    def test_queueing_pushes_later_fetches_earlier(self):
        # Two fetches to adjacent steps: the second must queue behind
        # the first on the serialized DMA engine, so its gate is
        # earlier than the naive per-fetch one.
        ctx = make_context([5, 6], step_time=1.0, fetch_time=2.0)
        sched = prefetch_policy("cost-model").plan(ctx)
        g0, g1 = (i.gate_step for i in sched.issues)
        assert g0 == 2  # start at 3.0, done 5.0 = deadline
        # naive would give g1 = 3 (start 4.0); queueing forces <= 3
        # with dma_free 5.0: start = max(prefix[g+1], 5.0) -> 5+2 > 6
        # for every gate, so it goes ungated and still starts at 5.0.
        assert g1 is None

    def test_zero_step_deadline_is_ungated(self):
        ctx = make_context([0])
        sched = prefetch_policy("cost-model").plan(ctx)
        assert sched.issues[0].gate_step is None


class TestStride:
    def test_linear_stream_speculates_deep(self):
        ctx = make_context(list(range(8)), window=2, stash=8)
        sched = prefetch_policy("stride").plan(ctx)
        # Cold start goes on demand; once the stride locks in, gates
        # run at least 2*window ahead.
        assert sched.issues[0].gate_step is None  # use 0, demand
        deep = [i for i in sched.issues[5:]
                if i.gate_step is None
                or i.site.use_step - i.gate_step >= 4]
        assert len(deep) == len(sched.issues[5:])

    def test_irregular_stream_wastes_bytes(self):
        # Deltas 1,3,1,3,... defeat the single-stride predictor.
        ctx = make_context([0, 1, 4, 5, 8, 9, 12], n_steps=13)
        sched = prefetch_policy("stride").plan(ctx)
        assert sched.wasted_bytes > 0
        assert any(w.label.startswith("mispredict:")
                   for w in sched.waste)

    def test_long_regular_stream_forces_evictions(self):
        ctx = make_context(list(range(40)), window=2, stash=3)
        sched = prefetch_policy("stride").plan(ctx)
        assert sched.evictions > 0
        refetches = [i for i in sched.issues if i.refetch]
        assert len(refetches) == sched.evictions
        # Every evicted tensor is re-fetched on demand.
        assert all(i.gate_step == i.site.use_step - 1
                   for i in refetches)
        # Its first trip is accounted as waste.
        evicted = [w for w in sched.waste
                   if w.label.startswith("evict:")]
        assert len(evicted) == sched.evictions

    def test_waste_is_grouped_by_site(self):
        ctx = make_context([0, 1, 4, 5, 8, 9, 12], n_steps=13)
        sched = prefetch_policy("stride").plan(ctx)
        grouped = sched.waste_before()
        assert sum(len(v) for v in grouped.values()) \
            == len(sched.waste)
        for index, items in grouped.items():
            assert all(w.before_site == index for w in items)


class TestChooseVictim:
    def test_prefers_furthest_future(self):
        residents = [FetchSite("a", 10, 1), FetchSite("b", 30, 1),
                     FetchSite("c", 20, 1)]
        assert choose_victim(residents, frontier=0, window=2) == 1

    def test_never_evicts_live_window(self):
        residents = [FetchSite("a", 5, 1), FetchSite("b", 6, 1)]
        # window 4 around frontier 2 covers steps 3..6: all live.
        assert choose_victim(residents, frontier=2, window=4) is None

    def test_boundary_is_live(self):
        residents = [FetchSite("a", 5, 1)]
        assert choose_victim(residents, frontier=3, window=2) is None
        assert choose_victim(residents, frontier=2, window=2) == 0


class TestStats:
    def _timeline(self):
        """offload -> prefetch -> compute consuming it, plus comm."""
        ops = OpList()
        off = ops.add(EngineKind.DMA_OUT, 1.0, [], tag="offload:a",
                      nbytes=100)
        pre = ops.add(EngineKind.DMA_IN, 2.0, [off], tag="prefetch:a",
                      nbytes=100)
        ops.add(EngineKind.DMA_IN, 0.5, [], tag="waste:mispredict:b",
                nbytes=40)
        ops.add(EngineKind.COMM, 2.0, [], tag="sync-fwd:x", nbytes=8)
        ops.add(EngineKind.COMPUTE, 1.0, [pre], tag="bwd:a")
        return run_timeline(ops)

    def test_collect_counts_stall_and_waste(self):
        stats = collect_prefetch_stats(self._timeline(), "stride",
                                       evictions=1)
        assert stats.policy == "stride"
        assert stats.n_prefetches == 1
        assert stats.prefetch_bytes == 140
        assert stats.wasted_bytes == 40
        assert stats.evictions == 1
        # compute was unblocked at t=0 but waited for the prefetch
        # finishing at t=3.
        assert stats.stall_seconds == pytest.approx(3.0)
        assert stats.late == 1 and stats.hit_rate == 0.0
        # DMA busy: offload [0,1], prefetch [1,3], waste [3,3.5]
        # (serialized DMA-in engine); COMM busy [0,2] -> 1s + 1s.
        assert stats.contended_seconds == pytest.approx(2.0)

    def test_no_prefetches_is_a_perfect_hit_rate(self):
        ops = OpList()
        ops.add(EngineKind.COMPUTE, 1.0, [], tag="fwd:a")
        stats = collect_prefetch_stats(run_timeline(ops), ON_DEMAND)
        assert stats.n_prefetches == 0
        assert stats.hit_rate == 1.0
        assert stats.stall_seconds == 0.0

    def test_round_trip_is_exact(self):
        stats = collect_prefetch_stats(self._timeline(), "stride",
                                       evictions=1)
        assert PrefetchStats.from_dict(stats.to_dict()) == stats

    def test_histogram_must_cover_prefetches(self):
        with pytest.raises(ValueError, match="histogram"):
            PrefetchStats(policy="x", n_prefetches=2, prefetch_bytes=0,
                          wasted_bytes=0, evictions=0,
                          stall_seconds=0.0, late=1, jit=0, early=0,
                          hit_rate=0.5, contended_seconds=0.0)

    def test_hit_rate_bounds_enforced(self):
        with pytest.raises(ValueError, match="hit rate"):
            PrefetchStats(policy="x", n_prefetches=1, prefetch_bytes=0,
                          wasted_bytes=0, evictions=0,
                          stall_seconds=0.0, late=0, jit=1, early=0,
                          hit_rate=1.5, contended_seconds=0.0)
