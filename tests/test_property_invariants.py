"""Hypothesis property tests on end-to-end simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_points import (dc_dla, dc_dla_oracle, design_point,
                                      mc_dla_bw)
from repro.core.simulator import simulate
from repro.dnn.builder import NetBuilder
from repro.training.parallel import ParallelStrategy

DESIGNS = ("DC-DLA", "HC-DLA", "MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)")
batches = st.sampled_from([32, 64, 128, 256, 512])
strategies = st.sampled_from([ParallelStrategy.DATA,
                              ParallelStrategy.MODEL])
networks = st.sampled_from(["AlexNet", "RNN-LSTM-1"])


@st.composite
def random_cnn(draw):
    """A small random-but-valid CNN built through the public builder."""
    b = NetBuilder("random")
    x = b.image_input(32, 32, draw(st.sampled_from([1, 3, 4])))
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        channels = draw(st.sampled_from([8, 16, 32]))
        x = b.conv(x, channels, kernel=3, pad=1)
        if draw(st.booleans()):
            x = b.relu(x)
        if draw(st.booleans()) and x.height >= 2:
            x = b.pool(x, kernel=2, stride=2)
    x = b.fc(x, draw(st.sampled_from([10, 100])))
    return b.build()


class TestCrossDesignInvariants:
    @settings(max_examples=12, deadline=None)
    @given(networks, batches, strategies)
    def test_oracle_lower_bounds_all_designs(self, network, batch,
                                             strategy):
        oracle = simulate(dc_dla_oracle(), network, batch, strategy)
        for name in DESIGNS:
            result = simulate(design_point(name), network, batch,
                              strategy)
            assert result.iteration_time \
                >= oracle.iteration_time - 1e-12

    @settings(max_examples=12, deadline=None)
    @given(networks, batches, strategies)
    def test_breakdown_brackets_iteration_time(self, network, batch,
                                               strategy):
        for name in ("DC-DLA", "MC-DLA(B)"):
            result = simulate(design_point(name), network, batch,
                              strategy)
            b = result.breakdown
            assert max(b.compute, b.sync, b.vmem) - 1e-9 \
                <= result.iteration_time <= b.total + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(networks, batches)
    def test_more_vmem_bandwidth_never_hurts(self, network, batch):
        """MC-DLA(B) >= MC-DLA(L) >= MC-DLA(S) in iteration time."""
        times = [simulate(design_point(name), network, batch).iteration_time
                 for name in ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)")]
        assert times[0] >= times[1] - 1e-12 >= times[2] - 2e-12

    @settings(max_examples=8, deadline=None)
    @given(networks, strategies)
    def test_iteration_time_monotone_in_batch(self, network, strategy):
        times = [simulate(mc_dla_bw(), network, b, strategy).iteration_time
                 for b in (64, 256, 1024)]
        assert times == sorted(times)


class TestRandomNetworkInvariants:
    @settings(max_examples=15, deadline=None)
    @given(random_cnn(), batches)
    def test_random_cnns_simulate_consistently(self, net, batch):
        dc = simulate(dc_dla(), net, batch)
        mc = simulate(mc_dla_bw(), net, batch)
        oracle = simulate(dc_dla_oracle(), net, batch)
        # Bandwidth ordering holds for arbitrary valid workloads.
        assert oracle.iteration_time <= mc.iteration_time + 1e-12
        assert mc.iteration_time <= dc.iteration_time + 1e-12
        # Byte conservation: same plan bytes on both designs.
        assert dc.offload_bytes_per_device == mc.offload_bytes_per_device
        assert oracle.offload_bytes_per_device == 0

    @settings(max_examples=10, deadline=None)
    @given(random_cnn())
    def test_compute_breakdown_at_least_oracle_compute(self, net):
        virt = simulate(dc_dla(), net, 64)
        oracle = simulate(dc_dla_oracle(), net, 64)
        # Recompute can only add compute time, never remove it.
        assert virt.breakdown.compute >= oracle.breakdown.compute - 1e-12


class TestThroughputDefinition:
    @settings(max_examples=8, deadline=None)
    @given(networks, batches)
    def test_throughput_matches_iteration_time(self, network, batch):
        result = simulate(mc_dla_bw(), network, batch)
        assert result.throughput \
            == pytest.approx(batch / result.iteration_time)
