"""Tests for the device-node compute model (paper Table II, Figure 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.accelerator.device import BASELINE_DEVICE, DeviceSpec
from repro.accelerator.generations import (GENERATIONS, KEPLER, TPUV2,
                                           VOLTA, generation)
from repro.accelerator.hbm import HBM_900, MemorySpec
from repro.accelerator.pe_array import PeArraySpec
from repro.dnn.registry import build_network
from repro.dnn.shapes import Gemm
from repro.units import GB, GBPS


class TestMemorySpec:
    def test_table_ii_hbm(self):
        assert HBM_900.bandwidth == 900 * GBPS
        assert HBM_900.access_latency_cycles == 100
        assert HBM_900.capacity == 16 * GB

    def test_access_latency_at_clock(self):
        assert HBM_900.access_latency(1e9) == pytest.approx(100e-9)

    def test_stream_time(self):
        t = HBM_900.stream_time(900 * GBPS, 1e9)
        assert t == pytest.approx(1.0 + 100e-9)
        assert HBM_900.stream_time(0, 1e9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySpec("m", bandwidth=0, access_latency_cycles=0,
                       capacity=1)
        with pytest.raises(ValueError):
            HBM_900.stream_time(-1, 1e9)
        with pytest.raises(ValueError):
            HBM_900.access_latency(0)


class TestPeArray:
    def test_table_ii_peak(self):
        pe = PeArraySpec()
        assert pe.peak_macs_per_cycle == 1024 * 125
        assert pe.peak_macs_per_sec == 128e12

    def test_compute_cycles_tiling(self):
        pe = PeArraySpec(pe_count=4, macs_per_pe=10, frequency=1e9)
        # 8 outputs over 4 PEs = 2 each; K=25 -> 3 vector steps.
        assert pe.gemm_compute_cycles(Gemm(2, 4, 25)) == 2 * 3

    def test_utilization_perfect_when_divisible(self):
        pe = PeArraySpec(pe_count=4, macs_per_pe=10, frequency=1e9)
        assert pe.gemm_utilization(Gemm(2, 2, 10)) == pytest.approx(1.0)

    def test_utilization_drops_for_small_gemms(self):
        pe = PeArraySpec()
        small = pe.gemm_utilization(Gemm(8, 8, 8))
        large = pe.gemm_utilization(Gemm(4096, 512, 1000))
        assert small < 0.05 < large

    def test_gemm_traffic(self):
        pe = PeArraySpec()
        g = Gemm(10, 20, 30)
        assert pe.gemm_traffic_bytes(g) == 4 * (300 + 600 + 200)

    def test_gemm_traffic_removes_im2col_duplication(self):
        pe = PeArraySpec()
        g = Gemm(100, 20, 90, a_reuse=9)
        assert pe.gemm_traffic_bytes(g) \
            == 4 * (100 * 90 // 9 + 90 * 20 + 100 * 20)

    def test_roofline_compute_vs_memory_bound(self):
        pe = PeArraySpec()
        # Square-ish conv GEMM (3x3 kernel): compute-bound at 900 GB/s.
        conv = Gemm(512 * 196, 512, 1152, a_reuse=9)
        compute = pe.gemm_compute_cycles(conv) / pe.frequency
        assert pe.gemm_time(conv, HBM_900) == pytest.approx(
            pe.launch_overhead + compute)
        # Skinny FC GEMM: memory-bound (weights dominate).
        fc = Gemm(64, 4096, 25088)
        memory = HBM_900.stream_time(pe.gemm_traffic_bytes(fc),
                                     pe.frequency)
        assert pe.gemm_time(fc, HBM_900) == pytest.approx(
            pe.launch_overhead + memory)

    def test_stream_time_zero(self):
        assert PeArraySpec().stream_time(0, HBM_900) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PeArraySpec(pe_count=0)
        with pytest.raises(ValueError):
            PeArraySpec(frequency=0)
        with pytest.raises(ValueError):
            PeArraySpec().stream_time(-1, HBM_900)

    @given(st.integers(min_value=1, max_value=2048),
           st.integers(min_value=1, max_value=2048),
           st.integers(min_value=1, max_value=4096))
    def test_utilization_bounded(self, m, n, k):
        util = PeArraySpec().gemm_utilization(Gemm(m, n, k))
        assert 0.0 < util <= 1.0


class TestDeviceSpec:
    def test_baseline_matches_table_ii(self):
        assert BASELINE_DEVICE.peak_macs_per_sec == 128e12
        assert BASELINE_DEVICE.n_links == 6
        assert BASELINE_DEVICE.aggregate_link_bw == 150 * GBPS
        assert BASELINE_DEVICE.memory_capacity == 16 * GB

    def test_layer_timing_positive(self):
        net = build_network("AlexNet")
        conv1 = net.layer("conv1")
        fwd = BASELINE_DEVICE.layer_fwd_time(conv1, 64)
        bwd = BASELINE_DEVICE.layer_bwd_time(conv1, 64)
        assert 0 < fwd < bwd

    def test_backward_costs_about_twice_forward(self):
        net = build_network("VGG-E")
        conv = net.layer("conv3_1")
        fwd = BASELINE_DEVICE.layer_fwd_time(conv, 64)
        bwd = BASELINE_DEVICE.layer_bwd_time(conv, 64)
        assert 1.5 * fwd < bwd < 2.5 * fwd

    def test_op_time_empty_is_free(self):
        assert BASELINE_DEVICE.op_time([], 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(n_links=0)


class TestGenerations:
    def test_five_generations_ordered_by_throughput(self):
        peaks = [g.peak_macs_per_sec for g in GENERATIONS]
        assert peaks == sorted(peaks)
        assert len(GENERATIONS) == 5

    def test_kepler_to_tpuv2_gap(self):
        ratio = TPUV2.peak_macs_per_sec / KEPLER.peak_macs_per_sec
        assert 30 < ratio < 50

    def test_volta_is_the_baseline_device(self):
        assert VOLTA.peak_macs_per_sec \
            == BASELINE_DEVICE.peak_macs_per_sec
        assert VOLTA.hbm.bandwidth == 900 * GBPS

    def test_lookup_by_name(self):
        assert generation("volta") is VOLTA
        with pytest.raises(KeyError):
            generation("Turing")

    def test_newer_devices_run_layers_faster(self):
        net = build_network("VGG-E")
        conv = net.layer("conv3_1")
        times = [g.layer_fwd_time(conv, 64) for g in GENERATIONS]
        assert times == sorted(times, reverse=True)
