"""Tests for the engine-level timeline scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timeline import EngineKind, Op, OpList, run_timeline


def oplist(specs):
    """specs: list of (engine, duration, deps)."""
    ops = OpList()
    for engine, duration, deps in specs:
        ops.add(engine, duration, deps, tag=f"op{len(ops)}")
    return ops


class TestOpValidation:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Op(0, EngineKind.COMPUTE, -1.0, (), "x")

    def test_rejects_forward_dependency(self):
        with pytest.raises(ValueError):
            Op(0, EngineKind.COMPUTE, 1.0, (1,), "x")

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            Op(0, EngineKind.DMA_IN, 1.0, (), "x", nbytes=-1)


class TestScheduling:
    def test_engine_serializes(self):
        ops = oplist([(EngineKind.COMPUTE, 1.0, []),
                      (EngineKind.COMPUTE, 2.0, [])])
        result = run_timeline(ops)
        assert result.scheduled[1].start == pytest.approx(1.0)
        assert result.makespan == pytest.approx(3.0)

    def test_different_engines_overlap(self):
        ops = oplist([(EngineKind.COMPUTE, 2.0, []),
                      (EngineKind.DMA_OUT, 2.0, [])])
        result = run_timeline(ops)
        assert result.makespan == pytest.approx(2.0)

    def test_dependencies_respected(self):
        ops = oplist([(EngineKind.COMPUTE, 1.0, []),
                      (EngineKind.DMA_OUT, 0.5, [0]),
                      (EngineKind.COMPUTE, 1.0, [1])])
        result = run_timeline(ops)
        assert result.scheduled[1].start == pytest.approx(1.0)
        assert result.scheduled[2].start == pytest.approx(1.5)

    def test_busy_totals(self):
        ops = oplist([(EngineKind.COMPUTE, 1.0, []),
                      (EngineKind.COMPUTE, 2.5, []),
                      (EngineKind.COMM, 4.0, [])])
        result = run_timeline(ops)
        assert result.busy_time(EngineKind.COMPUTE) == pytest.approx(3.5)
        assert result.busy_time(EngineKind.COMM) == pytest.approx(4.0)
        assert result.busy_time(EngineKind.DMA_IN) == 0.0

    def test_empty_oplist(self):
        result = run_timeline(OpList())
        assert result.makespan == 0.0

    def test_zero_duration_ops(self):
        ops = oplist([(EngineKind.COMPUTE, 0.0, []),
                      (EngineKind.COMPUTE, 0.0, [0])])
        assert run_timeline(ops).makespan == 0.0

    def test_ops_on_engine_filter(self):
        ops = oplist([(EngineKind.COMPUTE, 1.0, []),
                      (EngineKind.COMM, 1.0, [])])
        result = run_timeline(ops)
        assert len(result.ops_on(EngineKind.COMPUTE)) == 1


class TestChannels:
    def test_same_engine_different_channels_overlap(self):
        ops = OpList()
        ops.add(EngineKind.COMPUTE, 2.0, [], tag="a", channel=0)
        ops.add(EngineKind.COMPUTE, 2.0, [], tag="b", channel=1)
        result = run_timeline(ops)
        assert result.scheduled[1].start == 0.0
        assert result.makespan == pytest.approx(2.0)
        assert result.channels == (0, 1)

    def test_same_channel_serializes(self):
        ops = OpList()
        ops.add(EngineKind.COMPUTE, 2.0, [], tag="a", channel=1)
        ops.add(EngineKind.COMPUTE, 2.0, [], tag="b", channel=1)
        result = run_timeline(ops)
        assert result.scheduled[1].start == pytest.approx(2.0)

    def test_busy_aggregates_and_splits(self):
        ops = OpList()
        ops.add(EngineKind.COMPUTE, 1.0, [], tag="a", channel=0)
        ops.add(EngineKind.COMPUTE, 3.0, [], tag="b", channel=2)
        result = run_timeline(ops)
        assert result.busy_time(EngineKind.COMPUTE) == pytest.approx(4.0)
        assert result.busy_time(EngineKind.COMPUTE, 0) \
            == pytest.approx(1.0)
        assert result.busy_time(EngineKind.COMPUTE, 2) \
            == pytest.approx(3.0)
        assert result.busy_time(EngineKind.COMPUTE, 1) == 0.0
        assert result.ops_on(EngineKind.COMPUTE, 2)[0].op.tag == "b"

    def test_cross_channel_dependencies(self):
        ops = OpList()
        first = ops.add(EngineKind.COMPUTE, 2.0, [], tag="a", channel=0)
        ops.add(EngineKind.COMPUTE, 1.0, [first], tag="b", channel=1)
        result = run_timeline(ops)
        assert result.scheduled[1].start == pytest.approx(2.0)

    def test_rejects_negative_channel(self):
        with pytest.raises(ValueError):
            Op(0, EngineKind.COMPUTE, 1.0, (), "x", channel=-1)

    def test_default_channel_is_spmd(self):
        ops = oplist([(EngineKind.COMPUTE, 1.0, [])])
        result = run_timeline(ops)
        assert result.channels == (0,)
        assert result.busy_per_channel[(EngineKind.COMPUTE, 0)] \
            == pytest.approx(1.0)


class TestInvariants:
    @given(st.lists(st.tuples(
        st.sampled_from(list(EngineKind)),
        st.floats(min_value=0.0, max_value=10.0),
        st.booleans()), min_size=1, max_size=40))
    def test_schedule_is_consistent(self, raw):
        ops = OpList()
        for engine, duration, dep_on_prev in raw:
            deps = [len(ops.ops) - 1] if dep_on_prev and ops.ops else []
            ops.add(engine, duration, deps, tag="t")
        result = run_timeline(ops)

        finish = [s.finish for s in result.scheduled]
        last_on_engine: dict[EngineKind, float] = {}
        for s in result.scheduled:
            # Dependencies finish before the op starts.
            for d in s.op.deps:
                assert finish[d] <= s.start + 1e-12
            # Engines never run two ops at once.
            if s.op.engine in last_on_engine:
                assert last_on_engine[s.op.engine] <= s.start + 1e-12
            last_on_engine[s.op.engine] = s.finish
            assert s.finish == pytest.approx(s.start + s.op.duration)

        # Makespan bounds: at least the busiest engine, at most the sum.
        total = sum(s.op.duration for s in result.scheduled)
        busiest = max(result.busy.values())
        assert busiest - 1e-9 <= result.makespan <= total + 1e-9
