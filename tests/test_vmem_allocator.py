"""Tests for LOCAL / BW_AWARE page allocation (paper Figure 10)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import GBPS, MB
from repro.vmem.allocator import (OutOfRemoteMemoryError, PlacementPolicy,
                                  RemoteAllocator, transfer_latency)
from repro.vmem.driver import PAGE_BYTES, AddressSpaceLayout, Tier


def small_layout(pages_per_side=8):
    side = pages_per_side * PAGE_BYTES
    return AddressSpaceLayout(PAGE_BYTES, side, side)


class TestTransferLatency:
    def test_figure_10_algebra(self):
        # Latency_LOCAL = D / (N*B/2); BW_AWARE = half of that.
        d = 600 * MB
        local = transfer_latency(d, PlacementPolicy.LOCAL, 6, 25 * GBPS)
        aware = transfer_latency(d, PlacementPolicy.BW_AWARE, 6,
                                 25 * GBPS)
        assert local == pytest.approx(d / (75 * GBPS))
        assert aware == pytest.approx(local / 2)

    @given(st.integers(min_value=1, max_value=10 ** 12))
    def test_bw_aware_never_slower(self, nbytes):
        local = transfer_latency(nbytes, PlacementPolicy.LOCAL, 6,
                                 25 * GBPS)
        aware = transfer_latency(nbytes, PlacementPolicy.BW_AWARE, 6,
                                 25 * GBPS)
        assert aware <= local

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_latency(-1, PlacementPolicy.LOCAL, 6, GBPS)
        with pytest.raises(ValueError):
            transfer_latency(1, PlacementPolicy.LOCAL, 5, GBPS)
        with pytest.raises(ValueError):
            transfer_latency(1, PlacementPolicy.LOCAL, 6, 0)


class TestBwAwarePlacement:
    def test_round_robin_split(self):
        allocator = RemoteAllocator(small_layout(),
                                    PlacementPolicy.BW_AWARE)
        mappings = allocator.allocate(6 * PAGE_BYTES)
        tiers = [m.tier for m in mappings]
        assert tiers == [Tier.REMOTE_LEFT, Tier.REMOTE_RIGHT] * 3

    @given(st.integers(min_value=1, max_value=16 * PAGE_BYTES))
    def test_even_split_within_one_page(self, nbytes):
        allocator = RemoteAllocator(small_layout(16),
                                    PlacementPolicy.BW_AWARE)
        mappings = allocator.allocate(nbytes)
        left = sum(1 for m in mappings if m.tier is Tier.REMOTE_LEFT)
        right = len(mappings) - left
        assert abs(left - right) <= 1
        assert len(mappings) == math.ceil(nbytes / PAGE_BYTES)

    def test_spills_to_other_side_when_full(self):
        allocator = RemoteAllocator(small_layout(2),
                                    PlacementPolicy.BW_AWARE)
        mappings = allocator.allocate(4 * PAGE_BYTES)  # fills both
        assert allocator.free_bytes == 0
        allocator.release(mappings)
        # Fill the left side, then a BW_AWARE alloc must still succeed.
        allocator._next_frame[Tier.REMOTE_LEFT] = 2
        spilled = allocator.allocate(2 * PAGE_BYTES)
        assert all(m.tier is Tier.REMOTE_RIGHT for m in spilled)


class TestLocalPlacement:
    def test_single_node_placement(self):
        allocator = RemoteAllocator(small_layout(), PlacementPolicy.LOCAL)
        mappings = allocator.allocate(5 * PAGE_BYTES)
        assert len({m.tier for m in mappings}) == 1

    def test_alternates_sides_across_allocations(self):
        allocator = RemoteAllocator(small_layout(), PlacementPolicy.LOCAL)
        first = allocator.allocate(3 * PAGE_BYTES)
        second = allocator.allocate(3 * PAGE_BYTES)
        assert first[0].tier != second[0].tier  # emptier side chosen

    def test_exhaustion_raises(self):
        allocator = RemoteAllocator(small_layout(2), PlacementPolicy.LOCAL)
        allocator.allocate(4 * PAGE_BYTES)
        with pytest.raises(OutOfRemoteMemoryError):
            allocator.allocate(PAGE_BYTES)


class TestRelease:
    def test_lifo_release_reclaims(self):
        allocator = RemoteAllocator(small_layout(),
                                    PlacementPolicy.BW_AWARE)
        before = allocator.free_bytes
        mappings = allocator.allocate(4 * PAGE_BYTES)
        assert allocator.free_bytes == before - 4 * PAGE_BYTES
        allocator.release(mappings)
        assert allocator.free_bytes == before

    def test_non_lifo_release_rejected(self):
        allocator = RemoteAllocator(small_layout(),
                                    PlacementPolicy.BW_AWARE)
        first = allocator.allocate(2 * PAGE_BYTES)
        allocator.allocate(2 * PAGE_BYTES)
        with pytest.raises(ValueError):
            allocator.release(first)

    @given(st.lists(st.integers(min_value=1, max_value=3 * PAGE_BYTES),
                    min_size=1, max_size=6))
    def test_alloc_release_roundtrip_conserves_frames(self, sizes):
        allocator = RemoteAllocator(small_layout(32),
                                    PlacementPolicy.BW_AWARE)
        before = allocator.free_bytes
        stack = [allocator.allocate(size) for size in sizes]
        while stack:
            allocator.release(stack.pop())
        assert allocator.free_bytes == before

    def test_unique_virtual_pages(self):
        allocator = RemoteAllocator(small_layout(),
                                    PlacementPolicy.BW_AWARE)
        mappings = allocator.allocate(6 * PAGE_BYTES)
        assert len({m.virtual_page for m in mappings}) == len(mappings)
        frames = {(m.tier, m.frame) for m in mappings}
        assert len(frames) == len(mappings)  # injective placement

    def test_rejects_zero_allocation(self):
        allocator = RemoteAllocator(small_layout(), PlacementPolicy.LOCAL)
        with pytest.raises(ValueError):
            allocator.allocate(0)


#: Allocation sizes in pages (kept small enough that a whole random
#: sequence fits the 32-page-per-side layout below).
_alloc_pages = st.lists(st.integers(min_value=1, max_value=5),
                        min_size=1, max_size=10)
_policies = st.sampled_from(list(PlacementPolicy))


class TestAllocatorProperties:
    """Hypothesis invariants over random alloc/release sequences."""

    @settings(max_examples=120, deadline=None)
    @given(sizes=_alloc_pages, policy=_policies)
    def test_no_overlapping_live_allocations(self, sizes, policy):
        """No (tier, frame) is ever owned by two live allocations."""
        allocator = RemoteAllocator(small_layout(32), policy)
        live: dict[tuple, int] = {}
        for i, pages in enumerate(sizes):
            for mapping in allocator.allocate(pages * PAGE_BYTES):
                key = (mapping.tier, mapping.frame)
                assert key not in live, (
                    f"frame {key} double-booked by allocations "
                    f"{live[key]} and {i}")
                live[key] = i

    @settings(max_examples=120, deadline=None)
    @given(sizes=_alloc_pages, policy=_policies)
    def test_free_after_alloc_restores_capacity(self, sizes, policy):
        """Unwinding the LIFO stack returns every byte, step by step."""
        allocator = RemoteAllocator(small_layout(32), policy)
        checkpoints = []
        stack = []
        for pages in sizes:
            checkpoints.append(allocator.free_bytes)
            stack.append(allocator.allocate(pages * PAGE_BYTES))
        while stack:
            mappings = stack.pop()
            before = checkpoints.pop()
            allocator.release(mappings)
            assert allocator.free_bytes == before

    @settings(max_examples=120, deadline=None)
    @given(sizes=_alloc_pages, policy=_policies)
    def test_fragmentation_bounded(self, sizes, policy):
        """The fragmentation metric stays in [0, 1] at every step."""
        allocator = RemoteAllocator(small_layout(32), policy)
        assert allocator.fragmentation == 0.0  # pristine space
        stack = []
        for pages in sizes:
            stack.append(allocator.allocate(pages * PAGE_BYTES))
            assert 0.0 <= allocator.fragmentation <= 1.0
        while stack:
            allocator.release(stack.pop())
            assert 0.0 <= allocator.fragmentation <= 1.0

    def test_fragmentation_extremes(self):
        # LOCAL drains one whole side: the remaining free space is one
        # single-node extent, so nothing is stranded.
        allocator = RemoteAllocator(small_layout(4),
                                    PlacementPolicy.LOCAL)
        assert allocator.fragmentation == 0.0  # pristine
        allocator.allocate(4 * PAGE_BYTES)
        assert allocator.fragmentation == 0.0
        # A BW_AWARE split strands half of what a single node could
        # still hold: 3 + 3 free, best single-node run 4, actual 3.
        balanced = RemoteAllocator(small_layout(4),
                                   PlacementPolicy.BW_AWARE)
        balanced.allocate(2 * PAGE_BYTES)
        assert balanced.fragmentation == pytest.approx(1.0 / 6.0)
        # Exhaustion: no free frames at all reads as unfragmented.
        balanced.allocate(6 * PAGE_BYTES)
        assert balanced.free_bytes == 0
        assert balanced.fragmentation == 0.0
