"""Unit tests: claim primitives and metric-path resolution.

Claims are exercised against synthetic results (plain attribute
namespaces) so each primitive's pass/fail/error logic is pinned down
without running the simulator.
"""

from types import SimpleNamespace

import pytest

from repro.core.metrics import (LatencyBreakdown, MetricPathError,
                                resolve_metric)
from repro.scenarios.claims import (at_least, at_most, dominates,
                                    evaluate_claims, monotone_in,
                                    ratio_at_least, ratio_dominates,
                                    within_pct)
from repro.scenarios.verdict import Status


def _result(**attrs):
    attrs.setdefault("mode", SimpleNamespace(value="training"))
    return SimpleNamespace(**attrs)


def _lookup(**table):
    results = {name: _result(time=value) if isinstance(value,
                                                       (int, float))
               else value for name, value in table.items()}

    def lookup(name):
        return results[name]
    return lookup


class TestResolveMetric:
    def test_walks_dotted_properties(self):
        result = _result(
            breakdown=LatencyBreakdown(compute=1.0, sync=1.0,
                                       vmem=6.0))
        assert resolve_metric(result, "breakdown.vmem_share") == 0.75

    def test_bools_fold_to_floats(self):
        assert resolve_metric(_result(fits=True), "fits") == 1.0
        assert resolve_metric(_result(fits=False), "fits") == 0.0

    def test_missing_attribute(self):
        with pytest.raises(MetricPathError, match="no attribute"):
            resolve_metric(_result(), "jct_p95")

    def test_none_segment_names_the_mode(self):
        result = _result(cluster=None)
        with pytest.raises(MetricPathError, match="mode=training"):
            resolve_metric(result, "cluster.jct_p95")

    def test_non_numeric_leaf(self):
        with pytest.raises(MetricPathError, match="not a number"):
            resolve_metric(_result(name="DC-DLA"), "name")


class TestVmemShare:
    def test_share_and_empty_total(self):
        assert LatencyBreakdown(1.0, 1.0, 2.0).vmem_share == 0.5
        assert LatencyBreakdown(0.0, 0.0, 0.0).vmem_share == 0.0


class TestRatioAtLeast:
    def test_pass_reports_worst_pair(self):
        claim = ratio_at_least(
            "speedup", "time", numerators=("slow-a", "slow-b"),
            denominators=("fast",), threshold=2.0)
        verdict = claim.check(_lookup(**{"slow-a": 6.0, "slow-b": 4.0,
                                         "fast": 2.0}))
        assert verdict.status is Status.PASS
        assert verdict.measured == 2.0
        assert verdict.margin == 0.0
        assert verdict.detail == ""

    def test_strict_rejects_equality(self):
        claim = ratio_at_least(
            "speedup", "time", numerators=("a",),
            denominators=("b",), threshold=2.0, strict=True)
        verdict = claim.check(_lookup(a=4.0, b=2.0))
        assert verdict.status is Status.FAIL
        assert "worst a / b" in verdict.detail

    def test_window_upper_bound(self):
        claim = ratio_at_least(
            "speedup", "time", numerators=("a",),
            denominators=("b",), threshold=1.0, at_most=1.5)
        verdict = claim.check(_lookup(a=4.0, b=2.0))
        assert verdict.status is Status.FAIL
        assert verdict.margin == pytest.approx(-0.5)

    def test_broadcast_mismatch_is_an_error_verdict(self):
        claim = ratio_at_least(
            "speedup", "time", numerators=("a", "b"),
            denominators=("c", "d", "e"))
        verdict = claim.evaluate(_lookup(a=1, b=1, c=1, d=1, e=1))
        assert verdict.status is Status.ERROR
        assert "must align" in verdict.detail

    def test_unknown_aggregate_rejected_at_build(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            ratio_at_least("x", "time", numerators=("a",),
                           denominators=("b",), aggregate="median")


class TestRatioDominates:
    def test_ratio_of_aggregates(self):
        claim = ratio_dominates(
            "dp-over-mp", "time",
            numerators_a=("base-dp",), denominators_a=("fast-dp",),
            numerators_b=("base-mp",), denominators_b=("fast-mp",),
            strict=True)
        lookup = _lookup(**{"base-dp": 8.0, "fast-dp": 2.0,
                            "base-mp": 6.0, "fast-mp": 3.0})
        verdict = claim.check(lookup)
        assert verdict.status is Status.PASS
        assert verdict.measured == 2.0   # (8/2) / (6/3)

    def test_factor_window(self):
        claim = ratio_dominates(
            "near", "time",
            numerators_a=("a",), denominators_a=("b",),
            numerators_b=("c",), denominators_b=("d",),
            factor=0.9, at_most=1.0)
        lookup = _lookup(a=3.0, b=2.0, c=2.0, d=1.0)
        verdict = claim.check(lookup)   # (1.5) / (2.0) = 0.75 < 0.9
        assert verdict.status is Status.FAIL
        assert verdict.measured == 0.75


class TestWithinPct:
    def test_exact_equality_when_pct_zero(self):
        claim = within_pct("conserved", "time",
                           scenarios=("a", "b"), reference="ref")
        assert claim.check(
            _lookup(a=5.0, b=5.0, ref=5.0)).status is Status.PASS
        verdict = claim.check(_lookup(a=5.0, b=5.5, ref=5.0))
        assert verdict.status is Status.FAIL
        assert verdict.measured == pytest.approx(10.0)
        assert "worst b" in verdict.detail

    def test_zero_reference(self):
        claim = within_pct("zeros", "time", scenarios=("a",),
                           reference="ref")
        assert claim.check(
            _lookup(a=0.0, ref=0.0)).status is Status.PASS
        verdict = claim.check(_lookup(a=1.0, ref=0.0))
        assert verdict.status is Status.FAIL
        assert verdict.measured == float("inf")


class TestMonotoneIn:
    LOOKUP = staticmethod(lambda: _lookup(a=4.0, b=3.0, c=3.0, d=5.0))

    def test_non_increasing_allows_plateaus(self):
        claim = monotone_in("down", "time", scenarios=("a", "b", "c"))
        assert claim.check(self.LOOKUP()).status is Status.PASS

    def test_strict_flags_the_plateau(self):
        claim = monotone_in("down", "time", scenarios=("a", "b", "c"),
                            strict=True)
        verdict = claim.check(self.LOOKUP())
        assert verdict.status is Status.FAIL
        assert "b -> c" in verdict.detail

    def test_violating_step_is_named(self):
        claim = monotone_in("down", "time",
                            scenarios=("a", "b", "c", "d"))
        verdict = claim.check(self.LOOKUP())
        assert verdict.status is Status.FAIL
        assert verdict.measured == 2.0   # the c -> d jump
        assert "c -> d" in verdict.detail

    def test_non_decreasing(self):
        claim = monotone_in("up", "time", scenarios=("b", "c", "d"),
                            direction="non-decreasing")
        assert claim.check(self.LOOKUP()).status is Status.PASS


class TestDominates:
    def test_pairwise_with_tolerance(self):
        claim = dominates("bound", "time", winners=("oracle",),
                          losers=("a", "b"), tolerance=0.25)
        lookup = _lookup(oracle=2.0, a=2.0, b=1.8)
        verdict = claim.check(lookup)   # oracle beats a, ties-ish b
        assert verdict.status is Status.PASS
        lookup = _lookup(oracle=2.0, a=2.0, b=1.5)
        verdict = claim.check(lookup)
        assert verdict.status is Status.FAIL
        assert "oracle vs b" in verdict.detail

    def test_max_sense_flips_the_inequality(self):
        claim = dominates("avail", "time", winners=("mc",),
                          losers=("dc",), sense="max")
        assert claim.check(
            _lookup(mc=0.9, dc=0.5)).status is Status.PASS
        assert claim.check(
            _lookup(mc=0.4, dc=0.5)).status is Status.FAIL


class TestBounds:
    def test_at_least_names_worst_scenario(self):
        claim = at_least("floor", "time", scenarios=("a", "b"),
                         bound=3.0)
        verdict = claim.check(_lookup(a=4.0, b=2.0))
        assert verdict.status is Status.FAIL
        assert verdict.measured == 2.0
        assert "worst b" in verdict.detail

    def test_at_most(self):
        claim = at_most("ceiling", "time", scenarios=("a",), bound=1.0)
        assert claim.check(_lookup(a=0.5)).status is Status.PASS
        assert claim.check(_lookup(a=1.5)).status is Status.FAIL

    def test_quorum_counts_satisfying_scenarios(self):
        claim = at_least("quorum", "time",
                         scenarios=("a", "b", "c"), bound=3.0,
                         min_count=2)
        verdict = claim.check(_lookup(a=4.0, b=5.0, c=1.0))
        assert verdict.status is Status.PASS
        assert verdict.measured == 2.0   # the count, not a metric
        verdict = claim.check(_lookup(a=4.0, b=1.0, c=1.0))
        assert verdict.status is Status.FAIL
        assert "1 of 3 satisfy" in verdict.detail

    def test_quorum_bounds_validated(self):
        with pytest.raises(ValueError, match="min_count"):
            at_least("bad", "time", scenarios=("a",), bound=0.0,
                     min_count=2)


class TestEvaluate:
    def test_failed_lookup_becomes_error_verdict(self):
        def lookup(name):
            raise RuntimeError(f"scenario {name} exploded")
        claim = at_least("floor", "time", scenarios=("a",), bound=0.0)
        verdict, = evaluate_claims([claim], lookup)
        assert verdict.status is Status.ERROR
        assert verdict.measured is None
        assert "RuntimeError: scenario a exploded" in verdict.detail

    def test_metric_path_error_becomes_error_verdict(self):
        claim = at_least("floor", "cluster.jct_p95",
                         scenarios=("a",), bound=0.0)
        verdict = claim.evaluate(lambda name: _result(cluster=None))
        assert verdict.status is Status.ERROR
        assert "MetricPathError" in verdict.detail

    def test_negative_zero_folds_to_positive_zero(self):
        claim = dominates("tie", "time", winners=("a",),
                          losers=("b",))
        verdict = claim.check(_lookup(a=0.0, b=-0.0))
        assert str(verdict.measured) == "0.0"
        assert str(verdict.margin) == "0.0"
