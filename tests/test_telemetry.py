"""Tests for ``repro.telemetry``: registry, spans, probes, sessions.

The contract under test is the observability layer's core promise:
telemetry is *provably inert* (simulation results are byte-identical
with it on or off, and disabled handles are the shared no-op
singleton), and everything it records is *deterministic* (snapshots
JSON-round-trip exactly, the campaign JSONL stream is identical run
to run, wall-clock lives only in the manifest).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import telemetry
from repro.core import pricing
from repro.core.design_points import design_point
from repro.core.simulator import simulate
from repro.telemetry.manifest import (WALL_CLOCK_FIELDS, build_manifest,
                                      config_fingerprint, write_manifest)
from repro.telemetry.registry import (NOOP, MetricsRegistry,
                                      to_prometheus)
from repro.telemetry.session import (TelemetrySession, artifact_paths,
                                     eta_seconds, summary_text)
from repro.telemetry.spans import (HOST_PID, NOOP_SPAN,
                                   chrome_span_events, span,
                                   span_totals)
from repro.training.parallel import ParallelStrategy


@pytest.fixture
def enabled():
    """Telemetry on for one test, reliably off afterwards."""
    pricing.clear_caches()
    telemetry.enable(fresh=True)
    yield telemetry.metrics_registry()
    telemetry.disable()


# -- registry -------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_x_total", "things", kind="a")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert registry.counter("repro_x_total", kind="a") is c
        g = registry.gauge("repro_depth")
        g.set(7)
        assert g.value == 7
        h = registry.histogram("repro_sizes", buckets=(1, 10, 100))
        for v in (0, 5, 50, 500):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == 555

    def test_labels_are_part_of_the_key(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", memo="a")
        b = registry.counter("repro_x_total", memo="b")
        assert a is not b
        a.inc()
        snap = registry.snapshot()
        values = {tuple(e["labels"].items()): e["value"]
                  for e in snap["counters"]}
        assert values == {(("memo", "a"),): 1, (("memo", "b"),): 0}

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("repro_h", buckets=(3, 1, 2))

    def test_snapshot_json_round_trip_exact(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "help a", memo="m").inc(3)
        registry.gauge("repro_g").set(1.25)
        registry.histogram("repro_h", buckets=(1, 2)).observe(1.5)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        rebuilt = MetricsRegistry.from_snapshot(snap)
        assert rebuilt.snapshot() == snap

    def test_merge_adds_counters_and_keeps_max_gauge(self):
        a = MetricsRegistry()
        a.counter("repro_c_total").inc(2)
        a.gauge("repro_g").set(5)
        a.histogram("repro_h", buckets=(1,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("repro_c_total").inc(3)
        b.gauge("repro_g").set(4)
        b.histogram("repro_h", buckets=(1,)).observe(9)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"][0]["value"] == 5
        assert snap["gauges"][0]["value"] == 5
        assert snap["histograms"][0]["counts"] == [1, 1]
        assert snap["histograms"][0]["count"] == 2


# -- the disabled path ----------------------------------------------------


class TestDisabledPath:
    def test_handles_are_the_noop_singleton(self):
        assert telemetry.metrics_registry() is None
        assert telemetry.counter("repro_x_total") is NOOP
        assert telemetry.gauge("repro_g") is NOOP
        assert telemetry.histogram("repro_h") is NOOP
        assert span("anything", k="v") is NOOP_SPAN

    def test_noop_allocates_nothing(self):
        # __slots__ = (): the singleton has no per-instance dict and
        # its methods return None without touching any state.
        assert not hasattr(NOOP, "__dict__")
        assert NOOP.inc() is None
        assert NOOP.inc(5) is None
        assert NOOP.set(1) is None
        assert NOOP.observe(2) is None

    def test_probe_modules_bind_noop_when_disabled(self):
        assert all(h is NOOP for h in pricing._HITS.values())
        assert all(h is NOOP for h in pricing._MISSES.values())
        from repro.core import optable
        assert optable._SCHED_RUNS is NOOP
        assert optable._SCHED_TABLE_OPS is NOOP

    def test_probe_modules_rebind_on_enable(self, enabled):
        assert all(h is not NOOP for h in pricing._HITS.values())
        from repro.core import optable
        assert optable._SCHED_RUNS is not NOOP


# -- inertness ------------------------------------------------------------


class TestInertness:
    """Identical results with telemetry on and off."""

    @pytest.mark.parametrize("network,strategy", [
        ("AlexNet", ParallelStrategy.DATA),
        ("VGG-E", ParallelStrategy.MODEL),
        ("GPT2", ParallelStrategy.PIPELINE),
    ])
    def test_simulate(self, network, strategy):
        config = design_point("MC-DLA(B)")
        pricing.clear_caches()
        baseline = simulate(config, network, 256, strategy)
        telemetry.enable(fresh=True)
        try:
            pricing.clear_caches()
            observed = simulate(config, network, 256, strategy)
        finally:
            telemetry.disable()
        assert (dataclasses.asdict(baseline)
                == dataclasses.asdict(observed))

    def test_simulate_serving(self):
        from repro.serving.server import simulate_serving
        config = design_point("MC-DLA(B)")
        pricing.clear_caches()
        baseline = simulate_serving(config, "GPT2", n_requests=64)
        telemetry.enable(fresh=True)
        try:
            pricing.clear_caches()
            observed = simulate_serving(config, "GPT2", n_requests=64)
        finally:
            telemetry.disable()
        assert (dataclasses.asdict(baseline)
                == dataclasses.asdict(observed))

    def test_simulate_cluster(self):
        from repro.cluster.simulator import simulate_cluster
        config = design_point("MC-DLA(B)")
        pricing.clear_caches()
        baseline = simulate_cluster(config, n_jobs=6, seed=3)
        telemetry.enable(fresh=True)
        try:
            pricing.clear_caches()
            observed = simulate_cluster(config, n_jobs=6, seed=3)
        finally:
            telemetry.disable()
        assert (dataclasses.asdict(baseline)
                == dataclasses.asdict(observed))

    def test_figure_output_unchanged(self):
        from repro.experiments.fig9_collectives import (format_fig9,
                                                        run_fig9)
        pricing.clear_caches()
        baseline = format_fig9(run_fig9())
        telemetry.enable(fresh=True)
        try:
            pricing.clear_caches()
            observed = format_fig9(run_fig9())
        finally:
            telemetry.disable()
        assert baseline == observed


# -- probes ---------------------------------------------------------------


class TestProbes:
    def test_pricing_and_schedule_counters_record(self, enabled):
        simulate(design_point("MC-DLA(B)"), "AlexNet", 256,
                 ParallelStrategy.DATA)
        snap = enabled.snapshot()
        totals: dict[str, float] = {}
        for entry in snap["counters"]:
            totals[entry["name"]] = (totals.get(entry["name"], 0)
                                     + entry["value"])
        assert totals["repro_pricing_memo_misses_total"] > 0
        assert totals["repro_schedule_runs_total"] >= 1
        assert totals["repro_schedule_ops_total"] > 0
        hists = {e["name"]: e for e in snap["histograms"]}
        assert hists["repro_schedule_table_ops"]["count"] >= 1

    def test_warm_memos_count_hits(self, enabled):
        config = design_point("MC-DLA(B)")
        simulate(config, "AlexNet", 256, ParallelStrategy.DATA)
        cold = {tuple(sorted(e["labels"].items())): e["value"]
                for e in enabled.snapshot()["counters"]
                if e["name"] == "repro_pricing_memo_hits_total"}
        simulate(config, "AlexNet", 256, ParallelStrategy.DATA)
        warm = {tuple(sorted(e["labels"].items())): e["value"]
                for e in enabled.snapshot()["counters"]
                if e["name"] == "repro_pricing_memo_hits_total"}
        assert sum(warm.values()) > sum(cold.values())

    def test_prefetch_and_cluster_counters_record(self, enabled):
        from repro.cluster.simulator import simulate_cluster
        simulate_cluster(design_point("MC-DLA(B)"), n_jobs=6, seed=3)
        names = {e["name"] for e in enabled.snapshot()["counters"]}
        assert "repro_cluster_jobs_total" in names
        assert "repro_cluster_events_total" in names


# -- spans ----------------------------------------------------------------


class TestSpans:
    def test_nesting_depth_and_totals(self, enabled):
        with span("outer", key="v"):
            with span("inner"):
                pass
            with span("inner"):
                pass
        spans = telemetry.span_recorder().spans
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        assert len(by_name["inner"]) == 2
        assert all(s.depth == 1 for s in by_name["inner"])
        outer = by_name["outer"][0]
        assert outer.depth == 0
        assert outer.args == {"key": "v"}
        assert outer.duration >= 0
        totals = span_totals(spans)
        assert totals["inner"]["count"] == 2
        assert totals["outer"]["count"] == 1

    def test_chrome_span_events_schema(self, enabled):
        with span("phase", mode="x"):
            pass
        events = chrome_span_events(telemetry.span_recorder().spans)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name",
                                             "thread_name"}
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        event = slices[0]
        assert event["pid"] == HOST_PID
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"] == {"mode": "x"}

    def test_simulate_records_phase_spans(self, enabled):
        simulate(design_point("MC-DLA(B)"), "AlexNet", 256,
                 ParallelStrategy.DATA)
        names = [s.name for s in telemetry.span_recorder().spans]
        assert {"plan", "price", "emit", "schedule"} <= set(names)


# -- exporters ------------------------------------------------------------


class TestPrometheus:
    def test_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "things counted",
                         memo="dma").inc(3)
        registry.histogram("repro_h", buckets=(1, 2)).observe(1.5)
        text = to_prometheus(registry.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_x_total counter" in lines
        assert "# HELP repro_x_total things counted" in lines
        assert 'repro_x_total{memo="dma"} 3' in lines
        assert 'repro_h_bucket{le="1"} 0' in lines
        assert 'repro_h_bucket{le="2"} 1' in lines
        assert 'repro_h_bucket{le="+Inf"} 1' in lines
        assert "repro_h_sum 1.5" in lines
        assert "repro_h_count 1" in lines

    def test_escaping(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", 'a "quoted" help',
                         k='v"w').inc()
        text = to_prometheus(registry.snapshot())
        assert r'# HELP repro_x_total a \"quoted\" help' in text
        assert r'repro_x_total{k="v\"w"} 1' in text


class TestManifest:
    def test_fingerprint_stable_and_sensitive(self):
        config = {"designs": ["DC-DLA"], "batch": 256}
        assert (config_fingerprint(config)
                == config_fingerprint({"batch": 256,
                                       "designs": ["DC-DLA"]}))
        assert (config_fingerprint(config)
                != config_fingerprint({"designs": ["DC-DLA"],
                                       "batch": 512}))

    def test_build_and_write_round_trip(self, tmp_path):
        manifest = build_manifest(
            tool="campaign", argv=["--quick"], config={"a": 1},
            seed=7, phases={"plan": {"count": 1, "seconds": 0.5}},
            wall_seconds=1.25, cells={"total": 4})
        assert manifest["tool"] == "campaign"
        assert manifest["seed"] == 7
        assert manifest["python"]
        assert len(manifest["code_fingerprint"]) == 64
        assert len(manifest["config_fingerprint"]) == 64
        for field in WALL_CLOCK_FIELDS:
            assert field in manifest
        path = tmp_path / "run.manifest.json"
        write_manifest(path, manifest)
        assert json.loads(path.read_text()) == manifest


# -- sessions and CLIs ----------------------------------------------------


class TestSession:
    def test_disabled_session_is_inert(self, tmp_path, capsys):
        session = TelemetrySession(tool="campaign", argv=[],
                                   enabled=False,
                                   output=str(tmp_path / "o.txt"))
        with session:
            session.emit({"event": "cell"})
        assert session.events == []
        assert list(tmp_path.iterdir()) == []
        assert capsys.readouterr().err == ""

    def test_artifact_paths(self):
        paths = artifact_paths("campaign", "runs/grid.json")
        assert str(paths["jsonl"]) == "runs/grid.telemetry.jsonl"
        assert str(paths["manifest"]) == "runs/grid.manifest.json"
        assert str(paths["prom"]) == "runs/grid.prom"
        assert str(artifact_paths("serve", None)["prom"]) == "serve.prom"

    def test_summary_pairs_hits_with_misses(self):
        registry = MetricsRegistry()
        registry.counter("repro_campaign_cache_hits_total").inc(3)
        registry.counter("repro_campaign_cache_misses_total").inc(1)
        text = summary_text(registry.snapshot(), {})
        assert "campaign_cache" in text
        assert "75.0%" in text

    def test_eta_guards_fully_cached_and_finished_runs(self):
        """Regression: a fully-cached campaign has zero simulated
        cells -- the mean-cell ETA must not divide by zero."""
        assert eta_seconds(0.0, 0, 10) is None
        assert eta_seconds(12.0, 4, 0) is None
        assert eta_seconds(12.0, 4, 3) == pytest.approx(9.0)

    def test_exception_still_flushes_artifacts(self, tmp_path, capsys):
        """Regression: a campaign dying mid-run must still write its
        (truncated) telemetry -- and the exception must propagate."""
        out = tmp_path / "run.json"
        session = TelemetrySession(tool="campaign", argv=["x"],
                                   enabled=True, output=str(out))
        with pytest.raises(ValueError, match="boom"):
            with session:
                session.emit({"event": "cell", "ok": False})
                raise ValueError("boom")
        assert telemetry.metrics_registry() is None
        paths = artifact_paths("campaign", str(out))
        for path in paths.values():
            assert path.exists()
        lines = [json.loads(line) for line in
                 paths["jsonl"].read_text().splitlines()]
        assert lines[1] == {"event": "cell", "ok": False}
        assert lines[-1]["event"] == "end"
        assert lines[-1]["error"] == "ValueError"
        capsys.readouterr()

    def test_clean_exit_records_no_error_key(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        session = TelemetrySession(tool="campaign", argv=[],
                                   enabled=True, output=str(out))
        with session:
            pass
        end = json.loads(artifact_paths("campaign", str(out))["jsonl"]
                         .read_text().splitlines()[-1])
        assert "error" not in end
        capsys.readouterr()

    def test_flush_failure_never_masks_the_run_exception(self,
                                                         tmp_path):
        """A broken output directory must not replace the original
        in-run exception with an IO error..."""
        bad = tmp_path / "no-such-dir" / "run.json"
        session = TelemetrySession(tool="campaign", argv=[],
                                   enabled=True, output=str(bad))
        with pytest.raises(ValueError, match="boom"):
            with session:
                raise ValueError("boom")
        assert telemetry.metrics_registry() is None

    def test_flush_failure_surfaces_on_clean_exit(self, tmp_path):
        """...but on a clean run the flush failure is the story."""
        bad = tmp_path / "no-such-dir" / "run.json"
        session = TelemetrySession(tool="campaign", argv=[],
                                   enabled=True, output=str(bad))
        with pytest.raises(FileNotFoundError):
            with session:
                pass
        assert telemetry.metrics_registry() is None


class TestCampaignCli:
    def _run(self, args):
        from repro.campaign.cli import main
        return main(args)

    def test_telemetry_artifacts(self, tmp_path, capsys):
        out = tmp_path / "quick.txt"
        code = self._run(["--quick", "--telemetry", "--no-cache",
                          "-q", "-o", str(out)])
        assert code == 0
        err = capsys.readouterr().err
        assert "telemetry: wrote" in err

        lines = [json.loads(line) for line in
                 (tmp_path / "quick.telemetry.jsonl").read_text()
                 .splitlines()]
        assert lines[0]["event"] == "begin"
        assert lines[0]["tool"] == "campaign"
        cells = [line for line in lines if line["event"] == "cell"]
        assert len(cells) == 4
        assert all(c["ok"] and not c["cached"] for c in cells)
        metrics = [line for line in lines
                   if line["event"] == "metrics"]
        assert len(metrics) == 1
        names = {e["name"] for e in
                 metrics[0]["snapshot"]["counters"]}
        assert "repro_pricing_memo_hits_total" in names
        assert lines[-1]["event"] == "end"
        assert lines[-1]["cells"]["total"] == 4

        manifest = json.loads(
            (tmp_path / "quick.manifest.json").read_text())
        assert manifest["tool"] == "campaign"
        assert manifest["cells"]["simulated"] == 4
        assert "plan" in manifest["phases"]

        prom = (tmp_path / "quick.prom").read_text()
        assert ("# TYPE repro_pricing_memo_hits_total counter"
                in prom)

    def test_cache_summary_always_on(self, tmp_path, capsys):
        args = ["--quick", "--cache-dir", str(tmp_path / "cache"),
                "-q", "-o", str(tmp_path / "out.txt")]
        assert self._run(args) == 0
        assert "0 hits, 4 misses (0% hit rate)" in \
            capsys.readouterr().err
        assert self._run(args) == 0
        assert "4 hits, 0 misses (100% hit rate)" in \
            capsys.readouterr().err

    def test_jsonl_deterministic_run_to_run(self, tmp_path,
                                            monkeypatch, capsys):
        streams, manifests = [], []
        for name in ("first", "second"):
            run_dir = tmp_path / name
            run_dir.mkdir()
            monkeypatch.chdir(run_dir)
            code = self._run(["--quick", "--telemetry", "--no-cache",
                              "-q", "-o", "out.txt"])
            assert code == 0
            streams.append(
                (run_dir / "out.telemetry.jsonl").read_bytes())
            manifests.append(json.loads(
                (run_dir / "out.manifest.json").read_text()))
        capsys.readouterr()
        assert streams[0] == streams[1]
        for manifest in manifests:
            for field in WALL_CLOCK_FIELDS:
                manifest.pop(field)
        assert manifests[0] == manifests[1]

    def test_pool_workers_ship_snapshots(self):
        from repro.campaign.points import grid
        from repro.campaign.runner import run_campaign
        points = grid(("DC-DLA", "HC-DLA"), ("AlexNet",),
                      batches=(64, 128))
        pricing.clear_caches()
        telemetry.enable(fresh=True)
        try:
            run_campaign(points, jobs=2).raise_failures()
            snap = telemetry.metrics_registry().snapshot()
        finally:
            telemetry.disable()
        runs = sum(e["value"] for e in snap["counters"]
                   if e["name"] == "repro_schedule_runs_total")
        assert runs == len(points)
        misses = sum(e["value"] for e in snap["counters"]
                     if e["name"] == "repro_pricing_memo_misses_total")
        assert misses > 0


class TestOtherClis:
    def test_cluster_cli_telemetry(self, tmp_path, monkeypatch,
                                   capsys):
        from repro.cluster.cli import main
        monkeypatch.chdir(tmp_path)
        assert main(["--quick", "--telemetry"]) == 0
        assert "telemetry: wrote" in capsys.readouterr().err
        snapshot = json.loads(
            (tmp_path / "cluster.telemetry.jsonl").read_text()
            .splitlines()[-2])["snapshot"]
        names = {e["name"] for e in snapshot["counters"]}
        assert "repro_cluster_jobs_total" in names
        manifest = json.loads(
            (tmp_path / "cluster.manifest.json").read_text())
        assert manifest["tool"] == "cluster"
        assert "cluster:run" in manifest["phases"]

    def test_serve_cli_telemetry(self, tmp_path, monkeypatch, capsys):
        from repro.serving.cli import main
        monkeypatch.chdir(tmp_path)
        assert main(["--telemetry", "--requests", "64"]) == 0
        capsys.readouterr()
        prom = (tmp_path / "serve.prom").read_text()
        assert "repro_serving_requests_total" in prom
        manifest = json.loads(
            (tmp_path / "serve.manifest.json").read_text())
        assert "serving:batcher" in manifest["phases"]

    def test_trace_cli_requires_network_or_cluster(self, capsys):
        from repro.__main__ import main
        assert main(["trace", "DC-DLA"]) == 2
        assert "network is required" in capsys.readouterr().err


# -- merged and cluster traces --------------------------------------------


#: Host phases every merged campaign-cell trace must carry.
REQUIRED_HOST_SPANS = {"plan", "price", "emit", "schedule",
                       "cache:lookup"}


def check_merged_trace_schema(doc: dict) -> None:
    events = doc["traceEvents"]
    host = [e for e in events if e.get("pid") == HOST_PID]
    meta_names = {e["args"]["name"] for e in host if e["ph"] == "M"}
    assert "host" in meta_names
    host_slices = [e for e in host if e["ph"] == "X"]
    assert REQUIRED_HOST_SPANS <= {e["name"] for e in host_slices}
    for event in host_slices:
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["tid"] == 0
    sim = [e for e in events if e.get("pid") == 1]
    sim_meta = {e["args"]["name"] for e in sim if e["ph"] == "M"}
    assert {"simulated timeline", "compute", "comm", "dma-out",
            "dma-in"} <= sim_meta
    sim_slices = [e for e in sim if e["ph"] == "X"]
    assert sim_slices, "no simulated engine slices"
    assert any(e["name"].startswith("fwd:") for e in sim_slices)


class TestMergedTrace:
    def test_committed_fixture_schema(self):
        from pathlib import Path
        fixture = (Path(__file__).parent / "golden"
                   / "merged_trace.json")
        check_merged_trace_schema(json.loads(fixture.read_text()))

    def test_live_campaign_cell_trace_schema(self, tmp_path):
        from repro.campaign.cache import ResultCache
        from repro.campaign.points import grid
        from repro.campaign.runner import run_campaign
        from repro.core.simulator import iteration_timeline
        from repro.core.trace import to_chrome_trace
        points = grid(("MC-DLA(B)",), ("AlexNet",), batches=(256,))
        pricing.clear_caches()
        telemetry.enable(fresh=True)
        try:
            cache = ResultCache(str(tmp_path / "cache"))
            run_campaign(points, cache=cache).raise_failures()
            spans = list(telemetry.span_recorder().spans)
        finally:
            telemetry.disable()
        timeline = iteration_timeline(design_point("MC-DLA(B)"),
                                      "AlexNet", 256,
                                      ParallelStrategy.DATA)
        doc = json.loads(to_chrome_trace(timeline, host_spans=spans))
        check_merged_trace_schema(doc)

    def test_trace_cli_telemetry_merges_host_spans(self, tmp_path,
                                                   capsys):
        from repro.__main__ import main
        out = tmp_path / "iter.trace.json"
        code = main(["trace", "MC-DLA(B)", "AlexNet", "--telemetry",
                     "-o", str(out)])
        assert code == 0
        capsys.readouterr()
        assert not telemetry.enabled()
        doc = json.loads(out.read_text())
        host = {e["name"] for e in doc["traceEvents"]
                if e.get("pid") == HOST_PID and e["ph"] == "X"}
        assert {"plan", "price", "emit", "schedule"} <= host

    def test_plain_trace_has_no_host_rows(self, tmp_path, capsys):
        from repro.__main__ import main
        out = tmp_path / "plain.trace.json"
        assert main(["trace", "MC-DLA(B)", "AlexNet",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert all(e["pid"] == 1 for e in doc["traceEvents"])


class TestClusterTrace:
    def _preempting_ledger(self):
        from repro.cluster.jobs import JobKind, JobSpec
        from repro.cluster.simulator import ClusterSimulator
        long_job = JobSpec(jid=0, arrival=0.0, kind=JobKind.TRAINING,
                           network="AlexNet", batch=512,
                           iterations=400, width=8)
        late = JobSpec(jid=1, arrival=1.0, kind=JobKind.TRAINING,
                       network="AlexNet", batch=512, iterations=5,
                       width=8)
        sim = ClusterSimulator(design_point("MC-DLA(B)"),
                               policy="fifo", fleet_devices=8,
                               preempt_after=2.0)
        ledger, _ = sim.run((long_job, late))
        return ledger

    def test_lifecycle_slices(self):
        from repro.core.trace import cluster_chrome_trace
        ledger = self._preempting_ledger()
        assert ledger.preemptions >= 1
        doc = json.loads(cluster_chrome_trace(ledger.events))
        events = doc["traceEvents"]
        rows = {e["tid"] for e in events
                if e.get("cat") == "__metadata"}
        assert rows == {0, 1}
        slices = [e for e in events if e["ph"] == "X"]
        cats = {e["cat"] for e in slices}
        assert {"queued", "running", "preempted"} <= cats
        for event in slices:
            assert event["dur"] >= 0
            assert event["args"]["jid"] == event["tid"]

    def test_unknown_event_kind_rejected(self):
        from repro.core.trace import cluster_chrome_trace
        with pytest.raises(ValueError, match="unknown lifecycle"):
            cluster_chrome_trace([("arrive", 1, 0.0),
                                  ("warp", 1, 1.0)])

    def test_trace_cli_cluster_mode(self, tmp_path, capsys):
        from repro.__main__ import main
        out = tmp_path / "cluster.trace.json"
        code = main(["trace", "MC-DLA(B)", "--cluster",
                     "--cluster-jobs", "8", "-o", str(out)])
        assert code == 0
        assert "lifecycle events" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
        assert {"queued", "running"} <= cats


class TestBenchCli:
    def test_bench_telemetry_artifacts(self, tmp_path, monkeypatch,
                                       capsys):
        import shutil
        from repro.bench import bench_path, main
        shutil.copy(bench_path("cluster"),
                    tmp_path / "BENCH_cluster.json")
        monkeypatch.chdir(tmp_path)
        # The regression verdict may legitimately flag the probes-on
        # run (the gate is telemetry-off); only the artifacts matter.
        code = main(["--quick", "--suites", "cluster", "--telemetry",
                     "--root", str(tmp_path)])
        assert code in (0, 1)
        capsys.readouterr()
        assert (tmp_path / "bench.telemetry.jsonl").exists()
        manifest = json.loads(
            (tmp_path / "bench.manifest.json").read_text())
        assert manifest["tool"] == "bench"
        prom = (tmp_path / "bench.prom").read_text()
        assert "repro_cluster_jobs_total" in prom
