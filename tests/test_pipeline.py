"""Tests for the pipeline-parallel subsystem (repro.pipeline)."""

import dataclasses
import json

import pytest

from repro.campaign import ResultCache, pipeline_grid, run_campaign
from repro.campaign.cli import main as campaign_cli
from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.metrics import PipelineStats, SimulationResult
from repro.core.simulator import iteration_timeline, simulate
from repro.core.timeline import EngineKind, run_timeline
from repro.dnn.registry import build_network
from repro.pipeline import (ScheduleKind, build_pipeline_ops,
                            build_schedule, crossing_sends,
                            partition_stages, plan_pipeline,
                            pipeline_stats, resolve_stage_count,
                            stage_of_layer, stageable_layer_count,
                            structural_bubble_time)
from repro.training.parallel import ParallelStrategy


def _config(design="MC-DLA(B)", **replacements):
    config = design_point(design)
    return dataclasses.replace(config, **replacements) \
        if replacements else config


class TestPartition:
    def test_stages_are_contiguous_and_cover(self):
        net = build_network("GPT2")
        stages = partition_stages(net, 8)
        flattened = [name for stage in stages
                     for name in stage.layer_names]
        assert flattened == net.layer_names
        assert [s.index for s in stages] == list(range(8))

    def test_stages_balanced_by_macs(self):
        net = build_network("BERT-Large")
        stages = partition_stages(net, 8)
        costs = [sum(net.layer(n).fwd_macs(1) + net.layer(n).bwd_macs(1)
                     for n in stage.layer_names)
                 for stage in stages]
        # A 24-block stack splits 8 ways within ~2x of the mean.
        assert max(costs) <= 2 * (sum(costs) / len(costs))

    def test_every_stage_has_work(self):
        for name in ("AlexNet", "RNN-GRU", "GoogLeNet"):
            net = build_network(name)
            for n_stages in (2, 4, 8):
                for stage in partition_stages(net, n_stages):
                    assert any(net.layer(n).fwd_macs(1)
                               or net.layer(n).stream_elems
                               for n in stage.layer_names), \
                        f"{name}: stage {stage.index} has no work"

    def test_too_many_stages_rejected(self):
        net = build_network("AlexNet")
        with pytest.raises(ValueError, match="stages"):
            partition_stages(net, stageable_layer_count(net) + 1)
        with pytest.raises(ValueError):
            partition_stages(net, 0)

    def test_crossing_sends_point_forward(self):
        net = build_network("GPT2")
        stages = partition_stages(net, 4)
        owner = stage_of_layer(stages)
        sends = crossing_sends(net, stages)
        assert any(sends.values())
        for from_stage, edges in sends.items():
            for producer, to_stage in edges:
                assert owner[producer] == from_stage
                assert to_stage > from_stage


class TestSchedules:
    def test_gpipe_is_all_forward_then_all_backward(self):
        schedule = build_schedule(ScheduleKind.GPIPE, 4, 6)
        for program in schedule.programs:
            kinds = [slot.is_forward for slot in program.slots]
            assert kinds == [True] * 6 + [False] * 6
            assert program.max_in_flight == 6

    def test_1f1b_warmup_and_in_flight_cap(self):
        schedule = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 8)
        for stage, program in enumerate(schedule.programs):
            warmup = 4 - 1 - stage
            head = [slot.is_forward for slot in
                    program.slots[:warmup + 1]]
            assert head == [True] * (warmup + 1)
            assert program.max_in_flight == 4 - stage
            # Every microbatch appears exactly once per direction.
            fwd = sorted(s.microbatch for s in program.slots
                         if s.is_forward)
            bwd = sorted(s.microbatch for s in program.slots
                         if not s.is_forward)
            assert fwd == bwd == list(range(8))

    def test_1f1b_last_stage_alternates(self):
        program = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 4) \
            .program(3)
        kinds = [slot.is_forward for slot in program.slots]
        assert kinds == [True, False] * 4

    def test_stash_slots_shrink_under_1f1b(self):
        gpipe = build_schedule(ScheduleKind.GPIPE, 4, 8)
        one_f = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 8)
        for stage in range(4):
            for m in range(8):
                assert one_f.program(stage).stash_slots(m) \
                    <= gpipe.program(stage).stash_slots(m)
        # The loss-side stage turns around immediately under 1F1B.
        assert one_f.program(3).stash_slots(0) == 0
        assert gpipe.program(3).stash_slots(0) == 7

    def test_structural_bubble_formula(self):
        assert structural_bubble_time(4, 1.0, 2.0) == 9.0
        assert structural_bubble_time(1, 1.0, 2.0) == 0.0
        with pytest.raises(ValueError):
            structural_bubble_time(0, 1.0, 2.0)

    def test_degenerate_sizes(self):
        single = build_schedule(ScheduleKind.ONE_F_ONE_B, 1, 3)
        assert single.program(0).max_in_flight == 1
        one_mb = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 1)
        for program in one_mb.programs:
            assert len(program.slots) == 2


class TestLowering:
    def test_plan_shapes(self):
        net = build_network("GPT2")
        config = _config()
        plan = plan_pipeline(net, config, 64)
        assert plan.n_stages == resolve_stage_count(net, config) == 8
        assert plan.microbatch == 8
        assert plan.replicas == 1
        assert len(plan.stages) == 8
        assert all(stage.fwd_time > 0 for stage in plan.stages)
        assert all(stage.bwd_time > stage.fwd_time
                   for stage in plan.stages)

    def test_ops_deterministic_and_channelled(self):
        net = build_network("GPT2")
        config = _config()
        plan = plan_pipeline(net, config, 64)
        first = build_pipeline_ops(plan, config)
        second = build_pipeline_ops(plan, config)
        assert [repr(op) for op in first.ops] \
            == [repr(op) for op in second.ops]
        channels = {op.channel for op in first.ops}
        assert channels == set(range(8))
        # Per-channel compute issue order equals the program order.
        program = plan.schedule.program(0)
        tags = [op.tag for op in first.ops
                if op.channel == 0 and op.engine is EngineKind.COMPUTE]
        expected = [("fwd" if slot.is_forward else "bwd")
                    + f":s0:m{slot.microbatch}"
                    for slot in program.slots]
        assert tags == expected

    def test_oracle_emits_no_dma(self):
        net = build_network("GPT2")
        config = design_point("DC-DLA(O)")
        plan = plan_pipeline(net, config, 64)
        ops = build_pipeline_ops(plan, config)
        assert not [op for op in ops.ops
                    if op.engine in (EngineKind.DMA_OUT,
                                     EngineKind.DMA_IN)]

    def test_replicas_all_reduce_at_drain(self):
        net = build_network("GPT2")
        config = _config(pipeline_stages=4)
        plan = plan_pipeline(net, config, 64)
        assert plan.replicas == 2
        ops = build_pipeline_ops(plan, config)
        syncs = [op for op in ops.ops if op.tag.startswith("sync-dw")]
        assert len(syncs) == 4
        # Drain all-reduce is the last op on each stage's timeline.
        timeline = run_timeline(ops)
        for sync in syncs:
            finish = timeline.finish_of(sync.uid)
            stage_ops = [s for s in timeline.scheduled
                         if s.op.channel == sync.channel]
            assert finish == max(s.finish for s in stage_ops)

    def test_1f1b_offloads_less_than_gpipe(self):
        net = build_network("GPT2")
        plan_1f = plan_pipeline(net, _config(), 64)
        plan_gp = plan_pipeline(
            net, _config(pipeline_schedule="gpipe"), 64)
        assert sum(plan_1f.stage_offload_bytes) \
            < sum(plan_gp.stage_offload_bytes)
        # The loss-side stage stays fully resident under 1F1B.
        assert plan_1f.stage_offload_bytes[-1] == 0
        assert plan_gp.stage_offload_bytes[-1] > 0

    def test_unknown_schedule_rejected(self):
        net = build_network("GPT2")
        with pytest.raises(ValueError):
            plan_pipeline(net, _config(pipeline_schedule="zigzag"), 64)

    def test_indivisible_batch_rejected(self):
        net = build_network("GPT2")
        with pytest.raises(ValueError, match="divisible"):
            plan_pipeline(net, _config(pipeline_microbatches=8), 60)

    def test_boundary_traffic_aggregates_per_stage_pair(self):
        # A mid-block cut crosses both the residual and the block
        # output; the pair must bundle into ONE transfer per direction
        # so forward and backward p2p traffic stay symmetric.
        net = build_network("GPT2")
        config = _config()
        plan = plan_pipeline(net, config, 64)
        for stage in plan.stages:
            targets = [to for to, _ in stage.sends]
            assert len(targets) == len(set(targets))
        ops = build_pipeline_ops(plan, config)
        acts = [op for op in ops.ops
                if op.tag.startswith("send-act")]
        grads = [op for op in ops.ops
                 if op.tag.startswith("send-grad")]
        assert len(acts) == len(grads)
        assert sum(op.nbytes for op in acts) \
            == sum(op.nbytes for op in grads)
        # The plan's sync accounting matches the emitted ops exactly.
        assert sum(op.nbytes for op in acts + grads) \
            == plan.sync_bytes_per_iteration


class TestSimulatePipeline:
    @pytest.mark.parametrize("design", DESIGN_ORDER)
    def test_runs_on_every_design_point(self, design):
        result = simulate(design_point(design), "GPT2", 64,
                          ParallelStrategy.PIPELINE)
        assert result.iteration_time > 0
        assert result.strategy is ParallelStrategy.PIPELINE
        stats = result.pipeline
        assert stats is not None
        assert stats.n_stages == 8
        assert 0.0 <= stats.bubble_fraction < 1.0
        assert len(stats.stage_bubble) == 8

    @pytest.mark.parametrize("design", DESIGN_ORDER)
    @pytest.mark.parametrize("microbatches", (4, 8))
    def test_1f1b_strictly_lower_bubble_than_gpipe(self, design,
                                                   microbatches):
        one_f = simulate(
            _config(design, pipeline_microbatches=microbatches,
                    pipeline_schedule="1f1b"),
            "GPT2", 64, ParallelStrategy.PIPELINE)
        gpipe = simulate(
            _config(design, pipeline_microbatches=microbatches,
                    pipeline_schedule="gpipe"),
            "GPT2", 64, ParallelStrategy.PIPELINE)
        assert one_f.pipeline.bubble_time < gpipe.pipeline.bubble_time
        assert one_f.pipeline.bubble_fraction \
            < gpipe.pipeline.bubble_fraction

    def test_pipeline_beats_flat_strategies_on_transformers(self):
        config = design_point("DC-DLA")
        piped = simulate(config, "GPT2", 64, ParallelStrategy.PIPELINE)
        flat = simulate(config, "GPT2", 64, ParallelStrategy.DATA)
        assert piped.iteration_time < flat.iteration_time

    def test_in_flight_depth_governs_footprint(self):
        one_f = simulate(_config(), "GPT2", 64,
                         ParallelStrategy.PIPELINE)
        gpipe = simulate(_config(pipeline_schedule="gpipe"), "GPT2", 64,
                         ParallelStrategy.PIPELINE)
        assert max(one_f.pipeline.stage_max_in_flight) <= 8
        assert all(depth == 8
                   for depth in gpipe.pipeline.stage_max_in_flight)

    def test_cnn_and_rnn_workloads_also_pipeline(self):
        for network in ("AlexNet", "RNN-GEMV"):
            result = simulate(design_point("DC-DLA"), network, 64,
                              ParallelStrategy.PIPELINE)
            assert result.pipeline is not None
            assert result.iteration_time > 0

    def test_partition_rejects_pipeline_strategy(self):
        from repro.training.parallel import partition
        with pytest.raises(ValueError, match="pipeline"):
            partition(build_network("AlexNet"), 64,
                      ParallelStrategy.PIPELINE, 8)

    def test_stats_via_iteration_timeline(self):
        net = build_network("GPT2")
        config = _config()
        timeline = iteration_timeline(config, net, 64,
                                      ParallelStrategy.PIPELINE)
        stats = pipeline_stats(plan_pipeline(net, config, 64), timeline)
        result = simulate(config, net, 64, ParallelStrategy.PIPELINE)
        assert stats == result.pipeline


class TestPipelineSerialization:
    def test_round_trip_is_exact(self):
        result = simulate(_config(), "GPT2", 64,
                          ParallelStrategy.PIPELINE)
        replayed = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert replayed == result
        assert replayed.pipeline == result.pipeline

    def test_absent_pipeline_field_reads_as_none(self):
        result = simulate(_config(), "AlexNet", 64,
                          ParallelStrategy.DATA)
        data = result.to_dict()
        assert data["pipeline"] is None
        assert SimulationResult.from_dict(data).pipeline is None
        # Entries written before the field existed still load.
        del data["pipeline"]
        assert SimulationResult.from_dict(data).pipeline is None

    def test_stats_validation(self):
        with pytest.raises(ValueError):
            PipelineStats(schedule="1f1b", n_stages=2, n_microbatches=4,
                          microbatch=8, replicas=1,
                          stage_compute=(1.0,), stage_bubble=(0.5, 0.5),
                          stage_offload_bytes=(0, 0),
                          stage_max_in_flight=(2, 1))


class TestPipelineCampaign:
    def test_cells_cache_and_replay_byte_identically(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = pipeline_grid(("DC-DLA", "MC-DLA(B)"), ("GPT2",),
                               batches=(64,))
        first = run_campaign(points, cache=cache).raise_failures()
        replay = run_campaign(points, cache=cache).raise_failures()
        assert all(o.cached for o in replay.outcomes)
        assert first.results == replay.results
        for key, result in replay.results.items():
            assert result.pipeline is not None, key

    def test_schedule_variants_coexist(self):
        points = pipeline_grid(("DC-DLA",), ("GPT2",), batches=(64,))
        labels = {p.name for p in points}
        assert labels == {"DC-DLA|1f1b", "DC-DLA|gpipe"}
        report = run_campaign(points).raise_failures()
        schedules = {o.result.pipeline.schedule
                     for o in report.outcomes}
        assert schedules == {"1f1b", "gpipe"}

    def test_cli_pipeline_strategy(self, capsys):
        code = campaign_cli([
            "--designs", "MC-DLA(B)", "--networks", "GPT2",
            "--strategies", "pipeline", "--batches", "64",
            "--pipeline-schedules", "1f1b,gpipe", "--no-cache",
            "--format", "json", "--quiet"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        for row in rows:
            assert row["strategy"] == "pipeline-parallel"
            assert 0.0 < row["bubble_fraction"] < 1.0
            assert row["pipeline"]["n_stages"] == 8

    def test_cli_rejects_bad_schedule(self, capsys):
        assert campaign_cli(["--strategies", "pipeline",
                             "--pipeline-schedules", "zigzag"]) == 2
        assert "unknown schedule" in capsys.readouterr().err

    def test_cli_json_bubble_fraction_is_null_for_flat_rows(self,
                                                            capsys):
        code = campaign_cli([
            "--designs", "DC-DLA", "--networks", "AlexNet",
            "--strategies", "data", "--no-cache", "--format", "json",
            "--quiet"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["bubble_fraction"] is None
        assert rows[0]["pipeline"] is None

    def test_cli_accepts_transformer_networks(self, capsys):
        code = campaign_cli([
            "--designs", "DC-DLA(O)", "--networks", "BERT-Large",
            "--strategies", "data", "--batches", "16", "--no-cache",
            "--format", "csv", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BERT-Large" in out


class TestPipelineExperiment:
    def test_comparison_emits_all_cells(self, tmp_path):
        from repro.experiments.pipeline_comparison import (
            VARIANTS, format_pipeline_comparison,
            run_pipeline_comparison)
        study = run_pipeline_comparison(
            batch=32, microbatches=4,
            cache=ResultCache(tmp_path / "cache"))
        for network in ("BERT-Large", "GPT2"):
            for design in DESIGN_ORDER:
                for variant in VARIANTS:
                    assert study.result(network, design, variant) \
                        .iteration_time > 0
                assert study.schedule_gap(network, design) > 0
        text = format_pipeline_comparison(study)
        assert "bubble" in text
        assert "pipeline/1f1b" in text
