"""Tests for repro.interconnect.link and repro.interconnect.topology."""

import pytest

from repro.interconnect.link import (NVLINK, NVLINK2, PCIE_GEN3, PCIE_GEN4,
                                     LinkSpec)
from repro.interconnect.topology import (NodeKind, Topology, device, host,
                                         memory, switch)
from repro.units import GBPS


class TestLinkSpec:
    def test_table_ii_nvlink(self):
        assert NVLINK.uni_bw == 25 * GBPS
        assert NVLINK.bidir_bw == 50 * GBPS

    def test_pcie_gen4_doubles_gen3(self):
        assert PCIE_GEN4.uni_bw == 2 * PCIE_GEN3.uni_bw

    def test_nvlink2_doubles_nvlink(self):
        assert NVLINK2.uni_bw == 2 * NVLINK.uni_bw

    def test_transfer_time(self):
        link = LinkSpec("l", uni_bw=10 * GBPS, latency=1e-6)
        assert link.transfer_time(10 * GBPS) == pytest.approx(1.0 + 1e-6)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            LinkSpec("l", uni_bw=0, latency=0)
        with pytest.raises(ValueError):
            LinkSpec("l", uni_bw=1, latency=-1)
        with pytest.raises(ValueError):
            NVLINK.transfer_time(-1)


class TestNodeIds:
    def test_str_forms(self):
        assert str(device(0)) == "D0"
        assert str(memory(7)) == "M7"
        assert str(host(1)) == "H1"
        assert str(switch(2)) == "S2"

    def test_identity(self):
        assert device(3) == device(3)
        assert device(3) != memory(3)


class TestTopology:
    def test_add_and_query(self):
        topo = Topology("t")
        a, b = topo.add_node(device(0)), topo.add_node(device(1))
        topo.add_link(a, b, NVLINK)
        topo.add_link(a, b, NVLINK)
        assert topo.degree(a) == 2
        assert topo.bandwidth_between(a, b) == 50 * GBPS
        assert len(topo.links_between(a, b)) == 2

    def test_rejects_self_link(self):
        topo = Topology("t")
        a = topo.add_node(device(0))
        with pytest.raises(ValueError):
            topo.add_link(a, a, NVLINK)

    def test_rejects_unknown_node(self):
        topo = Topology("t")
        a = topo.add_node(device(0))
        with pytest.raises(ValueError):
            topo.add_link(a, device(9), NVLINK)

    def test_rejects_duplicate_node(self):
        topo = Topology("t")
        topo.add_node(device(0))
        with pytest.raises(ValueError):
            topo.add_node(device(0))

    def test_nodes_filter_by_kind(self):
        topo = Topology("t")
        topo.add_node(device(1))
        topo.add_node(memory(0))
        topo.add_node(device(0))
        assert topo.nodes(NodeKind.DEVICE) == [device(0), device(1)]
        assert topo.nodes(NodeKind.MEMORY) == [memory(0)]

    def test_degree_by_link_name(self):
        topo = Topology("t")
        a, b = topo.add_node(device(0)), topo.add_node(host(0))
        topo.add_link(a, b, NVLINK)
        topo.add_link(a, b, PCIE_GEN3)
        assert topo.degree(a, NVLINK.name) == 1
        assert topo.degree(a, PCIE_GEN3.name) == 1

    def test_link_budget_enforced(self):
        topo = Topology("t", max_links=2)
        a, b = topo.add_node(device(0)), topo.add_node(device(1))
        for _ in range(3):
            topo.add_link(a, b, NVLINK)
        with pytest.raises(ValueError):
            topo.validate_link_budget(NVLINK.name)

    def test_link_budget_ignores_other_specs(self):
        topo = Topology("t", max_links=1)
        a = topo.add_node(device(0))
        h = topo.add_node(host(0))
        topo.add_link(a, h, PCIE_GEN3)
        topo.validate_link_budget(NVLINK.name)  # PCIe doesn't count
