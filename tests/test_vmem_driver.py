"""Tests for the driver address-space model (paper Figure 10)."""

import pytest

from repro.units import GB
from repro.vmem.driver import (PAGE_BYTES, AddressSpaceLayout, PageMapping,
                               Tier, default_layout)


class TestLayout:
    def test_default_layout_sizes(self):
        layout = default_layout()
        assert layout.local_capacity == 16 * GB
        assert layout.left_half_capacity == layout.right_half_capacity \
            == 640 * GB
        assert layout.total_capacity == (16 + 1280) * GB

    def test_region_bases_concatenate(self):
        layout = default_layout()
        # Figure 10: device-local at the bottom, remote halves above.
        assert layout.local_base == 0
        assert layout.left_base == layout.local_capacity
        assert layout.right_base == layout.left_base \
            + layout.left_half_capacity

    def test_tier_of_address(self):
        layout = default_layout()
        assert layout.tier_of_address(0) is Tier.LOCAL
        assert layout.tier_of_address(layout.left_base) \
            is Tier.REMOTE_LEFT
        assert layout.tier_of_address(layout.right_base) \
            is Tier.REMOTE_RIGHT
        with pytest.raises(ValueError):
            layout.tier_of_address(layout.total_capacity)
        with pytest.raises(ValueError):
            layout.tier_of_address(-1)

    def test_frame_counts(self):
        layout = default_layout()
        assert layout.frame_count(Tier.LOCAL) == 16 * GB // PAGE_BYTES
        assert layout.frame_count(Tier.REMOTE_LEFT) \
            == 640 * GB // PAGE_BYTES

    def test_physical_address_roundtrip(self):
        layout = default_layout()
        mapping = PageMapping(0, Tier.REMOTE_RIGHT, 5)
        addr = layout.physical_address(mapping)
        assert addr == layout.right_base + 5 * PAGE_BYTES
        assert layout.tier_of_address(addr) is Tier.REMOTE_RIGHT

    def test_physical_address_rejects_overflow(self):
        layout = default_layout()
        too_far = layout.frame_count(Tier.REMOTE_LEFT)
        with pytest.raises(ValueError):
            layout.physical_address(PageMapping(0, Tier.REMOTE_LEFT,
                                                too_far))

    def test_rejects_unaligned_capacities(self):
        with pytest.raises(ValueError):
            AddressSpaceLayout(PAGE_BYTES + 1, PAGE_BYTES, PAGE_BYTES)
        with pytest.raises(ValueError):
            AddressSpaceLayout(0, PAGE_BYTES, PAGE_BYTES)

    def test_page_mapping_validation(self):
        with pytest.raises(ValueError):
            PageMapping(-1, Tier.LOCAL, 0)
        with pytest.raises(ValueError):
            PageMapping(0, Tier.LOCAL, -2)
