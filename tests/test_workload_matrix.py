"""Full-workload matrix invariants: every Table III benchmark, through
the whole stack, on the key design points.

Parametrized over all eight networks so that every workload's distinct
graph shape (inception branching, residual shortcuts, grouped convs,
long recurrent chains) exercises the planner, scheduler, and timeline.
"""

import pytest

from repro.core.design_points import dc_dla, dc_dla_oracle, mc_dla_bw
from repro.core.schedule import build_iteration_ops, plan_iteration
from repro.core.timeline import EngineKind, run_timeline
from repro.dnn.layers import LayerKind
from repro.dnn.registry import BENCHMARK_NAMES, build_network
from repro.training.parallel import ParallelStrategy
from repro.vmem.policy import MigrationAction, MigrationPolicy


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestEveryWorkload:
    def test_plan_covers_every_noncheap_tensor(self, name):
        net = build_network(name)
        plans = MigrationPolicy().plan(net, 64)
        by_action = {}
        for plan in plans:
            by_action.setdefault(plan.action, []).append(plan.producer)
        offloaded = set(by_action.get(MigrationAction.OFFLOAD, []))
        for layer in net.layers:
            if layer.kind is LayerKind.INPUT:
                continue
            if layer.is_cheap:
                assert layer.name not in offloaded
            else:
                assert layer.name in offloaded

    def test_offload_prefetch_byte_conservation(self, name):
        net = build_network(name)
        config = dc_dla()
        plan = plan_iteration(net, config, 64, ParallelStrategy.DATA)
        ops = build_iteration_ops(plan, config)
        out_bytes = sum(op.nbytes for op in ops.ops
                        if op.tag.startswith("offload:"))
        in_bytes = sum(op.nbytes for op in ops.ops
                       if op.tag.startswith("prefetch:"))
        assert out_bytes == in_bytes == plan.offload_bytes_per_device

    def test_backward_never_precedes_forward(self, name):
        net = build_network(name)
        config = mc_dla_bw()
        plan = plan_iteration(net, config, 64, ParallelStrategy.DATA)
        timeline = run_timeline(build_iteration_ops(plan, config))
        fwd_finish = {}
        for s in timeline.scheduled:
            if s.op.tag.startswith("fwd:"):
                fwd_finish[s.op.tag.split(":")[1]] = s.finish
        for s in timeline.scheduled:
            if s.op.tag.startswith("bwd:"):
                layer = s.op.tag.split(":")[1]
                assert s.start >= fwd_finish[layer] - 1e-12

    def test_prefetch_lands_before_its_backward_consumer(self, name):
        net = build_network(name)
        config = dc_dla()
        plan = plan_iteration(net, config, 64, ParallelStrategy.DATA)
        timeline = run_timeline(build_iteration_ops(plan, config))
        prefetch_finish = {}
        for s in timeline.scheduled:
            if s.op.tag.startswith("prefetch:"):
                prefetch_finish[s.op.tag.split(":")[1]] = s.finish
        consumer_of = {producer: site
                       for site, producers
                       in plan.step.prefetch_sites.items()
                       for producer in producers}
        bwd_start = {s.op.tag.split(":")[1]: s.start
                     for s in timeline.scheduled
                     if s.op.tag.startswith("bwd:")}
        for producer, finish in prefetch_finish.items():
            assert finish <= bwd_start[consumer_of[producer]] + 1e-12

    def test_oracle_faster_on_every_strategy(self, name):
        oracle = dc_dla_oracle()
        baseline = dc_dla()
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            plan_o = plan_iteration(build_network(name), oracle, 64,
                                    strategy)
            plan_b = plan_iteration(build_network(name), baseline, 64,
                                    strategy)
            t_o = run_timeline(build_iteration_ops(plan_o, oracle))
            t_b = run_timeline(build_iteration_ops(plan_b, baseline))
            assert t_o.makespan <= t_b.makespan + 1e-12

    def test_comm_engine_used_iff_multi_device_syncs(self, name):
        config = mc_dla_bw()
        plan = plan_iteration(build_network(name), config, 64,
                              ParallelStrategy.DATA)
        timeline = run_timeline(build_iteration_ops(plan, config))
        has_sync = plan.sync_bytes_per_iteration > 0
        assert (timeline.busy_time(EngineKind.COMM) > 0) == has_sync
