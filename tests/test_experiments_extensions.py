"""Tests for the extension experiments: ablations, productivity,
scale-out, and the scalability/sensitivity harness logic."""

import pytest

from repro.experiments.ablations import (ABLATION_NETWORKS,
                                         format_ablations, run_ablations)
from repro.experiments.scalability import (DEVICE_COUNTS,
                                           format_scalability,
                                           run_scalability)
from repro.experiments.scaleout import format_scaleout, run_scaleout
from repro.experiments.user_productivity import (
    FRAME_SWEEP, format_user_productivity, run_user_productivity)


@pytest.fixture(scope="module")
def ablations():
    return run_ablations()


@pytest.fixture(scope="module")
def scaleout():
    return run_scaleout()


class TestAblations:
    def test_all_studies_present(self, ablations):
        studies = {r.study for r in ablations.rows}
        assert studies == {"offload-window", "recompute-rule",
                           "pcie-uplinks", "interconnect"}

    def test_row_lookup(self, ablations):
        row = ablations.row("offload-window", "w=2")
        assert row.mean_iteration_time > 0
        with pytest.raises(KeyError):
            ablations.row("offload-window", "w=3")

    def test_window_saturates(self, ablations):
        w4 = ablations.row("offload-window", "w=4").mean_iteration_time
        w8 = ablations.row("offload-window", "w=8").mean_iteration_time
        assert w8 == pytest.approx(w4, rel=0.02)

    def test_formatting(self, ablations):
        out = format_ablations(ablations)
        assert "fig7c-ring" in out
        for network in ABLATION_NETWORKS:
            assert network in out


class TestScaleOut:
    def test_sweep_points(self, scaleout):
        assert [p.system_nodes for p in scaleout.points] \
            == [1, 2, 4, 8, 16]
        with pytest.raises(KeyError):
            scaleout.point(3)

    def test_latency_grows_sublinearly(self, scaleout):
        l1 = scaleout.point(1).allreduce_latency
        l16 = scaleout.point(16).allreduce_latency
        assert l1 < l16 < 2 * l1

    def test_pool_scales_linearly(self, scaleout):
        assert scaleout.point(8).pooled_capacity \
            == 8 * scaleout.point(1).pooled_capacity

    def test_formatting(self, scaleout):
        assert "switches" in format_scaleout(scaleout)


class TestUserProductivity:
    def test_points_cover_sweep(self):
        result = run_user_productivity(batch=64)
        assert tuple(p.frames for p in result.points) == FRAME_SWEEP
        out = format_user_productivity(result)
        assert "fits 16GB HBM" in out

    def test_capacity_wall_location(self):
        result = run_user_productivity(batch=64)
        assert result.max_frames_in_hbm <= 8
        assert result.max_frames_in_pool == max(FRAME_SWEEP)


class TestScalabilityHarness:
    def test_device_counts_and_lookup(self):
        result = run_scalability()
        assert DEVICE_COUNTS == (1, 4, 8)
        point = result.point("MC-DLA(B)", "AlexNet", 8)
        assert point.node_throughput > 0
        with pytest.raises(KeyError):
            result.point("MC-DLA(B)", "AlexNet", 2)

    def test_scaling_relations(self):
        result = run_scalability()
        for config in ("DC-DLA (no virtualization)", "MC-DLA(B)"):
            assert result.mean_scaling(config, 8) \
                > result.mean_scaling(config, 4)
        assert "scalability" in format_scalability(result).lower()
