"""Tests for the experiment harness modules (smoke + shape checks).

The heavy numeric shape assertions live in benchmarks/ (the regeneration
harness); these tests verify the harness logic itself: result wiring,
normalization, formatting, and caching.
"""

import pytest

from repro.collectives.ring_algorithm import Primitive
from repro.core.design_points import DESIGN_ORDER
from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.fig9_collectives import format_fig9, run_fig9
from repro.experiments.fig10_allocation import format_fig10, run_fig10
from repro.experiments.fig11_breakdown import format_fig11, run_fig11
from repro.experiments.fig12_cpu_bandwidth import (format_fig12,
                                                   run_fig12)
from repro.experiments.fig13_performance import format_fig13, run_fig13
from repro.experiments.matrix import evaluation_matrix
from repro.experiments.report import format_series, format_table, percent
from repro.experiments.tab4_power import format_tab4, run_tab4
from repro.training.parallel import ParallelStrategy


@pytest.fixture(scope="module")
def matrix():
    return evaluation_matrix(512)


class TestReportHelpers:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.23456], ["yy", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.235" in out

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_series_and_percent(self):
        assert format_series("s", [1, 2], [0.5, 1.5]) \
            == "s: 1=0.500, 2=1.500"
        assert percent(0.925) == "92.5%"


class TestMatrix:
    def test_cached_per_batch(self, matrix):
        assert evaluation_matrix(512) is matrix

    def test_full_grid_present(self, matrix):
        assert len(matrix.results) == 6 * 8 * 2
        result = matrix.result("DC-DLA", "VGG-E", ParallelStrategy.DATA)
        assert result.system == "DC-DLA"

    def test_speedup_and_performance_helpers(self, matrix):
        speed = matrix.speedup("MC-DLA(B)", "VGG-E",
                               ParallelStrategy.DATA)
        perf = matrix.performance("MC-DLA(B)", "VGG-E",
                                  ParallelStrategy.DATA)
        assert speed > 1.0
        assert 0.0 < perf <= 1.0


class TestFigureHarnesses:
    def test_fig9_result_access(self):
        result = run_fig9()
        assert result.at(Primitive.ALL_REDUCE, 2) == pytest.approx(1.0)
        assert "all-reduce" in format_fig9(result)

    def test_fig10_formatting(self):
        result = run_fig10(sizes_mb=(64,))
        assert len(result.points) == 1
        assert "BW_AWARE" in format_fig10(result)

    def test_fig11_bars_normalized(self, matrix):
        result = run_fig11(ParallelStrategy.DATA, matrix)
        stacks = [result.bar(n, d).total for n in BENCHMARK_NAMES
                  for d in DESIGN_ORDER]
        assert max(stacks) == pytest.approx(1.0)
        assert "Figure 11" in format_fig11(result)

    def test_fig12_zero_for_memory_centric(self, matrix):
        result = run_fig12(matrix)
        assert result.worst_case_fraction("MC-DLA(B)") == 0.0
        assert "Figure 12" in format_fig12(result)
        with pytest.raises(KeyError):
            result.bar("DC-DLA", "nope")

    def test_fig13_oracle_normalization(self, matrix):
        result = run_fig13(matrix=matrix)
        for network in BENCHMARK_NAMES:
            assert result.perf(ParallelStrategy.DATA, network,
                               "DC-DLA(O)") == pytest.approx(1.0)
        assert "paper 2.8x" in format_fig13(result)

    def test_tab4_uses_measured_speedup(self, matrix):
        fig13 = run_fig13(matrix=matrix)
        result = run_tab4(fig13)
        expected = fig13.mean_speedup("MC-DLA(B)")
        assert result.measured_speedup == pytest.approx(expected)
        assert result.perf_per_watt_low_power \
            == pytest.approx(expected / 1.0725, rel=1e-6)
        assert "Table IV" in format_tab4(result)
