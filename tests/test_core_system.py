"""Tests for system composition and the design-point factories."""

import pytest

from repro.accelerator.generations import TPUV2
from repro.collectives.multi_ring import RingChannel
from repro.collectives.ring_algorithm import Primitive
from repro.core.design_points import (DESIGN_ORDER, all_design_points,
                                      dc_dla, dc_dla_oracle, design_point,
                                      mc_dla_bw, mc_dla_local,
                                      mc_dla_star, single_device)
from repro.core.system import CollectiveModel, SystemConfig, VmemModel
from repro.interconnect.builders import NO_VMEM, VmemChannel, VmemTarget
from repro.interconnect.link import NVLINK2, PCIE_GEN4
from repro.units import GBPS, MB, TB


class TestVmemModel:
    def test_transfer_time(self):
        model = VmemModel(VmemChannel(VmemTarget.HOST, 16 * GBPS,
                                      8 * GBPS))
        t = model.transfer_time(16 * GBPS)
        assert t == pytest.approx(2.0 + model.dma_setup)
        assert model.transfer_time(16 * GBPS, concurrent=False) \
            == pytest.approx(1.0 + model.dma_setup)

    def test_compression_scales_traffic(self):
        plain = VmemModel(VmemChannel(VmemTarget.HOST, 16 * GBPS,
                                      16 * GBPS))
        cdma = VmemModel(plain.channel, compression=2.6)
        assert cdma.transfer_time(260 * MB) < plain.transfer_time(260 * MB)
        with pytest.raises(ValueError):
            VmemModel(plain.channel, compression=0.5)

    def test_oracle_channel_refuses_transfers(self):
        model = VmemModel(NO_VMEM)
        assert not model.enabled
        with pytest.raises(RuntimeError):
            model.transfer_time(1)

    def test_zero_bytes_free(self):
        model = VmemModel(VmemChannel(VmemTarget.HOST, GBPS, GBPS))
        assert model.transfer_time(0) == 0.0


class TestCollectiveModel:
    def test_times_positive_and_zero(self):
        model = CollectiveModel(channels=(RingChannel(8, 50 * GBPS),))
        assert model.time(Primitive.ALL_REDUCE, 8 * MB) > 0
        assert model.time(Primitive.ALL_REDUCE, 0) == 0.0

    def test_requires_channels(self):
        with pytest.raises(ValueError):
            CollectiveModel(channels=())


class TestDesignPoints:
    def test_six_designs_in_order(self):
        configs = all_design_points()
        assert [c.name for c in configs] == list(DESIGN_ORDER)

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            design_point("XC-DLA")

    def test_dc_dla_defaults(self):
        config = dc_dla()
        assert config.uses_host_memory
        assert config.virtualizes
        assert config.host_socket is not None
        assert config.memory_node is None

    def test_oracle_has_no_migration(self):
        config = dc_dla_oracle()
        assert not config.virtualizes
        assert not config.uses_host_memory

    def test_mc_designs_use_memory_nodes(self):
        for factory in (mc_dla_star, mc_dla_local, mc_dla_bw):
            config = factory()
            assert config.memory_node is not None
            assert not config.uses_host_memory
            assert config.virtualizes

    def test_vmem_bandwidth_ladder(self):
        """The paper's bandwidth ordering: 16 < 50 < 75 <= 75 < 150."""
        bw = {name: design_point(name).vmem.channel.peak_bw
              for name in DESIGN_ORDER if name != "DC-DLA(O)"}
        assert bw["DC-DLA"] == 16 * GBPS
        assert bw["MC-DLA(S)"] == 50 * GBPS
        assert bw["MC-DLA(L)"] == 75 * GBPS
        assert bw["HC-DLA"] == 75 * GBPS
        assert bw["MC-DLA(B)"] == 150 * GBPS

    def test_mc_local_is_half_of_bw_aware(self):
        assert mc_dla_local().vmem.channel.peak_bw \
            == mc_dla_bw().vmem.channel.peak_bw / 2

    def test_total_memory_capacity_tens_of_tb(self):
        # 8 x 16 GB HBM + 8 x 1.25 TB memory-nodes ~ 10+ TB.
        assert mc_dla_bw().total_memory_capacity() > 10 * TB
        assert dc_dla().total_memory_capacity() == 8 * 16 * 1024 ** 3

    def test_device_override(self):
        config = mc_dla_bw(device=TPUV2)
        assert config.device.name == "TPUv2"

    def test_pcie_gen4_and_compression_options(self):
        gen4 = dc_dla(pcie=PCIE_GEN4)
        assert gen4.vmem.channel.peak_bw == 32 * GBPS
        cdma = dc_dla(compression=2.6)
        assert cdma.vmem.compression == 2.6

    def test_single_device_configs(self):
        config = single_device("solo", TPUV2)
        assert config.n_devices == 1
        assert config.virtualizes
        one_dev_dc = dc_dla(n_devices=1)
        assert one_dev_dc.n_devices == 1

    def test_dgx2_style_scaling(self):
        config = mc_dla_bw(n_devices=16, link=NVLINK2)
        assert config.n_devices == 16
        assert config.vmem.channel.peak_bw > mc_dla_bw().vmem.channel.peak_bw


class TestSystemConfigValidation:
    def test_requires_models(self):
        with pytest.raises(ValueError):
            SystemConfig(name="x", collectives=None, vmem=None)

    def test_rejects_bad_windows(self):
        base = dc_dla()
        with pytest.raises(ValueError):
            SystemConfig(name="x", collectives=base.collectives,
                         vmem=base.vmem, offload_window=0)
        with pytest.raises(ValueError):
            SystemConfig(name="x", collectives=base.collectives,
                         vmem=base.vmem, n_devices=0)
