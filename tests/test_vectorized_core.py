"""Differential tests: vectorized core vs the scalar reference core.

The vectorized simulator (columnar op tables + numpy pricing, the
default) must be *byte-identical* to the scalar seed core selected by
``REPRO_SCALAR_CORE=1`` -- not approximately equal: every float in a
``SimulationResult`` must compare ``==``.  These tests run both cores
in-process over the paper's full evaluation matrix (6 designs x 8
workloads x 2 strategies) and over the pipeline, serving, and cluster
subsystems, and assert exact dataclass equality.

The scalar toggle is dynamic (read per ``simulate()`` call), so one
process can run both sides; pricing memos are cleared around every
scalar run so the comparison is never served from a vectorized-mode
cache (which would make the differential vacuous).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.simulator import simulate_cluster
from repro.core import pricing
from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.metrics import ExecutionMode, SimulationResult
from repro.core.optable import SCALAR_CORE_ENV, scalar_core_enabled
from repro.core.simulator import simulate
from repro.dnn.registry import BENCHMARK_NAMES
from repro.serving.server import simulate_serving
from repro.training.parallel import ParallelStrategy


@pytest.fixture
def both_cores(monkeypatch):
    """Run a thunk under each core and return (vectorized, scalar)."""

    def run(thunk):
        pricing.clear_caches()
        monkeypatch.delenv(SCALAR_CORE_ENV, raising=False)
        assert not scalar_core_enabled()
        vectorized = thunk()
        pricing.clear_caches()
        monkeypatch.setenv(SCALAR_CORE_ENV, "1")
        assert scalar_core_enabled()
        scalar = thunk()
        monkeypatch.delenv(SCALAR_CORE_ENV, raising=False)
        pricing.clear_caches()
        return vectorized, scalar

    return run


def assert_identical(vectorized: SimulationResult,
                     scalar: SimulationResult) -> None:
    """Exact (bitwise, via ``==``) equality of two results."""
    assert dataclasses.asdict(vectorized) == dataclasses.asdict(scalar)


class TestEvaluationMatrix:
    """The full 6-design x 8-workload x 2-strategy paper grid."""

    @pytest.mark.parametrize("design", DESIGN_ORDER)
    @pytest.mark.parametrize("network", BENCHMARK_NAMES)
    def test_training_grid_cell(self, both_cores, design, network):
        config = design_point(design)
        for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
            vec, ref = both_cores(
                lambda: simulate(config, network, 512, strategy))
            assert_identical(vec, ref)

    @pytest.mark.parametrize("design", ("DC-DLA", "MC-DLA(B)"))
    def test_inference_cells(self, both_cores, design):
        config = design_point(design)
        vec, ref = both_cores(
            lambda: simulate(config, "ResNet", 64, ParallelStrategy.DATA,
                             ExecutionMode.INFERENCE))
        assert_identical(vec, ref)


class TestSubsystems:
    def test_pipeline_mode(self, both_cores):
        config = dataclasses.replace(design_point("MC-DLA(B)"),
                                     pipeline_stages=4)
        vec, ref = both_cores(
            lambda: simulate(config, "VGG-E", 256,
                             ParallelStrategy.PIPELINE))
        assert_identical(vec, ref)

    def test_pipeline_gpipe_schedule(self, both_cores):
        config = dataclasses.replace(design_point("HC-DLA"),
                                     pipeline_stages=4,
                                     pipeline_schedule="gpipe")
        vec, ref = both_cores(
            lambda: simulate(config, "BERT-Large", 256,
                             ParallelStrategy.PIPELINE))
        assert_identical(vec, ref)

    def test_serving_mode(self, both_cores):
        config = design_point("MC-DLA(B)")
        vec, ref = both_cores(
            lambda: simulate_serving(config, "ResNet", rate=200.0,
                                     n_requests=64, seed=7,
                                     max_batch=16))
        assert_identical(vec, ref)

    def test_cluster_mode(self, both_cores):
        config = design_point("MC-DLA(B)")
        vec, ref = both_cores(
            lambda: simulate_cluster(config, policy="fifo", n_jobs=8,
                                     seed=7))
        assert_identical(vec, ref)

    @pytest.mark.parametrize("policy", ("next-op", "stride",
                                        "cost-model", "clairvoyant"))
    def test_prefetch_policies(self, both_cores, policy):
        config = dataclasses.replace(design_point("MC-DLA(L)"),
                                     prefetch_policy=policy)
        vec, ref = both_cores(
            lambda: simulate(config, "GoogLeNet", 128,
                             ParallelStrategy.DATA))
        assert_identical(vec, ref)


class TestEscapeHatch:
    """``REPRO_SCALAR_CORE`` gates every memo, not just the scheduler."""

    def test_toggle_is_dynamic(self, monkeypatch):
        monkeypatch.delenv(SCALAR_CORE_ENV, raising=False)
        assert not scalar_core_enabled()
        monkeypatch.setenv(SCALAR_CORE_ENV, "1")
        assert scalar_core_enabled()
        monkeypatch.setenv(SCALAR_CORE_ENV, "0")
        assert not scalar_core_enabled()
        monkeypatch.setenv(SCALAR_CORE_ENV, "")
        assert not scalar_core_enabled()

    def test_scalar_mode_bypasses_design_memo(self, monkeypatch):
        pricing.clear_caches()
        monkeypatch.setenv(SCALAR_CORE_ENV, "1")
        a = design_point("DC-DLA")
        b = design_point("DC-DLA")
        assert a is not b
        assert a == b

    def test_vectorized_mode_shares_design_builds(self, monkeypatch):
        monkeypatch.delenv(SCALAR_CORE_ENV, raising=False)
        pricing.clear_caches()
        a = design_point("DC-DLA")
        b = design_point("DC-DLA")
        assert a is b
        # Keyword overrides always rebuild (never memoized).
        c = design_point("DC-DLA", n_devices=4)
        assert c is not a and c.n_devices == 4
        pricing.clear_caches()
