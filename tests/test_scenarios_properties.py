"""Hypothesis property tests: DSL round-trips and fingerprints.

Three invariants the claims engine leans on: parse -> serialize ->
parse is the identity, fingerprints are stable across interpreter
processes (and hash seeds), and distinct scenarios never share one.
"""

import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.model import FAULT_MODEL_ORDER
from repro.scenarios.dsl import (DesignSpec, FleetSpec, Scenario,
                                 TrafficSpec, WorkloadSpec)
from repro.scenarios.paper import paper_suite
from repro.vmem.prefetch import PREFETCH_POLICY_ORDER

SRC = str(Path(__file__).resolve().parent.parent / "src")

designs = st.sampled_from(["DC-DLA", "HC-DLA", "MC-DLA(S)",
                           "MC-DLA(L)", "MC-DLA(B)", "DC-DLA(O)"])
networks = st.sampled_from(["AlexNet", "VGG-E", "RNN-LSTM-1", "GPT2"])
generations = st.sampled_from(["Kepler", "Maxwell", "Pascal", "Volta"])


@st.composite
def device_mixes(draw):
    names = draw(st.lists(generations, unique=True, max_size=3))
    return tuple((name, draw(st.integers(1, 8))) for name in names)


@st.composite
def design_specs(draw):
    return DesignSpec(
        design=draw(designs),
        overrides=draw(st.sampled_from(
            [(), (("n_devices", 4),), (("compression", 2.0),)])),
        device_mix=draw(device_mixes()),
        pim_fraction=draw(st.sampled_from([0.0, 0.25, 0.5, 0.75])))


@st.composite
def workload_specs(draw):
    strategy = draw(st.sampled_from(["data", "model", "pipeline"]))
    return WorkloadSpec(
        network=draw(networks),
        batch=draw(st.sampled_from([32, 64, 256, 512])),
        strategy=strategy,
        microbatches=draw(st.sampled_from([2, 4, 8])),
        schedule=draw(st.sampled_from(["gpipe", "1f1b"])))


@st.composite
def traffic_specs(draw):
    return TrafficSpec(
        rate=draw(st.sampled_from([50.0, 400.0, 1600.0])),
        n_requests=draw(st.sampled_from([64, 512])),
        seed=draw(st.integers(0, 3)),
        slo_ms=draw(st.sampled_from([10.0, 50.0])),
        batcher=draw(st.sampled_from(["dynamic", "continuous"])))


@st.composite
def fleet_specs(draw):
    return FleetSpec(
        policy=draw(st.sampled_from(["fifo", "sjf", "srpt"])),
        n_jobs=draw(st.sampled_from([5, 20])),
        seed=draw(st.integers(0, 3)),
        oversubscription=draw(st.sampled_from([1.0, 1.5])))


@st.composite
def scenarios(draw):
    mode = draw(st.sampled_from(["training", "serving", "cluster"]))
    name = draw(st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-/.",
        min_size=1, max_size=24).filter(str.strip))
    kwargs = {
        "name": name,
        "system": draw(design_specs()),
        "fault_model": draw(st.sampled_from(FAULT_MODEL_ORDER)),
        "prefetch_policy": draw(st.sampled_from(
            (None,) + PREFETCH_POLICY_ORDER)),
    }
    if mode == "cluster":
        kwargs["fleet"] = draw(fleet_specs())
    else:
        kwargs["workload"] = draw(workload_specs())
        if mode == "serving":
            kwargs["traffic"] = draw(traffic_specs())
    return Scenario(**kwargs)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenarios())
    def test_parse_serialize_parse_is_identity(self, scenario):
        data = scenario.to_dict()
        rebuilt = Scenario.from_dict(data)
        assert rebuilt == scenario
        assert rebuilt.to_dict() == data
        assert Scenario.from_dict(rebuilt.to_dict()) == rebuilt

    @settings(max_examples=60, deadline=None)
    @given(scenarios())
    def test_fingerprint_survives_the_round_trip(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()).fingerprint() \
            == scenario.fingerprint()


class TestNoCollisions:
    @settings(max_examples=40, deadline=None)
    @given(scenarios(), scenarios())
    def test_distinct_scenarios_distinct_fingerprints(self, a, b):
        if a == b:
            assert a.fingerprint() == b.fingerprint()
        else:
            assert a.fingerprint() != b.fingerprint()


class TestCrossProcessStability:
    """Fingerprints are content hashes, not ``hash()`` artifacts: a
    fresh interpreter with a different ``PYTHONHASHSEED`` reproduces
    them bit for bit."""

    PROGRAM = """
from repro.scenarios.paper import paper_suite
for s in paper_suite(quick=True).scenarios:
    print(s.fingerprint(), s.name)
"""

    def _fingerprints(self, hash_seed: str) -> str:
        result = subprocess.run(
            [sys.executable, "-c", self.PROGRAM],
            capture_output=True, text=True, timeout=600,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin",
                 "PYTHONHASHSEED": hash_seed})
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_stable_across_hash_seeds(self):
        first = self._fingerprints("0")
        second = self._fingerprints("424242")
        assert first == second
        assert len(first.strip().splitlines()) \
            == len(paper_suite(quick=True).scenarios)
