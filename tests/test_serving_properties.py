"""Property-based invariants of the serving queue and batchers.

Random arrival sequences, policies, and service-time functions must
never violate the queueing laws the statistics layer assumes:

* FIFO dispatch order (no request overtakes an earlier one into a
  later batch);
* conservation (no request lost or duplicated);
* causality (dispatch >= arrival, latency >= service > 0);
* bounded batches (every batch within ``max_batch``);
* utilization <= 1 per server and in aggregate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (BatchPolicy, compute_stats, form_batches,
                           next_batch, replayed_trace, run_continuous,
                           run_dynamic)

#: Inter-arrival gaps (seconds); zero gaps model simultaneous bursts.
gaps = st.lists(st.floats(min_value=0.0, max_value=0.2,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=60)

policies = st.builds(BatchPolicy,
                     max_batch=st.integers(min_value=1, max_value=12),
                     max_wait=st.floats(min_value=0.0, max_value=0.05,
                                        allow_nan=False))

service_scales = st.floats(min_value=1e-5, max_value=0.05,
                           allow_nan=False)

n_servers = st.integers(min_value=1, max_value=5)


def trace_of(gap_list):
    arrivals = []
    t = 0.0
    for gap in gap_list:
        t += gap
        arrivals.append(t)
    return replayed_trace(arrivals)


def affine_latency(scale):
    """A monotone batch-latency model: setup + per-request cost."""
    return lambda batch: scale * (1.0 + 0.25 * batch)


@settings(max_examples=120, deadline=None)
@given(gaps=gaps, policy=policies, scale=service_scales,
       servers=n_servers)
def test_dynamic_conservation_and_causality(gaps, policy, scale,
                                            servers):
    trace = trace_of(gaps)
    ledger = run_dynamic(trace, policy, affine_latency(scale),
                         n_servers=servers)
    rids = sorted(c.request.rid for c in ledger.completed)
    assert rids == [r.rid for r in trace]  # no loss, no duplication
    for c in ledger.completed:
        assert c.dispatched >= c.request.arrival  # causality
        # latency >= service, within one float rounding of the
        # (dispatch + service) - arrival subtraction.
        assert c.latency >= c.service * (1 - 1e-12) - 1e-15
        assert c.service > 0.0
        assert c.queue_delay >= 0.0


@settings(max_examples=120, deadline=None)
@given(gaps=gaps, policy=policies, scale=service_scales,
       servers=n_servers)
def test_dynamic_fifo_dispatch_and_batch_bounds(gaps, policy, scale,
                                                servers):
    trace = trace_of(gaps)
    ledger = run_dynamic(trace, policy, affine_latency(scale),
                         n_servers=servers)
    by_rid = {c.request.rid: c for c in ledger.completed}
    ordered = [by_rid[r.rid] for r in trace]
    # FIFO: dispatch times are non-decreasing in arrival order.
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.dispatched >= earlier.dispatched - 1e-12
    # Batch bounds: no dispatch span serves more than max_batch.
    spans: dict[tuple[float, float], int] = {}
    for c in ledger.completed:
        spans[(c.dispatched, c.finished)] = \
            spans.get((c.dispatched, c.finished), 0) + 1
    assert ledger.n_batches >= len(spans)
    assert max(spans.values()) <= policy.max_batch * servers


@settings(max_examples=120, deadline=None)
@given(gaps=gaps, policy=policies, scale=service_scales,
       servers=n_servers)
def test_dynamic_utilization_bounded(gaps, policy, scale, servers):
    trace = trace_of(gaps)
    ledger = run_dynamic(trace, policy, affine_latency(scale),
                         n_servers=servers)
    stats = compute_stats(ledger, arrival="replay", policy=policy,
                          batcher="dynamic", slo=0.05,
                          offered_rate=1.0, n_servers=servers)
    assert 0.0 < stats.utilization <= 1.0
    assert ledger.busy <= servers * stats.duration + 1e-9
    assert stats.goodput <= stats.throughput
    assert stats.latency_p50 <= stats.latency_p95 \
        <= stats.latency_p99 <= stats.latency_max


@settings(max_examples=100, deadline=None)
@given(gaps=gaps, policy=policies)
def test_batch_formation_partitions_fifo(gaps, policy):
    trace = trace_of(gaps)
    batches = form_batches(trace, policy)
    covered = []
    for start, count, dispatch in batches:
        assert 1 <= count <= policy.max_batch
        # The whole batch has arrived by its dispatch time.
        assert trace[start + count - 1].arrival <= dispatch + 1e-12
        covered.extend(range(start, start + count))
    assert covered == list(range(len(trace)))  # exact FIFO partition


@settings(max_examples=100, deadline=None)
@given(gaps=gaps, free_at=st.floats(min_value=0.0, max_value=10.0,
                                    allow_nan=False),
       policy=policies)
def test_next_batch_never_starves_or_overfills(gaps, free_at, policy):
    trace = trace_of(gaps)
    count, dispatch = next_batch(trace, 0, free_at, policy)
    assert 1 <= count <= policy.max_batch
    assert dispatch >= max(free_at, trace[0].arrival)
    # The head never waits past its deadline once the server is free.
    head_deadline = max(free_at, trace[0].arrival + policy.max_wait)
    assert dispatch <= head_deadline + 1e-12


@settings(max_examples=100, deadline=None)
@given(gaps=gaps, policy=policies, scale=service_scales,
       steps=st.integers(min_value=1, max_value=6))
def test_continuous_conservation_and_slots(gaps, policy, scale, steps):
    trace = replayed_trace([r.arrival for r in trace_of(gaps)],
                           decode_steps=steps)
    seen_batches: list[int] = []

    def step_fn(batch):
        seen_batches.append(batch)
        return scale

    ledger = run_continuous(trace, policy, step_fn)
    rids = sorted(c.request.rid for c in ledger.completed)
    assert rids == [r.rid for r in trace]
    assert max(seen_batches) <= policy.max_batch
    assert ledger.work_items == steps * len(trace)
    for c in ledger.completed:
        assert c.service >= steps * scale - 1e-12
        assert c.dispatched >= c.request.arrival
    stats = compute_stats(ledger, arrival="replay", policy=policy,
                          batcher="continuous", slo=0.05,
                          offered_rate=1.0, n_servers=1)
    assert 0.0 < stats.utilization <= 1.0
