"""Tests for the Table I runtime API model."""

import pytest

from repro.units import GBPS, MB
from repro.vmem.allocator import PlacementPolicy
from repro.vmem.driver import PAGE_BYTES, AddressSpaceLayout, Tier
from repro.vmem.runtime_api import CopyDirection, DeviceRuntime


def runtime(policy=PlacementPolicy.BW_AWARE):
    layout = AddressSpaceLayout(PAGE_BYTES, 64 * PAGE_BYTES,
                                64 * PAGE_BYTES)
    return DeviceRuntime(layout=layout, policy=policy)


class TestMallocFree:
    def test_malloc_returns_remote_pointer(self):
        rt = runtime()
        ptr = rt.malloc_remote(3 * PAGE_BYTES)
        assert ptr.size == 3 * PAGE_BYTES
        assert ptr.address >= rt.layout.left_base
        assert len(rt.mappings_of(ptr)) == 3

    def test_distinct_allocations_dont_overlap(self):
        rt = runtime()
        a = rt.malloc_remote(2 * PAGE_BYTES)
        b = rt.malloc_remote(2 * PAGE_BYTES)
        assert b.address >= a.address + 2 * PAGE_BYTES

    def test_free_releases(self):
        rt = runtime()
        ptr = rt.malloc_remote(4 * PAGE_BYTES)
        assert rt.live_remote_bytes == 4 * PAGE_BYTES
        rt.free_remote(ptr)
        assert rt.live_remote_bytes == 0

    def test_double_free_rejected(self):
        rt = runtime()
        ptr = rt.malloc_remote(PAGE_BYTES)
        rt.free_remote(ptr)
        with pytest.raises(ValueError):
            rt.free_remote(ptr)

    def test_bw_aware_policy_spreads_pages(self):
        rt = runtime(PlacementPolicy.BW_AWARE)
        ptr = rt.malloc_remote(4 * PAGE_BYTES)
        tiers = {m.tier for m in rt.mappings_of(ptr)}
        assert tiers == {Tier.REMOTE_LEFT, Tier.REMOTE_RIGHT}

    def test_local_policy_single_node(self):
        rt = runtime(PlacementPolicy.LOCAL)
        ptr = rt.malloc_remote(4 * PAGE_BYTES)
        assert len({m.tier for m in rt.mappings_of(ptr)}) == 1

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            runtime().malloc_remote(0)


class TestMemcpyAsync:
    def test_local_to_remote_duration_bw_aware(self):
        rt = runtime(PlacementPolicy.BW_AWARE)
        ptr = rt.malloc_remote(8 * MB)
        event = rt.memcpy_async(0, ptr.address, 8 * MB,
                                CopyDirection.LOCAL_TO_REMOTE)
        # BW_AWARE: (D/2) / (N*B/2) with N=6, B=25 GB/s.
        assert event.duration == pytest.approx((4 * MB) / (75 * GBPS))

    def test_local_policy_costs_double(self):
        fast = runtime(PlacementPolicy.BW_AWARE)
        slow = runtime(PlacementPolicy.LOCAL)
        p1 = fast.malloc_remote(8 * MB)
        p2 = slow.malloc_remote(8 * MB)
        e1 = fast.memcpy_async(0, p1.address, 8 * MB,
                               CopyDirection.LOCAL_TO_REMOTE)
        e2 = slow.memcpy_async(0, p2.address, 8 * MB,
                               CopyDirection.LOCAL_TO_REMOTE)
        assert e2.duration == pytest.approx(2 * e1.duration)

    def test_remote_to_local_requires_live_range(self):
        rt = runtime()
        with pytest.raises(ValueError):
            rt.memcpy_async(rt.layout.left_base, 0, MB,
                            CopyDirection.REMOTE_TO_LOCAL)

    def test_host_copies_use_pcie(self):
        rt = runtime()
        event = rt.memcpy_async(0, 0, 16 * GBPS,
                                CopyDirection.HOST_TO_LOCAL)
        assert event.duration == pytest.approx(1.0)

    def test_events_are_recorded_in_order(self):
        rt = runtime()
        ptr = rt.malloc_remote(2 * MB)
        first = rt.memcpy_async(0, ptr.address, MB,
                                CopyDirection.LOCAL_TO_REMOTE)
        rt.advance_clock(first.duration)
        second = rt.memcpy_async(ptr.address, 0, MB,
                                 CopyDirection.REMOTE_TO_LOCAL)
        assert rt.events == [first, second]
        assert second.issue_time == pytest.approx(first.complete_time)

    def test_clock_cannot_go_backwards(self):
        rt = runtime()
        with pytest.raises(ValueError):
            rt.advance_clock(-1.0)

    def test_rejects_zero_copy(self):
        rt = runtime()
        with pytest.raises(ValueError):
            rt.memcpy_async(0, 0, 0, CopyDirection.HOST_TO_LOCAL)
