"""Tests for repro.interconnect.ring."""

import pytest

from repro.interconnect.link import NVLINK
from repro.interconnect.ring import Ring, RingSet
from repro.interconnect.topology import Topology, device, memory
from repro.units import GBPS


def devices(n):
    return tuple(device(i) for i in range(n))


class TestRing:
    def test_basic_properties(self):
        ring = Ring("r", devices(4), NVLINK)
        assert ring.size == 4
        assert ring.hop_count == 4
        assert ring.participant_count == 4
        assert ring.algorithm_bandwidth == NVLINK.bidir_bw

    def test_rejects_tiny_or_duplicated(self):
        with pytest.raises(ValueError):
            Ring("r", (device(0),), NVLINK)
        with pytest.raises(ValueError):
            Ring("r", (device(0), device(1), device(0)), NVLINK)
        with pytest.raises(ValueError):
            Ring("r", devices(3), NVLINK, extra_hops=-1)

    def test_extra_hops_extend_cycle(self):
        ring = Ring("r", devices(4), NVLINK, extra_hops=2)
        assert ring.size == 4
        assert ring.hop_count == 6

    def test_non_duplex_halves_bandwidth(self):
        ring = Ring("r", devices(4), NVLINK, duplex=False)
        assert ring.algorithm_bandwidth == NVLINK.uni_bw

    def test_mixed_ring_counts_devices_only(self):
        order = (device(0), memory(0), device(1), memory(1))
        ring = Ring("r", order, NVLINK)
        assert ring.size == 4
        assert ring.participant_count == 2

    def test_edges_close_the_loop(self):
        ring = Ring("r", devices(3), NVLINK)
        assert ring.edges() == [(device(0), device(1)),
                                (device(1), device(2)),
                                (device(2), device(0))]

    def test_neighbors(self):
        ring = Ring("r", devices(4), NVLINK)
        left, right = ring.neighbors(device(0))
        assert (left, right) == (device(3), device(1))


class TestRingSet:
    def test_total_bandwidth(self):
        rings = RingSet([Ring("a", devices(4), NVLINK),
                         Ring("b", devices(4), NVLINK)])
        assert rings.total_link_bw == 100 * GBPS
        assert rings.max_ring_size == 4

    def test_same_participants_validation(self):
        good = RingSet([Ring("a", devices(4), NVLINK),
                        Ring("b", tuple(reversed(devices(4))), NVLINK)])
        good.validate_same_participants()

        bad = RingSet([Ring("a", devices(4), NVLINK),
                       Ring("b", devices(3), NVLINK)])
        with pytest.raises(ValueError):
            bad.validate_same_participants()

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            RingSet().validate_same_participants()

    def test_materialize_adds_cycle_edges(self):
        topo = Topology("t")
        for i in range(4):
            topo.add_node(device(i))
        rings = RingSet([Ring("a", devices(4), NVLINK)])
        rings.materialize(topo)
        for node in devices(4):
            assert topo.degree(node) == 2
