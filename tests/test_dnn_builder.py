"""Tests for repro.dnn.builder (the CNN graph builder)."""

import pytest

from repro.dnn.builder import NetBuilder, conv_out_dim
from repro.dnn.layers import LayerKind


class TestConvOutDim:
    def test_textbook_cases(self):
        assert conv_out_dim(224, 7, 2, 3) == 112   # ResNet stem
        assert conv_out_dim(227, 11, 4, 0) == 55   # AlexNet conv1
        assert conv_out_dim(56, 3, 1, 1) == 56     # same-padding 3x3
        assert conv_out_dim(112, 3, 2, 1) == 56    # strided pool

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            conv_out_dim(2, 5, 1, 0)


class TestNetBuilder:
    def test_conv_shapes_and_weights(self):
        b = NetBuilder("t")
        x = b.image_input(32, 32, 3)
        y = b.conv(x, out_channels=16, kernel=3, pad=1)
        assert (y.height, y.width, y.channels) == (32, 32, 16)
        layer = b.net.layer(y.name)
        assert layer.weight_elems == 16 * 3 * 9
        assert layer.out_elems == 32 * 32 * 16

    def test_grouped_conv_divides_weights(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 4)
        dense = b.conv(x, 8, kernel=3, pad=1, name="dense")
        grouped = b.conv(x, 8, kernel=3, pad=1, groups=2, name="grouped")
        assert b.net.layer(grouped.name).weight_elems \
            == b.net.layer(dense.name).weight_elems // 2
        # Grouped convs halve the MACs too (two smaller GEMMs).
        assert b.net.layer(grouped.name).fwd_macs(1) \
            == b.net.layer(dense.name).fwd_macs(1) // 2

    def test_grouped_conv_rejects_indivisible(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 3)
        with pytest.raises(ValueError):
            b.conv(x, 8, kernel=3, groups=2)

    def test_pool_reduces_spatial(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 4)
        y = b.pool(x, kernel=2, stride=2)
        assert (y.height, y.width, y.channels) == (4, 4, 4)
        assert b.net.layer(y.name).kind is LayerKind.POOL

    def test_global_pool(self):
        b = NetBuilder("t")
        x = b.image_input(7, 7, 64)
        y = b.pool(x, kernel=7, stride=1, global_pool=True)
        assert (y.height, y.width, y.channels) == (1, 1, 64)

    def test_concat_sums_channels(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 4)
        a = b.conv(x, 8, kernel=1)
        c = b.conv(x, 16, kernel=1)
        y = b.concat([a, c])
        assert y.channels == 24

    def test_concat_rejects_mismatched_spatial(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 4)
        a = b.conv(x, 8, kernel=1)
        c = b.pool(x, kernel=2, stride=2)
        with pytest.raises(ValueError):
            b.concat([a, c])

    def test_add_requires_identical_shape(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 4)
        a = b.conv(x, 4, kernel=3, pad=1)
        c = b.conv(x, 8, kernel=3, pad=1)
        with pytest.raises(ValueError):
            b.add(a, c)

    def test_fc_flattens_input(self):
        b = NetBuilder("t")
        x = b.image_input(6, 6, 256)
        y = b.fc(x, 4096)
        assert b.net.layer(y.name).weight_elems == 6 * 6 * 256 * 4096

    def test_batchnorm_has_per_channel_weights(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 32)
        y = b.batchnorm(x)
        assert b.net.layer(y.name).weight_elems == 64

    def test_unique_name_generation(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 4)
        first = b.relu(x)
        second = b.relu(x)
        assert first.name != second.name

    def test_build_validates(self):
        b = NetBuilder("t")
        x = b.image_input(8, 8, 4)
        b.conv(x, 8, kernel=3, pad=1)
        net = b.build()
        assert len(net) == 2
