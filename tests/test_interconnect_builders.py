"""Tests for the concrete system topologies (paper Figures 5 and 7)."""

import pytest

from repro.interconnect.builders import (VmemChannel, VmemTarget,
                                         build_dc_dla,
                                         build_fig7a_derivative,
                                         build_hc_dla, build_mc_dla_ring,
                                         build_mc_dla_star)
from repro.interconnect.link import NVLINK, NVLINK2, PCIE_GEN4
from repro.interconnect.topology import NodeKind, device, memory
from repro.units import GBPS

ALL_BUILDERS = (build_dc_dla, build_hc_dla, build_mc_dla_ring,
                build_mc_dla_star, build_fig7a_derivative)


class TestLinkBudgets:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_every_design_respects_n_links(self, builder):
        st = builder()
        st.topo.validate_link_budget(NVLINK.name)
        for node in st.topo.nodes(NodeKind.DEVICE):
            assert st.topo.degree(node, NVLINK.name) <= 6

    def test_dc_dla_devices_use_all_six_links(self):
        st = build_dc_dla()
        for node in st.topo.nodes(NodeKind.DEVICE):
            assert st.topo.degree(node, NVLINK.name) == 6


class TestDcDla:
    def test_three_balanced_rings(self):
        st = build_dc_dla()
        assert st.collective_channels() == [(8, 50 * GBPS)] * 3

    def test_pcie_virtualization_channel(self):
        st = build_dc_dla()
        assert st.vmem.target is VmemTarget.HOST
        assert st.vmem.peak_bw == 16 * GBPS
        assert st.vmem.concurrent_bw == 16 * GBPS

    def test_shared_uplinks_halve_concurrent_bw(self):
        st = build_dc_dla(shared_uplinks=True)
        assert st.vmem.concurrent_bw == 8 * GBPS

    def test_pcie_gen4_option(self):
        st = build_dc_dla(pcie=PCIE_GEN4)
        assert st.vmem.peak_bw == 32 * GBPS

    def test_scales_to_other_device_counts(self):
        st = build_dc_dla(4)
        assert st.n_devices == 4
        assert all(size == 4 for size, _ in st.collective_channels())

    def test_rejects_single_device(self):
        with pytest.raises(ValueError):
            build_dc_dla(1)


class TestHcDla:
    def test_half_links_to_cpu(self):
        st = build_hc_dla()
        hosts = st.topo.nodes(NodeKind.HOST)
        assert len(hosts) == 2
        for dev in st.topo.nodes(NodeKind.DEVICE):
            cpu_links = sum(len(st.topo.links_between(dev, h))
                            for h in hosts)
            assert cpu_links == 3

    def test_vmem_bandwidth_is_three_links(self):
        st = build_hc_dla()
        assert st.vmem.peak_bw == 75 * GBPS
        assert st.vmem.target is VmemTarget.HOST

    def test_half_the_collective_bandwidth_of_dc(self):
        hc = sum(bw for _, bw in build_hc_dla().collective_channels())
        dc = sum(bw for _, bw in build_dc_dla().collective_channels())
        assert hc == dc / 2


class TestMcDlaRing:
    def test_three_16_node_rings(self):
        st = build_mc_dla_ring()
        assert st.collective_channels() == [(16, 50 * GBPS)] * 3

    def test_alternating_ring_order(self):
        st = build_mc_dla_ring()
        order = st.rings.rings[0].order
        kinds = [n.kind for n in order]
        assert kinds == [NodeKind.MEMORY, NodeKind.DEVICE] * 8

    def test_device_reaches_each_neighbour_over_three_links(self):
        st = build_mc_dla_ring()
        # D1 sits between M0 and M1 in all three rings.
        assert len(st.topo.links_between(device(1), memory(0))) == 3
        assert len(st.topo.links_between(device(1), memory(1))) == 3

    def test_bw_aware_vmem_bandwidth(self):
        st = build_mc_dla_ring()
        assert st.vmem.target is VmemTarget.MEMORY_NODE
        assert st.vmem.peak_bw == 150 * GBPS

    def test_memory_nodes_respect_budget(self):
        st = build_mc_dla_ring()
        for node in st.topo.nodes(NodeKind.MEMORY):
            assert st.topo.degree(node, NVLINK.name) == 6

    def test_link_spec_override(self):
        st = build_mc_dla_ring(link=NVLINK2)
        assert st.vmem.peak_bw == 300 * GBPS


class TestMcDlaStar:
    def test_unbalanced_hop_counts(self):
        st = build_mc_dla_star()
        hops = sorted(h for h, _ in st.collective_channels())
        assert hops == [8, 12, 20]

    def test_two_links_of_vmem_bandwidth(self):
        st = build_mc_dla_star()
        assert st.vmem.peak_bw == 50 * GBPS

    def test_only_defined_for_eight_devices(self):
        with pytest.raises(ValueError):
            build_mc_dla_star(4)


class TestFig7aDerivative:
    def test_24_hop_rerouted_ring(self):
        st = build_fig7a_derivative()
        hops = sorted(h for h, _ in st.collective_channels())
        assert hops == [8, 8, 24]

    def test_dedicated_backing_links(self):
        st = build_fig7a_derivative()
        assert len(st.topo.links_between(device(0), memory(0))) == 2
        assert st.vmem.peak_bw == 50 * GBPS


class TestVmemChannel:
    def test_oracle_channel_carries_nothing(self):
        channel = VmemChannel(VmemTarget.NONE, 0.0, 0.0)
        assert channel.target is VmemTarget.NONE
        with pytest.raises(ValueError):
            VmemChannel(VmemTarget.NONE, 1.0, 1.0)

    def test_rejects_concurrent_above_peak(self):
        with pytest.raises(ValueError):
            VmemChannel(VmemTarget.HOST, peak_bw=1.0, concurrent_bw=2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            VmemChannel(VmemTarget.HOST, peak_bw=0.0, concurrent_bw=0.0)
