"""Property-based tests: the ring schedules really compute the result.

The latency models in :mod:`repro.collectives.ring_algorithm` correspond
to concrete data-movement schedules; these tests execute those schedules
on integer vectors and check the collective's semantics against a
straightforward reference.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.collectives.ring_algorithm import (simulate_all_gather,
                                              simulate_all_reduce,
                                              simulate_broadcast)

node_counts = st.integers(min_value=2, max_value=9)
values = st.integers(min_value=-1000, max_value=1000)


@given(node_counts, st.integers(min_value=1, max_value=7), st.data())
def test_all_gather_delivers_every_contribution(n, seg_len, data):
    contributions = [
        data.draw(st.lists(values, min_size=seg_len, max_size=seg_len))
        for _ in range(n)]
    results = simulate_all_gather(contributions)
    expected = sum(contributions, [])
    assert all(r == expected for r in results)


@given(node_counts, st.integers(min_value=1, max_value=24), st.data())
def test_all_reduce_sums_elementwise(n, length, data):
    vectors = [
        data.draw(st.lists(values, min_size=length, max_size=length))
        for _ in range(n)]
    results = simulate_all_reduce(vectors)
    expected = [sum(v[i] for v in vectors) for i in range(length)]
    assert all(r == expected for r in results)


@given(node_counts, st.lists(values, min_size=0, max_size=40),
       st.integers(min_value=1, max_value=8))
def test_broadcast_replicates_root(n, vector, chunk):
    results = simulate_broadcast(vector, n, chunk=chunk)
    assert all(r == vector for r in results)


@given(node_counts)
def test_all_reduce_is_idempotent_on_zeros(n):
    vectors = [[0, 0, 0] for _ in range(n)]
    assert simulate_all_reduce(vectors) == vectors


def test_all_gather_two_nodes_minimal():
    assert simulate_all_gather([[1], [2]]) == [[1, 2], [1, 2]]


def test_all_reduce_matches_hand_example():
    out = simulate_all_reduce([[1, 2], [3, 4], [5, 6]])
    assert out == [[9, 12]] * 3
