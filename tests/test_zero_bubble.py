"""Zero-bubble pipeline schedules: B/W split, virtual stages, auto
search, and the end-to-end claim that deferred weight-grad work fills
the 1F1B bubbles."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pricing
from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.metrics import PipelineStats, SimulationResult
from repro.core.schedule import build_iteration_ops, plan_iteration
from repro.core.simulator import iteration_timeline, simulate
from repro.core.timeline import EngineKind
from repro.core.trace import tag_category, to_chrome_trace
from repro.dnn.layers import LayerKind
from repro.dnn.registry import build_network
from repro.naming import resolve_schedule
from repro.pipeline import (OpKind, ScheduleCosts, ScheduleKind, Slot,
                            build_schedule, evaluate_makespan,
                            parse_schedule_kind, pipeline_stats,
                            plan_pipeline, structural_bubble_time)
from repro.scenarios.paper import zero_bubble_suite
from repro.scenarios.runner import run_suite
from repro.training.parallel import ParallelStrategy

SPLIT_KINDS = (ScheduleKind.ZB_H1, ScheduleKind.INTERLEAVED,
               ScheduleKind.ZB_AUTO)


def _config(design="MC-DLA(B)", **replacements):
    config = design_point(design)
    return dataclasses.replace(config, **replacements) \
        if replacements else config


def _unit_costs(n_stages: int) -> ScheduleCosts:
    return ScheduleCosts(
        t_fwd=(1.0,) * n_stages, t_bwd=(1.0,) * n_stages,
        t_wgrad=(0.5,) * n_stages,
        send_fwd=(0.0,) * n_stages, send_bwd=(0.0,) * n_stages)


class TestKindsAndNaming:
    def test_aliases_resolve_to_canonical_kinds(self):
        assert parse_schedule_kind("zb") is ScheduleKind.ZB_H1
        assert parse_schedule_kind("zero-bubble") is ScheduleKind.ZB_H1
        assert parse_schedule_kind("auto") is ScheduleKind.ZB_AUTO
        assert parse_schedule_kind("vpp") is ScheduleKind.INTERLEAVED
        assert parse_schedule_kind("fill-drain") is ScheduleKind.GPIPE
        assert parse_schedule_kind("1f1b") is ScheduleKind.ONE_F_ONE_B
        assert resolve_schedule("ZB") == "zb-h1"
        assert resolve_schedule("interleaved") == "interleaved"

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="zb-h1"):
            parse_schedule_kind("zigzag")
        with pytest.raises(KeyError, match="zb-auto"):
            resolve_schedule("zigzag")

    def test_split_and_chunk_flags(self):
        for kind in SPLIT_KINDS:
            assert kind.splits_wgrad
        assert not ScheduleKind.GPIPE.splits_wgrad
        assert not ScheduleKind.ONE_F_ONE_B.splits_wgrad
        assert ScheduleKind.INTERLEAVED.virtual_chunks == 2
        assert ScheduleKind.ZB_H1.virtual_chunks == 1

    def test_slot_kind_consistency(self):
        assert Slot(0, True).kind is OpKind.F
        assert Slot(0, False).kind is OpKind.B
        assert Slot(0, False, OpKind.W).kind is OpKind.W
        with pytest.raises(ValueError, match="inconsistent"):
            Slot(0, True, OpKind.B)
        with pytest.raises(ValueError, match="inconsistent"):
            Slot(0, False, OpKind.F)


class TestZeroBubblePrograms:
    @pytest.mark.parametrize("n_stages,n_mb", [(4, 8), (3, 5), (8, 8)])
    def test_zb_h1_is_1f1b_plus_w_filler(self, n_stages, n_mb):
        """Stripping the W slots recovers the exact 1F1B skeleton."""
        zb = build_schedule(ScheduleKind.ZB_H1, n_stages, n_mb)
        one_f = build_schedule(ScheduleKind.ONE_F_ONE_B, n_stages, n_mb)
        for stage in range(n_stages):
            skeleton = tuple(s for s in zb.program(stage).slots
                             if s.kind is not OpKind.W)
            assert skeleton == one_f.program(stage).slots

    def test_w_retires_every_microbatch_after_its_b(self):
        schedule = build_schedule(ScheduleKind.ZB_H1, 4, 8)
        for program in schedule.programs:
            ws = sorted(s.microbatch for s in program.slots
                        if s.kind is OpKind.W)
            assert ws == list(range(8))
            for m in range(8):
                assert program.kind_index(m, OpKind.W) \
                    > program.kind_index(m, OpKind.B)

    def test_memory_stays_at_the_1f1b_bound(self):
        zb = build_schedule(ScheduleKind.ZB_H1, 4, 8)
        one_f = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 8)
        for stage in range(4):
            warmup = min(4 - 1 - stage, 8)
            assert zb.program(stage).max_in_flight \
                == one_f.program(stage).max_in_flight
            assert zb.program(stage).max_w_backlog <= warmup + 1

    def test_stash_slots_discount_w_filler(self):
        """W slots between a microbatch's F and B are short filler and
        must not age the stash (offload decisions match 1F1B)."""
        zb = build_schedule(ScheduleKind.ZB_H1, 4, 8)
        one_f = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 8)
        for stage in range(4):
            for m in range(8):
                assert zb.program(stage).stash_slots(m) \
                    == one_f.program(stage).stash_slots(m)

    def test_auto_search_never_worse_than_zb_h1(self):
        for n_stages, n_mb in [(4, 8), (6, 12), (3, 4)]:
            costs = _unit_costs(n_stages)
            auto = build_schedule(ScheduleKind.ZB_AUTO, n_stages, n_mb,
                                  costs)
            h1 = build_schedule(ScheduleKind.ZB_H1, n_stages, n_mb)
            assert evaluate_makespan(auto.programs, costs) \
                <= evaluate_makespan(h1.programs, costs)

    def test_auto_without_costs_falls_back_to_zb_h1(self):
        auto = build_schedule(ScheduleKind.ZB_AUTO, 4, 8)
        h1 = build_schedule(ScheduleKind.ZB_H1, 4, 8)
        assert [p.slots for p in auto.programs] \
            == [p.slots for p in h1.programs]

    def test_evaluate_makespan_detects_deadlock(self):
        from repro.pipeline.schedules import StageProgram
        # Stage 0 waits on a grad that stage 1 never produces first.
        programs = (
            StageProgram(stage=0, slots=(Slot(0, False), Slot(0, True))),
            StageProgram(stage=1, slots=(Slot(0, True), Slot(0, False))),
        )
        with pytest.raises(RuntimeError, match="deadlock"):
            evaluate_makespan(programs, _unit_costs(2))

    def test_structural_bound_drops_with_wgrad_split(self):
        base = structural_bubble_time(4, 1.0, 2.0)
        split = structural_bubble_time(4, 1.0, 2.0, t_wgrad=0.5)
        assert base == 9.0
        assert split == 6.0
        # Floored at zero when W work exceeds the fill/drain idle.
        assert structural_bubble_time(4, 1.0, 2.0, t_wgrad=2.0) == 0.0


schedule_cases = given(
    kind=st.sampled_from(ScheduleKind),
    n_stages=st.integers(min_value=1, max_value=6),
    n_mb=st.integers(min_value=1, max_value=10))


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @schedule_cases
    def test_f_precedes_b_precedes_w(self, kind, n_stages, n_mb):
        schedule = build_schedule(kind, n_stages, n_mb)
        for program in schedule.programs:
            for m in range(n_mb):
                fwd = program.kind_index(m, OpKind.F)
                bwd = program.kind_index(m, OpKind.B)
                assert fwd < bwd
                if program.has_wgrad:
                    assert bwd < program.kind_index(m, OpKind.W)

    @settings(max_examples=60, deadline=None)
    @schedule_cases
    def test_each_microbatch_once_per_kind(self, kind, n_stages, n_mb):
        schedule = build_schedule(kind, n_stages, n_mb)
        for program in schedule.programs:
            by_kind = {OpKind.F: [], OpKind.B: [], OpKind.W: []}
            for slot in program.slots:
                by_kind[slot.kind].append(slot.microbatch)
            assert sorted(by_kind[OpKind.F]) == list(range(n_mb))
            assert sorted(by_kind[OpKind.B]) == list(range(n_mb))
            expected_w = list(range(n_mb)) if kind.splits_wgrad else []
            assert sorted(by_kind[OpKind.W]) == expected_w

    @settings(max_examples=60, deadline=None)
    @schedule_cases
    def test_stash_slots_count_non_w_work_between(self, kind, n_stages,
                                                  n_mb):
        schedule = build_schedule(kind, n_stages, n_mb)
        for program in schedule.programs:
            for m in range(n_mb):
                fwd = program.slot_index(m, True)
                bwd = program.slot_index(m, False)
                between = [s for s in program.slots[fwd + 1:bwd]
                           if s.kind is not OpKind.W]
                assert program.stash_slots(m) == len(between)

    @settings(max_examples=60, deadline=None)
    @schedule_cases
    def test_in_flight_stays_under_declared_cap(self, kind, n_stages,
                                                n_mb):
        schedule = build_schedule(kind, n_stages, n_mb)
        for stage, program in enumerate(schedule.programs):
            live = peak = 0
            for slot in program.slots:
                if slot.kind is OpKind.F:
                    live += 1
                elif slot.kind is OpKind.B:
                    live -= 1
                peak = max(peak, live)
            assert program.max_in_flight == peak <= n_mb
            if kind is not ScheduleKind.GPIPE:
                assert peak <= max(1, min(n_stages - stage, n_mb))

    @settings(max_examples=60, deadline=None)
    @schedule_cases
    def test_dependency_graph_is_acyclic(self, kind, n_stages, n_mb):
        """The analytic evaluator drains every slot (no deadlock) and
        the makespan covers the busiest stage."""
        schedule = build_schedule(kind, n_stages, n_mb)
        costs = _unit_costs(n_stages)
        span = evaluate_makespan(schedule.programs, costs)
        per_stage = []
        for program in schedule.programs:
            work = sum({OpKind.F: 1.0, OpKind.B: 1.0,
                        OpKind.W: 0.5}[s.kind] for s in program.slots)
            per_stage.append(work)
        assert span >= max(per_stage) - 1e-12


class TestBubbleInvariant:
    def _plan(self):
        return plan_pipeline(build_network("GPT2"), _config(), 64)

    def test_overcounted_compute_raises(self):
        plan = self._plan()

        class OverTimeline:
            makespan = 1.0

            def busy_time(self, engine, channel):
                return 2.0

        with pytest.raises(RuntimeError, match="over-counted"):
            pipeline_stats(plan, OverTimeline())

    def test_float_jitter_clamps_to_zero_bubble(self):
        plan = self._plan()

        class JitterTimeline:
            makespan = 1.0

            def busy_time(self, engine, channel):
                return 1.0 + 1e-12  # inside the 1e-9 tolerance

        stats = pipeline_stats(plan, JitterTimeline())
        assert all(b == 0.0 for b in stats.stage_bubble)


class TestSplitTiming:
    def test_split_conserves_total_backward(self):
        net = build_network("GPT2")
        device = design_point("DC-DLA").device
        checked = 0
        for name in net.layer_names:
            layer = net.layer(name)
            if layer.kind is LayerKind.INPUT:
                continue
            dx, dw = device.layer_bwd_split_time(layer, 8)
            total = device.layer_bwd_time(layer, 8)
            assert dx + dw == pytest.approx(total, rel=1e-12)
            if layer.bwd_gemms(8):
                assert dx > 0
                checked += 1
            else:
                # Streaming backward has no deferrable dW component.
                assert dw == 0.0
        assert checked > 0

    def test_pricing_memo_matches_device(self):
        net = build_network("GPT2")
        device = design_point("DC-DLA").device
        layer = next(net.layer(n) for n in net.layer_names
                     if net.layer(n).weight_elems)
        first = pricing.layer_bwd_split_time(device, layer, 8)
        second = pricing.layer_bwd_split_time(device, layer, 8)
        assert first == second == device.layer_bwd_split_time(layer, 8)


class TestZeroBubbleSimulation:
    @pytest.mark.parametrize("design", DESIGN_ORDER)
    def test_zb_auto_strictly_beats_1f1b(self, design):
        zb = simulate(_config(design, pipeline_schedule="zb-auto"),
                      "GPT2", 64, ParallelStrategy.PIPELINE)
        one_f = simulate(_config(design, pipeline_schedule="1f1b"),
                         "GPT2", 64, ParallelStrategy.PIPELINE)
        assert zb.pipeline.bubble_fraction \
            < one_f.pipeline.bubble_fraction
        assert zb.iteration_time <= one_f.iteration_time

    def test_wgrad_accounting_surfaces_in_stats(self):
        zb = simulate(_config(pipeline_schedule="zb-h1"), "GPT2", 64,
                      ParallelStrategy.PIPELINE)
        assert zb.pipeline.schedule == "zb-h1"
        assert len(zb.pipeline.stage_wgrad) == zb.pipeline.n_stages
        assert zb.pipeline.wgrad_time > 0
        assert 0.0 < zb.pipeline.wgrad_fill_fraction <= 1.0
        one_f = simulate(_config(), "GPT2", 64,
                         ParallelStrategy.PIPELINE)
        assert one_f.pipeline.stage_wgrad == ()
        assert one_f.pipeline.wgrad_time == 0.0
        assert one_f.pipeline.wgrad_fill_fraction == 0.0

    def test_interleaved_hosts_two_virtual_stages_per_device(self):
        net = build_network("GPT2")
        config = _config(pipeline_schedule="interleaved")
        plan = plan_pipeline(net, config, 64)
        assert plan.chunks == 2
        assert plan.n_channels == 8
        assert plan.n_stages == 16
        assert {plan.channel_of(s.index)
                for s in plan.stages} == set(range(8))
        result = simulate(config, net, 64, ParallelStrategy.PIPELINE)
        # Stats rows are physical devices, not virtual stages.
        assert result.pipeline.n_stages == 8

    def test_interleaved_degrades_on_shallow_networks(self):
        net = build_network("AlexNet")
        config = _config(pipeline_schedule="interleaved",
                         pipeline_stages=4)
        plan = plan_pipeline(net, config, 64)
        assert plan.chunks in (1, 2)
        result = simulate(config, net, 64, ParallelStrategy.PIPELINE)
        assert result.iteration_time > 0

    def test_auto_search_validated_by_replay(self):
        """The found slot ordering must also win when replayed through
        the real simulator, not only under the analytic cost model."""
        auto = simulate(_config("DC-DLA", pipeline_schedule="zb-auto"),
                        "BERT-Large", 64, ParallelStrategy.PIPELINE)
        h1 = simulate(_config("DC-DLA", pipeline_schedule="zb-h1"),
                      "BERT-Large", 64, ParallelStrategy.PIPELINE)
        assert auto.iteration_time <= h1.iteration_time * (1 + 1e-9)

    def test_serialization_round_trip(self):
        result = simulate(_config(pipeline_schedule="zb-h1"), "GPT2",
                          64, ParallelStrategy.PIPELINE)
        data = json.loads(json.dumps(result.to_dict()))
        assert SimulationResult.from_dict(data) == result
        assert "stage_wgrad" in data["pipeline"]

    def test_legacy_stats_dicts_still_load(self):
        result = simulate(_config(), "GPT2", 64,
                          ParallelStrategy.PIPELINE)
        data = result.pipeline.to_dict()
        assert "stage_wgrad" not in data  # legacy byte-identity
        assert PipelineStats.from_dict(data).stage_wgrad == ()

    def test_trace_tags_wgrad_as_compute(self):
        timeline = iteration_timeline(
            _config(pipeline_schedule="zb-h1"), "GPT2", 64,
            ParallelStrategy.PIPELINE)
        wgrads = [s.op for s in timeline.scheduled
                  if s.op.tag.startswith("wgrad:")]
        assert wgrads
        assert all(s.op.engine is EngineKind.COMPUTE for s in
                   timeline.scheduled if s.op.tag.startswith("wgrad:"))
        assert tag_category("wgrad:s0:m0", strict=True) == "compute"
        trace = json.loads(to_chrome_trace(timeline,
                                           include_bubbles=True))
        assert any(e.get("name", "").startswith("wgrad:")
                   for e in trace["traceEvents"])


class TestSplitIterationOps:
    def test_off_by_default_and_byte_identical(self):
        net = build_network("GPT2")
        config = design_point("DC-DLA")
        plan = plan_iteration(net, config, 64, ParallelStrategy.DATA)
        default = build_iteration_ops(plan, config)
        explicit = build_iteration_ops(plan, config, split_wgrad=False)
        assert [repr(op) for op in default.ops] \
            == [repr(op) for op in explicit.ops]
        assert not [op for op in default.ops
                    if op.tag.startswith("wgrad:")]

    @pytest.mark.parametrize("strategy", (ParallelStrategy.DATA,
                                          ParallelStrategy.MODEL))
    def test_split_conserves_compute_seconds(self, strategy):
        net = build_network("GPT2")
        config = design_point("DC-DLA")
        plan = plan_iteration(net, config, 64, strategy)
        merged = build_iteration_ops(plan, config)
        split = build_iteration_ops(plan, config, split_wgrad=True)

        def total(ops):
            return sum(op.duration for op in ops.ops
                       if op.engine is EngineKind.COMPUTE)

        assert total(split) == pytest.approx(total(merged), rel=1e-9)
        wgrads = {op.tag.split(":", 1)[1]: op for op in split.ops
                  if op.tag.startswith("wgrad:")}
        assert wgrads
        bwds = {op.tag.split(":", 1)[1]: op for op in split.ops
                if op.tag.startswith("bwd:")}
        for name, op in wgrads.items():
            assert list(op.deps) == [bwds[name].uid]


class TestZeroBubbleGolden:
    def test_study_scalars_and_claims(self, golden):
        report = run_suite(zero_bubble_suite())
        headline = report.verdict("zero-bubble-beats-1f1b")
        assert headline.ok, headline.detail
        assert report.ok, report.summary()
        golden.check("zb_pipeline", report.scalars())
