"""Tests for repro.dnn.shapes (GEMM lowering)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnn.shapes import Gemm, conv_gemm, fc_gemm, rnn_gemm

dims = st.integers(min_value=1, max_value=4096)


class TestGemm:
    def test_macs(self):
        assert Gemm(2, 3, 4).macs == 24

    def test_operand_elems(self):
        # X: 2x4, W: 4x3, Y: 2x3
        assert Gemm(2, 3, 4).operand_elems == 8 + 12 + 6

    def test_rejects_nonpositive_dims(self):
        for m, n, k in [(0, 1, 1), (1, 0, 1), (1, 1, 0), (-1, 2, 2)]:
            with pytest.raises(ValueError):
                Gemm(m, n, k)

    def test_at_batch_scales_per_sample_m(self):
        g = Gemm(196, 64, 27, m_per_sample=True)
        resolved = g.at_batch(8)
        assert resolved.m == 196 * 8
        assert (resolved.n, resolved.k) == (64, 27)
        assert not resolved.m_per_sample

    def test_at_batch_keeps_fixed_m(self):
        g = Gemm(7, 5, 3, m_per_sample=False)
        assert g.at_batch(16).m == 7

    def test_at_batch_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            Gemm(1, 1, 1).at_batch(0)

    @given(dims, dims, dims, st.integers(min_value=1, max_value=64))
    def test_batch_scaling_is_linear_in_macs(self, m, n, k, batch):
        g = Gemm(m, n, k, m_per_sample=True)
        assert g.at_batch(batch).macs == batch * Gemm(m, n, k).macs


class TestLoweringHelpers:
    def test_conv_gemm_dims(self):
        # 3x3 conv, 64 in, 128 out, on a 56x56 output grid.
        g = conv_gemm(56 * 56, 128, 64, 9)
        assert (g.m, g.n, g.k) == (3136, 128, 576)
        assert g.m_per_sample

    def test_fc_gemm_one_row_per_sample(self):
        g = fc_gemm(4096, 25088)
        assert (g.m, g.n, g.k) == (1, 4096, 25088)
        assert g.m_per_sample

    def test_rnn_gemm_gate_features(self):
        g = rnn_gemm(4 * 1024, 1024)
        assert (g.m, g.n, g.k) == (1, 4096, 1024)

    def test_conv_macs_match_textbook_formula(self):
        # MACs = OH*OW*OC * IC*KH*KW per sample.
        g = conv_gemm(28 * 28, 192, 64, 25).at_batch(2)
        assert g.macs == 2 * 28 * 28 * 192 * 64 * 25
