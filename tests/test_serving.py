"""Inference-serving subsystem: traces, batcher, server, stats, CLI."""

from __future__ import annotations

import json

import pytest

from repro.core.design_points import design_point
from repro.core.metrics import (ExecutionMode, ServingStats,
                                SimulationResult)
from repro.core.schedule import plan_inference
from repro.core.simulator import simulate
from repro.dnn.registry import build_network, decode_network
from repro.serving import (BatchPolicy, Request, compute_stats,
                           form_batches, mmpp_trace, next_batch,
                           percentile, poisson_trace, replayed_trace,
                           run_continuous, run_dynamic, simulate_serving)
from repro.serving.cli import main as serve_main
from repro.serving.cli import resolve_design, resolve_network
from repro.training.parallel import ParallelStrategy


class TestTraces:
    def test_poisson_deterministic_and_sorted(self):
        a = poisson_trace(100.0, 50, seed=7)
        b = poisson_trace(100.0, 50, seed=7)
        assert a == b
        assert all(x.arrival <= y.arrival for x, y in zip(a, a[1:]))
        assert [r.rid for r in a] == list(range(50))

    def test_poisson_seed_changes_trace(self):
        assert poisson_trace(100.0, 50, seed=1) \
            != poisson_trace(100.0, 50, seed=2)

    def test_poisson_rate_scales_horizon(self):
        slow = poisson_trace(10.0, 200, seed=3)[-1].arrival
        fast = poisson_trace(1000.0, 200, seed=3)[-1].arrival
        assert slow == pytest.approx(100.0 * fast)

    def test_mmpp_mean_rate_close_to_nominal(self):
        trace = mmpp_trace(200.0, 2000, seed=5)
        measured = len(trace) / trace[-1].arrival
        assert 0.5 * 200.0 < measured < 2.0 * 200.0

    def test_mmpp_is_burstier_than_poisson(self):
        """Squared CV of inter-arrivals: MMPP > 1 (Poisson ~ 1)."""
        def cv2(trace):
            gaps = [b.arrival - a.arrival
                    for a, b in zip(trace, trace[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean ** 2

        bursty = cv2(mmpp_trace(200.0, 4000, seed=11, burst_ratio=8.0))
        steady = cv2(poisson_trace(200.0, 4000, seed=11))
        assert bursty > steady * 1.5

    def test_replayed_trace_validates(self):
        trace = replayed_trace([0.0, 0.5, 0.5, 2.0])
        assert [r.arrival for r in trace] == [0.0, 0.5, 0.5, 2.0]
        with pytest.raises(ValueError):
            replayed_trace([1.0, 0.5])
        with pytest.raises(ValueError):
            replayed_trace([])

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(rid=0, arrival=-1.0)
        with pytest.raises(ValueError):
            Request(rid=0, arrival=0.0, decode_steps=0)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(0.0, 10)
        with pytest.raises(ValueError):
            poisson_trace(10.0, 0)
        with pytest.raises(ValueError):
            mmpp_trace(10.0, 10, burst_ratio=0.5)
        with pytest.raises(ValueError):
            mmpp_trace(10.0, 10, dwell=0.0)


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait=-1.0)

    def test_name(self):
        assert BatchPolicy(8, 0.002).name == "b8w2ms"


class TestNextBatch:
    def test_full_batch_of_waiting_requests_dispatches_now(self):
        trace = replayed_trace([0.0, 0.0, 0.0, 0.0])
        count, dispatch = next_batch(trace, 0, 0.0, BatchPolicy(4, 1.0))
        assert (count, dispatch) == (4, 0.0)

    def test_partial_batch_waits_for_deadline(self):
        trace = replayed_trace([0.0, 5.0])
        count, dispatch = next_batch(trace, 0, 0.0,
                                     BatchPolicy(4, 0.010))
        assert (count, dispatch) == (1, 0.010)

    def test_late_arrival_fills_batch_before_deadline(self):
        trace = replayed_trace([0.0, 0.001, 0.002])
        count, dispatch = next_batch(trace, 0, 0.0,
                                     BatchPolicy(3, 0.010))
        assert count == 3
        assert dispatch == 0.002  # the filler's arrival, not deadline

    def test_busy_server_collects_backlog(self):
        trace = replayed_trace([0.0, 0.01, 0.02, 0.03])
        # Server frees long after every deadline: all four wait.
        count, dispatch = next_batch(trace, 0, 1.0, BatchPolicy(8, 0.001))
        assert (count, dispatch) == (4, 1.0)

    def test_zero_wait_dispatches_immediately(self):
        trace = replayed_trace([0.0, 0.5])
        count, dispatch = next_batch(trace, 0, 0.0, BatchPolicy(8, 0.0))
        assert (count, dispatch) == (1, 0.0)

    def test_form_batches_covers_trace_in_order(self):
        trace = poisson_trace(500.0, 100, seed=1)
        batches = form_batches(trace, BatchPolicy(4, 0.002))
        covered = []
        for start, count, _ in batches:
            covered.extend(range(start, start + count))
        assert covered == list(range(100))
        assert all(1 <= c <= 4 for _, c, _ in batches)


class TestRunDynamic:
    def test_no_request_lost_or_duplicated(self):
        trace = poisson_trace(300.0, 120, seed=2)
        ledger = run_dynamic(trace, BatchPolicy(8, 0.002),
                             lambda b: 0.005, n_servers=4)
        rids = sorted(c.request.rid for c in ledger.completed)
        assert rids == list(range(120))

    def test_latency_at_least_service(self):
        trace = poisson_trace(300.0, 60, seed=3)
        ledger = run_dynamic(trace, BatchPolicy(8, 0.002),
                             lambda b: 0.004, n_servers=2)
        for c in ledger.completed:
            assert c.latency >= c.service > 0
            assert c.queue_delay >= 0

    def test_single_server_is_serial(self):
        trace = poisson_trace(1000.0, 80, seed=4)
        ledger = run_dynamic(trace, BatchPolicy(4, 0.001),
                             lambda b: 0.003, n_servers=1)
        spans = sorted({(c.dispatched, c.finished)
                        for c in ledger.completed})
        for (_, fin), (start, _) in zip(spans, spans[1:]):
            assert start >= fin - 1e-12

    def test_needs_a_server(self):
        with pytest.raises(ValueError):
            run_dynamic(poisson_trace(1.0, 1), BatchPolicy(), lambda b: 1,
                        n_servers=0)

    def test_batch_size_respects_policy(self):
        trace = replayed_trace([0.0] * 20)
        ledger = run_dynamic(trace, BatchPolicy(6, 0.001),
                             lambda b: 0.001)
        assert ledger.n_batches == 4  # 6 + 6 + 6 + 2
        assert ledger.work_items == 20


class TestRunContinuous:
    def test_no_request_lost_and_steps_paid(self):
        trace = poisson_trace(50.0, 30, seed=5, decode_steps=4)
        ledger = run_continuous(trace, BatchPolicy(4, 0.0),
                                lambda b: 0.002)
        rids = sorted(c.request.rid for c in ledger.completed)
        assert rids == list(range(30))
        for c in ledger.completed:
            # At least decode_steps iterations of 2 ms each.
            assert c.service >= 4 * 0.002 - 1e-12

    def test_slots_capped_at_max_batch(self):
        trace = replayed_trace([0.0] * 10, decode_steps=3)
        seen = []
        ledger = run_continuous(trace, BatchPolicy(4, 0.0),
                                lambda b: seen.append(b) or 0.001)
        assert max(seen) <= 4
        assert ledger.work_items == 30  # 10 requests x 3 steps

    def test_prefill_charged_on_admission(self):
        trace = replayed_trace([0.0], decode_steps=2)
        ledger = run_continuous(trace, BatchPolicy(4, 0.0),
                                lambda b: 0.001,
                                prefill_fn=lambda b: 0.010)
        (done,) = ledger.completed
        assert done.finished == pytest.approx(0.010 + 2 * 0.001)


class TestStats:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 75) == 3.0
        assert percentile(values, 99) == 4.0
        assert percentile(values, 100) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 0)

    def test_compute_stats_fields(self):
        trace = poisson_trace(200.0, 100, seed=6)
        policy = BatchPolicy(8, 0.002)
        ledger = run_dynamic(trace, policy, lambda b: 0.004,
                             n_servers=2)
        stats = compute_stats(ledger, arrival="poisson", policy=policy,
                              batcher="dynamic", slo=0.05,
                              offered_rate=200.0, n_servers=2)
        assert stats.n_requests == 100
        assert 0.0 <= stats.utilization <= 1.0
        assert stats.goodput <= stats.throughput
        assert stats.latency_p50 <= stats.latency_p99
        assert stats.mean_batch_size >= 1.0
        assert stats.tail_amplification >= 1.0

    def test_serving_stats_round_trip_exact(self):
        trace = mmpp_trace(150.0, 64, seed=9)
        policy = BatchPolicy(4, 0.001)
        ledger = run_dynamic(trace, policy, lambda b: 0.003 + 1e-4 * b)
        stats = compute_stats(ledger, arrival="bursty", policy=policy,
                              batcher="dynamic", slo=0.02,
                              offered_rate=150.0, n_servers=1)
        clone = ServingStats.from_dict(
            json.loads(json.dumps(stats.to_dict())))
        assert clone == stats

    def test_serving_stats_validation(self):
        good = compute_stats(
            run_dynamic(poisson_trace(10.0, 4, seed=1), BatchPolicy(),
                        lambda b: 0.001),
            arrival="poisson", policy=BatchPolicy(), batcher="dynamic",
            slo=0.05, offered_rate=10.0, n_servers=1)
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(good, slo_attainment=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(good, utilization=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(good, latency_p50=good.latency_max * 2)


class TestInferenceMode:
    def test_forward_only_no_offload_ops(self):
        config = design_point("MC-DLA(B)")
        result = simulate(config, "AlexNet", 64,
                          mode=ExecutionMode.INFERENCE)
        assert result.mode is ExecutionMode.INFERENCE
        assert result.iteration_time > 0
        # Weight streaming fetches, no feature-map round trips.
        assert result.offload_bytes_per_device \
            == plan_inference(build_network("AlexNet"), config, 64,
                              ParallelStrategy.DATA) \
            .weight_stream_bytes_per_device

    def test_inference_faster_than_training(self):
        config = design_point("MC-DLA(B)")
        train = simulate(config, "GPT2", 16)
        infer = simulate(config, "GPT2", 16,
                         mode=ExecutionMode.INFERENCE)
        assert infer.iteration_time < train.iteration_time

    def test_oracle_streams_nothing(self):
        result = simulate(design_point("DC-DLA(O)"), "GPT2", 8,
                          mode=ExecutionMode.INFERENCE)
        assert result.offload_bytes_per_device == 0

    def test_tied_weights_streamed_once(self):
        net = build_network("GPT2")
        plan = plan_inference(net, design_point("MC-DLA(B)"), 8,
                              ParallelStrategy.DATA)
        assert plan.weight_stream_bytes_per_device == net.weight_bytes()
        assert "lm_head" not in plan.streamed_weights  # tied to embed

    def test_model_parallel_inference_shards_weights(self):
        config = design_point("MC-DLA(B)")
        net = build_network("VGG-E")
        data = plan_inference(net, config, 8, ParallelStrategy.DATA)
        model = plan_inference(net, config, 8, ParallelStrategy.MODEL)
        assert model.weight_stream_bytes_per_device \
            < data.weight_stream_bytes_per_device
        assert model.sync_bytes_per_iteration > 0

    def test_pipeline_inference_rejected(self):
        with pytest.raises(ValueError):
            simulate(design_point("MC-DLA(B)"), "GPT2", 8,
                     ParallelStrategy.PIPELINE,
                     mode=ExecutionMode.INFERENCE)

    def test_memory_centric_hides_streaming(self):
        """The serving-time Figure 13: MC tracks the oracle, DC lags."""
        lat = {d: simulate(design_point(d), "GPT2", 8,
                           mode=ExecutionMode.INFERENCE).iteration_time
               for d in ("DC-DLA", "MC-DLA(B)", "DC-DLA(O)")}
        assert lat["MC-DLA(B)"] < 1.1 * lat["DC-DLA(O)"]
        assert lat["DC-DLA"] > 1.5 * lat["MC-DLA(B)"]

    def test_result_round_trip_with_mode(self):
        result = simulate(design_point("DC-DLA"), "AlexNet", 32,
                          mode=ExecutionMode.INFERENCE)
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone == result


class TestDecodeNetworks:
    def test_decode_network_shapes(self):
        net = decode_network("GPT2")
        assert net.name == "GPT2-decode"
        full = build_network("GPT2")
        assert net.weight_bytes() == full.weight_bytes()
        # One token's forward work is tiny next to the full sequence.
        assert net.fwd_macs(1) < full.fwd_macs(1) / 100

    def test_decode_context_knob(self):
        short = decode_network("GPT2", context=64)
        longer = decode_network("GPT2", context=1024)
        assert short.fwd_macs(1) < longer.fwd_macs(1)

    def test_non_transformer_has_no_decode(self):
        with pytest.raises(KeyError):
            decode_network("AlexNet")


class TestSimulateServing:
    def test_round_trip_exact(self):
        result = simulate_serving(design_point("MC-DLA(B)"), "GPT2",
                                  rate=200.0, n_requests=64)
        assert result.mode is ExecutionMode.SERVING
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_continuous_batcher(self):
        result = simulate_serving(design_point("MC-DLA(B)"), "GPT2",
                                  rate=20.0, n_requests=32,
                                  batcher="continuous", decode_steps=8)
        assert result.serving.batcher == "continuous"
        assert result.serving.n_servers == 1
        assert result.serving.latency_p50 > 0

    def test_unknown_batcher_and_arrival(self):
        config = design_point("MC-DLA(B)")
        with pytest.raises(ValueError):
            simulate_serving(config, "GPT2", batcher="magic",
                             n_requests=8)
        with pytest.raises(ValueError):
            simulate_serving(config, "GPT2", arrival="novel",
                             n_requests=8)

    def test_replay_arrivals(self):
        result = simulate_serving(
            design_point("MC-DLA(B)"), "GPT2", arrival="replay",
            replay=[0.0, 0.01, 0.02, 0.5], n_requests=4)
        assert result.serving.n_requests == 4

    def test_higher_load_higher_tail(self):
        config = design_point("DC-DLA")
        calm = simulate_serving(config, "GPT2", rate=100.0,
                                n_requests=128).serving
        slammed = simulate_serving(config, "GPT2", rate=2000.0,
                                   n_requests=128).serving
        assert slammed.latency_p99 > calm.latency_p99
        assert slammed.slo_attainment <= calm.slo_attainment


class TestServeCli:
    def test_aliases(self):
        assert resolve_design("mc-hbm") == "MC-DLA(B)"
        assert resolve_design("dc") == "DC-DLA"
        assert resolve_design("MC-DLA(L)") == "MC-DLA(L)"
        assert resolve_network("gpt2") == "GPT2"
        assert resolve_network("bert") == "BERT-Large"
        with pytest.raises(KeyError):
            resolve_design("tpu-pod")
        with pytest.raises(KeyError):
            resolve_network("llama")

    def test_acceptance_invocation(self, capsys):
        code = serve_main(["--design", "mc-hbm", "--network", "gpt2",
                           "--arrival-rate", "200", "--slo-ms", "50",
                           "--requests", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "p50" in out and "p95" in out and "p99" in out
        assert "goodput" in out

    def test_json_output(self, capsys):
        code = serve_main(["--design", "oracle", "--network", "gpt2",
                           "--requests", "32", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "serving"
        assert payload["serving"]["n_requests"] == 32

    def test_bad_design_rejected(self, capsys):
        assert serve_main(["--design", "nope"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_continuous_requires_transformer(self, capsys):
        code = serve_main(["--design", "dc", "--network", "AlexNet",
                           "--batcher", "continuous"])
        assert code == 2
        assert "transformer" in capsys.readouterr().err
