"""Tests for the top-level simulator and its metrics."""

import pytest

from repro.core.design_points import (dc_dla, dc_dla_oracle, design_point,
                                      hc_dla, mc_dla_bw)
from repro.core.metrics import LatencyBreakdown
from repro.core.simulator import host_bandwidth_usage, simulate
from repro.dnn.registry import build_network
from repro.training.parallel import ParallelStrategy
from repro.units import GBPS


class TestSimulate:
    def test_accepts_names_and_networks(self):
        config = dc_dla()
        by_name = simulate(config, "AlexNet", 64)
        by_net = simulate(config, build_network("AlexNet"), 64)
        assert by_name.iteration_time \
            == pytest.approx(by_net.iteration_time)

    def test_result_fields(self):
        result = simulate(mc_dla_bw(), "AlexNet", 64)
        assert result.system == "MC-DLA(B)"
        assert result.network == "AlexNet"
        assert result.n_devices == 8
        assert result.strategy is ParallelStrategy.DATA
        assert result.throughput \
            == pytest.approx(64 / result.iteration_time)

    def test_breakdown_components_nonnegative(self):
        result = simulate(dc_dla(), "GoogLeNet", 64)
        b = result.breakdown
        assert b.compute > 0 and b.sync > 0 and b.vmem > 0
        assert b.total == pytest.approx(b.compute + b.sync + b.vmem)

    def test_overlap_bounds(self):
        # Iteration time is at most the sum of components (overlap can
        # only help) and at least the largest single component.
        for name in ("DC-DLA", "MC-DLA(B)", "HC-DLA"):
            result = simulate(design_point(name), "VGG-E", 512)
            b = result.breakdown
            assert result.iteration_time <= b.total + 1e-9
            assert result.iteration_time \
                >= max(b.compute, b.sync, b.vmem) - 1e-9

    def test_oracle_is_fastest_and_clean(self):
        oracle = simulate(dc_dla_oracle(), "VGG-E", 512)
        assert oracle.breakdown.vmem == 0.0
        assert oracle.offload_bytes_per_device == 0
        for name in ("DC-DLA", "HC-DLA", "MC-DLA(S)", "MC-DLA(L)",
                     "MC-DLA(B)"):
            other = simulate(design_point(name), "VGG-E", 512)
            assert other.iteration_time >= oracle.iteration_time

    def test_host_traffic_only_for_host_designs(self):
        dc = simulate(dc_dla(), "AlexNet", 64)
        mc = simulate(mc_dla_bw(), "AlexNet", 64)
        assert dc.host_traffic_bytes_per_device \
            == dc.round_trip_bytes_per_device > 0
        assert mc.host_traffic_bytes_per_device == 0
        assert mc.round_trip_bytes_per_device > 0

    def test_fits_in_memory_flag(self):
        big = simulate(dc_dla(), "VGG-E", 512)
        small = simulate(dc_dla(), "AlexNet", 16)
        assert not big.fits_in_device_memory
        assert small.fits_in_device_memory

    def test_speedup_requires_matching_workloads(self):
        a = simulate(dc_dla(), "AlexNet", 64)
        v = simulate(dc_dla(), "VGG-E", 64)
        with pytest.raises(ValueError):
            a.speedup_over(v)
        with pytest.raises(ValueError):
            a.performance_vs(v)

    def test_batch_scaling_monotone(self):
        times = [simulate(mc_dla_bw(), "AlexNet", b).iteration_time
                 for b in (64, 128, 256, 512)]
        assert times == sorted(times)


class TestHostBandwidth:
    def test_dc_dla_usage(self):
        config = dc_dla()
        result = simulate(config, "VGG-E", 512)
        usage = host_bandwidth_usage(config, result)
        assert usage.avg_bytes_per_sec > 0
        assert usage.max_bytes_per_sec == 4 * 16 * GBPS

    def test_hc_dla_can_near_saturate(self):
        config = hc_dla()
        result = simulate(config, "VGG-E", 512,
                          ParallelStrategy.MODEL)
        usage = host_bandwidth_usage(config, result)
        assert usage.max_fraction == pytest.approx(1.0)
        assert usage.avg_fraction > 0.3

    def test_requires_host_socket(self):
        config = mc_dla_bw()
        result = simulate(config, "AlexNet", 64)
        with pytest.raises(ValueError):
            host_bandwidth_usage(config, result)


class TestLatencyBreakdown:
    def test_normalization(self):
        b = LatencyBreakdown(1.0, 2.0, 3.0)
        n = b.normalized_to(6.0)
        assert n.total == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyBreakdown(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            LatencyBreakdown(1.0, 1.0, 1.0).normalized_to(0.0)
