"""Spatial PE-array compute model with an output-stationary dataflow.

The paper's device-node (Table II) resembles Eyeriss/DaDianNao: a grid
of processing elements, each with a vector of MAC units and a
double-buffered local SRAM, fed by on-package HBM.  Layers are lowered
to GEMMs and timed with a tiling model:

* each PE owns ``ceil(M*N / pe_count)`` output elements (output
  stationary: outputs never move until done);
* producing one output element takes ``ceil(K / macs_per_pe)`` cycles
  (the MAC vector reduces along K);
* operand streaming from HBM is double-buffered, so a GEMM's time is the
  max of its compute time and its memory time (roofline behaviour falls
  out of the tiling, which is the property the evaluation depends on:
  convolutions are compute-bound, RNN/FC GEMMs bandwidth-bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.hbm import MemorySpec
from repro.dnn.shapes import Gemm
from repro.units import FP32_BYTES, KB, US


@dataclass(frozen=True)
class PeArraySpec:
    """The compute fabric half of a device-node (Table II)."""

    pe_count: int = 1024
    macs_per_pe: int = 125
    frequency: float = 1e9
    sram_per_pe: int = 32 * KB
    #: Fixed per-operation issue overhead (kernel launch, FSM setup).
    launch_overhead: float = 3.0 * US

    def __post_init__(self) -> None:
        if self.pe_count <= 0 or self.macs_per_pe <= 0:
            raise ValueError("PE array dimensions must be positive")
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if self.sram_per_pe <= 0:
            raise ValueError("SRAM size must be positive")
        if self.launch_overhead < 0:
            raise ValueError("negative launch overhead")

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.pe_count * self.macs_per_pe

    @property
    def peak_macs_per_sec(self) -> float:
        return self.peak_macs_per_cycle * self.frequency

    # -- GEMM timing -------------------------------------------------------

    def gemm_compute_cycles(self, gemm: Gemm) -> int:
        """Cycles the PE array spends on one GEMM (compute only)."""
        outputs_per_pe = math.ceil(gemm.m * gemm.n / self.pe_count)
        cycles_per_output = math.ceil(gemm.k / self.macs_per_pe)
        return outputs_per_pe * cycles_per_output

    def gemm_traffic_bytes(self, gemm: Gemm) -> int:
        """HBM traffic of one GEMM: stream A and B once, write C once.

        With 32 KB double-buffered SRAM per PE and an output-stationary
        schedule, single-pass operand streaming is achievable for the
        layer shapes of the benchmark suite; im2col duplication is
        removed via the GEMM's reuse factors (the physical feature map
        is read once, not kernel-area times).
        """
        return FP32_BYTES * gemm.traffic_elems

    def gemm_utilization(self, gemm: Gemm) -> float:
        """Fraction of peak MAC throughput the tiling achieves."""
        ideal = gemm.macs / self.peak_macs_per_cycle
        actual = self.gemm_compute_cycles(gemm)
        return ideal / actual

    def gemm_time(self, gemm: Gemm, hbm: MemorySpec) -> float:
        """Wall-clock time of one GEMM: roofline of compute vs HBM."""
        compute = self.gemm_compute_cycles(gemm) / self.frequency
        memory = hbm.stream_time(self.gemm_traffic_bytes(gemm),
                                 self.frequency)
        return self.launch_overhead + max(compute, memory)

    def stream_time(self, nbytes: float, hbm: MemorySpec) -> float:
        """Wall-clock time of an element-wise pass over ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative stream size")
        if nbytes == 0:
            return 0.0
        return self.launch_overhead + hbm.stream_time(nbytes, self.frequency)
