"""Accelerator device-node substrate (paper Table II, Figure 2)."""

from repro.accelerator.device import BASELINE_DEVICE, DeviceSpec
from repro.accelerator.generations import (GENERATIONS, KEPLER, MAXWELL,
                                           PASCAL, TPUV2, VOLTA, generation)
from repro.accelerator.hbm import HBM_900, MemorySpec
from repro.accelerator.pe_array import PeArraySpec

__all__ = [
    "BASELINE_DEVICE", "DeviceSpec", "GENERATIONS", "HBM_900", "KEPLER",
    "MAXWELL", "MemorySpec", "PASCAL", "PeArraySpec", "TPUV2", "VOLTA",
    "generation",
]
