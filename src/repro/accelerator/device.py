"""The device-node: PE array + HBM + high-bandwidth links.

Combines the compute model (:mod:`repro.accelerator.pe_array`) and the
memory model (:mod:`repro.accelerator.hbm`) into the per-layer timing
interface the training-step simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerator.hbm import HBM_900, MemorySpec
from repro.accelerator.pe_array import PeArraySpec
from repro.dnn.layers import Layer
from repro.interconnect.link import NVLINK, LinkSpec


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator device-node (paper Table II, upper half)."""

    name: str = "baseline-device"
    pe_array: PeArraySpec = field(default_factory=PeArraySpec)
    hbm: MemorySpec = HBM_900
    n_links: int = 6
    link: LinkSpec = NVLINK

    def __post_init__(self) -> None:
        if self.n_links <= 0:
            raise ValueError("device needs at least one link")

    @property
    def peak_macs_per_sec(self) -> float:
        return self.pe_array.peak_macs_per_sec

    @property
    def memory_capacity(self) -> int:
        return self.hbm.capacity

    @property
    def aggregate_link_bw(self) -> float:
        """Total uni-directional link bandwidth (300 GB/s baseline)."""
        return self.n_links * self.link.uni_bw

    # -- Layer timing -------------------------------------------------------

    def layer_fwd_time(self, layer: Layer, batch: int) -> float:
        """Forward-propagation time of one layer at a batch size."""
        return self.op_time(layer.fwd_gemms(batch),
                            layer.fwd_stream_bytes(batch))

    def layer_bwd_time(self, layer: Layer, batch: int) -> float:
        """Backward time: the dX and dW GEMMs, or the streaming pass."""
        return self.op_time(layer.bwd_gemms(batch),
                            layer.fwd_stream_bytes(batch))

    def layer_bwd_split_time(self, layer: Layer,
                             batch: int) -> tuple[float, float]:
        """(activation-grad, weight-grad) split of the backward pass.

        ``bwd_gemms`` interleaves (dX, dW) pairs per forward GEMM:
        even indices propagate the activation gradient (the B op on a
        zero-bubble schedule's critical path), odd indices produce the
        weight gradient (the deferrable W op).  Streaming, GEMM-less
        backward passes have no weight-grad component to defer.
        """
        gemms = layer.bwd_gemms(batch)
        if gemms:
            return (self.op_time(gemms[0::2], 0),
                    self.op_time(gemms[1::2], 0))
        return self.op_time((), layer.fwd_stream_bytes(batch)), 0.0

    def op_time(self, gemms, stream_bytes: int) -> float:
        """Time one kernel: a GEMM sequence, or a streaming pass."""
        if gemms:
            return sum(self.pe_array.gemm_time(g, self.hbm) for g in gemms)
        if stream_bytes:
            return self.pe_array.stream_time(stream_bytes, self.hbm)
        return 0.0


#: The paper's baseline device-node (Table II): 1024 PEs x 125 MACs at
#: 1 GHz (128 T-MAC/s, Volta-class), 900 GB/s HBM, 6 x 25 GB/s links.
BASELINE_DEVICE = DeviceSpec()
