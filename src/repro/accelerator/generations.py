"""Accelerator generations for the paper's Figure 2 motivation study.

Five successive single-device configurations (Kepler, Maxwell, Pascal,
Volta, TPUv2) whose effective training throughput grew by 20-34x over
five years while the PCIe host interface stayed at gen3 -- the widening
gap that motivates the whole paper.  Peak throughputs follow each
generation's best training-relevant number (fp32 for Kepler/Maxwell,
fp16 for Pascal, tensor/matrix units for Volta and TPUv2); the MAC
convention matches Table II (Volta-class = 1024 x 125 MACs @ 1 GHz).
"""

from __future__ import annotations

from repro.accelerator.device import DeviceSpec
from repro.accelerator.hbm import MemorySpec
from repro.accelerator.pe_array import PeArraySpec
from repro.units import GB, GBPS


def _gen(name: str, pe_count: int, macs_per_pe: int, ghz: float,
         bw_gbps: float, capacity_gb: int) -> DeviceSpec:
    return DeviceSpec(
        name=name,
        pe_array=PeArraySpec(pe_count=pe_count, macs_per_pe=macs_per_pe,
                             frequency=ghz * 1e9),
        hbm=MemorySpec(f"{name}-mem", bandwidth=bw_gbps * GBPS,
                       access_latency_cycles=100,
                       capacity=capacity_gb * GB),
    )


#: K40-class: 4.3 T-MAC/s, 288 GB/s GDDR5, 12 GB.
KEPLER = _gen("Kepler", 1024, 6, 0.70, 288, 12)

#: M40-class: 6.8 T-MAC/s, 288 GB/s GDDR5, 24 GB.
MAXWELL = _gen("Maxwell", 1024, 6, 1.114, 288, 24)

#: P100-class (fp16): 21.3 T-MAC/s, 732 GB/s HBM2, 16 GB.
PASCAL = _gen("Pascal", 1024, 16, 1.30, 732, 16)

#: V100-class (tensor cores) == the Table II baseline device.
VOLTA = _gen("Volta", 1024, 125, 1.00, 900, 16)

#: TPUv2 board: 180 T-MAC/s matrix units, 2.4 TB/s aggregate HBM, 64 GB.
TPUV2 = _gen("TPUv2", 1024, 150, 1.17, 2400, 64)

#: Figure 2's x-axis order.
GENERATIONS: tuple[DeviceSpec, ...] = (KEPLER, MAXWELL, PASCAL, VOLTA,
                                       TPUV2)


def generation(name: str) -> DeviceSpec:
    for dev in GENERATIONS:
        if dev.name.lower() == name.lower():
            return dev
    raise KeyError(f"unknown generation {name!r}")
