"""On-package device memory (HBM) model.

Following the paper's methodology (Section IV), device memory is modeled
with fixed bandwidth and access latency rather than a cycle-level DRAM
simulator: DNN dataflows are deterministic and bulk-granular, so
system-level results are insensitive to DRAM microarchitecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB, GBPS


@dataclass(frozen=True)
class MemorySpec:
    """Fixed-bandwidth, fixed-latency memory (device HBM or node DDR4)."""

    name: str
    bandwidth: float            # bytes/sec
    access_latency_cycles: int  # at the consumer's clock
    capacity: int               # bytes

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.access_latency_cycles < 0:
            raise ValueError(f"{self.name}: negative latency")
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")

    def access_latency(self, frequency: float) -> float:
        """Access latency in seconds at a given core clock."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        return self.access_latency_cycles / frequency

    def stream_time(self, nbytes: float, frequency: float) -> float:
        """One bulk read/write stream of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0.0
        return self.access_latency(frequency) + nbytes / self.bandwidth


#: Table II device-node memory: 900 GB/s HBM2, 100-cycle latency, 16 GB
#: (V100-class capacity).
HBM_900 = MemorySpec("hbm2-900", bandwidth=900 * GBPS,
                     access_latency_cycles=100, capacity=16 * GB)
