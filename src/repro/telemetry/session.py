"""CLI glue for ``--telemetry``: one context manager, five CLIs.

:class:`TelemetrySession` is what the campaign/cluster/serve/prefetch/
bench CLIs wrap their run in.  When disabled it does nothing at all.
When enabled it:

* clears the process-wide pricing memos first (so the metrics of a
  run are a deterministic function of its configuration, not of what
  the process happened to simulate earlier), then turns on the
  metrics registry and the span tracer;
* collects the events the CLI :meth:`emit`\\ s (one dict per cell);
* on clean exit writes three artifacts next to the run's output
  (``<base>.telemetry.jsonl``, ``<base>.manifest.json``,
  ``<base>.prom``), prints the end-of-run summary table to stderr,
  and turns telemetry back off.

The JSONL stream is deterministic: events are written in input order
and carry no wall-clock; wall-clock lives only in the manifest
(``wall_seconds``/``phases``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.telemetry.manifest import build_manifest, write_manifest
from repro.telemetry.registry import to_prometheus

__all__ = ["TelemetrySession", "add_telemetry_argument",
           "artifact_paths", "eta_seconds", "summary_text"]


def eta_seconds(total_sim_seconds: float, simulated: int,
                remaining: int) -> float | None:
    """Mean-cell ETA of a campaign's live progress line.

    Returns ``None`` when nothing has simulated yet (a fully-cached
    run has zero non-cached cells -- the mean would divide by zero) or
    when nothing remains.
    """
    if simulated <= 0 or remaining <= 0:
        return None
    return total_sim_seconds / simulated * remaining


def add_telemetry_argument(parser) -> None:
    parser.add_argument(
        "--telemetry", action="store_true",
        help="collect metrics + host spans; write JSONL/Prometheus/"
             "manifest artifacts next to the output and print a "
             "summary table")


def artifact_paths(tool: str, output: str | None) -> dict[str, Path]:
    """Artifact paths derived from ``--output`` (or the tool name,
    in the working directory, when there is no output file)."""
    base = Path(output).with_suffix("") if output else Path(tool)
    return {
        "jsonl": base.with_name(base.name + ".telemetry.jsonl"),
        "manifest": base.with_name(base.name + ".manifest.json"),
        "prom": base.with_name(base.name + ".prom"),
    }


def _hit_rate_rows(snapshot: dict[str, Any]) -> list[list[object]]:
    """Pair ``*_hits_total`` counters with their ``*_misses_total``
    twins (same labels) into hit-rate table rows."""
    values: dict[tuple[str, tuple], float] = {}
    for entry in snapshot.get("counters", ()):
        key = (entry["name"], tuple(sorted(entry["labels"].items())))
        values[key] = entry["value"]
    rows = []
    for (name, labels), hits in sorted(values.items()):
        if not name.endswith("_hits_total"):
            continue
        misses = values.get((name[:-len("_hits_total")]
                             + "_misses_total", labels), 0)
        total = hits + misses
        if total == 0:
            continue
        stem = name.removeprefix("repro_").removesuffix("_hits_total")
        label_text = ",".join(f"{k}={v}" for k, v in labels)
        rows.append([f"{stem}[{label_text}]" if label_text else stem,
                     int(hits), int(misses),
                     f"{100.0 * hits / total:.1f}%"])
    return rows


def _counter_rows(snapshot: dict[str, Any]) -> list[list[object]]:
    rows = []
    for entry in snapshot.get("counters", ()):
        name = entry["name"]
        if name.endswith(("_hits_total", "_misses_total")):
            continue
        label_text = ",".join(f"{k}={v}"
                              for k, v in sorted(entry["labels"].items()))
        shown = name.removeprefix("repro_").removesuffix("_total")
        rows.append([f"{shown}[{label_text}]" if label_text else shown,
                     entry["value"]])
    return rows


def summary_text(snapshot: dict[str, Any],
                 phases: dict[str, dict[str, float]]) -> str:
    """The end-of-run summary table (phases, hit rates, counters)."""
    from repro.experiments.report import format_table
    sections = []
    if phases:
        sections.append(format_table(
            ["phase", "count", "seconds"],
            [[name, int(entry["count"]), entry["seconds"]]
             for name, entry in phases.items()],
            title="telemetry: host phases"))
    hit_rows = _hit_rate_rows(snapshot)
    if hit_rows:
        sections.append(format_table(
            ["cache/memo", "hits", "misses", "hit rate"], hit_rows,
            title="telemetry: hit rates"))
    counter_rows = _counter_rows(snapshot)
    if counter_rows:
        sections.append(format_table(
            ["counter", "value"], counter_rows,
            title="telemetry: counters"))
    return "\n\n".join(sections)


class TelemetrySession:
    """See the module docstring.  Inert unless ``enabled``."""

    def __init__(self, *, tool: str, argv, enabled: bool,
                 output: str | None = None, config: Any = None,
                 seed: int | None = None) -> None:
        self.tool = tool
        self.argv = list(argv)
        self.enabled = enabled
        self.output = output
        self.config = config
        self.seed = seed
        self.events: list[dict] = []
        self.cells: dict[str, int] | None = None
        self.snapshot: dict[str, Any] | None = None
        self.phases: dict[str, dict[str, float]] = {}

    def emit(self, event: dict) -> None:
        """Queue one JSONL event (written, in order, at exit)."""
        if self.enabled:
            self.events.append(event)

    def merge_worker_snapshots(self, snapshots) -> None:
        """Fold pool-worker metric snapshots into the live registry."""
        registry = telemetry.metrics_registry()
        if registry is None:
            return
        for snapshot in snapshots:
            if snapshot:
                registry.merge_snapshot(snapshot)

    def __enter__(self) -> TelemetrySession:
        if self.enabled:
            from repro.core import pricing
            pricing.clear_caches()
            telemetry.enable(fresh=True)
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Always returns False: the session must never swallow an
        # in-run exception.  The three artifacts still flush on the
        # error path (truncated telemetry beats none when a campaign
        # dies mid-run), but a failure *while flushing* must not mask
        # the original exception.
        if not self.enabled:
            return False
        try:
            self._finalize(
                error=None if exc_type is None else exc_type.__name__)
        except Exception:
            if exc_type is None:
                raise
        finally:
            telemetry.disable()
        return False

    def _finalize(self, error: str | None = None) -> None:
        wall = time.perf_counter() - self._t0
        registry = telemetry.metrics_registry()
        recorder = telemetry.span_recorder()
        self.snapshot = registry.snapshot() if registry else None
        self.phases = telemetry.span_totals(
            recorder.spans if recorder else ())
        paths = artifact_paths(self.tool, self.output)

        lines = [{"event": "begin", "tool": self.tool,
                  "argv": self.argv}]
        lines.extend(self.events)
        lines.append({"event": "metrics", "snapshot": self.snapshot})
        end: dict[str, Any] = {"event": "end",
                               "n_events": len(self.events)}
        if error is not None:
            end["error"] = error
        if self.cells is not None:
            end["cells"] = dict(self.cells)
        lines.append(end)
        paths["jsonl"].write_text(
            "".join(json.dumps(line, sort_keys=True) + "\n"
                    for line in lines))

        paths["prom"].write_text(to_prometheus(self.snapshot or {}))

        write_manifest(paths["manifest"], build_manifest(
            tool=self.tool, argv=self.argv, config=self.config,
            seed=self.seed, phases=self.phases, wall_seconds=wall,
            cells=self.cells))

        summary = summary_text(self.snapshot or {}, self.phases)
        if summary:
            print(summary, file=sys.stderr)
        print(f"telemetry: wrote {paths['jsonl']}, "
              f"{paths['manifest']}, {paths['prom']}",
              file=sys.stderr)
