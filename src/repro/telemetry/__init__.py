"""repro.telemetry: metrics, span tracing, and run manifests.

The observability layer for the whole package.  Three pieces:

* :mod:`repro.telemetry.registry` -- a process-wide deterministic
  metrics registry (labeled counters/gauges/histograms, exact JSON
  round-trip snapshots, Prometheus text export) with true no-op
  handles when disabled;
* :mod:`repro.telemetry.spans` -- a host-side wall-clock span tracer
  whose spans nest and export standalone or merged into the
  Chrome/Perfetto trace from :mod:`repro.core.trace`;
* :mod:`repro.telemetry.manifest` -- the run-provenance manifest
  (config/code fingerprints, seed, interpreter versions, per-phase
  wall-clock).

Everything is **off by default and inert when off**: probes compile
to calls on shared no-op singletons, simulated results are
byte-identical either way, and the CLI layer
(:mod:`repro.telemetry.session`) only activates under the
``--telemetry`` flag.

    from repro import telemetry

    telemetry.enable()
    ... run simulations ...
    snapshot = telemetry.metrics_registry().snapshot()
    telemetry.disable()
"""

from repro.telemetry.registry import (NOOP, Counter, Gauge, Histogram,
                                      MetricsRegistry, counter,
                                      disable_metrics, enable_metrics,
                                      gauge, histogram,
                                      metrics_registry, on_activation,
                                      to_prometheus)
from repro.telemetry.spans import (NOOP_SPAN, Span, SpanRecorder,
                                   chrome_span_events, disable_tracing,
                                   enable_tracing, span, span_recorder,
                                   span_totals)

__all__ = [
    "NOOP", "NOOP_SPAN", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "Span", "SpanRecorder", "chrome_span_events",
    "counter", "disable", "disable_metrics", "disable_tracing",
    "enable", "enable_metrics", "enable_tracing", "enabled", "gauge",
    "histogram", "metrics_registry", "on_activation", "span",
    "span_recorder", "span_totals", "to_prometheus",
]


def enable(fresh: bool = True) -> MetricsRegistry:
    """Turn on both the metrics registry and the span tracer."""
    registry = enable_metrics(fresh)
    enable_tracing(fresh)
    return registry


def disable() -> None:
    """Turn off metrics and tracing; probes rebind to no-ops."""
    disable_metrics()
    disable_tracing()


def enabled() -> bool:
    """True when the metrics registry is live."""
    return metrics_registry() is not None
