"""Process-wide deterministic metrics registry.

The registry is *off* by default and costs nothing when off: every
handle constructor (:func:`counter`, :func:`gauge`,
:func:`histogram`) returns the shared :data:`NOOP` singleton whose
methods are empty -- no allocation, no branching in the instrumented
code.  Hot modules keep module-global handles and register an
:func:`on_activation` hook; enabling/disabling the registry rebinds
those globals between real series and :data:`NOOP` in one pass, so
probe sites never test a flag.

Everything observable is deterministic: series are keyed on
``(kind, name, sorted labels)``, :meth:`MetricsRegistry.snapshot`
emits them sorted by ``(name, labels)``, and snapshots survive an
exact JSON round-trip (``from_snapshot(snapshot()).snapshot()`` is
``==``).  Snapshots from pool workers merge with
:meth:`MetricsRegistry.merge_snapshot` (counters and histogram bins
add, gauges keep the max), and :func:`to_prometheus` renders any
snapshot in the Prometheus text exposition format.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from collections.abc import Callable, Sequence
from typing import Any

__all__ = [
    "NOOP", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "counter", "gauge", "histogram", "enable_metrics",
    "disable_metrics", "metrics_registry", "on_activation",
    "to_prometheus",
]

Labels = tuple[tuple[str, str], ...]


class _Noop:
    """The do-nothing handle every constructor returns when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The shared disabled handle.  Identity-comparable: probe code and
#: tests may assert ``handle is NOOP``.
NOOP = _Noop()


class Counter:
    """A monotonically increasing labeled counter."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A labeled point-in-time value."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


#: Default histogram bucket upper bounds (counts of things, not
#: seconds): roughly one bucket per half decade.
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500,
                   1000, 2000, 5000, 10000)


class Histogram:
    """A labeled histogram with fixed, cumulative-style buckets.

    ``buckets`` are inclusive upper bounds; observations above the
    last bound land in the implicit ``+Inf`` overflow bucket (the
    final slot of ``counts``).
    """

    __slots__ = ("name", "help", "labels", "buckets", "counts",
                 "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, help: str, labels: Labels,
                 buckets: Sequence[float]) -> None:
        bounds = tuple(buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be sorted and "
                             "unique")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum: float = 0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


def _label_key(labels: dict[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Holds every live series; see the module docstring."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, str, Labels],
                           Counter | Gauge | Histogram] = {}

    def _get(self, factory, kind: str, name: str, help: str,
             labels: dict[str, Any], *args):
        key = (kind, name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            for other_kind, other_name, _ in self._series:
                if other_name == name and other_kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{other_kind}, not a {kind}")
            series = factory(name, help, key[2], *args)
            self._series[key] = series
        return series

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, "counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, "gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, "histogram", name, help, labels,
                         buckets)

    def snapshot(self) -> dict[str, Any]:
        """A sorted, JSON-round-trippable image of every series."""
        out: dict[str, list] = {"counters": [], "gauges": [],
                                "histograms": []}
        for (kind, name, labels), series in sorted(
                self._series.items()):
            entry: dict[str, Any] = {
                "name": name,
                "help": series.help,
                "labels": {k: v for k, v in labels},
            }
            if kind == "histogram":
                entry["buckets"] = list(series.buckets)
                entry["counts"] = list(series.counts)
                entry["sum"] = series.sum
                entry["count"] = series.count
            else:
                entry["value"] = series.value
            out[kind + "s"].append(entry)
        return out

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> MetricsRegistry:
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold another snapshot in: counters and histogram bins add,
        gauges keep the maximum seen."""
        for entry in snapshot.get("counters", ()):
            series = self.counter(entry["name"], entry["help"],
                                  **entry["labels"])
            series.value += entry["value"]
        for entry in snapshot.get("gauges", ()):
            series = self.gauge(entry["name"], entry["help"],
                                **entry["labels"])
            series.value = max(series.value, entry["value"])
        for entry in snapshot.get("histograms", ()):
            series = self.histogram(entry["name"], entry["help"],
                                    buckets=entry["buckets"],
                                    **entry["labels"])
            if tuple(entry["buckets"]) != series.buckets:
                raise ValueError(
                    f"histogram {entry['name']!r} bucket mismatch")
            for i, count in enumerate(entry["counts"]):
                series.counts[i] += count
            series.sum += entry["sum"]
            series.count += entry["count"]


# -- module-level activation state ----------------------------------

_REGISTRY: MetricsRegistry | None = None
_HOOKS: list[Callable[[MetricsRegistry | None], None]] = []


def metrics_registry() -> MetricsRegistry | None:
    """The live registry, or ``None`` when metrics are disabled."""
    return _REGISTRY


def on_activation(hook: Callable[[MetricsRegistry | None], None]) -> None:
    """Register ``hook(registry_or_None)``; called on every
    enable/disable transition and immediately at registration so a
    probe module's globals are always in the current state."""
    _HOOKS.append(hook)
    hook(_REGISTRY)


def _notify() -> None:
    for hook in _HOOKS:
        hook(_REGISTRY)


def enable_metrics(fresh: bool = True) -> MetricsRegistry:
    """Turn metrics on (with a new, empty registry unless ``fresh``
    is false and one is already live) and rebind every probe."""
    global _REGISTRY
    if _REGISTRY is None or fresh:
        _REGISTRY = MetricsRegistry()
    _notify()
    return _REGISTRY


def disable_metrics() -> None:
    """Turn metrics off and rebind every probe to :data:`NOOP`."""
    global _REGISTRY
    _REGISTRY = None
    _notify()


def counter(name: str, help: str = "", **labels):
    """A counter handle, or :data:`NOOP` when disabled."""
    if _REGISTRY is None:
        return NOOP
    return _REGISTRY.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels):
    """A gauge handle, or :data:`NOOP` when disabled."""
    if _REGISTRY is None:
        return NOOP
    return _REGISTRY.gauge(name, help, **labels)


def histogram(name: str, help: str = "",
              buckets: Sequence[float] = DEFAULT_BUCKETS, **labels):
    """A histogram handle, or :data:`NOOP` when disabled."""
    if _REGISTRY is None:
        return NOOP
    return _REGISTRY.histogram(name, help, buckets=buckets, **labels)


# -- Prometheus text exposition -------------------------------------

def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _number(value: float) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"non-numeric sample value: {value!r}")
    return repr(value)


def to_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` image as Prometheus
    text exposition format (one ``# HELP``/``# TYPE`` pair per metric
    name, histogram series as ``_bucket``/``_sum``/``_count``)."""
    lines: list[str] = []
    seen: set[str] = set()

    def header(name: str, help: str, kind: str) -> None:
        if name in seen:
            return
        seen.add(name)
        if help:
            lines.append(f"# HELP {name} {_escape(help)}")
        lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        header(entry["name"], entry["help"], "counter")
        lines.append(f"{entry['name']}{_labels_text(entry['labels'])} "
                     f"{_number(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        header(entry["name"], entry["help"], "gauge")
        lines.append(f"{entry['name']}{_labels_text(entry['labels'])} "
                     f"{_number(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        header(name, entry["help"], "histogram")
        labels = entry["labels"]
        cumulative = 0
        bounds = [*entry["buckets"], "+Inf"]
        for bound, count in zip(bounds, entry["counts"]):
            cumulative += count
            le = bound if isinstance(bound, str) else _number(bound)
            extra = 'le="%s"' % le
            lines.append(
                f"{name}_bucket{_labels_text(labels, extra)} "
                f"{cumulative}")
        lines.append(f"{name}_sum{_labels_text(labels)} "
                     f"{_number(entry['sum'])}")
        lines.append(f"{name}_count{_labels_text(labels)} "
                     f"{entry['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def snapshot_json(snapshot: dict[str, Any]) -> str:
    """The canonical JSON text of a snapshot (stable key order)."""
    return json.dumps(snapshot, sort_keys=True)
