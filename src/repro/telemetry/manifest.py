"""Run manifests: who ran what, with which code, on which interpreter.

A manifest is the provenance record written next to campaign output:
a canonicalized fingerprint of the resolved configuration (so two
runs are comparable iff their fingerprints match), the code
fingerprint the campaign cache keys on, seed, interpreter/numpy
versions, and the per-phase host wall-clock aggregated from spans.

Wall-clock fields (``wall_seconds``, ``phases``) are the only
non-deterministic content; everything else is a pure function of the
configuration and environment.  :func:`manifest_fingerprint_fields`
lists the deterministic subset for differential tests.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from pathlib import Path
from typing import Any

__all__ = [
    "build_manifest", "config_fingerprint", "write_manifest",
    "WALL_CLOCK_FIELDS",
]

#: Manifest keys that carry host wall-clock (excluded when diffing
#: two runs of the same configuration for determinism).
WALL_CLOCK_FIELDS = ("wall_seconds", "phases")


def config_fingerprint(config: Any) -> str:
    """SHA-256 over the canonical JSON image of ``config``.

    ``config`` may be anything :func:`repro.campaign.points.canonicalize`
    handles -- argparse namespaces should be passed as ``vars(args)``.
    """
    from repro.campaign.points import canonicalize
    text = json.dumps(canonicalize(config), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def build_manifest(*, tool: str, argv, config: Any,
                   seed: int | None = None,
                   phases: dict[str, dict[str, float]] | None = None,
                   wall_seconds: float | None = None,
                   cells: dict[str, int] | None = None) -> dict:
    """Assemble the manifest dict (see the module docstring)."""
    from repro.campaign.cache import code_fingerprint
    numpy_version: str | None
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    manifest: dict[str, Any] = {
        "tool": tool,
        "argv": list(argv),
        "config_fingerprint": config_fingerprint(config),
        "code_fingerprint": code_fingerprint(),
        "seed": seed,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "wall_seconds": wall_seconds,
        "phases": phases or {},
    }
    if cells is not None:
        manifest["cells"] = dict(cells)
    return manifest


def write_manifest(path: Path, manifest: dict) -> None:
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                    + "\n")
