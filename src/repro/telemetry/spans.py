"""Host-side span tracer: nestable wall-clock spans.

Spans measure the *host* -- how long ``simulate()`` spent planning vs
pricing vs emitting vs scheduling, how long each campaign cell took,
where the cluster event loop and the serving batcher burn wall-clock
-- as opposed to the simulated device timeline the rest of the
package models.  Like the metrics registry, tracing is off by default
and free when off: :func:`span` returns the shared no-op context
manager without allocating.

Recorded spans carry ``(name, start, end, depth, args)`` with times
in seconds relative to the recorder's origin.  They export standalone
as Chrome trace events (:func:`chrome_span_events`, ``pid=0`` so the
host rows sort above the simulated timeline's ``pid=1``) or merge
into ``core.trace.to_chrome_trace(..., host_spans=...)``, and
:func:`span_totals` aggregates per-name wall-clock for the run
manifest and the CLI summary table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "NOOP_SPAN", "Span", "SpanRecorder", "span", "enable_tracing",
    "disable_tracing", "span_recorder", "span_totals",
    "chrome_span_events",
]

#: Default Chrome-trace process id for host spans; the simulated
#: timeline exports at ``pid=1``, so the host rows sort first.
HOST_PID = 0


@dataclass(frozen=True)
class Span:
    """One closed span: times are seconds since the recorder origin."""

    name: str
    start: float
    end: float
    depth: int
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NoopSpan:
    """The do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    __slots__ = ("_recorder", "_name", "_args", "_start", "_depth")

    def __init__(self, recorder: SpanRecorder, name: str,
                 args: dict[str, Any]) -> None:
        self._recorder = recorder
        self._name = name
        self._args = args

    def __enter__(self) -> _LiveSpan:
        stack = self._recorder._stack
        self._depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter() - self._recorder.origin
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter() - self._recorder.origin
        self._recorder._stack.pop()
        self._recorder.spans.append(Span(
            self._name, self._start, end, self._depth, self._args))
        return False


class SpanRecorder:
    """Collects spans; one per process, created by
    :func:`enable_tracing`."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.spans: list[Span] = []
        self._stack: list[_LiveSpan] = []

    def span(self, name: str, **args) -> _LiveSpan:
        return _LiveSpan(self, name, args)


_RECORDER: SpanRecorder | None = None


def span_recorder() -> SpanRecorder | None:
    """The live recorder, or ``None`` when tracing is disabled."""
    return _RECORDER


def enable_tracing(fresh: bool = True) -> SpanRecorder:
    global _RECORDER
    if _RECORDER is None or fresh:
        _RECORDER = SpanRecorder()
    return _RECORDER


def disable_tracing() -> None:
    global _RECORDER
    _RECORDER = None


def span(name: str, **args):
    """A context manager timing ``name``; :data:`NOOP_SPAN` when
    tracing is disabled."""
    recorder = _RECORDER
    if recorder is None:
        return NOOP_SPAN
    return recorder.span(name, **args)


def span_totals(spans) -> dict[str, dict[str, float]]:
    """Per-name aggregates: ``{name: {count, seconds}}``, sorted by
    name.  Nested spans each contribute their own wall-clock (a
    parent's total includes its children's)."""
    totals: dict[str, dict[str, float]] = {}
    for item in spans:
        entry = totals.setdefault(item.name,
                                  {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += item.duration
    return dict(sorted(totals.items()))


def chrome_span_events(spans, pid: int = HOST_PID) -> list[dict]:
    """Chrome trace_event dicts for host spans: one ``host`` thread
    row of ``ph: "X"`` complete events (nesting is implied by
    ts/dur containment on a single tid), plus process/thread
    metadata naming the row."""
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "host"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "host wall-clock"}},
    ]
    for item in sorted(spans, key=lambda s: (s.start, s.depth)):
        events.append({
            "name": item.name,
            "cat": "host",
            "ph": "X",
            "ts": item.start * 1e6,
            "dur": item.duration * 1e6,
            "pid": pid,
            "tid": 0,
            "args": {k: str(v) for k, v in item.args.items()},
        })
    return events
