"""repro: a memory-centric HPC system simulator for deep learning.

Reproduction of Kwon & Rhu, "Beyond the Memory Wall: A Case for
Memory-centric HPC System for Deep Learning" (MICRO-51, 2018).

Public API quickstart::

    from repro import simulate, design_point, ParallelStrategy

    dc = design_point("DC-DLA")
    mc = design_point("MC-DLA(B)")
    base = simulate(dc, "VGG-E", batch=512, strategy=ParallelStrategy.DATA)
    ours = simulate(mc, "VGG-E", batch=512, strategy=ParallelStrategy.DATA)
    print(f"speedup: {ours.speedup_over(base):.2f}x")
"""

from repro.core import (DESIGN_ORDER, LatencyBreakdown, PipelineStats,
                        SimulationResult, SystemConfig,
                        all_design_points, design_point,
                        host_bandwidth_usage, simulate)
from repro.dnn import (BENCHMARK_NAMES, WORKLOAD_NAMES, Network,
                       build_network)
from repro.training import ParallelStrategy
from repro.units import harmonic_mean

__version__ = "1.1.0"

__all__ = [
    "BENCHMARK_NAMES", "DESIGN_ORDER", "LatencyBreakdown", "Network",
    "ParallelStrategy", "PipelineStats", "SimulationResult",
    "SystemConfig", "WORKLOAD_NAMES", "all_design_points",
    "build_network", "design_point", "harmonic_mean",
    "host_bandwidth_usage", "simulate", "__version__",
]
