"""Scale-out device-side interconnect plane (paper Section VI, Fig. 15).

NVSwitch-class, NVLINK-compatible switches let system vendors scale the
device-side interconnect beyond one chassis: every device-/memory-node
connects N links into a switching plane that can be cast into *any*
logical topology -- in particular the ring-based MC-DLA interconnect,
now spanning hundreds of nodes across system-node boundaries.

This module models that plane: a radix-constrained switch fabric, the
logical MC-DLA rings laid over it, and the resulting collective and
virtualization channel parameters for node counts far beyond 8+8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.collectives.multi_ring import RingChannel
from repro.interconnect.link import NVLINK, LinkSpec
from repro.units import US


@dataclass(frozen=True)
class SwitchSpec:
    """One NVSwitch-class crossbar."""

    name: str = "nvswitch"
    radix: int = 18                 # NVSwitch: 18 NVLINK ports
    port_bw: float = NVLINK.uni_bw
    hop_latency: float = 0.3 * US   # added per switch traversal

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError("switch radix must be >= 2")
        if self.port_bw <= 0:
            raise ValueError("port bandwidth must be positive")
        if self.hop_latency < 0:
            raise ValueError("negative hop latency")


@dataclass(frozen=True)
class ScaleOutPlane:
    """A switched device-side plane hosting devices and memory-nodes.

    ``links_per_node`` of each node's N high-bandwidth links enter the
    plane (Figure 15 draws N=3); the rest stay chassis-local.  The plane
    is non-blocking as long as enough switches supply ports.
    """

    n_devices: int
    n_memory_nodes: int
    switch: SwitchSpec = SwitchSpec()
    links_per_node: int = 3
    link: LinkSpec = NVLINK

    def __post_init__(self) -> None:
        if self.n_devices < 2:
            raise ValueError("a plane needs at least 2 devices")
        if self.n_memory_nodes < 0:
            raise ValueError("negative memory-node count")
        if self.links_per_node < 1:
            raise ValueError("need at least one link into the plane")

    @property
    def total_nodes(self) -> int:
        return self.n_devices + self.n_memory_nodes

    @property
    def total_plane_ports(self) -> int:
        return self.total_nodes * self.links_per_node

    @property
    def switches_needed(self) -> int:
        """Single-stage count; each endpoint link occupies one port."""
        return math.ceil(self.total_plane_ports / self.switch.radix)

    def ring_channels(self) -> list[RingChannel]:
        """The MC-DLA rings cast over the plane.

        Each of the ``links_per_node`` links supports one duplex logical
        ring visiting all nodes.  Switch traversal latency is exposed via
        :meth:`collective_spec` so callers price it per hop.
        """
        return [RingChannel(self.total_nodes, self.link.bidir_bw)
                for _ in range(self.links_per_node)]

    def collective_spec(self):
        """A :class:`CollectiveSpec` whose hop latency includes one
        switch traversal per ring step."""
        from repro.collectives.ring_algorithm import (DEFAULT_SPEC,
                                                      CollectiveSpec)
        return CollectiveSpec(
            chunk_bytes=DEFAULT_SPEC.chunk_bytes,
            hop_latency=self.link.latency + self.switch.hop_latency,
            chunk_overhead=DEFAULT_SPEC.chunk_overhead)

    def vmem_bandwidth_per_device(self) -> float:
        """Backing-store bandwidth per device through the plane.

        With the switch in the path, a device is no longer limited to
        its two physical neighbours: all plane links can read memory-
        nodes concurrently, capped by the memory-node-side ports.
        """
        if self.n_memory_nodes == 0:
            return 0.0
        device_side = self.links_per_node * self.link.uni_bw
        node_side = (self.n_memory_nodes * self.links_per_node
                     * self.link.uni_bw) / self.n_devices
        return min(device_side, node_side)

    def pooled_capacity(self, node_capacity: int) -> int:
        """Total memory pool exposed to the plane's devices."""
        if node_capacity <= 0:
            raise ValueError("node capacity must be positive")
        return self.n_memory_nodes * node_capacity


def datacenter_plane(system_nodes: int, devices_per_node: int = 8,
                     memory_per_node: int = 8,
                     links_per_node: int = 3) -> ScaleOutPlane:
    """Figure 15's datacenter-level plane: S chassis, 8+8 nodes each."""
    if system_nodes < 1:
        raise ValueError("need at least one system node")
    return ScaleOutPlane(
        n_devices=system_nodes * devices_per_node,
        n_memory_nodes=system_nodes * memory_per_node,
        links_per_node=links_per_node)
