"""Device-side interconnect substrate: links, topologies, rings."""

from repro.interconnect.builders import (NO_VMEM, SystemTopology,
                                         VmemChannel, VmemTarget,
                                         build_dc_dla,
                                         build_fig7a_derivative,
                                         build_hc_dla, build_mc_dla_ring,
                                         build_mc_dla_star)
from repro.interconnect.link import (NVLINK, NVLINK2, PCIE_GEN3, PCIE_GEN4,
                                     LinkSpec)
from repro.interconnect.ring import Ring, RingSet
from repro.interconnect.topology import (NodeId, NodeKind, Topology, device,
                                         host, memory, switch)

__all__ = [
    "NO_VMEM", "NVLINK", "NVLINK2", "PCIE_GEN3", "PCIE_GEN4", "LinkSpec",
    "NodeId", "NodeKind", "Ring", "RingSet", "SystemTopology", "Topology",
    "VmemChannel", "VmemTarget", "build_dc_dla", "build_fig7a_derivative",
    "build_hc_dla", "build_mc_dla_ring", "build_mc_dla_star", "device",
    "host", "memory", "switch",
]
