"""Physical link models for the device-side interconnect and PCIe.

The paper's running configuration (Table II) gives every node N=6
high-bandwidth links, each providing B=25 GB/s of uni-directional
bandwidth (50 GB/s bi-directional), NVLINK-style.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GBPS, US


@dataclass(frozen=True)
class LinkSpec:
    """One point-to-point signaling link.

    ``uni_bw`` is the bandwidth available in one direction; a
    bi-directional transfer can use ``2 * uni_bw`` in aggregate.
    """

    name: str
    uni_bw: float          # bytes/sec per direction
    latency: float         # per-hop propagation + protocol latency (sec)

    def __post_init__(self) -> None:
        if self.uni_bw <= 0:
            raise ValueError(f"link {self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"link {self.name}: negative latency")

    @property
    def bidir_bw(self) -> float:
        return 2.0 * self.uni_bw

    def transfer_time(self, nbytes: float) -> float:
        """Latency of a one-way bulk transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.latency + nbytes / self.uni_bw


#: NVLINK-class link of the paper's baseline (Table II): B = 25 GB/s per
#: direction, with a ~0.7 us per-hop latency typical of device-side
#: signaling.
NVLINK = LinkSpec("nvlink", uni_bw=25 * GBPS, latency=0.7 * US)

#: PCIe gen3 x16: ~16 GB/s per direction.
PCIE_GEN3 = LinkSpec("pcie-gen3-x16", uni_bw=16 * GBPS, latency=1.5 * US)

#: PCIe gen4 x16 doubles gen3's link bandwidth (Section V-B sensitivity).
PCIE_GEN4 = LinkSpec("pcie-gen4-x16", uni_bw=32 * GBPS, latency=1.5 * US)

#: DGX-2-class link (Section V-B): NVLINK2 via NVSwitch, 2.4 TB/s of
#: device-side bandwidth over 6 links -> 50 GB/s per direction per link.
NVLINK2 = LinkSpec("nvlink2", uni_bw=50 * GBPS, latency=0.7 * US)
