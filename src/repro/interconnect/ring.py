"""Ring network abstraction.

Collective libraries (NCCL, PowerAI DDL) cast the physical interconnect
into ring networks and run ring-algorithm collectives over them
(Section II-C).  A :class:`Ring` is an ordered cycle of nodes; device
nodes *participate* in collectives while memory nodes merely forward,
but every node on the cycle adds a hop (and a chunk-forwarding stage),
which is why the paper's Figure 9 plots latency against the *total*
number of nodes inside the ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interconnect.link import LinkSpec
from repro.interconnect.topology import NodeId, NodeKind, Topology


@dataclass(frozen=True)
class Ring:
    """An ordered cycle of nodes sharing one link spec.

    ``order`` lists the nodes once; the cycle closes from the last node
    back to the first.
    """

    name: str
    order: tuple[NodeId, ...]
    link: LinkSpec
    #: Additional forwarding hops from nodes the cycle revisits (the
    #: Figure 7(a) derivative traverses every memory-node twice; see the
    #: paper's footnote 1).  ``order`` stays duplicate-free; revisits
    #: only lengthen the cycle.
    extra_hops: int = 0
    #: Duplex rings use both directions of their bi-directional links
    #: (two counter-rotating logical rings); a ring built from a single
    #: leftover link per node runs one direction only.
    duplex: bool = True

    def __post_init__(self) -> None:
        if len(self.order) < 2:
            raise ValueError(f"ring {self.name} needs at least 2 nodes")
        if len(set(self.order)) != len(self.order):
            raise ValueError(f"ring {self.name} visits a node twice")
        if self.extra_hops < 0:
            raise ValueError(f"ring {self.name}: negative extra hops")

    @property
    def size(self) -> int:
        """Total nodes on the cycle (devices + forwarding memory nodes)."""
        return len(self.order)

    @property
    def devices(self) -> tuple[NodeId, ...]:
        return tuple(n for n in self.order if n.kind is NodeKind.DEVICE)

    @property
    def participant_count(self) -> int:
        return len(self.devices)

    @property
    def hop_count(self) -> int:
        """Hops to traverse the full cycle -- the paper's 'hop count'."""
        return len(self.order) + self.extra_hops

    @property
    def algorithm_bandwidth(self) -> float:
        """Rate the ring algorithm sustains around this cycle."""
        return self.link.bidir_bw if self.duplex else self.link.uni_bw

    def edges(self) -> list[tuple[NodeId, NodeId]]:
        """The cycle's (a, b) node pairs, closing the loop."""
        pairs = list(zip(self.order, self.order[1:]))
        pairs.append((self.order[-1], self.order[0]))
        return pairs

    def neighbors(self, node: NodeId) -> tuple[NodeId, NodeId]:
        """(left, right) neighbors of ``node`` on the cycle."""
        idx = self.order.index(node)
        left = self.order[idx - 1]
        right = self.order[(idx + 1) % len(self.order)]
        return left, right


@dataclass
class RingSet:
    """The rings a system runs collectives over, with validation."""

    rings: list[Ring] = field(default_factory=list)

    def add(self, ring: Ring) -> None:
        self.rings.append(ring)

    @property
    def total_link_bw(self) -> float:
        """Aggregate bi-directional collective bandwidth per device."""
        return sum(r.link.bidir_bw for r in self.rings)

    @property
    def max_ring_size(self) -> int:
        return max(r.size for r in self.rings)

    def validate_same_participants(self) -> None:
        """All rings must serve the same device set (SPMD collectives)."""
        if not self.rings:
            raise ValueError("empty ring set")
        reference = set(self.rings[0].devices)
        for ring in self.rings[1:]:
            if set(ring.devices) != reference:
                raise ValueError(
                    f"ring {ring.name} serves different devices")

    def materialize(self, topo: Topology, tag_prefix: str = "") -> None:
        """Add every ring edge to ``topo`` as a physical link."""
        for ring in self.rings:
            for a, b in ring.edges():
                topo.add_link(a, b, ring.link, tag=f"{tag_prefix}{ring.name}")
