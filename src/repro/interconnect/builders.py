"""Builders for the paper's concrete system interconnect topologies.

Each builder returns a :class:`SystemTopology`: the physical multigraph
(validated against the N-link-per-node budget), the *logical* collective
ring set the NCCL-style scheduler times operations over, and the
memory-virtualization channel description the system simulator consumes.

Topologies built here:

* :func:`build_dc_dla` -- DGX-1V-style cube-mesh flattened into three
  8-device rings; virtualization over PCIe through switches (Figure 5).
* :func:`build_hc_dla` -- Summit-style: half the links to the host CPU,
  the rest forming "singular or duo" device rings (Section II-C).
* :func:`build_fig7a_derivative` -- the strawman of Figure 7(a): two
  8-device rings kept, one ring rerouted through all memory-nodes
  (24 hops, every memory-node visited twice -- footnote 1).
* :func:`build_mc_dla_star` -- the folded design of Figure 7(b), the
  paper's MC-DLA(S): rings of 8/12/20 hops.
* :func:`build_mc_dla_ring` -- the proposed design of Figure 7(c):
  three identical 16-node alternating device/memory rings; every device
  owns half of its left and right memory-nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.interconnect.link import NVLINK, PCIE_GEN3, LinkSpec
from repro.interconnect.ring import Ring, RingSet
from repro.interconnect.topology import (NodeId, Topology, device, host,
                                         memory, switch)


class VmemTarget(enum.Enum):
    """Where a design's virtualization traffic lands."""

    NONE = "none"          # oracle: no migration
    HOST = "host"          # CPU DRAM over PCIe or NVLINK
    MEMORY_NODE = "memnode"


@dataclass(frozen=True)
class VmemChannel:
    """Per-device backing-store channel of one design point.

    ``peak_bw``: bandwidth one device sees with no contention.
    ``concurrent_bw``: sustained per-device bandwidth when every device
    in the node migrates simultaneously (uplink sharing; Section I:
    "effective host-device bandwidth per device gets proportionally
    reduced to the number of intra-node devices").
    """

    target: VmemTarget
    peak_bw: float
    concurrent_bw: float

    def __post_init__(self) -> None:
        if self.target is VmemTarget.NONE:
            if self.peak_bw or self.concurrent_bw:
                raise ValueError("oracle channel carries no bandwidth")
            return
        if self.peak_bw <= 0 or self.concurrent_bw <= 0:
            raise ValueError("vmem bandwidth must be positive")
        if self.concurrent_bw > self.peak_bw + 1e-9:
            raise ValueError("concurrent bandwidth cannot exceed peak")


NO_VMEM = VmemChannel(VmemTarget.NONE, 0.0, 0.0)


@dataclass
class SystemTopology:
    """A built system interconnect ready for simulation."""

    name: str
    topo: Topology
    rings: RingSet
    n_devices: int
    vmem: VmemChannel

    def collective_channels(self) -> list[tuple[int, float]]:
        """(hop count, ring bandwidth) pairs for the collective layer."""
        return [(r.hop_count, r.algorithm_bandwidth)
                for r in self.rings.rings]


# The three DGX-1V ring orderings over devices 0..7.  Exact orders are
# irrelevant to the latency model (all are 8-hop cycles); they are kept
# distinct so the multigraph resembles the cube-mesh of Figure 5.
_DGX_RING_ORDERS = (
    (0, 1, 2, 3, 7, 6, 5, 4),
    (0, 2, 6, 4, 5, 7, 3, 1),
    (0, 4, 5, 1, 3, 7, 6, 2),
)


def _add_devices(topo: Topology, count: int) -> list[NodeId]:
    return [topo.add_node(device(i)) for i in range(count)]


def _add_memories(topo: Topology, count: int) -> list[NodeId]:
    return [topo.add_node(memory(i)) for i in range(count)]


def _add_pcie_tree(topo: Topology, devices: list[NodeId],
                   pcie: LinkSpec = PCIE_GEN3,
                   devices_per_switch: int = 2,
                   switches_per_host: int = 2) -> None:
    """Host CPUs <- PCIe switches <- devices, DGX-1 style."""
    n_switches = max(1, len(devices) // devices_per_switch)
    n_hosts = max(1, n_switches // switches_per_host)
    hosts = [topo.add_node(host(i)) for i in range(n_hosts)]
    for s in range(n_switches):
        sw = topo.add_node(switch(s))
        topo.add_link(sw, hosts[min(s // switches_per_host,
                                    n_hosts - 1)], pcie, tag="uplink")
    for i, dev in enumerate(devices):
        topo.add_link(dev, switch(min(i // devices_per_switch,
                                      n_switches - 1)), pcie, tag="pcie")


def build_dc_dla(n_devices: int = 8, link: LinkSpec = NVLINK,
                 pcie: LinkSpec = PCIE_GEN3,
                 shared_uplinks: bool = False) -> SystemTopology:
    """Device-centric baseline: Figure 5's cube-mesh as three rings.

    ``shared_uplinks=True`` models a DGX-1-style PCIe tree where two
    devices share each switch uplink, halving sustained per-device
    migration bandwidth when all devices DMA concurrently (an ablation;
    the default grants every device its full spec-rate PCIe channel,
    conservative toward the baseline).
    """
    if n_devices < 2:
        raise ValueError("need at least 2 devices")
    topo = Topology("DC-DLA", max_links=6)
    devs = _add_devices(topo, n_devices)

    rings = RingSet()
    for index in range(3):
        if n_devices == 8:
            order = tuple(devs[i] for i in _DGX_RING_ORDERS[index])
        else:
            order = tuple(devs)
        rings.add(Ring(f"ring{index}", order, link))
    rings.validate_same_participants()
    rings.materialize(topo)

    _add_pcie_tree(topo, devs, pcie)
    topo.validate_link_budget(link.name)

    concurrent = pcie.uni_bw / 2 if shared_uplinks else pcie.uni_bw
    vmem = VmemChannel(VmemTarget.HOST, peak_bw=pcie.uni_bw,
                       concurrent_bw=concurrent)
    return SystemTopology("DC-DLA", topo, rings, n_devices, vmem)


def build_hc_dla(n_devices: int = 8,
                 link: LinkSpec = NVLINK) -> SystemTopology:
    """Host-centric design: N/2 links to the CPU, the rest for rings.

    The three leftover links per device form one full duplex ring plus
    pairwise exchange links that the collective scheduler time-shares as
    a second, half-rate logical ring (the paper's "singular or duo ring
    networks").
    """
    if n_devices < 2 or n_devices % 2:
        raise ValueError("need an even device count >= 2")
    topo = Topology("HC-DLA", max_links=6)
    devs = _add_devices(topo, n_devices)
    hosts = [topo.add_node(host(i)) for i in range(2)]
    for i, dev in enumerate(devs):
        sock = hosts[0] if i < n_devices // 2 else hosts[-1]
        for _ in range(3):
            topo.add_link(dev, sock, link, tag="cpu")

    ring0 = Ring("ring0", tuple(devs), link)
    # One leftover link per device: pair them up physically ...
    for i in range(0, n_devices, 2):
        topo.add_link(devs[i], devs[i + 1], link, tag="pair")
    # ... and expose them as a half-rate logical ring for collectives.
    ring1 = Ring("ring1", tuple(devs), link, duplex=False)

    rings = RingSet([ring0, ring1])
    rings.validate_same_participants()
    for a, b in ring0.edges():
        topo.add_link(a, b, link, tag="ring0")
    topo.validate_link_budget(link.name)

    per_device = 3 * link.uni_bw  # 3 links read/write CPU DRAM
    vmem = VmemChannel(VmemTarget.HOST, peak_bw=per_device,
                       concurrent_bw=per_device)
    return SystemTopology("HC-DLA", topo, rings, n_devices, vmem)


def _alternating_order(devs: list[NodeId], mems: list[NodeId],
                       mem_offset: int = -1) -> tuple[NodeId, ...]:
    """M(i+offset) D(i) M(i+offset+1) D(i+1) ... alternating cycle."""
    order: list[NodeId] = []
    n = len(devs)
    for i in range(n):
        order.append(mems[(i + mem_offset) % n])
        order.append(devs[i])
    return tuple(order)


def build_mc_dla_ring(n_devices: int = 8,
                      link: LinkSpec = NVLINK) -> SystemTopology:
    """The proposed ring-based MC-DLA of Figure 7(c).

    All three rings share the alternating device/memory order, so every
    device reaches its left and right memory-nodes over N/2 = 3 parallel
    links each.  The returned ``vmem`` channel reports the BW_AWARE
    bandwidth (all N links); the LOCAL policy reaches one neighbour only
    and achieves half of it (Figure 10).
    """
    if n_devices < 2:
        raise ValueError("need at least 2 devices")
    topo = Topology("MC-DLA", max_links=6)
    devs = _add_devices(topo, n_devices)
    mems = _add_memories(topo, n_devices)

    order = _alternating_order(devs, mems)
    rings = RingSet()
    for index in range(3):
        rings.add(Ring(f"ring{index}", order, link))
    rings.validate_same_participants()
    rings.materialize(topo)

    _add_pcie_tree(topo, devs)  # legacy PCIe retained for control traffic
    topo.validate_link_budget(link.name)

    per_device = 6 * link.uni_bw  # both neighbours, 3 links each
    vmem = VmemChannel(VmemTarget.MEMORY_NODE, peak_bw=per_device,
                       concurrent_bw=per_device)
    return SystemTopology("MC-DLA", topo, rings, n_devices, vmem)


def build_mc_dla_star(n_devices: int = 8,
                      link: LinkSpec = NVLINK) -> SystemTopology:
    """The folded design of Figure 7(b) -- the paper's MC-DLA(S).

    Ring hop counts are 8, 12, and 20 (the 20-hop ring revisits four
    memory-nodes); every device is adjacent to memory-nodes over exactly
    two of its ring links, for 50 GB/s of virtualization bandwidth, and
    the unbalanced longest ring bottlenecks collectives.
    """
    if n_devices != 8:
        raise ValueError("the folded design is defined for 8 devices")
    topo = Topology("MC-DLA(S)", max_links=6)
    devs = _add_devices(topo, n_devices)
    mems = _add_memories(topo, n_devices)

    ring8 = Ring("ring8", tuple(devs), link)
    ring12 = Ring(
        "ring12",
        (devs[0], mems[1], devs[1], devs[2], mems[3], devs[3],
         devs[4], mems[5], devs[5], devs[6], mems[7], devs[7]),
        link)
    ring20 = Ring(
        "ring20",
        (devs[0], mems[0], devs[1], mems[2], devs[2], mems[4],
         devs[3], mems[6], devs[4], devs[5], devs[6], devs[7]),
        link, extra_hops=8)
    rings = RingSet([ring8, ring12, ring20])
    rings.validate_same_participants()
    rings.materialize(topo)
    topo.validate_link_budget(link.name)

    vmem = VmemChannel(VmemTarget.MEMORY_NODE, peak_bw=2 * link.uni_bw,
                       concurrent_bw=2 * link.uni_bw)
    return SystemTopology("MC-DLA(S)", topo, rings, n_devices, vmem)


def build_fig7a_derivative(n_devices: int = 8,
                           link: LinkSpec = NVLINK) -> SystemTopology:
    """The strawman of Figure 7(a), kept for design-space studies.

    Two 8-hop device rings survive; the third ring is rerouted through
    every memory-node, visiting each twice (24 hops), giving each device
    two dedicated links to its designated memory-node (50 GB/s).
    """
    if n_devices != 8:
        raise ValueError("the Figure 7(a) design is defined for 8 devices")
    topo = Topology("MC-DLA(7a)", max_links=6)
    devs = _add_devices(topo, n_devices)
    mems = _add_memories(topo, n_devices)

    ring_a = Ring("ring8a", tuple(devs), link)
    ring_b = Ring("ring8b", tuple(devs[i] for i in _DGX_RING_ORDERS[1]),
                  link)
    rings = RingSet([ring_a, ring_b])
    rings.materialize(topo)

    # The rerouted black-arrow ring: ...M0 -> D0 -> M0 -> M7 -> D7...
    # Two parallel links Dn <-> Mn plus one Mn <-> Mn-1 chain link.
    for i in range(n_devices):
        topo.add_link(devs[i], mems[i], link, tag="backing")
        topo.add_link(devs[i], mems[i], link, tag="backing")
        topo.add_link(mems[i], mems[i - 1], link, tag="chain")
    ring_c = Ring("ring24", _alternating_order(devs, mems), link,
                  extra_hops=8)
    rings.add(ring_c)
    rings.validate_same_participants()
    topo.validate_link_budget(link.name)

    vmem = VmemChannel(VmemTarget.MEMORY_NODE, peak_bw=2 * link.uni_bw,
                       concurrent_bw=2 * link.uni_bw)
    return SystemTopology("MC-DLA(7a)", topo, rings, n_devices, vmem)
