"""Node and topology graph models for the device-side interconnect.

A topology is a multigraph of nodes (device-nodes, memory-nodes, host
CPUs, PCIe switches) joined by physical links.  The collective layer
casts topologies into ring networks (:mod:`repro.interconnect.ring`);
builders for the paper's concrete topologies live in
:mod:`repro.interconnect.builders`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from repro.interconnect.link import LinkSpec


class NodeKind(enum.Enum):
    DEVICE = "device"     # GPU/TPU accelerator (paper: device-node)
    MEMORY = "memory"     # capacity-optimized memory-node
    HOST = "host"         # host CPU socket
    SWITCH = "switch"     # PCIe switch


@dataclass(frozen=True)
class NodeId:
    """Stable node identity, e.g. D0..D7, M0..M7, H0, S0."""

    kind: NodeKind
    index: int

    def __str__(self) -> str:
        prefix = {NodeKind.DEVICE: "D", NodeKind.MEMORY: "M",
                  NodeKind.HOST: "H", NodeKind.SWITCH: "S"}[self.kind]
        return f"{prefix}{self.index}"


def device(index: int) -> NodeId:
    return NodeId(NodeKind.DEVICE, index)


def memory(index: int) -> NodeId:
    return NodeId(NodeKind.MEMORY, index)


def host(index: int) -> NodeId:
    return NodeId(NodeKind.HOST, index)


def switch(index: int) -> NodeId:
    return NodeId(NodeKind.SWITCH, index)


class Topology:
    """A multigraph of nodes and physical links with budget checking.

    ``max_links`` caps the number of high-bandwidth link endpoints per
    device/memory node (N=6 in the baseline configuration); PCIe
    endpoints are tracked separately since every device has exactly one
    legacy host interface.
    """

    def __init__(self, name: str, max_links: int = 6) -> None:
        self.name = name
        self.max_links = max_links
        self._graph = nx.MultiGraph()

    def add_node(self, node: NodeId) -> NodeId:
        if node in self._graph:
            raise ValueError(f"duplicate node {node}")
        self._graph.add_node(node)
        return node

    def add_link(self, a: NodeId, b: NodeId, spec: LinkSpec,
                 tag: str = "") -> None:
        """Add one physical link between two existing nodes."""
        if a == b:
            raise ValueError(f"self-link on {a}")
        for n in (a, b):
            if n not in self._graph:
                raise ValueError(f"unknown node {n}")
        self._graph.add_edge(a, b, spec=spec, tag=tag)

    # -- Queries -----------------------------------------------------------

    def nodes(self, kind: NodeKind | None = None) -> list[NodeId]:
        nodes = list(self._graph.nodes)
        if kind is not None:
            nodes = [n for n in nodes if n.kind is kind]
        return sorted(nodes, key=lambda n: (n.kind.value, n.index))

    def degree(self, node: NodeId, link_name: str | None = None) -> int:
        """Number of link endpoints at ``node`` (optionally by spec name)."""
        count = 0
        for _, _, data in self._graph.edges(node, data=True):
            if link_name is None or data["spec"].name == link_name:
                count += 1
        return count

    def links_between(self, a: NodeId, b: NodeId) -> list[LinkSpec]:
        if not self._graph.has_edge(a, b):
            return []
        return [d["spec"] for d in self._graph[a][b].values()]

    def bandwidth_between(self, a: NodeId, b: NodeId) -> float:
        """Aggregate uni-directional bandwidth across parallel links."""
        return sum(spec.uni_bw for spec in self.links_between(a, b))

    def validate_link_budget(self, hb_link_name: str) -> None:
        """Every device/memory node must respect the N-link budget."""
        for node in self.nodes(NodeKind.DEVICE) + self.nodes(NodeKind.MEMORY):
            used = self.degree(node, hb_link_name)
            if used > self.max_links:
                raise ValueError(
                    f"{self.name}: node {node} uses {used} high-bandwidth "
                    f"links, budget is {self.max_links}")

    @property
    def graph(self) -> nx.MultiGraph:
        """The underlying networkx multigraph (read-only by convention)."""
        return self._graph
