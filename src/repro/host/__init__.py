"""Host-side substrate: CPU sockets and the PCIe interface."""

from repro.host.cpu import (HYPOTHETICAL_HC, POWER9, XEON,
                            CpuBandwidthUsage, CpuSocketSpec, socket_usage)
from repro.interconnect.link import PCIE_GEN3, PCIE_GEN4

__all__ = [
    "CpuBandwidthUsage", "CpuSocketSpec", "HYPOTHETICAL_HC", "PCIE_GEN3",
    "PCIE_GEN4", "POWER9", "XEON", "socket_usage",
]
