"""Host CPU socket models (paper Sections II, IV; Figure 12).

CPUs are latency-oriented: a high-end Xeon offers ~80 GB/s of memory
bandwidth per socket, a Power9 ~120 GB/s.  The hypothetical HC-DLA host
is over-provisioned to 300 GB/s/socket so that four devices can each
read/write CPU DRAM over three 25 GB/s links -- the paper grants this
conservatively and then shows the design is still inferior.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GBPS


@dataclass(frozen=True)
class CpuSocketSpec:
    """One host CPU socket."""

    name: str
    mem_bandwidth: float          # bytes/sec per socket
    devices_per_socket: int = 4

    def __post_init__(self) -> None:
        if self.mem_bandwidth <= 0:
            raise ValueError("socket bandwidth must be positive")
        if self.devices_per_socket <= 0:
            raise ValueError("need at least one device per socket")


XEON = CpuSocketSpec("Intel-Xeon", 80 * GBPS)
POWER9 = CpuSocketSpec("IBM-Power9", 120 * GBPS)
#: HC-DLA's hypothetical socket: 3-4x over-provisioned (Section IV).
HYPOTHETICAL_HC = CpuSocketSpec("Hypothetical-HC", 300 * GBPS)


@dataclass(frozen=True)
class CpuBandwidthUsage:
    """CPU memory bandwidth consumed by device virtualization traffic.

    ``avg`` is sustained usage over an iteration; ``max`` is the peak
    concurrent DMA demand; both are per socket (Figure 12's y-axis).
    """

    socket: CpuSocketSpec
    avg_bytes_per_sec: float
    max_bytes_per_sec: float

    @property
    def avg_fraction(self) -> float:
        return self.avg_bytes_per_sec / self.socket.mem_bandwidth

    @property
    def max_fraction(self) -> float:
        return self.max_bytes_per_sec / self.socket.mem_bandwidth


def socket_usage(socket: CpuSocketSpec, traffic_bytes_per_device: float,
                 iteration_time: float,
                 per_device_concurrent_bw: float) -> CpuBandwidthUsage:
    """Account one socket's bandwidth usage (Figure 12).

    ``traffic_bytes_per_device``: virtualization bytes one device moves
    through host DRAM per training iteration.
    """
    if iteration_time <= 0:
        raise ValueError("iteration time must be positive")
    if traffic_bytes_per_device < 0 or per_device_concurrent_bw < 0:
        raise ValueError("negative bandwidth inputs")
    devices = socket.devices_per_socket
    avg = devices * traffic_bytes_per_device / iteration_time
    peak = devices * per_device_concurrent_bw
    return CpuBandwidthUsage(socket, avg, peak)
