"""Ring-algorithm collective latency models.

Prior work (Chan et al. [34], NCCL [35]) shows ring algorithms achieve
optimal link-bandwidth utilization for the collectives parallel training
needs.  The models here follow the classic formulation the paper's
Figure 9 is built on:

* **all-gather** over a ring of *n* nodes runs ``n - 1`` steps, each node
  forwarding one ``S/n``-byte segment per step;
* **all-reduce** is a reduce-scatter followed by an all-gather:
  ``2 (n - 1)`` steps of ``S/n`` bytes;
* **broadcast** pipelines the message in fixed-size chunks around the
  ring: ``(n - 2) + ceil(S/c)`` chunk stages.

Each step pays the link's hop latency plus a per-chunk processing
overhead (protocol engine / DMA descriptor handling), which is what
makes long rings expensive for *small* messages -- exactly the effect
Figure 9 quantifies (and why the 16-node MC-DLA ring costs only ~7% over
the 8-node DC-DLA ring at an 8 MB synchronization size).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.units import KB, US


class Primitive(enum.Enum):
    ALL_GATHER = "all-gather"
    ALL_REDUCE = "all-reduce"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class CollectiveSpec:
    """Tuning constants of the collective model.

    ``chunk_bytes`` matches Figure 9's 4 KB message granularity.
    """

    chunk_bytes: int = 4 * KB
    hop_latency: float = 0.7 * US
    chunk_overhead: float = 0.15 * US

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.hop_latency < 0 or self.chunk_overhead < 0:
            raise ValueError("latencies must be non-negative")


DEFAULT_SPEC = CollectiveSpec()


def _check(n_nodes: int, nbytes: float, ring_bw: float) -> None:
    if n_nodes < 2:
        raise ValueError("a ring needs at least 2 nodes")
    if nbytes < 0:
        raise ValueError("negative message size")
    if ring_bw <= 0:
        raise ValueError("ring bandwidth must be positive")


def _segment_step_time(segment_bytes: float, ring_bw: float,
                       spec: CollectiveSpec) -> float:
    """Time for every node to forward one segment to its neighbor."""
    chunks = max(1, math.ceil(segment_bytes / spec.chunk_bytes))
    return (spec.hop_latency + segment_bytes / ring_bw
            + chunks * spec.chunk_overhead)


def all_gather_time(n_nodes: int, nbytes: float, ring_bw: float,
                    spec: CollectiveSpec = DEFAULT_SPEC) -> float:
    """Ring all-gather: after ``n-1`` steps every node holds all ``S``.

    ``nbytes`` is the total gathered size (each node contributes S/n).
    """
    _check(n_nodes, nbytes, ring_bw)
    if nbytes == 0:
        return 0.0
    segment = nbytes / n_nodes
    return (n_nodes - 1) * _segment_step_time(segment, ring_bw, spec)


def all_reduce_time(n_nodes: int, nbytes: float, ring_bw: float,
                    spec: CollectiveSpec = DEFAULT_SPEC) -> float:
    """Ring all-reduce: reduce-scatter + all-gather, ``2 (n-1)`` steps."""
    _check(n_nodes, nbytes, ring_bw)
    if nbytes == 0:
        return 0.0
    segment = nbytes / n_nodes
    return 2 * (n_nodes - 1) * _segment_step_time(segment, ring_bw, spec)


def broadcast_time(n_nodes: int, nbytes: float, ring_bw: float,
                   spec: CollectiveSpec = DEFAULT_SPEC) -> float:
    """Pipelined ring broadcast in ``chunk_bytes`` chunks."""
    _check(n_nodes, nbytes, ring_bw)
    if nbytes == 0:
        return 0.0
    chunks = max(1, math.ceil(nbytes / spec.chunk_bytes))
    stage = (spec.hop_latency + min(nbytes, spec.chunk_bytes) / ring_bw
             + spec.chunk_overhead)
    return (n_nodes - 2 + chunks) * stage


_TIME_FNS = {
    Primitive.ALL_GATHER: all_gather_time,
    Primitive.ALL_REDUCE: all_reduce_time,
    Primitive.BROADCAST: broadcast_time,
}


def collective_time(primitive: Primitive, n_nodes: int, nbytes: float,
                    ring_bw: float,
                    spec: CollectiveSpec = DEFAULT_SPEC) -> float:
    """Dispatch on the primitive (see the per-primitive functions)."""
    return _TIME_FNS[primitive](n_nodes, nbytes, ring_bw, spec)


# -- Vectorized variants --------------------------------------------------
#
# Array versions of the latency models, elementwise bit-identical to the
# scalar functions above: every arithmetic step runs the same IEEE-754
# operations in the same order on float64, so pricing a column of
# message sizes yields exactly the floats a loop of scalar calls would.


def _as_sizes(sizes) -> np.ndarray:
    arr = np.asarray(sizes, dtype=np.float64)
    if arr.size and float(arr.min()) < 0:
        raise ValueError("negative message size")
    return arr


def _segment_step_time_array(segments: np.ndarray, ring_bw: float,
                             spec: CollectiveSpec) -> np.ndarray:
    chunks = np.maximum(1.0, np.ceil(segments / spec.chunk_bytes))
    return (spec.hop_latency + segments / ring_bw
            + chunks * spec.chunk_overhead)


def all_gather_time_array(n_nodes: int, sizes, ring_bw: float,
                          spec: CollectiveSpec = DEFAULT_SPEC) \
        -> np.ndarray:
    """Vectorized :func:`all_gather_time` over a column of sizes."""
    _check(n_nodes, 0, ring_bw)
    arr = _as_sizes(sizes)
    steps = _segment_step_time_array(arr / n_nodes, ring_bw, spec)
    return np.where(arr == 0.0, 0.0, (n_nodes - 1) * steps)


def all_reduce_time_array(n_nodes: int, sizes, ring_bw: float,
                          spec: CollectiveSpec = DEFAULT_SPEC) \
        -> np.ndarray:
    """Vectorized :func:`all_reduce_time` over a column of sizes."""
    _check(n_nodes, 0, ring_bw)
    arr = _as_sizes(sizes)
    steps = _segment_step_time_array(arr / n_nodes, ring_bw, spec)
    return np.where(arr == 0.0, 0.0, 2 * (n_nodes - 1) * steps)


def broadcast_time_array(n_nodes: int, sizes, ring_bw: float,
                         spec: CollectiveSpec = DEFAULT_SPEC) \
        -> np.ndarray:
    """Vectorized :func:`broadcast_time` over a column of sizes."""
    _check(n_nodes, 0, ring_bw)
    arr = _as_sizes(sizes)
    chunks = np.maximum(1.0, np.ceil(arr / spec.chunk_bytes))
    stage = (spec.hop_latency
             + np.minimum(arr, spec.chunk_bytes) / ring_bw
             + spec.chunk_overhead)
    return np.where(arr == 0.0, 0.0, (n_nodes - 2 + chunks) * stage)


_TIME_ARRAY_FNS = {
    Primitive.ALL_GATHER: all_gather_time_array,
    Primitive.ALL_REDUCE: all_reduce_time_array,
    Primitive.BROADCAST: broadcast_time_array,
}


def collective_time_array(primitive: Primitive, n_nodes: int, sizes,
                          ring_bw: float,
                          spec: CollectiveSpec = DEFAULT_SPEC) \
        -> np.ndarray:
    """Vectorized :func:`collective_time` over a column of sizes."""
    return _TIME_ARRAY_FNS[primitive](n_nodes, sizes, ring_bw, spec)


# -- Functional reference implementations --------------------------------
#
# These execute the actual ring data movement on small integer vectors so
# tests can verify that the latency models above correspond to schedules
# that really compute the right answer.


def simulate_all_gather(contributions: list[list[int]]) -> list[list[int]]:
    """Run the ring all-gather schedule; returns each node's buffer."""
    n = len(contributions)
    if n < 2:
        raise ValueError("need at least 2 nodes")
    buffers: list[list[list[int] | None]] = [
        [None] * n for _ in range(n)]
    for i in range(n):
        buffers[i][i] = list(contributions[i])
    # Step s: node i forwards segment (i - s) mod n to node i + 1.
    for step in range(n - 1):
        moves = []
        for i in range(n):
            seg = (i - step) % n
            sent = buffers[i][seg]
            if sent is None:
                raise AssertionError("ring schedule lost a segment")
            moves.append(((i + 1) % n, seg, list(sent)))
        for dst, seg, payload in moves:
            buffers[dst][seg] = payload
    return [sum((seg for seg in buf if seg is not None), [])
            for buf in buffers]


def simulate_all_reduce(vectors: list[list[int]]) -> list[list[int]]:
    """Run ring reduce-scatter + all-gather; returns each node's sum."""
    n = len(vectors)
    if n < 2:
        raise ValueError("need at least 2 nodes")
    length = len(vectors[0])
    if any(len(v) != length for v in vectors):
        raise ValueError("vectors must have equal length")
    bounds = [(seg * length) // n for seg in range(n + 1)]
    partial = [list(v) for v in vectors]
    # Reduce-scatter: after n-1 steps node i holds the full sum of
    # segment (i + 1) mod n.
    for step in range(n - 1):
        moves = []
        for i in range(n):
            seg = (i - step) % n
            lo, hi = bounds[seg], bounds[seg + 1]
            moves.append(((i + 1) % n, seg, partial[i][lo:hi]))
        for dst, seg, payload in moves:
            lo, hi = bounds[seg], bounds[seg + 1]
            for offset, value in enumerate(payload):
                partial[dst][lo + offset] += value
    # All-gather the reduced segments.
    owners = {(i + 1) % n: i for i in range(n)}
    reduced: list[list[int] | None] = [None] * n
    for seg, owner in owners.items():
        lo, hi = bounds[seg], bounds[seg + 1]
        reduced[seg] = partial[owner][lo:hi]
    result_template = [seg for seg in reduced if seg is not None]
    flat = sum(result_template, [])
    return [list(flat) for _ in range(n)]


def simulate_broadcast(root_vector: list[int], n_nodes: int,
                       chunk: int = 4) -> list[list[int]]:
    """Run the pipelined ring broadcast; returns each node's buffer."""
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    chunks = [root_vector[i:i + chunk]
              for i in range(0, len(root_vector), chunk)] or [[]]
    received: list[list[list[int]]] = [[] for _ in range(n_nodes)]
    received[0] = [list(c) for c in chunks]
    # Stage t: node i forwards its (t - i)-th chunk to node i + 1.
    stages = (n_nodes - 2) + len(chunks)
    for stage in range(stages + 1):
        moves = []
        for i in range(n_nodes - 1):
            idx = stage - i
            if 0 <= idx < len(chunks) and idx < len(received[i]):
                moves.append((i + 1, list(received[i][idx])))
        for dst, payload in moves:
            received[dst].append(payload)
    return [sum(buf, []) for buf in received]
