"""Collective communication substrate (ring algorithm, Figure 9)."""

from repro.collectives.multi_ring import (RingChannel, stripe_bytes,
                                          striped_collective_time)
from repro.collectives.ring_algorithm import (DEFAULT_SPEC, CollectiveSpec,
                                              Primitive, all_gather_time,
                                              all_reduce_time,
                                              broadcast_time,
                                              collective_time,
                                              simulate_all_gather,
                                              simulate_all_reduce,
                                              simulate_broadcast)

__all__ = [
    "DEFAULT_SPEC", "CollectiveSpec", "Primitive", "RingChannel",
    "all_gather_time", "all_reduce_time", "broadcast_time",
    "collective_time", "simulate_all_gather", "simulate_all_reduce",
    "simulate_broadcast", "stripe_bytes", "striped_collective_time",
]
