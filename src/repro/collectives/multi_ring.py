"""Striping collectives across multiple rings.

Topology-aware collective libraries cast the interconnect into several
ring networks and stripe each operation across them proportionally to
ring bandwidth; the operation completes when the slowest ring finishes.
This is how the unbalanced rings of the paper's Figure 7(a)/(b) designs
hurt: the 20-hop ring bottlenecks the whole collective (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collectives.ring_algorithm import (DEFAULT_SPEC, CollectiveSpec,
                                              Primitive, collective_time,
                                              collective_time_array)


@dataclass(frozen=True)
class RingChannel:
    """One logical ring as the collective scheduler sees it.

    ``size`` counts every node on the cycle (forwarding memory-nodes
    included); ``bandwidth`` is the rate the ring algorithm can sustain
    around the cycle (bi-directional capacity for a duplex ring).
    """

    size: int
    bandwidth: float

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("ring size must be >= 2")
        if self.bandwidth <= 0:
            raise ValueError("ring bandwidth must be positive")


def stripe_bytes(channels: list[RingChannel], nbytes: float) -> list[float]:
    """Split a message across rings proportionally to bandwidth."""
    if not channels:
        raise ValueError("no rings to stripe over")
    total_bw = sum(c.bandwidth for c in channels)
    return [nbytes * c.bandwidth / total_bw for c in channels]


def striped_collective_time(primitive: Primitive,
                            channels: list[RingChannel],
                            nbytes: float,
                            spec: CollectiveSpec = DEFAULT_SPEC) -> float:
    """Latency of one collective striped across ``channels``."""
    if nbytes < 0:
        raise ValueError("negative message size")
    if nbytes == 0:
        return 0.0
    shares = stripe_bytes(channels, nbytes)
    return max(
        collective_time(primitive, c.size, share, c.bandwidth, spec)
        for c, share in zip(channels, shares))


def striped_collective_time_array(primitive: Primitive,
                                  channels: list[RingChannel],
                                  sizes,
                                  spec: CollectiveSpec = DEFAULT_SPEC) \
        -> np.ndarray:
    """Vectorized :func:`striped_collective_time` over a size column.

    Elementwise bit-identical to the scalar function: shares are the
    same proportional split, each ring prices its share with the
    vectorized ring model, and the slowest ring wins per element.
    """
    if not channels:
        raise ValueError("no rings to stripe over")
    arr = np.asarray(sizes, dtype=np.float64)
    if arr.size and float(arr.min()) < 0:
        raise ValueError("negative message size")
    total_bw = sum(c.bandwidth for c in channels)
    times = [collective_time_array(primitive, c.size,
                                   arr * c.bandwidth / total_bw,
                                   c.bandwidth, spec)
             for c in channels]
    out = times[0]
    for t in times[1:]:
        out = np.maximum(out, t)
    return np.where(arr == 0.0, 0.0, out)
