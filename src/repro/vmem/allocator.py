"""Remote page allocation policies: LOCAL and BW_AWARE (Figure 10).

Given a ``malloc_remote`` of D bytes, the driver either places every
page in a single neighbouring memory-node (``LOCAL``, named after
libNUMA's local zone policy) or splits the request into two equal
page-aligned chunks and round-robins pages across the left and right
nodes (``BW_AWARE``), letting the device read both concurrently:

* ``Latency_LOCAL     = D / (N*B/2)``
* ``Latency_BW_AWARE  = (D/2) / (N*B/2)``  -- half of LOCAL.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.vmem.driver import PAGE_BYTES, AddressSpaceLayout, PageMapping, Tier


class PlacementPolicy(enum.Enum):
    LOCAL = "LOCAL"
    BW_AWARE = "BW_AWARE"


class OutOfRemoteMemoryError(MemoryError):
    """A remote tier ran out of page frames."""


@dataclass
class RemoteAllocator:
    """Page-granular allocator over the two remote halves."""

    layout: AddressSpaceLayout
    policy: PlacementPolicy
    _next_frame: dict[Tier, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._next_frame = {Tier.REMOTE_LEFT: 0, Tier.REMOTE_RIGHT: 0}

    # -- Queries -------------------------------------------------------------

    def free_frames(self, tier: Tier) -> int:
        if tier is Tier.LOCAL:
            raise ValueError("allocator manages remote tiers only")
        return self.layout.frame_count(tier) - self._next_frame[tier]

    @property
    def free_bytes(self) -> int:
        return PAGE_BYTES * (self.free_frames(Tier.REMOTE_LEFT)
                             + self.free_frames(Tier.REMOTE_RIGHT))

    @property
    def fragmentation(self) -> float:
        """Fraction of free frames stranded by split placement.

        A LOCAL allocation wants one single-node extent, so the figure
        of merit is the larger tier's free run versus the largest such
        run the free total *could* form (``min(total_free, larger
        tier capacity)``); the shortfall, as a fraction of all free
        frames, is fragmentation.  Zero for a pristine or exhausted
        space, grows as allocations split the free frames evenly
        across the halves, and always stays within [0, 1].
        """
        left = self.free_frames(Tier.REMOTE_LEFT)
        right = self.free_frames(Tier.REMOTE_RIGHT)
        total = left + right
        if total == 0:
            return 0.0
        achievable = min(total,
                         max(self.layout.frame_count(Tier.REMOTE_LEFT),
                             self.layout.frame_count(Tier.REMOTE_RIGHT)))
        return (achievable - max(left, right)) / total

    # -- Allocation ------------------------------------------------------------

    def allocate(self, nbytes: int) -> list[PageMapping]:
        """Place an allocation; returns one mapping per virtual page."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        n_pages = math.ceil(nbytes / PAGE_BYTES)
        if self.policy is PlacementPolicy.LOCAL:
            return self._allocate_local(n_pages)
        return self._allocate_bw_aware(n_pages)

    def _take(self, tier: Tier, virtual_page: int) -> PageMapping:
        if self.free_frames(tier) == 0:
            raise OutOfRemoteMemoryError(
                f"{tier.value} exhausted "
                f"({self.layout.frame_count(tier)} frames)")
        frame = self._next_frame[tier]
        self._next_frame[tier] += 1
        return PageMapping(virtual_page, tier, frame)

    def _allocate_local(self, n_pages: int) -> list[PageMapping]:
        """Whole allocation in one node: the emptier side, then spill."""
        primary = (Tier.REMOTE_LEFT
                   if self.free_frames(Tier.REMOTE_LEFT)
                   >= self.free_frames(Tier.REMOTE_RIGHT)
                   else Tier.REMOTE_RIGHT)
        secondary = (Tier.REMOTE_RIGHT if primary is Tier.REMOTE_LEFT
                     else Tier.REMOTE_LEFT)
        mappings = []
        for page in range(n_pages):
            tier = primary if self.free_frames(primary) else secondary
            mappings.append(self._take(tier, page))
        return mappings

    def _allocate_bw_aware(self, n_pages: int) -> list[PageMapping]:
        """Round-robin pages across both halves (even split +-1 page)."""
        mappings = []
        for page in range(n_pages):
            preferred = (Tier.REMOTE_LEFT if page % 2 == 0
                         else Tier.REMOTE_RIGHT)
            fallback = (Tier.REMOTE_RIGHT if preferred is Tier.REMOTE_LEFT
                        else Tier.REMOTE_LEFT)
            tier = preferred if self.free_frames(preferred) else fallback
            mappings.append(self._take(tier, page))
        return mappings

    def release(self, mappings: list[PageMapping]) -> None:
        """Return frames to the allocator.

        The bump allocator only reclaims trailing frames (free in LIFO
        order -- how the training loop's per-iteration tensors behave);
        interior frees are tracked by tier watermarks.
        """
        by_tier: dict[Tier, list[int]] = {}
        for mapping in mappings:
            by_tier.setdefault(mapping.tier, []).append(mapping.frame)
        for tier, frames in by_tier.items():
            top = self._next_frame[tier]
            expected = set(range(top - len(frames), top))
            if set(frames) != expected:
                raise ValueError(
                    f"non-LIFO release on {tier.value}: {sorted(frames)}")
            self._next_frame[tier] = top - len(frames)


def transfer_latency(nbytes: int, policy: PlacementPolicy,
                     n_links: int, link_bw: float) -> float:
    """Figure 10's allocation-policy latency algebra.

    ``n_links`` is the device's total high-bandwidth link count N; each
    side (left/right memory-node) is reachable over N/2 links of
    ``link_bw`` bytes/sec each.
    """
    if nbytes < 0:
        raise ValueError("negative transfer size")
    if n_links < 2 or n_links % 2:
        raise ValueError("N must be an even link count >= 2")
    if link_bw <= 0:
        raise ValueError("link bandwidth must be positive")
    side_bw = (n_links / 2) * link_bw
    if policy is PlacementPolicy.LOCAL:
        return nbytes / side_bw
    return (nbytes / 2) / side_bw
