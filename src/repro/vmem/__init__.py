"""DNN memory virtualization substrate (Table I, Figure 10)."""

from repro.vmem.allocator import (OutOfRemoteMemoryError, PlacementPolicy,
                                  RemoteAllocator, transfer_latency)
from repro.vmem.driver import (PAGE_BYTES, AddressSpaceLayout, PageMapping,
                               Tier, default_layout)
from repro.vmem.manager import MemoryManager, MigrationPlan
from repro.vmem.policy import (MigrationAction, MigrationPolicy, TensorPlan,
                               offload_traffic_bytes,
                               round_trip_traffic_bytes)
from repro.vmem.runtime_api import (CopyDirection, CopyEvent, DeviceRuntime,
                                    RemotePtr)

__all__ = [
    "AddressSpaceLayout", "CopyDirection", "CopyEvent", "DeviceRuntime",
    "MemoryManager", "MigrationAction", "MigrationPlan", "MigrationPolicy",
    "OutOfRemoteMemoryError", "PAGE_BYTES", "PageMapping",
    "PlacementPolicy", "RemoteAllocator", "RemotePtr", "TensorPlan", "Tier",
    "default_layout", "offload_traffic_bytes", "round_trip_traffic_bytes",
    "transfer_latency",
]
