"""DNN memory virtualization substrate (Table I, Figure 10)."""

from repro.vmem.allocator import (OutOfRemoteMemoryError, PlacementPolicy,
                                  RemoteAllocator, transfer_latency)
from repro.vmem.driver import (PAGE_BYTES, AddressSpaceLayout, PageMapping,
                               Tier, default_layout)
from repro.vmem.manager import MemoryManager, MigrationPlan
from repro.vmem.policy import (MigrationAction, MigrationPolicy, TensorPlan,
                               offload_traffic_bytes,
                               round_trip_traffic_bytes)
from repro.vmem.prefetch import (ON_DEMAND, PREFETCH_POLICY_ORDER,
                                 FetchIssue, FetchSite, PrefetchContext,
                                 PrefetchPolicy, PrefetchSchedule,
                                 WasteFetch, choose_victim,
                                 collect_prefetch_stats, prefetch_policy)
from repro.vmem.runtime_api import (CopyDirection, CopyEvent, DeviceRuntime,
                                    RemotePtr)

__all__ = [
    "AddressSpaceLayout", "CopyDirection", "CopyEvent", "DeviceRuntime",
    "FetchIssue", "FetchSite", "MemoryManager", "MigrationAction",
    "MigrationPlan", "MigrationPolicy", "ON_DEMAND",
    "OutOfRemoteMemoryError", "PAGE_BYTES", "PREFETCH_POLICY_ORDER",
    "PageMapping", "PlacementPolicy", "PrefetchContext", "PrefetchPolicy",
    "PrefetchSchedule", "RemoteAllocator", "RemotePtr", "TensorPlan",
    "Tier", "WasteFetch", "choose_victim", "collect_prefetch_stats",
    "default_layout", "offload_traffic_bytes", "prefetch_policy",
    "round_trip_traffic_bytes", "transfer_latency",
]
