"""DAG-driven migration policy (paper Sections II-B, IV).

The runtime memory manager uses the network DAG's data dependencies to
decide, per feature map, one of three actions:

* ``OFFLOAD``  -- push to the backing store after its last forward reuse
  and prefetch it back before its backward use (vDNN-style memory
  overlaying).  Following the paper's stress-test methodology, every
  eligible tensor is offloaded regardless of whether it would fit.
* ``RECOMPUTE`` -- layers with short computation time (activations,
  pooling, ...) are recomputed during backpropagation instead of
  migrated (the MXNet optimization of footnote 4).
* ``RESIDENT`` -- stays in device memory (network inputs; or everything,
  when virtualization is disabled for oracle/scalability studies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind


class MigrationAction(enum.Enum):
    OFFLOAD = "offload"
    RECOMPUTE = "recompute"
    RESIDENT = "resident"


@dataclass(frozen=True)
class TensorPlan:
    """Migration decision for one layer's output feature map."""

    producer: str          # layer whose output this plans
    nbytes: int
    action: MigrationAction
    #: Offload may start once this layer's forward pass completes.
    offload_after: str
    #: Prefetch must complete before this layer's *backward* pass (the
    #: topologically-last forward consumer is the first backward one).
    prefetch_before: str

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("negative tensor size")


@dataclass(frozen=True)
class MigrationPolicy:
    """Policy knobs for plan derivation."""

    #: Disable all migration (oracle device, scalability study).
    virtualize: bool = True
    #: Apply the recompute-cheap-layers optimization.
    recompute_cheap: bool = True

    def plan(self, net: Network, batch: int) -> list[TensorPlan]:
        """Derive per-tensor migration plans in topological order."""
        plans = []
        for layer in net.layers:
            nbytes = layer.out_bytes(batch)
            last_use = net.last_forward_consumer(layer.name)
            if layer.kind is LayerKind.INPUT or not self.virtualize:
                action = MigrationAction.RESIDENT
            elif layer.is_cheap and self.recompute_cheap:
                action = MigrationAction.RECOMPUTE
            else:
                action = MigrationAction.OFFLOAD
            plans.append(TensorPlan(
                producer=layer.name, nbytes=nbytes, action=action,
                offload_after=last_use, prefetch_before=last_use))
        return plans


def offload_traffic_bytes(plans: list[TensorPlan]) -> int:
    """Bytes moved device -> backing store in one iteration."""
    return sum(p.nbytes for p in plans
               if p.action is MigrationAction.OFFLOAD)


def round_trip_traffic_bytes(plans: list[TensorPlan]) -> int:
    """Total migration bytes (offload + prefetch) per iteration."""
    return 2 * offload_traffic_bytes(plans)
