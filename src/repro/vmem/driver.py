"""Device-driver address-space model (paper Figure 10, Section III-B).

Under MC-DLA the driver manages its client device-node plus half of each
neighbouring memory-node as *one* device memory address space:

* ``device-local`` physical memory occupies the bottom of the space;
* the left and right memory-node halves are concatenated above it.

Existing system software (mmap) then maps the enlarged space to user
programs unchanged -- the device simply looks like a bigger-memory PCIe
device.  Pages are placed by :mod:`repro.vmem.allocator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import GB, MB

#: GPU large-page granularity used for remote placement.
PAGE_BYTES = 2 * MB


class Tier(enum.Enum):
    """The three memory regions a page can live in."""

    LOCAL = "device-local"
    REMOTE_LEFT = "remote-left"
    REMOTE_RIGHT = "remote-right"


@dataclass(frozen=True)
class PageMapping:
    """One virtual page's physical placement."""

    virtual_page: int
    tier: Tier
    frame: int

    def __post_init__(self) -> None:
        if self.virtual_page < 0 or self.frame < 0:
            raise ValueError("negative page numbers")


@dataclass(frozen=True)
class AddressSpaceLayout:
    """The concatenated physical address space of Figure 10."""

    local_capacity: int
    left_half_capacity: int
    right_half_capacity: int

    def __post_init__(self) -> None:
        for value in (self.local_capacity, self.left_half_capacity,
                      self.right_half_capacity):
            if value <= 0 or value % PAGE_BYTES:
                raise ValueError(
                    "capacities must be positive multiples of the page size")

    @property
    def total_capacity(self) -> int:
        return (self.local_capacity + self.left_half_capacity
                + self.right_half_capacity)

    @property
    def local_base(self) -> int:
        return 0

    @property
    def left_base(self) -> int:
        """Remote halves start right above device-local memory."""
        return self.local_capacity

    @property
    def right_base(self) -> int:
        return self.local_capacity + self.left_half_capacity

    def tier_of_address(self, physical_address: int) -> Tier:
        if physical_address < 0 or physical_address >= self.total_capacity:
            raise ValueError(f"address {physical_address:#x} out of range")
        if physical_address < self.left_base:
            return Tier.LOCAL
        if physical_address < self.right_base:
            return Tier.REMOTE_LEFT
        return Tier.REMOTE_RIGHT

    def frame_count(self, tier: Tier) -> int:
        sizes = {Tier.LOCAL: self.local_capacity,
                 Tier.REMOTE_LEFT: self.left_half_capacity,
                 Tier.REMOTE_RIGHT: self.right_half_capacity}
        return sizes[tier] // PAGE_BYTES

    def physical_address(self, mapping: PageMapping) -> int:
        """Physical address of a mapped page's first byte."""
        if mapping.frame >= self.frame_count(mapping.tier):
            raise ValueError(
                f"frame {mapping.frame} exceeds {mapping.tier.value}")
        bases = {Tier.LOCAL: self.local_base,
                 Tier.REMOTE_LEFT: self.left_base,
                 Tier.REMOTE_RIGHT: self.right_base}
        return bases[mapping.tier] + mapping.frame * PAGE_BYTES


def default_layout(local_capacity: int = 16 * GB,
                   node_half_capacity: int = 640 * GB) -> AddressSpaceLayout:
    """Baseline layout: 16 GB HBM + two halves of 1.3 TB memory-nodes."""
    return AddressSpaceLayout(local_capacity, node_half_capacity,
                              node_half_capacity)
