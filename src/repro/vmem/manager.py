"""Runtime memory manager: turns a policy into an executable plan.

Combines the migration policy (:mod:`repro.vmem.policy`) with the
Table I runtime API (:mod:`repro.vmem.runtime_api`) so examples can
execute plans against the modeled address space, and exposes the plan
summary (tensor list, traffic totals, footprints) that the system
simulator's schedule builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Network
from repro.vmem.policy import (MigrationAction, MigrationPolicy, TensorPlan,
                               offload_traffic_bytes,
                               round_trip_traffic_bytes)
from repro.vmem.runtime_api import CopyDirection, DeviceRuntime, RemotePtr


@dataclass(frozen=True)
class MigrationPlan:
    """The manager's per-iteration plan for one network instance."""

    network: str
    batch: int
    tensors: tuple[TensorPlan, ...]

    @property
    def offloaded(self) -> tuple[TensorPlan, ...]:
        return tuple(t for t in self.tensors
                     if t.action is MigrationAction.OFFLOAD)

    @property
    def recomputed(self) -> tuple[TensorPlan, ...]:
        return tuple(t for t in self.tensors
                     if t.action is MigrationAction.RECOMPUTE)

    @property
    def offload_bytes(self) -> int:
        return offload_traffic_bytes(list(self.tensors))

    @property
    def round_trip_bytes(self) -> int:
        return round_trip_traffic_bytes(list(self.tensors))

    def tensor(self, producer: str) -> TensorPlan:
        for plan in self.tensors:
            if plan.producer == producer:
                return plan
        raise KeyError(f"no tensor plan for layer {producer!r}")


class MemoryManager:
    """vDNN-style runtime memory manager over the Table I API."""

    def __init__(self, policy: MigrationPolicy | None = None) -> None:
        self.policy = policy or MigrationPolicy()

    def plan(self, net: Network, batch: int) -> MigrationPlan:
        """Derive the iteration's migration plan from the DAG."""
        tensors = tuple(self.policy.plan(net, batch))
        return MigrationPlan(network=net.name, batch=batch, tensors=tensors)

    def execute_forward(self, plan: MigrationPlan,
                        runtime: DeviceRuntime) -> dict[str, RemotePtr]:
        """Run the forward pass's offloads against the runtime API.

        Allocates remote backing for every offloaded tensor and issues
        the LocalToRemote copies; returns the live pointers keyed by
        producer layer, for :meth:`execute_backward` to consume.
        """
        pointers: dict[str, RemotePtr] = {}
        local_scratch = 0  # modeled device-local source address
        for tensor in plan.offloaded:
            ptr = runtime.malloc_remote(tensor.nbytes)
            event = runtime.memcpy_async(
                src=local_scratch, dst=ptr.address, size=tensor.nbytes,
                direction=CopyDirection.LOCAL_TO_REMOTE)
            runtime.advance_clock(event.duration)
            pointers[tensor.producer] = ptr
        return pointers

    def execute_backward(self, plan: MigrationPlan, runtime: DeviceRuntime,
                         pointers: dict[str, RemotePtr]) -> None:
        """Prefetch every offloaded tensor back and free its backing."""
        local_scratch = 0
        for tensor in reversed(plan.offloaded):
            ptr = pointers.pop(tensor.producer)
            event = runtime.memcpy_async(
                src=ptr.address, dst=local_scratch, size=tensor.nbytes,
                direction=CopyDirection.REMOTE_TO_LOCAL)
            runtime.advance_clock(event.duration)
            runtime.free_remote(ptr)
        if pointers:
            raise ValueError(
                f"leaked remote tensors: {sorted(pointers)}")
