"""Pluggable prefetch/eviction policies for the vmem offload path.

The paper's stress methodology offloads every eligible tensor and
prefetches it back before reuse; *when* each prefetch is issued decides
whether the migration hides behind compute or stalls it.  The seed
hard-wired one choice (a bounded lookahead of ``prefetch_window``
steps).  This module makes the choice a policy:

=============  ==========================================================
``on-demand``  the legacy baseline: issue each fetch ``prefetch_window``
               steps before its consumer (vDNN's bounded lookahead);
               byte-for-byte identical to the seed's schedules.
``next-op``    minimal lookahead: issue when the op immediately before
               the consumer completes.  The most conservative timing --
               nothing sits in device memory early, everything risks
               arriving late.
``stride``     a history predictor: learns the stride of the consumer
               step sequence and speculates ``2 x prefetch_window``
               steps ahead on a predicted hit.  Mispredictions (branchy
               graphs) fetch garbage -- wasted bytes -- and fall back to
               demand fetching; a bounded stash forces evictions when
               speculation runs too far ahead.
``cost-model`` just-in-time: consults the same latency model the
               simulator prices ops with (compute seconds per step, DMA
               seconds per tensor, DMA queueing) and issues each fetch
               at the latest gate that still predicts completion before
               the consumer needs it.
``clairvoyant`` the schedule oracle: knows the whole iteration and
               issues every fetch the moment its tensor is offloaded.
               The upper bound on timeliness -- zero wasted bytes, zero
               evictions, and (weakly) minimal stall.
=============  ==========================================================

Policies turn a :class:`PrefetchContext` (the fetch sites of one
schedule plus the cost estimates) into a :class:`PrefetchSchedule`
(per-fetch gate steps, speculative waste fetches, evictions).  The
schedule builders in :mod:`repro.core.schedule` and
:mod:`repro.pipeline.lowering` emit ops from that schedule, and
:func:`collect_prefetch_stats` distils the scheduled timeline into the
:class:`~repro.core.metrics.PrefetchStats` block campaigns persist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from collections.abc import Sequence

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.metrics import PrefetchStats
    from repro.core.timeline import TimelineResult

#: Presentation order of the policy axis (baseline first, oracle last).
PREFETCH_POLICY_ORDER = ("on-demand", "next-op", "stride", "cost-model",
                         "clairvoyant")

#: The legacy baseline every differential test anchors on.
ON_DEMAND = "on-demand"

#: How far beyond the legacy window the stride predictor speculates.
STRIDE_DEPTH_FACTOR = 2


@dataclass(frozen=True)
class FetchSite:
    """One tensor a schedule must bring back from the backing store."""

    producer: str
    #: Index of the consuming step in the schedule's step sequence
    #: (backward steps for training, forward layers for inference).
    use_step: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.use_step < 0:
            raise ValueError("negative use step")
        if self.nbytes < 0:
            raise ValueError("negative tensor size")


@dataclass(frozen=True)
class PrefetchContext:
    """Everything a policy may consult when timing its fetches."""

    #: Steps of the consuming schedule, in execution order.
    n_steps: int
    #: Fetch sites in engine issue order (non-decreasing ``use_step``).
    sites: tuple[FetchSite, ...]
    #: Estimated compute seconds of each step (the same latency model
    #: the simulator prices ops with).
    step_seconds: tuple[float, ...]
    #: Estimated DMA seconds of each site's transfer, aligned with
    #: ``sites``.
    fetch_seconds: tuple[float, ...]
    #: The legacy bounded lookahead (``SystemConfig.prefetch_window``).
    window: int
    #: Stash capacity for speculative policies
    #: (``SystemConfig.prefetch_stash``).
    stash: int

    def __post_init__(self) -> None:
        if self.n_steps < 0:
            raise ValueError("negative step count")
        if len(self.step_seconds) != self.n_steps:
            raise ValueError("step_seconds must cover every step")
        if len(self.fetch_seconds) != len(self.sites):
            raise ValueError("fetch_seconds must cover every site")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.stash < 1:
            raise ValueError("stash must be >= 1")
        last = -1
        for site in self.sites:
            if site.use_step >= self.n_steps:
                raise ValueError(
                    f"site {site.producer!r} uses step {site.use_step} "
                    f"outside the {self.n_steps}-step schedule")
            if site.use_step < last:
                raise ValueError("sites must be in use order")
            last = site.use_step


@dataclass(frozen=True)
class FetchIssue:
    """When one site's real fetch is issued.

    ``gate_step`` names the step whose *compute completion* releases
    the DMA; ``None`` gates only on the tensor's offload (the earliest
    possible issue).
    """

    site: FetchSite
    gate_step: int | None
    #: True when this fetch was re-issued after an eviction.
    refetch: bool = False

    def __post_init__(self) -> None:
        if self.gate_step is not None and \
                not 0 <= self.gate_step < self.site.use_step:
            raise ValueError(
                f"gate step {self.gate_step} must precede use step "
                f"{self.site.use_step}")


@dataclass(frozen=True)
class WasteFetch:
    """One speculative DMA that moved bytes nothing consumed."""

    #: Site index before whose real fetch this op is emitted.
    before_site: int
    gate_step: int | None
    nbytes: int
    label: str

    def __post_init__(self) -> None:
        if self.before_site < 0:
            raise ValueError("negative site index")
        if self.nbytes < 0:
            raise ValueError("negative byte count")


@dataclass(frozen=True)
class PrefetchSchedule:
    """A policy's complete issue plan for one schedule's fetches."""

    policy: str
    #: Aligned with the context's ``sites``.
    issues: tuple[FetchIssue, ...]
    waste: tuple[WasteFetch, ...] = ()
    evictions: int = 0

    def __post_init__(self) -> None:
        if self.evictions < 0:
            raise ValueError("negative eviction count")

    @property
    def wasted_bytes(self) -> int:
        return sum(w.nbytes for w in self.waste)

    def waste_before(self) -> dict[int, tuple[WasteFetch, ...]]:
        """Waste fetches grouped by the site they precede."""
        grouped: dict[int, list[WasteFetch]] = {}
        for item in self.waste:
            grouped.setdefault(item.before_site, []).append(item)
        return {k: tuple(v) for k, v in grouped.items()}


def choose_victim(residents: Sequence[FetchSite], frontier: int,
                  window: int) -> int | None:
    """Pick the stash tensor to evict, or ``None`` if none is safe.

    The victim is the resident whose use lies furthest in the future
    (Belady's choice among evictables).  A tensor whose use falls
    within ``window`` steps of the issue frontier is *live* -- evicting
    it would guarantee a demand stall -- and is never chosen; with no
    safe victim the caller must defer instead.
    """
    best = None
    for index, site in enumerate(residents):
        if site.use_step <= frontier + window:
            continue  # live in the current schedule window
        if best is None or (site.use_step, index) \
                > (residents[best].use_step, best):
            best = index
    return best


class PrefetchPolicy:
    """Interface: turn a context into an issue schedule."""

    name: str = "abstract"

    def plan(self, ctx: PrefetchContext) -> PrefetchSchedule:
        raise NotImplementedError


class OnDemandPolicy(PrefetchPolicy):
    """The seed's bounded lookahead, reproduced gate-for-gate."""

    name = ON_DEMAND

    def plan(self, ctx: PrefetchContext) -> PrefetchSchedule:
        issues = []
        for site in ctx.sites:
            gate = site.use_step - ctx.window
            issues.append(FetchIssue(site, gate if gate >= 0 else None))
        return PrefetchSchedule(policy=self.name, issues=tuple(issues))


class NextOpPolicy(PrefetchPolicy):
    """One step of lookahead: fetch while the previous op runs."""

    name = "next-op"

    def plan(self, ctx: PrefetchContext) -> PrefetchSchedule:
        issues = []
        for site in ctx.sites:
            gate = site.use_step - 1
            issues.append(FetchIssue(site, gate if gate >= 0 else None))
        return PrefetchSchedule(policy=self.name, issues=tuple(issues))


class ClairvoyantPolicy(PrefetchPolicy):
    """The schedule oracle: every fetch at the earliest possible issue.

    Knowing the whole iteration, it never speculates (zero waste) and
    never over-commits (zero evictions); the DMA engine's issue-order
    serialization is the only thing between a fetch and its consumer.
    """

    name = "clairvoyant"

    def plan(self, ctx: PrefetchContext) -> PrefetchSchedule:
        issues = tuple(FetchIssue(site, None) for site in ctx.sites)
        return PrefetchSchedule(policy=self.name, issues=issues)


class CostModelPolicy(PrefetchPolicy):
    """Just-in-time issue driven by the simulator's own latency model.

    For each fetch, walk candidate gates from the latest backwards and
    take the first whose predicted DMA completion (including queueing
    behind earlier fetches on the serialized DMA engine) beats the
    consumer's predicted start; if even the earliest issue cannot make
    the deadline the fetch goes out ungated.
    """

    name = "cost-model"

    def plan(self, ctx: PrefetchContext) -> PrefetchSchedule:
        # prefix[k]: predicted start of step k if compute never stalls.
        prefix = [0.0]
        for seconds in ctx.step_seconds:
            prefix.append(prefix[-1] + seconds)
        dma_free = 0.0
        issues = []
        for index, site in enumerate(ctx.sites):
            deadline = prefix[site.use_step]
            need = ctx.fetch_seconds[index]
            chosen = None
            for gate in range(site.use_step - 1, -1, -1):
                if max(prefix[gate + 1], dma_free) + need <= deadline:
                    chosen = gate
                    break
            start = max(prefix[chosen + 1] if chosen is not None
                        else 0.0, dma_free)
            dma_free = start + need
            issues.append(FetchIssue(site, chosen))
        return PrefetchSchedule(policy=self.name, issues=tuple(issues))


class StridePolicy(PrefetchPolicy):
    """History/stride predictor with a bounded stash and eviction.

    Learns the stride between consecutive consumer steps and, on a
    predicted hit, speculates ahead of the consumer -- starting at
    ``STRIDE_DEPTH_FACTOR x window`` steps and ramping one step deeper
    per consecutive hit (classic confidence ramping), capped at
    ``window + stash``.  A misprediction moves the previous transfer's
    worth of garbage (wasted bytes) and falls back to demand fetching.
    Deep speculation is capped by the stash: when full, the
    furthest-future resident is evicted (never one live within the
    schedule window) and re-fetched on demand -- its first trip
    becomes wasted traffic.
    """

    name = "stride"

    def plan(self, ctx: PrefetchContext) -> PrefetchSchedule:
        base_depth = STRIDE_DEPTH_FACTOR * ctx.window
        max_depth = ctx.window + ctx.stash
        issues: list[FetchIssue] = []
        waste: list[WasteFetch] = []
        resident: list[int] = []  # site indices speculated and unconsumed
        evictions = 0
        prev_use: int | None = None
        stride = 1
        run_length = 0
        for index, site in enumerate(ctx.sites):
            predicted = None if prev_use is None else prev_use + stride
            if predicted == site.use_step:
                run_length += 1
                depth = min(base_depth + run_length - 1, max_depth)
                gate = site.use_step - depth
                gate = gate if gate >= 0 else None
                frontier = gate if gate is not None else 0
                resident = [j for j in resident
                            if ctx.sites[j].use_step > frontier]
                if len(resident) >= ctx.stash:
                    victim = choose_victim(
                        [ctx.sites[j] for j in resident], frontier,
                        ctx.window)
                    if victim is not None:
                        j = resident.pop(victim)
                        vsite = ctx.sites[j]
                        evictions += 1
                        waste.append(WasteFetch(
                            before_site=j,
                            gate_step=issues[j].gate_step,
                            nbytes=vsite.nbytes,
                            label=f"evict:{vsite.producer}"))
                        demand = vsite.use_step - 1
                        issues[j] = FetchIssue(
                            vsite, demand if demand >= 0 else None,
                            refetch=True)
                        resident.append(index)
                    else:
                        # Everything resident is live: defer to the
                        # legacy lookahead instead of evicting.
                        gate = site.use_step - ctx.window
                        gate = gate if gate >= 0 else None
                else:
                    resident.append(index)
                issues.append(FetchIssue(site, gate))
            else:
                run_length = 0
                if predicted is not None:
                    # Speculatively fetched the wrong tensor: charge
                    # the previous transfer's size, issued at the
                    # depth the predictor would have used.
                    gate = min(predicted - base_depth,
                               site.use_step - 1)
                    waste.append(WasteFetch(
                        before_site=index,
                        gate_step=gate if gate >= 0 else None,
                        nbytes=ctx.sites[index - 1].nbytes,
                        label=f"mispredict:{site.producer}"))
                demand = site.use_step - 1
                issues.append(FetchIssue(
                    site, demand if demand >= 0 else None))
            if prev_use is not None:
                stride = site.use_step - prev_use
            prev_use = site.use_step
        return PrefetchSchedule(policy=self.name, issues=tuple(issues),
                                waste=tuple(waste), evictions=evictions)


_POLICIES: dict[str, PrefetchPolicy] = {
    policy.name: policy for policy in (
        OnDemandPolicy(), NextOpPolicy(), StridePolicy(),
        CostModelPolicy(), ClairvoyantPolicy())
}

assert tuple(sorted(_POLICIES)) == tuple(sorted(PREFETCH_POLICY_ORDER))


def prefetch_policy(name: str) -> PrefetchPolicy:
    """Look a policy up by its axis name."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown prefetch policy {name!r}; known: "
            f"{', '.join(PREFETCH_POLICY_ORDER)}") from None


# ---------------------------------------------------------------------------
# Post-schedule accounting


@dataclass
class _Intervals:
    """Per-channel busy intervals of one engine family."""

    spans: dict[int, list[tuple[float, float]]] = field(
        default_factory=dict)

    def add(self, channel: int, start: float, finish: float) -> None:
        if finish > start:
            self.spans.setdefault(channel, []).append((start, finish))

    def overlap(self, other: "_Intervals") -> float:
        total = 0.0
        for channel, mine in self.spans.items():
            theirs = other.spans.get(channel)
            if not theirs:
                continue
            for a0, a1 in mine:
                for b0, b1 in theirs:
                    total += max(0.0, min(a1, b1) - max(a0, b0))
        return total


def _collect_columnar(timeline, policy: str,
                      evictions: int) -> PrefetchStats:
    """Columnar fast path of :func:`collect_prefetch_stats`.

    Operates on a :class:`~repro.core.optable.ColumnarTimeline`'s raw
    columns -- no :class:`~repro.core.timeline.ScheduledOp` objects are
    materialized, the scheduler's recorded per-slot previous-finish
    column replaces the collector's running dict, and the DMA/collective
    overlap is priced on numpy interval arrays.  Every float it returns
    is accumulated in the same order as the scalar collector, so the
    stats are byte-identical.
    """
    import numpy as np

    from repro.core.metrics import PrefetchStats
    from repro.core.optable import ENGINE_CODE
    from repro.core.timeline import EngineKind

    table = timeline.table
    arrays = timeline.as_arrays()
    engine = arrays["engine"]
    starts = timeline.start
    finishes = timeline.finish
    prev_slot = timeline.prev_slot_finish
    engines = table.engines
    deps = table.deps
    tags = table.tags
    nbytes = table.nbytes
    durations = table.durations

    dma_in_idx = np.nonzero(engine == ENGINE_CODE[EngineKind.DMA_IN])[0]
    prefetch_bytes = sum(nbytes[i] for i in dma_in_idx)
    wasted = sum(nbytes[i] for i in dma_in_idx
                 if tags[i].startswith("waste:"))

    late = jit = early = 0
    n_prefetches = 0
    stall = 0.0
    compute = EngineKind.COMPUTE
    dma_in = EngineKind.DMA_IN
    for i in np.nonzero(engine == ENGINE_CODE[compute])[0]:
        op_deps = deps[i]
        if not op_deps:
            continue
        fetches = [d for d in op_deps if engines[d] is dma_in]
        if not fetches:
            continue
        other = max((finishes[d] for d in op_deps
                     if engines[d] is not dma_in), default=0.0)
        prev = prev_slot[i]
        unblocked = prev if prev > other else other
        stall += max(0.0, starts[i] - unblocked)
        for d in fetches:
            n_prefetches += 1
            slack = unblocked - finishes[d]
            if slack < 0:
                late += 1
            elif slack <= durations[d]:
                jit += 1
            else:
                early += 1
    hit_rate = 1.0 if n_prefetches == 0 \
        else (n_prefetches - late) / n_prefetches
    return PrefetchStats(
        policy=policy,
        n_prefetches=n_prefetches,
        prefetch_bytes=prefetch_bytes,
        wasted_bytes=wasted,
        evictions=evictions,
        stall_seconds=stall,
        late=late, jit=jit, early=early,
        hit_rate=hit_rate,
        contended_seconds=_columnar_overlap(arrays),
    )


def _columnar_overlap(arrays) -> float:
    """DMA x collective busy overlap on numpy interval columns.

    Replicates :meth:`_Intervals.overlap` exactly: per channel (in the
    DMA family's first-appearance order, matching the scalar dict's
    insertion order) the pairwise clipped overlaps are laid out
    row-major, concatenated, and reduced with one sequential
    ``cumsum`` -- the same additions in the same order as the scalar
    nested loops, hence bit-identical totals.
    """
    import numpy as np

    from repro.core.optable import ENGINE_CODE
    from repro.core.timeline import EngineKind

    engine = arrays["engine"]
    start = arrays["start"]
    finish = arrays["finish"]
    channel = arrays["channel"]
    span = finish > start
    dma = span & ((engine == ENGINE_CODE[EngineKind.DMA_IN])
                  | (engine == ENGINE_CODE[EngineKind.DMA_OUT]))
    comm = span & (engine == ENGINE_CODE[EngineKind.COMM])
    if not dma.any() or not comm.any():
        return 0.0
    dma_ch = channel[dma]
    comm_ch = channel[comm]
    a0, a1 = start[dma], finish[dma]
    b0, b1 = start[comm], finish[comm]
    _, first = np.unique(dma_ch, return_index=True)
    terms = []
    for ch in dma_ch[np.sort(first)]:
        mine = dma_ch == ch
        theirs = comm_ch == ch
        if not theirs.any():
            continue
        pair = (np.minimum.outer(a1[mine], b1[theirs])
                - np.maximum.outer(a0[mine], b0[theirs]))
        terms.append(np.maximum(0.0, pair).ravel())
    if not terms:
        return 0.0
    return float(np.cumsum(np.concatenate(terms))[-1])


def collect_prefetch_stats(timeline: TimelineResult, policy: str,
                           evictions: int = 0) -> PrefetchStats:
    """Distil a scheduled timeline into the campaign-facing stats.

    Works for any schedule the emitters produce -- training, inference
    weight streaming, and multi-channel pipelines -- because it reasons
    only over engine kinds: a compute op stalls when its DMA-in
    dependencies finish after both its own engine and its non-DMA
    dependencies were ready.  Wasted traffic is whatever rode a
    ``waste:`` tag.

    Accepts either timeline flavor: a columnar
    :class:`~repro.core.optable.ColumnarTimeline` takes the vectorized
    fast path (same numbers, no per-op object materialization), a
    scalar :class:`~repro.core.timeline.TimelineResult` the reference
    loop below.
    """
    # Imported here, not at module scope: repro.training (and through
    # it repro.core.metrics) imports repro.vmem, so a top-level import
    # would close an import cycle through the package __init__.
    from repro.core.metrics import PrefetchStats
    from repro.core.optable import ColumnarTimeline
    from repro.core.timeline import EngineKind

    if isinstance(timeline, ColumnarTimeline):
        stats = _collect_columnar(timeline, policy, evictions)
        _record_stats(stats)
        return stats

    scheduled = timeline.scheduled
    prev_finish: dict[tuple[EngineKind, int], float] = {}
    dma_busy = _Intervals()
    comm_busy = _Intervals()
    late = jit = early = 0
    n_prefetches = 0
    stall = 0.0
    prefetch_bytes = 0
    wasted = 0
    for entry in scheduled:
        op = entry.op
        slot = (op.engine, op.channel)
        if op.engine is EngineKind.DMA_IN:
            prefetch_bytes += op.nbytes
            if op.tag.startswith("waste:"):
                wasted += op.nbytes
        if op.engine in (EngineKind.DMA_IN, EngineKind.DMA_OUT):
            dma_busy.add(op.channel, entry.start, entry.finish)
        elif op.engine is EngineKind.COMM:
            comm_busy.add(op.channel, entry.start, entry.finish)
        elif op.engine is EngineKind.COMPUTE and op.deps:
            fetches = [d for d in op.deps
                       if scheduled[d].op.engine is EngineKind.DMA_IN]
            if fetches:
                other = max(
                    (scheduled[d].finish for d in op.deps
                     if scheduled[d].op.engine is not EngineKind.DMA_IN),
                    default=0.0)
                unblocked = max(prev_finish.get(slot, 0.0), other)
                stall += max(0.0, entry.start - unblocked)
                for d in fetches:
                    n_prefetches += 1
                    slack = unblocked - scheduled[d].finish
                    if slack < 0:
                        late += 1
                    elif slack <= scheduled[d].op.duration:
                        jit += 1
                    else:
                        early += 1
        prev_finish[slot] = entry.finish
    hit_rate = 1.0 if n_prefetches == 0 \
        else (n_prefetches - late) / n_prefetches
    stats = PrefetchStats(
        policy=policy,
        n_prefetches=n_prefetches,
        prefetch_bytes=prefetch_bytes,
        wasted_bytes=wasted,
        evictions=evictions,
        stall_seconds=stall,
        late=late, jit=jit, early=early,
        hit_rate=hit_rate,
        contended_seconds=dma_busy.overlap(comm_busy),
    )
    _record_stats(stats)
    return stats


def _record_stats(stats) -> None:
    """Telemetry probe: per-policy issue/waste/evict counters,
    updated once per collected timeline (never in the hot loops)."""
    from repro.telemetry.registry import metrics_registry
    registry = metrics_registry()
    if registry is None:
        return
    labels = {"policy": stats.policy}
    registry.counter(
        "repro_prefetch_issues_total",
        "prefetch DMAs issued", **labels).inc(stats.n_prefetches)
    registry.counter(
        "repro_prefetch_evictions_total",
        "prefetch stash evictions", **labels).inc(stats.evictions)
    registry.counter(
        "repro_prefetch_wasted_bytes_total",
        "speculative prefetch bytes never consumed",
        **labels).inc(stats.wasted_bytes)
    registry.counter(
        "repro_prefetch_late_total",
        "prefetches that arrived after their consumer could run",
        **labels).inc(stats.late)
