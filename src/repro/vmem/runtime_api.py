"""CUDA-style runtime API extensions for ``device-remote`` memory.

Paper Table I introduces three extensions to the CUDA runtime so
existing DL frameworks can exploit memory-nodes transparently:

=====================  =====================================================
``cudaMallocRemote``   allocate in device-remote memory, return a pointer
``cudaFreeRemote``     free a device-remote allocation
``cudaMemcpyAsync``    gains ``LocalToRemote`` / ``RemoteToLocal`` directions
=====================  =====================================================

This module implements a functional model of that API: allocations get
real (modeled) virtual addresses backed by page mappings from the
:class:`~repro.vmem.allocator.RemoteAllocator`, and async copies return
events whose completion times follow the Figure 10 latency algebra.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.units import GBPS
from repro.vmem.allocator import (PlacementPolicy, RemoteAllocator,
                                  transfer_latency)
from repro.vmem.driver import (PAGE_BYTES, AddressSpaceLayout, PageMapping,
                               default_layout)


class CopyDirection(enum.Enum):
    """``cudaMemcpyAsync`` directions, extended per Table I."""

    HOST_TO_LOCAL = "HostToDevice"
    LOCAL_TO_HOST = "DeviceToHost"
    LOCAL_TO_REMOTE = "LocalToRemote"
    REMOTE_TO_LOCAL = "RemoteToLocal"


@dataclass(frozen=True)
class RemotePtr:
    """An opaque device-remote pointer returned by ``malloc_remote``."""

    address: int
    size: int


@dataclass(frozen=True)
class CopyEvent:
    """Completion record of one async copy."""

    src: int
    dst: int
    size: int
    direction: CopyDirection
    issue_time: float
    duration: float

    @property
    def complete_time(self) -> float:
        return self.issue_time + self.duration


@dataclass
class DeviceRuntime:
    """The per-device runtime state behind the Table I API.

    ``n_links``/``link_bw`` size the remote channel; host copies use
    ``host_link_bw`` (the legacy PCIe path).  A monotonically advancing
    ``clock`` orders async events; tests drive it explicitly.
    """

    layout: AddressSpaceLayout = field(default_factory=default_layout)
    policy: PlacementPolicy = PlacementPolicy.BW_AWARE
    n_links: int = 6
    link_bw: float = 25 * GBPS
    host_link_bw: float = 16 * GBPS
    clock: float = 0.0

    def __post_init__(self) -> None:
        self._allocator = RemoteAllocator(self.layout, self.policy)
        self._allocations: dict[int, list[PageMapping]] = {}
        self._next_va = self.layout.left_base
        self._events: list[CopyEvent] = []

    # -- Table I API ---------------------------------------------------------

    def malloc_remote(self, size: int) -> RemotePtr:
        """``cudaMallocRemote``: place ``size`` bytes in remote memory."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        mappings = self._allocator.allocate(size)
        address = self._next_va
        self._next_va += len(mappings) * PAGE_BYTES
        self._allocations[address] = mappings
        return RemotePtr(address=address, size=size)

    def free_remote(self, ptr: RemotePtr) -> None:
        """``cudaFreeRemote``: release a remote allocation."""
        mappings = self._allocations.pop(ptr.address, None)
        if mappings is None:
            raise ValueError(f"pointer {ptr.address:#x} was not allocated "
                             "by malloc_remote (double free?)")
        self._allocator.release(mappings)

    def memcpy_async(self, src: int, dst: int, size: int,
                     direction: CopyDirection) -> CopyEvent:
        """``cudaMemcpyAsync`` with the extended direction set."""
        if size <= 0:
            raise ValueError("copy size must be positive")
        if direction in (CopyDirection.LOCAL_TO_REMOTE,
                         CopyDirection.REMOTE_TO_LOCAL):
            remote = dst if direction is CopyDirection.LOCAL_TO_REMOTE \
                else src
            self._check_remote_range(remote, size)
            duration = transfer_latency(size, self.policy, self.n_links,
                                        self.link_bw)
        else:
            duration = size / self.host_link_bw
        event = CopyEvent(src=src, dst=dst, size=size, direction=direction,
                          issue_time=self.clock, duration=duration)
        self._events.append(event)
        return event

    # -- Introspection ---------------------------------------------------------

    def _check_remote_range(self, address: int, size: int) -> None:
        for base, mappings in self._allocations.items():
            end = base + len(mappings) * PAGE_BYTES
            if base <= address and address + size <= end:
                return
        raise ValueError(
            f"remote range [{address:#x}, +{size}) is not allocated")

    def mappings_of(self, ptr: RemotePtr) -> list[PageMapping]:
        if ptr.address not in self._allocations:
            raise ValueError(f"pointer {ptr.address:#x} is not live")
        return list(self._allocations[ptr.address])

    @property
    def live_remote_bytes(self) -> int:
        return PAGE_BYTES * sum(len(m) for m in self._allocations.values())

    @property
    def events(self) -> list[CopyEvent]:
        return list(self._events)

    def advance_clock(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("the clock cannot run backwards")
        self.clock += seconds
