"""Content-addressed on-disk cache for simulation results.

Each cell of a campaign is stored as one JSON file whose name is the
SHA-256 of everything that determines the result:

* the point's canonical description (design, workload, overrides, ...);
* the factory used to build the design point;
* a fingerprint of the ``repro`` package's source code, so any code
  change invalidates every cached cell at once — stale physics can
  never leak into a fresh figure.

Layout: ``<root>/<generation>/<key[:2]>/<key>.json``, where the
generation directory is the code fingerprint (the fan-out keeps
directories small on big sweeps).  The first write of a new generation
prunes older generations, so edits never accumulate orphaned entries.
Writes are atomic (tmp + rename) so concurrent campaigns sharing a
cache directory never read torn files.  Corrupt or unreadable entries
read as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path

from repro.core.metrics import SimulationResult
from repro.telemetry.registry import NOOP, on_activation

#: Environment variable naming a cache directory shared across runs.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Telemetry probes (rebound by the registry activation hook).  The
#: per-instance ``hits``/``misses``/``bytes_read``/``bytes_written``
#: tallies on :class:`ResultCache` are always on -- the campaign CLI
#: summary reports them with or without ``--telemetry``.
_HIT = NOOP
_MISS = NOOP
_READ = NOOP
_WRITTEN = NOOP


def _bind_probes(registry) -> None:
    global _HIT, _MISS, _READ, _WRITTEN
    if registry is None:
        _HIT = _MISS = _READ = _WRITTEN = NOOP
    else:
        _HIT = registry.counter(
            "repro_campaign_cache_hits_total",
            "campaign cells replayed from the on-disk cache")
        _MISS = registry.counter(
            "repro_campaign_cache_misses_total",
            "campaign cell cache lookups that missed")
        _READ = registry.counter(
            "repro_campaign_cache_read_bytes_total",
            "bytes of cached results read")
        _WRITTEN = registry.counter(
            "repro_campaign_cache_written_bytes_total",
            "bytes of results written to the cache")


on_activation(_bind_probes)

_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (cached per process)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/campaign``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "campaign"


class ResultCache:
    """A directory of content-addressed ``SimulationResult`` snapshots."""

    def __init__(self, root: Path | str,
                 code_version: str | None = None) -> None:
        self.root = Path(root)
        self.code_version = (code_version if code_version is not None
                             else code_fingerprint())
        self._pruned = False
        #: Lifetime lookup tallies (always on; see module docstring).
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @classmethod
    def from_env(cls) -> "ResultCache | None":
        """A cache at ``$REPRO_CACHE_DIR``, or ``None`` when unset."""
        if os.environ.get(CACHE_DIR_ENV):
            return cls(default_cache_dir())
        return None

    def key(self, description: dict, factory_id: str) -> str:
        """The content address of one campaign cell."""
        payload = json.dumps(
            {"point": description, "factory": factory_id,
             "code_version": self.code_version},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def generation_root(self) -> Path:
        """Where this code generation's entries live."""
        return self.root / self.code_version[:16]

    def path(self, key: str) -> Path:
        return self.generation_root / key[:2] / f"{key}.json"

    def _prune_stale_generations(self) -> None:
        """Drop entries written by other code versions (best effort)."""
        if self._pruned:
            return
        self._pruned = True
        current = self.generation_root.name
        try:
            stale = [d for d in self.root.iterdir()
                     if d.is_dir() and d.name != current]
        except OSError:
            return
        for directory in stale:
            shutil.rmtree(directory, ignore_errors=True)

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on any miss."""
        try:
            text = self.path(key).read_text()
            result = SimulationResult.from_dict(json.loads(text))
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            _MISS.inc()
            return None
        self.hits += 1
        self.bytes_read += len(text)
        _HIT.inc()
        _READ.inc(len(text))
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Atomically persist ``result`` under ``key``."""
        self._prune_stale_generations()
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result.to_dict(), sort_keys=True)
        self.bytes_written += len(payload)
        _WRITTEN.inc(len(payload))
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.generation_root.is_dir():
            return 0
        return sum(1 for _ in self.generation_root.glob("*/*.json"))
