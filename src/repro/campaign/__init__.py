"""Parallel, disk-cached simulation campaigns.

The campaign layer turns the simulator into sweep infrastructure: a
grid of :class:`CampaignPoint` cells fans out across a process pool,
each finished cell is memoized in a content-addressed on-disk cache
(keyed on the point *and* the package's source fingerprint), and every
cell reports success or failure individually.

Quickstart::

    from repro.campaign import CampaignPoint, ResultCache, run_campaign

    points = [CampaignPoint("MC-DLA(B)", "VGG-E", batch=256)]
    report = run_campaign(points, jobs=4, cache=ResultCache(".cache"))
    print(report.result("MC-DLA(B)", "VGG-E", 256,
                        points[0].strategy).iteration_time)

``python -m repro campaign`` exposes the same engine on the command
line; the paper's evaluation matrix, sensitivity studies, ablations,
and scalability sweeps are all declarative grids over it.
"""

from repro.campaign.cache import (CACHE_DIR_ENV, ResultCache,
                                  code_fingerprint, default_cache_dir)
from repro.campaign.points import (CampaignPoint, canonicalize,
                                   cluster_grid, fault_grid, grid,
                                   pipeline_grid, prefetch_grid,
                                   serving_grid)
from repro.campaign.runner import (CampaignError, CampaignReport,
                                   CellOutcome, run_campaign)

__all__ = [
    "CACHE_DIR_ENV", "CampaignError", "CampaignPoint", "CampaignReport",
    "CellOutcome", "ResultCache", "canonicalize", "cluster_grid",
    "code_fingerprint", "default_cache_dir", "fault_grid", "grid",
    "pipeline_grid", "prefetch_grid", "run_campaign", "serving_grid",
]
