"""Campaign points: one simulator cell, declaratively.

A :class:`CampaignPoint` names everything needed to rebuild and rerun a
single ``simulate()`` call in another process or another month:

* ``design`` — a design-point factory name (``"DC-DLA"``, ...);
* ``network`` / ``batch`` / ``strategy`` — the workload;
* ``overrides`` — keyword arguments for the factory, as a sorted tuple
  of pairs (the Section V-B sensitivity variants parameterize here);
* ``replacements`` — ``dataclasses.replace`` fields applied to the
  built :class:`~repro.core.system.SystemConfig` (the ablation knobs
  such as ``offload_window`` that no factory exposes);
* ``label`` — an optional display name distinguishing variants that
  share a factory (defaults to ``design``).

Points are frozen, hashable, and picklable, so they travel to pool
workers and hash into the on-disk cache key unchanged.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.core.design_points import design_point
from repro.core.system import SystemConfig
from repro.training.parallel import ParallelStrategy

Overrides = tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class CampaignPoint:
    """One (design, network, batch, strategy) cell of a campaign."""

    design: str
    network: str
    batch: int = 512
    strategy: ParallelStrategy = ParallelStrategy.DATA
    overrides: Overrides = ()
    replacements: Overrides = ()
    label: str | None = None
    #: Keyword arguments for :func:`repro.serving.simulate_serving`
    #: (as sorted pairs).  Non-empty turns this cell into a serving
    #: simulation instead of a training iteration.
    serving: Overrides = ()
    #: Keyword arguments for :func:`repro.cluster.simulate_cluster`
    #: (as sorted pairs).  Non-empty turns this cell into a cluster
    #: simulation instead of a training iteration.
    cluster: Overrides = ()

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.serving and self.cluster:
            raise ValueError("a point is serving or cluster, not both")
        object.__setattr__(self, "overrides",
                           tuple(sorted(self.overrides)))
        object.__setattr__(self, "replacements",
                           tuple(sorted(self.replacements)))
        object.__setattr__(self, "serving",
                           tuple(sorted(self.serving)))
        object.__setattr__(self, "cluster",
                           tuple(sorted(self.cluster)))

    @property
    def is_serving(self) -> bool:
        return bool(self.serving)

    @property
    def is_cluster(self) -> bool:
        return bool(self.cluster)

    @property
    def name(self) -> str:
        """The display/lookup name of this point's configuration."""
        return self.label if self.label is not None else self.design

    @property
    def key(self) -> tuple[str, str, int, ParallelStrategy]:
        """The (name, network, batch, strategy) lookup key."""
        return (self.name, self.network, self.batch, self.strategy)

    def build_config(self, factory=design_point) -> SystemConfig:
        """Materialize the :class:`SystemConfig` this point describes."""
        config = factory(self.design, **dict(self.overrides))
        if self.replacements:
            config = dataclasses.replace(config,
                                         **dict(self.replacements))
        return config

    def describe(self, factory=None) -> dict[str, Any]:
        """A canonical, JSON-stable description (feeds the cache key).

        With a ``factory``, the description additionally embeds the
        canonical image of the *built* :class:`SystemConfig` -- the
        full config fingerprint.  The point axes alone are not enough
        for safe caching: a factory whose behavior changes between
        runs (a flipped module default such as the prefetch policy)
        yields a different simulation from the identical axes, and a
        key without the built config would silently replay the stale
        result across policies.
        """
        description = {
            "design": self.design,
            "network": self.network,
            "batch": self.batch,
            "strategy": self.strategy.value,
            "overrides": canonicalize(self.overrides),
            "replacements": canonicalize(self.replacements),
            "serving": canonicalize(self.serving),
            "cluster": canonicalize(self.cluster),
        }
        if factory is not None:
            description["config"] = canonicalize(
                self.build_config(factory))
        return description


def grid(designs, networks, batches=(512,),
         strategies=(ParallelStrategy.DATA,)) -> tuple[CampaignPoint, ...]:
    """The cross product of the four axes, in presentation order.

    ``designs`` are design-point factory names and ``networks``
    registry names; ``batches`` are sample counts.  Iterates
    strategy-major then network then design, matching the paper's
    evaluation-matrix ordering.
    """
    points = []
    for strategy in strategies:
        for network in networks:
            for batch in batches:
                for design in designs:
                    points.append(CampaignPoint(
                        design=design, network=network, batch=batch,
                        strategy=strategy))
    return tuple(points)


def pipeline_grid(designs, networks, batches=(512,),
                  schedules=("1f1b", "gpipe"),
                  microbatches: int = 8,
                  stages: int = 0) -> tuple[CampaignPoint, ...]:
    """Pipeline-parallel cells: one point per (schedule, cell).

    The schedule and microbatch knobs ride in ``replacements`` (they
    are :class:`~repro.core.system.SystemConfig` fields), and each
    schedule variant gets a ``design|schedule`` label so the two
    variants of one design coexist in a single campaign.
    """
    points = []
    for schedule in schedules:
        for network in networks:
            for batch in batches:
                for design in designs:
                    points.append(CampaignPoint(
                        design=design, network=network, batch=batch,
                        strategy=ParallelStrategy.PIPELINE,
                        replacements=(
                            ("pipeline_microbatches", microbatches),
                            ("pipeline_schedule", schedule),
                            ("pipeline_stages", stages)),
                        label=f"{design}|{schedule}"))
    return tuple(points)


def serving_grid(designs, networks, arrival_rates,
                 slo_ms=(50.0,), batch_policies=((8, 2.0),),
                 batcher: str = "dynamic", arrival: str = "poisson",
                 n_requests: int = 512,
                 seed: int = 0) -> tuple[CampaignPoint, ...]:
    """Serving cells: one point per (policy, slo, rate, cell).

    ``batch_policies`` is a sequence of ``(max_batch, max_wait_ms)``
    pairs.  Every point's knobs ride in ``serving`` (keyword arguments
    of :func:`repro.serving.simulate_serving`), and the label encodes
    the serving axes so variants of one design coexist in a campaign.

    The continuous batcher has no fill deadline (admission happens at
    step boundaries), so its wait axis is normalized to zero -- labels
    and cache keys never suggest a knob the loop ignores.
    """
    if batcher == "continuous":
        batch_policies = tuple(dict.fromkeys(
            (max_batch, 0.0) for max_batch, _ in batch_policies))
    points = []
    for max_batch, wait_ms in batch_policies:
        for slo in slo_ms:
            for rate in arrival_rates:
                for network in networks:
                    for design in designs:
                        points.append(CampaignPoint(
                            design=design, network=network,
                            batch=max_batch,
                            strategy=ParallelStrategy.DATA,
                            serving=(
                                ("arrival", arrival),
                                ("batcher", batcher),
                                ("max_batch", max_batch),
                                ("max_wait", wait_ms / 1e3),
                                ("n_requests", n_requests),
                                ("rate", float(rate)),
                                ("seed", seed),
                                ("slo", slo / 1e3)),
                            label=(f"{design}|{arrival}@{rate:g}rps"
                                   f"|slo{slo:g}ms"
                                   f"|b{max_batch}w{wait_ms:g}ms")))
    return tuple(points)


def cluster_grid(designs, policies=("fifo",), job_mixes=("balanced",),
                 oversubscription=(1.0,), n_jobs: int = 24,
                 seed: int = 0, arrival_rate: float = 0.02,
                 fleet_devices: int = 16,
                 pool_capacity: int | None = None,
                 preempt_after: float | None = None) \
        -> tuple[CampaignPoint, ...]:
    """Cluster-scheduler cells: one point per (oversub, mix, policy,
    design).

    Every point's knobs ride in ``cluster`` (keyword arguments of
    :func:`repro.cluster.simulate_cluster`), and the label encodes the
    scheduler axes so variants of one design coexist in a campaign.
    ``pool_capacity`` is shared by every cell -- the equal-capacity
    comparison the pooling argument needs.
    """
    points = []
    for oversub in oversubscription:
        for mix in job_mixes:
            for policy in policies:
                for design in designs:
                    knobs = [
                        ("arrival_rate", float(arrival_rate)),
                        ("fleet_devices", fleet_devices),
                        ("job_mix", mix),
                        ("n_jobs", n_jobs),
                        ("oversubscription", float(oversub)),
                        ("policy", policy),
                        ("seed", seed),
                    ]
                    if pool_capacity is not None:
                        knobs.append(("pool_capacity", pool_capacity))
                    if preempt_after is not None:
                        knobs.append(("preempt_after",
                                      float(preempt_after)))
                    points.append(CampaignPoint(
                        design=design, network=f"mix:{mix}",
                        batch=n_jobs,
                        strategy=ParallelStrategy.DATA,
                        cluster=tuple(knobs),
                        label=(f"{design}|{policy}|{mix}"
                               f"|os{oversub:g}")))
    return tuple(points)


def prefetch_grid(designs, networks, policies, batches=(512,),
                  strategies=(ParallelStrategy.DATA,)) \
        -> tuple[CampaignPoint, ...]:
    """Prefetch-policy cells: one point per (policy, cell).

    The policy rides in ``replacements`` (it is a
    :class:`~repro.core.system.SystemConfig` field), and every policy
    variant gets a ``design|policy`` label so the variants of one
    design coexist in a single campaign -- and key distinct cache
    entries.
    """
    points = []
    for policy in policies:
        for strategy in strategies:
            for network in networks:
                for batch in batches:
                    for design in designs:
                        points.append(CampaignPoint(
                            design=design, network=network,
                            batch=batch, strategy=strategy,
                            replacements=(
                                ("prefetch_policy", policy),),
                            label=f"{design}|{policy}"))
    return tuple(points)


def fault_grid(points, fault_models) -> tuple[CampaignPoint, ...]:
    """Replicate campaign points across fault models, model-major.

    Works on *any* base points -- training, pipeline, serving, or
    cluster cells -- because the fault model is a
    :class:`~repro.core.system.SystemConfig` field and rides in
    ``replacements``.  Every variant gets a ``name|model`` label (the
    ``"none"`` leg included, so one campaign can carry the healthy
    baseline next to each degraded twin), and a pre-existing
    ``fault_model`` replacement on a base point is overridden rather
    than duplicated.
    """
    from repro.faults.model import FAULT_MODEL_ORDER
    models = tuple(fault_models)
    unknown = [m for m in models if m not in FAULT_MODEL_ORDER]
    if unknown:
        raise ValueError(
            f"unknown fault model(s): {', '.join(unknown)}; "
            f"known: {', '.join(FAULT_MODEL_ORDER)}")
    expanded = []
    for model in models:
        for point in points:
            replacements = tuple(
                (key, value) for key, value in point.replacements
                if key != "fault_model")
            replacements += (("fault_model", model),)
            expanded.append(dataclasses.replace(
                point, replacements=replacements,
                label=f"{point.name}|{model}"))
    return tuple(expanded)


def canonicalize(value: Any) -> Any:
    """Reduce a value to JSON-stable primitives for cache keying.

    Handles the spec objects campaigns actually pass around (frozen
    dataclasses such as ``LinkSpec``/``DeviceSpec``), enums, and nested
    containers; anything else falls back to ``repr``.  Sets are sorted
    by their canonical JSON image first -- Python iterates sets in
    hash order, which varies with ``PYTHONHASHSEED``, and a cache key
    must not.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {f.name: canonicalize(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if isinstance(value, (set, frozenset)):
        items = [canonicalize(item) for item in value]
        return {"__set__": sorted(items, key=_json_image)}
    if isinstance(value, (tuple, list)):
        return [canonicalize(item) for item in value]
    if isinstance(value, dict):
        return {str(k): canonicalize(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return {"__repr__": repr(value)}


def _json_image(value: Any) -> str:
    """A total, hash-independent ordering key for canonical values."""
    return json.dumps(value, sort_keys=True)


def canonical_fingerprint(value: Any) -> str:
    """SHA-256 of a value's canonical JSON image.

    Stable across processes, platforms, and ``PYTHONHASHSEED`` -- the
    identity the scenario DSL stamps on every declared scenario.
    """
    image = _json_image(canonicalize(value))
    return hashlib.sha256(image.encode("utf-8")).hexdigest()
