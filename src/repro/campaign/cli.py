"""``python -m repro campaign``: run user-defined simulator sweeps.

Any slice of the design space — not just the paper's 6x8x2 grid — can
be swept from the command line, fanned across worker processes, and
memoized in the shared disk cache::

    python -m repro campaign --jobs 8
    python -m repro campaign --designs "DC-DLA,MC-DLA(B)" \\
        --networks VGG-E --batches 256,512 --format csv
    python -m repro campaign --no-cache --format json -o grid.json

Progress and the cache-hit summary go to stderr; results go to stdout
(or ``--output``) as a table, JSON, or CSV.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import sys
import time

from repro.campaign.cache import ResultCache, default_cache_dir
from repro.campaign.points import (cluster_grid, fault_grid, grid,
                                   pipeline_grid, prefetch_grid,
                                   serving_grid)
from repro.campaign.runner import CampaignReport, CellOutcome, run_campaign
from repro.core.design_points import DESIGN_ORDER
from repro.dnn.registry import (BENCHMARK_NAMES, TRANSFORMER_NAMES,
                                WORKLOAD_NAMES)
from repro.faults.model import FAULT_MODEL_ORDER
from repro.naming import resolve_schedule
from repro.pipeline.schedules import SCHEDULE_ORDER
from repro.telemetry.session import (TelemetrySession,
                                     add_telemetry_argument, eta_seconds)
from repro.training.parallel import ParallelStrategy
from repro.vmem.prefetch import PREFETCH_POLICY_ORDER

_STRATEGY_ALIASES = {
    "data": ParallelStrategy.DATA,
    "model": ParallelStrategy.MODEL,
    "pipeline": ParallelStrategy.PIPELINE,
    ParallelStrategy.DATA.value: ParallelStrategy.DATA,
    ParallelStrategy.MODEL.value: ParallelStrategy.MODEL,
    ParallelStrategy.PIPELINE.value: ParallelStrategy.PIPELINE,
}

_CSV_FIELDS = (
    "design", "network", "batch", "strategy", "n_devices",
    "iteration_time", "throughput", "compute", "sync", "vmem",
    "offload_bytes_per_device", "sync_bytes",
    "host_traffic_bytes_per_device", "fits_in_device_memory",
    "bubble_fraction", "mode", "latency_p50", "latency_p95",
    "latency_p99", "goodput", "slo_attainment", "jct_p50", "jct_p95",
    "queue_delay_mean", "pool_utilization", "preemptions",
    "prefetch_policy", "stall_seconds", "prefetch_hit_rate",
    "wasted_prefetch_bytes", "prefetch_evictions",
    # Fault columns live between the prefetch block and "cached" so
    # the first fifteen fields stay stable for downstream `cut`s.
    "fault_model", "fault_events", "fault_retries", "shed_requests",
    "timed_out_requests", "recovery_bytes", "availability", "cached",
)


def _split(raw: str) -> list[str]:
    items = [item.strip() for item in raw.split(",") if item.strip()]
    return list(dict.fromkeys(items))  # dedupe, keep order


def _parse_policy(raw: str) -> tuple[int, float]:
    """Parse a ``MAXxWAITms`` batch policy, e.g. ``8x2`` or ``16x0.5``."""
    try:
        max_batch, wait_ms = raw.lower().split("x", 1)
        return int(max_batch), float(wait_ms)
    except ValueError:
        raise ValueError(
            f"bad batch policy {raw!r}; expected MAXxWAITms, "
            f"e.g. 8x2") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Sweep simulator cells across designs, workloads, "
                    "batch sizes, and parallelization strategies.")
    parser.add_argument(
        "--designs", default=",".join(DESIGN_ORDER),
        help="comma-separated design points (default: all six)")
    parser.add_argument(
        "--networks", default=",".join(BENCHMARK_NAMES),
        help="comma-separated workloads (default: the paper's eight; "
             "transformer extensions: "
             + ", ".join(n for n in WORKLOAD_NAMES
                         if n not in BENCHMARK_NAMES) + ")")
    parser.add_argument(
        "--batches", default="512",
        help="comma-separated batch sizes (default: 512)")
    parser.add_argument(
        "--strategies", default="data,model",
        help="comma-separated strategies: data, model, pipeline "
             "(default: data,model)")
    parser.add_argument(
        "--pipeline-schedules", default="1f1b",
        help="comma-separated microbatch schedules for pipeline cells: "
             "1f1b, gpipe, zb-h1, interleaved, zb-auto "
             "(default: 1f1b)")
    parser.add_argument(
        "--microbatches", type=int, default=8,
        help="microbatches per pipeline iteration (default: 8)")
    parser.add_argument(
        "--prefetch-policies", default="",
        help="comma-separated vmem prefetch policies ("
             + ", ".join(PREFETCH_POLICY_ORDER) + "); non-empty "
             "replicates every data/model training cell per policy")
    parser.add_argument(
        "--fault-models", default="",
        help="comma-separated fault models ("
             + ", ".join(FAULT_MODEL_ORDER) + "); non-empty "
             "replicates every cell per model (include none for the "
             "healthy baseline)")
    parser.add_argument(
        "--arrival-rates", default="",
        help="comma-separated request rates (req/s); non-empty adds "
             "serving cells to the grid")
    parser.add_argument(
        "--slo-ms", default="50",
        help="comma-separated latency SLOs for serving cells, in ms "
             "(default: 50)")
    parser.add_argument(
        "--batch-policies", default="8x2",
        help="comma-separated dynamic-batching policies for serving "
             "cells, as MAXxWAITms (default: 8x2 = batch 8, 2 ms)")
    parser.add_argument(
        "--batcher", choices=("dynamic", "continuous"),
        default="dynamic",
        help="serving batcher (default: dynamic)")
    parser.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson",
        help="serving arrival process (default: poisson)")
    parser.add_argument(
        "--requests", type=int, default=512,
        help="requests per serving cell (default: 512)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="arrival-trace seed for serving and cluster cells "
             "(default: 0)")
    parser.add_argument(
        "--policies", default="",
        help="comma-separated cluster scheduling policies (fifo, sjf, "
             "pool-fit, gang); non-empty adds cluster cells")
    parser.add_argument(
        "--job-mixes", default="balanced",
        help="comma-separated cluster job mixes (default: balanced)")
    parser.add_argument(
        "--pool-oversub", default="1",
        help="comma-separated pool oversubscription factors for "
             "cluster cells (default: 1)")
    parser.add_argument(
        "--cluster-jobs", type=int, default=24,
        help="jobs per cluster cell (default: 24)")
    parser.add_argument(
        "--pool-gb", type=float, default=None,
        help="shared pool capacity per cluster cell, in GiB "
             "(default: 128 GiB per fleet device)")
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes; 1 runs serially, 0 uses every core")
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"result cache directory (default: $REPRO_CACHE_DIR or "
             f"{default_cache_dir()})")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="simulate every cell afresh and persist nothing")
    parser.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="output format (default: table)")
    parser.add_argument(
        "-o", "--output", default=None,
        help="write results to this file instead of stdout")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress per-cell progress lines")
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink the grid to a 2x2 data-parallel smoke sweep "
             "(2 designs, 2 networks, batch 256); other axis flags "
             "are ignored")
    add_telemetry_argument(parser)
    return parser


def _rows(report: CampaignReport) -> list[dict]:
    rows = []
    for outcome in report.outcomes:
        if not outcome.ok:
            continue
        result = outcome.result
        rows.append({
            "design": outcome.point.name,
            "network": result.network,
            "batch": result.batch,
            "strategy": result.strategy.value,
            "n_devices": result.n_devices,
            "iteration_time": result.iteration_time,
            "throughput": result.throughput,
            "compute": result.breakdown.compute,
            "sync": result.breakdown.sync,
            "vmem": result.breakdown.vmem,
            "offload_bytes_per_device": result.offload_bytes_per_device,
            "sync_bytes": result.sync_bytes,
            "host_traffic_bytes_per_device":
                result.host_traffic_bytes_per_device,
            "fits_in_device_memory": result.fits_in_device_memory,
            "bubble_fraction": (result.pipeline.bubble_fraction
                                if result.pipeline is not None
                                else None),
            "pipeline": (result.pipeline.to_dict()
                         if result.pipeline is not None else None),
            "mode": result.mode.value,
            "latency_p50": (result.serving.latency_p50
                            if result.serving is not None else None),
            "latency_p95": (result.serving.latency_p95
                            if result.serving is not None else None),
            "latency_p99": (result.serving.latency_p99
                            if result.serving is not None else None),
            "goodput": (result.serving.goodput
                        if result.serving is not None else None),
            "slo_attainment": (result.serving.slo_attainment
                               if result.serving is not None else None),
            "serving": (result.serving.to_dict()
                        if result.serving is not None else None),
            "jct_p50": (result.cluster.jct_p50
                        if result.cluster is not None else None),
            "jct_p95": (result.cluster.jct_p95
                        if result.cluster is not None else None),
            "queue_delay_mean": (result.cluster.queue_delay_mean
                                 if result.cluster is not None
                                 else None),
            "pool_utilization": (result.cluster.pool_utilization
                                 if result.cluster is not None
                                 else None),
            "preemptions": (result.cluster.preemptions
                            if result.cluster is not None else None),
            "cluster": (result.cluster.to_dict()
                        if result.cluster is not None else None),
            "prefetch_policy": (result.prefetch.policy
                                if result.prefetch is not None
                                else None),
            "stall_seconds": (result.prefetch.stall_seconds
                              if result.prefetch is not None
                              else None),
            "prefetch_hit_rate": (result.prefetch.hit_rate
                                  if result.prefetch is not None
                                  else None),
            "wasted_prefetch_bytes": (result.prefetch.wasted_bytes
                                      if result.prefetch is not None
                                      else None),
            "prefetch_evictions": (result.prefetch.evictions
                                   if result.prefetch is not None
                                   else None),
            "prefetch": (result.prefetch.to_dict()
                         if result.prefetch is not None else None),
            "fault_model": (result.faults.model
                            if result.faults is not None else None),
            "fault_events": (result.faults.injected_events
                             if result.faults is not None else None),
            "fault_retries": (result.faults.retries
                              if result.faults is not None else None),
            "shed_requests": (result.faults.shed_requests
                              if result.faults is not None else None),
            "timed_out_requests": (result.faults.timed_out_requests
                                   if result.faults is not None
                                   else None),
            "recovery_bytes": (result.faults.recovery_bytes
                               if result.faults is not None else None),
            "availability": (result.faults.availability
                             if result.faults is not None else None),
            "faults": (result.faults.to_dict()
                       if result.faults is not None else None),
            "cached": outcome.cached,
        })
    return rows


def _render(report: CampaignReport, fmt: str) -> str:
    rows = _rows(report)
    if fmt == "json":
        return json.dumps(rows, indent=2)
    if fmt == "csv":
        buffer = io.StringIO()
        # The structured "pipeline" sub-dict is JSON-only.
        writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS,
                                lineterminator="\n",
                                extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue().rstrip("\n")
    from repro.experiments.report import format_table, percent
    table_rows = []
    has_serving = any(r["mode"] == "serving" for r in rows)
    has_cluster = any(r["mode"] == "cluster" for r in rows)
    for r in rows:
        row = [r["design"], r["network"], r["batch"], r["strategy"]]
        if r["mode"] == "serving":
            # iteration_time holds the whole trace span and
            # `throughput` the per-batch ratio -- neither means
            # anything request-level; show the serving metrics.
            serving = r["serving"]
            row += ["--", f"{serving['throughput']:.1f} req/s"]
            if has_serving:
                row += [r["latency_p99"] * 1e3,
                        f"{r['goodput']:.1f}",
                        percent(r["slo_attainment"])]
            if has_cluster:
                row += ["--", "--", "--"]
        elif r["mode"] == "cluster":
            # iteration_time holds the makespan; the fleet-level
            # metrics live in the cluster object.
            cluster = r["cluster"]
            row += ["--", f"{cluster['throughput'] * 3600:.1f} jobs/h"]
            if has_serving:
                row += ["--", "--", "--"]
            if has_cluster:
                row += [f"{r['jct_p95']:.1f}s",
                        f"{r['queue_delay_mean']:.1f}s",
                        percent(r["pool_utilization"])]
        else:
            row += [r["iteration_time"] * 1e3, r["throughput"]]
            if has_serving:
                row += ["--", "--", "--"]
            if has_cluster:
                row += ["--", "--", "--"]
        row.append("hit" if r["cached"] else "miss")
        table_rows.append(row)
    headers = ["design", "network", "batch", "strategy", "iter (ms)",
               "samples/s"]
    if has_serving:
        headers += ["p99 (ms)", "goodput", "SLO att."]
    if has_cluster:
        headers += ["JCT p95", "wait", "pool util"]
    headers.append("cache")
    return format_table(headers, table_rows,
                        title=f"campaign: {len(rows)} cells")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.quick:
        # A 4-cell smoke grid: CI runs it with --telemetry to check
        # the artifact pipeline without paying for a full sweep.
        args.designs = ",".join(DESIGN_ORDER[:2])
        args.networks = ",".join(BENCHMARK_NAMES[:2])
        args.batches = "256"
        args.strategies = "data"
        args.prefetch_policies = ""
        args.fault_models = ""
        args.arrival_rates = ""
        args.policies = ""

    designs = _split(args.designs)
    unknown = [d for d in designs if d not in DESIGN_ORDER]
    if unknown:
        print(f"unknown design(s): {', '.join(unknown)}; "
              f"known: {', '.join(DESIGN_ORDER)}", file=sys.stderr)
        return 2
    networks = _split(args.networks)
    bad = [n for n in networks if n not in WORKLOAD_NAMES]
    if bad:
        print(f"unknown network(s): {', '.join(bad)}; "
              f"known: {', '.join(WORKLOAD_NAMES)}", file=sys.stderr)
        return 2
    resolved_schedules = []
    bad_schedules = []
    for raw in _split(args.pipeline_schedules):
        try:
            resolved_schedules.append(resolve_schedule(raw))
        except KeyError:
            bad_schedules.append(raw)
    if bad_schedules:
        print(f"unknown schedule(s): {', '.join(bad_schedules)}; "
              f"known: {', '.join(SCHEDULE_ORDER)}", file=sys.stderr)
        return 2
    schedules = list(dict.fromkeys(resolved_schedules))
    policies = _split(args.prefetch_policies)
    bad_policies = [p for p in policies
                    if p not in PREFETCH_POLICY_ORDER]
    if bad_policies:
        print(f"unknown prefetch policy(ies): "
              f"{', '.join(bad_policies)}; known: "
              f"{', '.join(PREFETCH_POLICY_ORDER)}", file=sys.stderr)
        return 2
    fault_models = _split(args.fault_models)
    bad_faults = [f for f in fault_models if f not in FAULT_MODEL_ORDER]
    if bad_faults:
        print(f"unknown fault model(s): {', '.join(bad_faults)}; "
              f"known: {', '.join(FAULT_MODEL_ORDER)}",
              file=sys.stderr)
        return 2
    try:
        batches = [int(b) for b in _split(args.batches)]
        strategies = [_STRATEGY_ALIASES[s.lower()]
                      for s in _split(args.strategies)]
        flat = [s for s in strategies
                if s is not ParallelStrategy.PIPELINE]
        if flat and policies:
            points = prefetch_grid(designs, networks, policies,
                                   batches, tuple(flat))
        elif flat:
            points = grid(designs, networks, batches, flat)
        else:
            points = ()
        if ParallelStrategy.PIPELINE in strategies:
            points += pipeline_grid(designs, networks, batches,
                                    schedules=schedules,
                                    microbatches=args.microbatches)
        if args.arrival_rates.strip():
            if args.batcher == "continuous":
                flat_nets = [n for n in networks
                             if n not in TRANSFORMER_NAMES]
                if flat_nets:
                    print(f"continuous batching needs transformer "
                          f"workloads (decode phase); not: "
                          f"{', '.join(flat_nets)}", file=sys.stderr)
                    return 2
            rates = [float(r) for r in _split(args.arrival_rates)]
            slos = [float(s) for s in _split(args.slo_ms)]
            policies = [_parse_policy(p)
                        for p in _split(args.batch_policies)]
            if args.batcher == "continuous":
                # Iteration-level batching admits at step boundaries;
                # there is no fill deadline, so wait variants collapse.
                policies = list(dict.fromkeys(
                    (max_batch, 0.0) for max_batch, _ in policies))
            points += serving_grid(designs, networks, rates,
                                   slo_ms=slos,
                                   batch_policies=policies,
                                   batcher=args.batcher,
                                   arrival=args.arrival,
                                   n_requests=args.requests,
                                   seed=args.seed)
        if args.policies.strip():
            from repro.cluster.jobs import JOB_MIX_NAMES
            from repro.cluster.policies import POLICY_NAMES
            from repro.units import GB
            sched = _split(args.policies)
            bad_policies = [p for p in sched if p not in POLICY_NAMES]
            if bad_policies:
                print(f"unknown policy(ies): "
                      f"{', '.join(bad_policies)}; known: "
                      f"{', '.join(POLICY_NAMES)}", file=sys.stderr)
                return 2
            mixes = _split(args.job_mixes)
            bad_mixes = [m for m in mixes if m not in JOB_MIX_NAMES]
            if bad_mixes:
                print(f"unknown job mix(es): {', '.join(bad_mixes)}; "
                      f"known: {', '.join(JOB_MIX_NAMES)}",
                      file=sys.stderr)
                return 2
            oversub = [float(v) for v in _split(args.pool_oversub)]
            points += cluster_grid(
                designs, policies=sched, job_mixes=mixes,
                oversubscription=oversub, n_jobs=args.cluster_jobs,
                seed=args.seed,
                pool_capacity=(int(args.pool_gb * GB)
                               if args.pool_gb is not None else None))
        if fault_models:
            points = fault_grid(points, fault_models)
    except (ValueError, KeyError) as exc:
        print(f"bad axis value: {exc}", file=sys.stderr)
        return 2
    if not points:
        print("empty campaign grid", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir
                            else default_cache_dir())

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    sim_times: list[float] = []

    def report_progress(outcome: CellOutcome, done: int,
                        total: int) -> None:
        if outcome.ok and not outcome.cached:
            sim_times.append(outcome.elapsed)
        if args.quiet:
            return
        status = ("cached" if outcome.cached
                  else "failed" if not outcome.ok
                  else f"{outcome.elapsed * 1e3:.0f}ms")
        point = outcome.point
        line = (f"[{done}/{total}] {point.name} {point.network} "
                f"b{point.batch} {point.strategy.value}: {status}")
        if args.telemetry:
            # Live cache tally + ETA from the mean simulated-cell
            # time.  Cache hits replay before any miss simulates, so
            # the cells still outstanding are all misses.
            hits = cache.hits if cache is not None else 0
            line += f" | cache {hits} hit" + ("" if hits == 1 else "s")
            eta = eta_seconds(sum(sim_times), len(sim_times),
                              total - done)
            if eta is not None:
                line += f", ETA {eta:.1f}s"
        print(line, file=sys.stderr)

    session = TelemetrySession(
        tool="campaign",
        argv=list(argv) if argv is not None else sys.argv[1:],
        enabled=args.telemetry, output=args.output,
        config={"points": [point.describe() for point in points]},
        seed=args.seed)
    with session:
        start = time.perf_counter()
        report = run_campaign(points, jobs=jobs, cache=cache,
                              progress=report_progress)
        elapsed = time.perf_counter() - start

        # One JSONL event per cell, in input order (no wall-clock:
        # the stream must be identical run to run).
        for outcome in report.outcomes:
            session.emit({
                "event": "cell",
                "design": outcome.point.name,
                "network": outcome.point.network,
                "batch": outcome.point.batch,
                "strategy": outcome.point.strategy.value,
                "ok": outcome.ok,
                "cached": outcome.cached,
            })

        simulated = (len(points) - report.cached_count
                     - len(report.failures))
        session.cells = {"total": len(points),
                         "cached": report.cached_count,
                         "simulated": simulated,
                         "failed": len(report.failures)}
        print(f"campaign: {len(points)} cells: {report.cached_count} "
              f"from cache, {simulated} simulated, "
              f"{len(report.failures)} failed "
              f"({elapsed:.2f}s, jobs={jobs})", file=sys.stderr)
        if cache is not None:
            lookups = cache.hits + cache.misses
            rate = 100.0 * cache.hits / lookups if lookups else 0.0
            print(f"cache: {cache.hits} hits, {cache.misses} misses "
                  f"({rate:.0f}% hit rate), {cache.bytes_read} B "
                  f"read, {cache.bytes_written} B written",
                  file=sys.stderr)

    text = _render(report, args.format)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)

    for outcome in report.failures:
        print(f"FAILED {outcome.point.name}/{outcome.point.network}: "
              f"{outcome.error}", file=sys.stderr)
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
