"""The campaign runner: fan a grid of points across processes.

``run_campaign`` takes any iterable of :class:`CampaignPoint` and
returns a :class:`CampaignReport` with one :class:`CellOutcome` per
point, in input order.  Three properties the experiment layers rely on:

* **determinism** — the simulator is pure, so serial, pooled, and
  cache-replayed campaigns produce identical ``SimulationResult``
  values (asserted by ``tests/test_campaign.py``);
* **isolation** — one failing cell is reported in its outcome instead
  of killing the sweep; callers that need all cells call
  :meth:`CampaignReport.raise_failures`.  This extends to worker
  *death*: when a pool worker exits hard (OOM kill, segfault), every
  in-flight future fails with the same ``BrokenProcessPool``, so the
  runner retries each survivor alone in a fresh single-worker pool and
  only the cell that kills its private worker again is failed;
* **memoization** — with a :class:`ResultCache`, finished cells are
  replayed from disk and only misses are simulated.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.campaign.cache import ResultCache
from repro.campaign.points import CampaignPoint
from repro.core.design_points import design_point
from repro.core.metrics import SimulationResult
from repro.core.simulator import simulate
from repro.telemetry.registry import metrics_registry
from repro.telemetry.spans import span
from repro.training.parallel import ParallelStrategy

#: ``progress(outcome, done, total)`` called as each cell finishes.
ProgressFn = Callable[["CellOutcome", int, int], None]


class CampaignError(RuntimeError):
    """Raised by :meth:`CampaignReport.raise_failures`."""

    def __init__(self, failures: tuple["CellOutcome", ...]) -> None:
        lines = [f"{len(failures)} campaign cell(s) failed:"]
        lines += [f"  {o.point.name}/{o.point.network}"
                  f"/b{o.point.batch}/{o.point.strategy.value}: "
                  f"{o.error}" for o in failures]
        super().__init__("\n".join(lines))
        self.failures = failures


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one campaign point."""

    point: CampaignPoint
    result: SimulationResult | None
    error: str | None = None
    cached: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass(frozen=True)
class CampaignReport:
    """All cell outcomes of one campaign, in input order."""

    outcomes: tuple[CellOutcome, ...]

    @property
    def failures(self) -> tuple[CellOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def results(self) -> dict[tuple, SimulationResult]:
        """``point.key`` -> result for every successful cell."""
        return {o.point.key: o.result for o in self.outcomes if o.ok}

    def result(self, name: str, network: str, batch: int,
               strategy: ParallelStrategy) -> SimulationResult:
        """Look one cell up by its point key; raises on failed cells."""
        for outcome in self.outcomes:
            if outcome.point.key == (name, network, batch, strategy):
                if not outcome.ok:
                    raise CampaignError((outcome,))
                return outcome.result
        raise KeyError((name, network, batch, strategy))

    def raise_failures(self) -> "CampaignReport":
        if self.failures:
            raise CampaignError(self.failures)
        return self


def _simulate_cell(point: CampaignPoint, factory,
                   with_telemetry: bool = False) \
        -> tuple[SimulationResult, float, dict | None]:
    """Pool worker: build the config and run one cell (picklable).

    ``with_telemetry`` is the pool path's metric plumbing: the worker
    runs the cell under its own fresh registry and ships the snapshot
    back for the parent to merge (in input order, so merged totals
    are deterministic).  The serial path leaves it ``False`` -- the
    parent's own registry observes the cell directly.
    """
    registry = None
    if with_telemetry:
        from repro.telemetry.registry import (disable_metrics,
                                              enable_metrics)
        registry = enable_metrics(fresh=True)
    start = time.perf_counter()
    try:
        with span("cell", design=point.name, network=point.network):
            config = point.build_config(factory)
            if point.is_serving:
                # Imported lazily: repro.serving depends on repro.core.
                from repro.serving.server import simulate_serving
                result = simulate_serving(config, point.network,
                                          **dict(point.serving))
            elif point.is_cluster:
                # Imported lazily: repro.cluster depends on repro.core.
                from repro.cluster.simulator import simulate_cluster
                result = simulate_cluster(config, **dict(point.cluster))
            else:
                result = simulate(config, point.network, point.batch,
                                  point.strategy)
        elapsed = time.perf_counter() - start
        snapshot = registry.snapshot() if registry is not None else None
        return result, elapsed, snapshot
    finally:
        if with_telemetry:
            disable_metrics()


def _check_unique_keys(points: tuple[CampaignPoint, ...]) -> None:
    seen: dict[tuple, CampaignPoint] = {}
    for point in points:
        other = seen.setdefault(point.key, point)
        if other != point:
            raise ValueError(
                f"two distinct points share the key {point.key}; "
                f"give one a unique label")


def run_campaign(points: Iterable[CampaignPoint], *, jobs: int = 1,
                 cache: ResultCache | None = None,
                 factory=design_point,
                 progress: ProgressFn | None = None) -> CampaignReport:
    """Run every point, in parallel when ``jobs > 1``.

    ``factory`` maps a design name (plus overrides) to a
    ``SystemConfig``; pass a module-level callable so pool workers can
    import it.  Fresh successes are written back to ``cache``.
    """
    points = tuple(points)
    _check_unique_keys(points)
    total = len(points)
    done = 0
    outcomes: dict[int, CellOutcome] = {}
    factory_id = f"{factory.__module__}.{factory.__qualname__}"

    def record(index: int, outcome: CellOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    keys: dict[int, str] = {}
    misses: list[int] = []
    for index, point in enumerate(points):
        if cache is not None:
            # The key embeds the *built* config (point.describe with
            # the factory), so results can never be replayed across
            # configs the point axes do not distinguish -- e.g. two
            # factories baking different prefetch policies.  A point
            # whose config cannot build is left uncached; the worker
            # will surface the error as the cell's outcome.
            try:
                description = point.describe(factory)
            except Exception:
                misses.append(index)
                continue
            key = cache.key(description, factory_id)
            keys[index] = key
            with span("cache:lookup", design=point.name,
                      network=point.network):
                hit = cache.get(key)
            if hit is not None:
                record(index, CellOutcome(point, hit, cached=True))
                continue
        misses.append(index)

    def finish(index: int, result: SimulationResult,
               elapsed: float) -> None:
        if cache is not None and index in keys:
            cache.put(keys[index], result)
        record(index, CellOutcome(points[index], result,
                                  elapsed=elapsed))

    def fail(index: int, exc: BaseException) -> None:
        error = "".join(traceback.format_exception_only(exc)).strip()
        record(index, CellOutcome(points[index], None, error=error))

    if jobs > 1 and len(misses) > 1:
        worker_telemetry = metrics_registry() is not None
        snapshots: dict[int, dict] = {}
        broken: list[int] = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {pool.submit(_simulate_cell, points[i], factory,
                                   worker_telemetry): i
                       for i in misses}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = pending.pop(future)
                    exc = future.exception()
                    if isinstance(exc, BrokenProcessPool):
                        # A worker died; the executor fails *every*
                        # in-flight future with this same exception,
                        # so the guilty cell is unknown here.  Park
                        # the survivors and retry each alone below.
                        broken.append(index)
                    elif exc is not None:
                        fail(index, exc)
                    else:
                        result, elapsed, snapshot = future.result()
                        if snapshot is not None:
                            snapshots[index] = snapshot
                        finish(index, result, elapsed)
        # Recovery pass: each cell caught in a pool collapse re-runs
        # in its own fresh single-worker pool, so an innocent cell
        # still produces its result and only a cell that kills its
        # *private* worker again is charged with the death.
        for index in sorted(broken):
            try:
                with ProcessPoolExecutor(max_workers=1) as solo:
                    result, elapsed, snapshot = solo.submit(
                        _simulate_cell, points[index], factory,
                        worker_telemetry).result()
            except BrokenProcessPool:
                fail(index, RuntimeError(
                    f"worker process died while simulating cell "
                    f"{points[index].name}/{points[index].network}"))
            except Exception as exc:
                fail(index, exc)
            else:
                if snapshot is not None:
                    snapshots[index] = snapshot
                finish(index, result, elapsed)
        registry = metrics_registry()
        if registry is not None:
            # Merge in input order: counter sums are then the same
            # floats no matter which worker finished first.
            for index in sorted(snapshots):
                registry.merge_snapshot(snapshots[index])
    else:
        for index in misses:
            try:
                result, elapsed, _ = _simulate_cell(points[index],
                                                    factory)
            except Exception as exc:
                fail(index, exc)
            else:
                finish(index, result, elapsed)

    return CampaignReport(
        outcomes=tuple(outcomes[i] for i in range(total)))
