"""Lower a microbatch schedule onto the engine-level timeline.

Each pipeline stage is a device running the familiar four engines, so
stage *s* owns timeline channel *s* (:mod:`repro.core.timeline`):

* forward/backward microbatch work on ``COMPUTE``;
* boundary activations (and their gradients) as point-to-point ``COMM``
  ops on the *sending* stage's channel, priced over half the device's
  links (the half facing one neighbor in the ring topologies);
* per-microbatch activation-stash offload/prefetch on the DMA engines,
  with the vDNN back-pressure and prefetch-lookahead windows of the
  non-pipelined scheduler;
* the weight-gradient all-reduce at drain, when leftover devices form
  data-parallel replicas of the pipeline.

A microbatch's stash is offloaded only when the schedule keeps it
alive for more than ``offload_window`` slots -- the pinned-buffer
budget covers shorter lifetimes.  This is where fill-drain and 1F1B
diverge: fill-drain stashes every microbatch for ~``M`` slots and pays
the round-trip, 1F1B retires stage ``s``'s stash within ``P - s``
slots and mostly stays resident.

Zero-bubble kinds split each backward into an activation-grad op (B)
and a weight-grad op (W) on the same compute channel.  Lifetimes
follow the split: the activation stash (and its prefetch gating) is
released at B, while the W op holds only the layer-input bytes the
weight-gradient GEMMs re-read, bounded by the program's W backlog.
The ``interleaved`` kind additionally hosts ``chunks`` virtual stages
per device, mapping virtual stage *v* onto channel ``v % P``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.ring_algorithm import Primitive
from repro.core import pricing
from repro.core.metrics import PipelineStats
from repro.core.optable import OpSink, Timeline, new_op_sink
from repro.core.schedule import vmem_pricer
from repro.core.system import SystemConfig
from repro.core.timeline import EngineKind
from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind
from repro.pipeline.partition import (PipelineStage, crossing_sends,
                                      partition_stages,
                                      stageable_layer_count)
from repro.pipeline.schedules import (OpKind, PipelineSchedule,
                                      ScheduleCosts, ScheduleKind,
                                      build_schedule,
                                      parse_schedule_kind)
from repro.vmem.prefetch import (FetchSite, PrefetchContext,
                                 PrefetchSchedule, prefetch_policy)


@dataclass(frozen=True)
class StageWork:
    """One stage's per-microbatch work, fully timed."""

    index: int
    layer_names: tuple[str, ...]
    fwd_time: float
    bwd_time: float
    #: Unique trainable bytes held by this stage (shared groups once).
    weight_bytes: int
    #: Offloadable activation bytes one microbatch stashes here.
    stash_bytes: int
    #: Outgoing boundary traffic, aggregated per consumer stage:
    #: (consumer stage, total bytes per microbatch).  Multiple
    #: crossing edges to one stage (residual + block output) bundle
    #: into a single transfer.
    sends: tuple[tuple[int, int], ...]
    #: Per-microbatch offload decision (schedule lifetime > window).
    offloaded: tuple[bool, ...]
    #: Peak microbatches in flight under the schedule.
    max_in_flight: int
    #: Deferred weight-grad (W) time per microbatch; zero on schedules
    #: that keep the backward undifferentiated (then ``bwd_time`` is
    #: the whole backward, otherwise it is the B part alone).
    wgrad_time: float = 0.0
    #: Layer-input bytes one microbatch's W ops re-read (held from B
    #: until W).
    wgrad_stash_bytes: int = 0
    #: Peak microbatches whose W is deferred past their B.
    max_w_backlog: int = 0

    @property
    def offload_bytes(self) -> int:
        """Bytes this stage offloads per iteration (one way)."""
        return self.stash_bytes * sum(self.offloaded)


@dataclass(frozen=True)
class PipelinePlan:
    """Everything needed to emit (and introspect) a pipeline iteration."""

    network: str
    batch: int
    microbatch: int
    schedule: PipelineSchedule
    stages: tuple[StageWork, ...]
    #: Data-parallel replicas of the whole pipeline (n_devices // P).
    replicas: int
    #: Virtual stages hosted per device (1 except ``interleaved``).
    chunks: int = 1

    @property
    def n_stages(self) -> int:
        return self.schedule.n_stages

    @property
    def n_channels(self) -> int:
        """Physical devices in the pipeline (timeline channels)."""
        return self.schedule.n_stages // self.chunks

    def channel_of(self, stage: int) -> int:
        return stage % self.n_channels

    @property
    def stage_offload_bytes(self) -> tuple[int, ...]:
        return tuple(stage.offload_bytes for stage in self.stages)

    @property
    def channel_offload_bytes(self) -> tuple[int, ...]:
        """Offload traffic per physical device (virtual stages summed)."""
        totals = [0] * self.n_channels
        for stage in self.stages:
            totals[self.channel_of(stage.index)] += stage.offload_bytes
        return tuple(totals)

    @property
    def offload_bytes_per_device(self) -> int:
        """The bottleneck (worst-device) offload bytes."""
        return max(self.channel_offload_bytes)

    @property
    def sync_bytes_per_iteration(self) -> int:
        """Activation/gradient p2p plus the drain all-reduce bytes."""
        total = 0
        for stage in self.stages:
            for _, nbytes in stage.sends:
                total += 2 * nbytes * self.schedule.n_microbatches
            if self.replicas > 1:
                total += stage.weight_bytes
        return total

    @property
    def max_stage_footprint_bytes(self) -> int:
        """Worst device's resident need: weights + grads + peak stash
        (+ weight-grad inputs held across the W deferral)."""
        totals = [0] * self.n_channels
        for stage in self.stages:
            totals[self.channel_of(stage.index)] += (
                2 * stage.weight_bytes
                + stage.stash_bytes * stage.max_in_flight
                + stage.wgrad_stash_bytes * stage.max_w_backlog)
        return max(totals)


def _p2p_time(config: SystemConfig, nbytes: int) -> float:
    """One neighbor-to-neighbor transfer: half the device's links."""
    bandwidth = config.device.aggregate_link_bw / 2
    return config.device.link.latency + nbytes / bandwidth


def _stage_weight_bytes(net: Network, stage: PipelineStage) -> int:
    seen: set[str] = set()
    total = 0
    for name in stage.layer_names:
        layer = net.layer(name)
        if not layer.weight_elems:
            continue
        if layer.weight_group:
            if layer.weight_group in seen:
                continue
            seen.add(layer.weight_group)
        total += layer.weight_bytes
    return total


def _stage_times(net: Network, stage: PipelineStage,
                 config: SystemConfig, microbatch: int,
                 split: bool = False) -> tuple[float, float, float]:
    """(fwd, bwd, wgrad) compute time of one stage per microbatch.

    Without ``split`` the whole backward lands in ``bwd`` and
    ``wgrad`` is zero; with it, ``bwd`` is the activation-grad (B)
    part -- plus any cheap-layer recompute, which must run before the
    gradient can propagate -- and ``wgrad`` the deferrable dW part.
    """
    device = config.device
    fwd = bwd = wgrad = 0.0
    for name in stage.layer_names:
        layer = net.layer(name)
        if layer.kind is LayerKind.INPUT:
            continue
        fwd += pricing.layer_fwd_time(device, layer, microbatch)
        if split:
            dx, dw = pricing.layer_bwd_split_time(device, layer,
                                                  microbatch)
            bwd += dx
            wgrad += dw
        else:
            bwd += pricing.layer_bwd_time(device, layer, microbatch)
        # Cheap layers are recomputed during backward instead of
        # migrated (footnote 4), per microbatch.
        if layer.is_cheap and config.virtualizes:
            bwd += pricing.layer_fwd_time(device, layer, microbatch)
    return fwd, bwd, wgrad


def _stage_stash_bytes(net: Network, stage: PipelineStage,
                       microbatch: int) -> int:
    """Offloadable (non-cheap, non-input) activation bytes per mb."""
    return sum(net.layer(name).out_bytes(microbatch)
               for name in stage.layer_names
               if not net.layer(name).is_cheap
               and net.layer(name).kind is not LayerKind.INPUT)


def _stage_wgrad_stash_bytes(net: Network, stage: PipelineStage,
                             microbatch: int) -> int:
    """Input-activation bytes the stage's weight-grad GEMMs re-read.

    dW = X^T . dY needs each weighted layer's *input*; deferring W
    keeps those producers resident past B (each counted once even when
    feeding several weighted layers).
    """
    producers: set[str] = set()
    for name in stage.layer_names:
        if not net.layer(name).weight_elems:
            continue
        producers.update(net.predecessors(name))
    return sum(net.layer(p).out_bytes(microbatch) for p in producers)


def resolve_stage_count(net: Network, config: SystemConfig) -> int:
    """The pipeline depth a config implies for a network."""
    requested = config.pipeline_stages or config.n_devices
    return max(1, min(requested, stageable_layer_count(net)))


def plan_pipeline(net: Network, config: SystemConfig,
                  batch: int) -> PipelinePlan:
    """Partition, schedule, and time one pipeline-parallel iteration."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    kind = parse_schedule_kind(config.pipeline_schedule)
    n_channels = resolve_stage_count(net, config)
    chunks = kind.virtual_chunks
    if chunks > 1 and (n_channels < 2 or stageable_layer_count(net)
                       < chunks * n_channels):
        chunks = 1  # too shallow to interleave; degenerate to one chunk
    n_stages = n_channels * chunks
    n_microbatches = config.pipeline_microbatches
    if batch % n_microbatches:
        # Simulating a padded batch would silently skew throughput
        # against the data/model-parallel cells at the same batch.
        raise ValueError(
            f"batch {batch} is not divisible by "
            f"pipeline_microbatches={n_microbatches}")
    microbatch = batch // n_microbatches
    split = kind.splits_wgrad

    stages = partition_stages(net, n_stages)
    sends = crossing_sends(net, stages)

    # Time every stage before building the schedule: the zb-auto
    # search ranks slot orderings against these very costs.
    timed = []
    for stage in stages:
        fwd, bwd, wgrad = _stage_times(net, stage, config, microbatch,
                                       split)
        bytes_to: dict[int, int] = {}
        for producer, to in sends[stage.index]:
            bytes_to[to] = bytes_to.get(to, 0) \
                + net.layer(producer).out_bytes(microbatch)
        timed.append((stage, fwd, bwd, wgrad,
                      tuple(sorted(bytes_to.items()))))

    costs = None
    if kind is ScheduleKind.ZB_AUTO:
        # Grad sends mirror the forward boundary traffic, so one
        # per-stage p2p estimate serves both directions.
        send_cost = tuple(
            sum(_p2p_time(config, nbytes) for _, nbytes in stage_sends)
            for _, _, _, _, stage_sends in timed)
        costs = ScheduleCosts(
            t_fwd=tuple(fwd for _, fwd, _, _, _ in timed),
            t_bwd=tuple(bwd for _, _, bwd, _, _ in timed),
            t_wgrad=tuple(wgrad for _, _, _, wgrad, _ in timed),
            send_fwd=send_cost, send_bwd=send_cost)
    schedule = build_schedule(kind, n_stages, n_microbatches, costs)

    works = []
    for stage, fwd, bwd, wgrad, stage_sends in timed:
        program = schedule.program(stage.index)
        stash = _stage_stash_bytes(net, stage, microbatch)
        offloaded = tuple(
            config.virtualizes and stash > 0
            and program.stash_slots(m) > config.offload_window
            for m in range(n_microbatches))
        works.append(StageWork(
            index=stage.index, layer_names=stage.layer_names,
            fwd_time=fwd, bwd_time=bwd,
            weight_bytes=_stage_weight_bytes(net, stage),
            stash_bytes=stash,
            sends=stage_sends,
            offloaded=offloaded,
            max_in_flight=program.max_in_flight,
            wgrad_time=wgrad,
            wgrad_stash_bytes=(_stage_wgrad_stash_bytes(
                net, stage, microbatch) if split else 0),
            max_w_backlog=program.max_w_backlog))

    return PipelinePlan(
        network=net.name, batch=batch, microbatch=microbatch,
        schedule=schedule, stages=tuple(works),
        replicas=max(1, config.n_devices // n_channels),
        chunks=chunks)


def _stage_fetch_microbatches(plan: PipelinePlan,
                              stage: StageWork) -> tuple[int, ...]:
    """Offloaded microbatches of one stage, in backward-slot order."""
    program = plan.schedule.program(stage.index)
    order = [slot.microbatch for slot in program.slots
             if slot.kind is OpKind.B]
    return tuple(m for m in order if stage.offloaded[m])


def _stage_bwd_position(plan: PipelinePlan,
                        stage: StageWork) -> dict[int, int]:
    """Microbatch -> index of its B slot in program order (the stash
    is consumed, and freed, by the activation-grad op)."""
    program = plan.schedule.program(stage.index)
    order = [slot.microbatch for slot in program.slots
             if slot.kind is OpKind.B]
    return {m: pos for pos, m in enumerate(order)}


def _pipeline_seconds(plan: PipelinePlan,
                      config: SystemConfig) -> tuple[float, float]:
    """(compute, communication) seconds of one pipeline iteration."""
    n_microbatches = plan.schedule.n_microbatches
    compute = sum(
        (stage.fwd_time + stage.bwd_time + stage.wgrad_time)
        * n_microbatches for stage in plan.stages)
    comm = 0.0
    for stage in plan.stages:
        for _, nbytes in stage.sends:
            comm += 2 * n_microbatches * _p2p_time(config, nbytes)
        if plan.replicas > 1 and stage.weight_bytes:
            comm += pricing.collective_time(config.collectives,
                                            Primitive.ALL_REDUCE,
                                            stage.weight_bytes)
    return compute, comm


def pipeline_pricer(plan: PipelinePlan, config: SystemConfig):
    """The stash-DMA pricer of one pipeline iteration."""
    compute, comm = _pipeline_seconds(plan, config)
    return vmem_pricer(config, compute, comm)


def plan_pipeline_prefetch(plan: PipelinePlan, config: SystemConfig,
                           pricer=None) \
        -> tuple[PrefetchSchedule, ...]:
    """Run the configured prefetch policy over every stage's stash.

    Each stage owns a private DMA channel, so the policy plans each
    stage independently: the fetch sites are the stage's offloaded
    microbatches in backward-slot order, and the step estimates are the
    stage's per-microbatch backward (B) time.
    """
    if pricer is None:
        pricer = pipeline_pricer(plan, config)
    policy = prefetch_policy(config.prefetch_policy)
    schedules = []
    for stage in plan.stages:
        positions = _stage_bwd_position(plan, stage)
        n_steps = len(positions)
        sites = []
        fetch_seconds = []
        for m in _stage_fetch_microbatches(plan, stage):
            sites.append(FetchSite(producer=f"s{stage.index}:m{m}",
                                   use_step=positions[m],
                                   nbytes=stage.stash_bytes))
            fetch_seconds.append(pricer(stage.stash_bytes))
        ctx = PrefetchContext(
            n_steps=n_steps, sites=tuple(sites),
            step_seconds=tuple(stage.bwd_time
                               for _ in range(n_steps)),
            fetch_seconds=tuple(fetch_seconds),
            window=config.prefetch_window,
            stash=config.prefetch_stash)
        schedules.append(policy.plan(ctx))
    return tuple(schedules)


def build_pipeline_ops(plan: PipelinePlan, config: SystemConfig,
                       prefetch: tuple[PrefetchSchedule, ...] | None
                       = None, pricer=None) -> OpSink:
    """Emit the pipeline's ops; stage *s* runs on channel ``s % P``.

    Emission walks every stage's program in slot order, interleaving
    stages as cross-stage dependencies allow, so per-channel issue
    order equals program order (engines execute in issue order).
    Stash prefetches are gated per the active policy's per-stage issue
    plan (the legacy bounded lookahead under ``on-demand``).  On
    zero-bubble schedules the W slot depends only on its own B -- it
    is pure deferrable filler on the stage's compute channel.
    """
    if pricer is None:
        pricer = pipeline_pricer(plan, config)
    if prefetch is None:
        prefetch = plan_pipeline_prefetch(plan, config, pricer)
    # Per stage: microbatch -> (its fetch issue, the waste emitted
    # just before it).
    stage_issue: list[dict[int, object]] = []
    stage_waste: list[dict[int, tuple]] = []
    for stage, sched in zip(plan.stages, prefetch):
        order = _stage_fetch_microbatches(plan, stage)
        waste_before = sched.waste_before()
        stage_issue.append({m: sched.issues[i]
                            for i, m in enumerate(order)})
        stage_waste.append({m: waste_before.get(i, ())
                            for i, m in enumerate(order)})
    ops = new_op_sink()
    schedule = plan.schedule
    n_stages = schedule.n_stages
    chan = plan.channel_of

    targets = {s.index: tuple(to for to, _ in s.sends)
               for s in plan.stages}
    sources: dict[int, list[int]] = {s.index: [] for s in plan.stages}
    for stage in plan.stages:
        for to, _ in stage.sends:
            if stage.index not in sources[to]:
                sources[to].append(stage.index)

    fwd_uid: dict[tuple[int, int], int] = {}
    act_send: dict[tuple[int, int, int], int] = {}
    grad_send: dict[tuple[int, int, int], int] = {}
    offload_uid: dict[tuple[int, int], int] = {}
    offload_order: list[list[int]] = [[] for _ in range(n_stages)]
    bwd_uids: list[list[int]] = [[] for _ in range(n_stages)]
    bwd_uid: dict[tuple[int, int], int] = {}
    last_grad_uid: dict[int, int] = {}

    def emit_forward(stage: StageWork, m: int) -> None:
        s = stage.index
        deps = [act_send[(p, s, m)] for p in sources[s]]
        # vDNN pinned-buffer back-pressure, per stage.
        if len(offload_order[s]) >= config.offload_window:
            deps.append(offload_order[s][-config.offload_window])
        uid = ops.add(EngineKind.COMPUTE, stage.fwd_time, deps,
                      tag=f"fwd:s{s}:m{m}", channel=chan(s))
        fwd_uid[(s, m)] = uid
        for to, nbytes in stage.sends:
            act_send[(s, to, m)] = ops.add(
                EngineKind.COMM, _p2p_time(config, nbytes), [uid],
                tag=f"send-act:s{s}>s{to}:m{m}", nbytes=nbytes,
                channel=chan(s))
        if stage.offloaded[m]:
            uid_off = ops.add(
                EngineKind.DMA_OUT,
                pricer(stage.stash_bytes), [uid],
                tag=f"offload:s{s}:m{m}", nbytes=stage.stash_bytes,
                channel=chan(s))
            offload_uid[(s, m)] = uid_off
            offload_order[s].append(uid_off)

    def emit_backward(stage: StageWork, m: int) -> None:
        s = stage.index
        if targets[s]:
            deps = [grad_send[(t, s, m)] for t in targets[s]]
        else:
            # The loss-side stage turns around on its own forward.
            deps = [fwd_uid[(s, m)]]
        if stage.offloaded[m]:
            # Prefetch gated per the policy's issue plan for this
            # stage (legacy bounded lookahead under on-demand).
            issue = stage_issue[s][m]
            for waste in stage_waste[s][m]:
                waste_gate = ([] if waste.gate_step is None
                              else [bwd_uids[s][waste.gate_step]])
                ops.add(EngineKind.DMA_IN, pricer(waste.nbytes),
                        waste_gate, tag=f"waste:{waste.label}",
                        nbytes=waste.nbytes, channel=chan(s))
            gate = ([] if issue.gate_step is None
                    else [bwd_uids[s][issue.gate_step]])
            deps.append(ops.add(
                EngineKind.DMA_IN,
                pricer(stage.stash_bytes),
                gate + [offload_uid[(s, m)]],
                tag=f"prefetch:s{s}:m{m}", nbytes=stage.stash_bytes,
                channel=chan(s)))
        uid = ops.add(EngineKind.COMPUTE, stage.bwd_time, deps,
                      tag=f"bwd:s{s}:m{m}", channel=chan(s))
        bwd_uids[s].append(uid)
        bwd_uid[(s, m)] = uid
        last_grad_uid[s] = uid
        for p in sources[s]:
            nbytes = next(b for to, b in plan.stages[p].sends
                          if to == s)
            grad_send[(s, p, m)] = ops.add(
                EngineKind.COMM, _p2p_time(config, nbytes), [uid],
                tag=f"send-grad:s{s}>s{p}:m{m}", nbytes=nbytes,
                channel=chan(s))

    def emit_wgrad(stage: StageWork, m: int) -> None:
        s = stage.index
        # Only the microbatch's own B gates W: the weight-grad inputs
        # sit resident (wgrad_stash_bytes) until this op retires them.
        uid = ops.add(EngineKind.COMPUTE, stage.wgrad_time,
                      [bwd_uid[(s, m)]], tag=f"wgrad:s{s}:m{m}",
                      channel=chan(s))
        last_grad_uid[s] = uid

    def ready(stage: StageWork, slot) -> bool:
        s = stage.index
        m = slot.microbatch
        if slot.kind is OpKind.F:
            return all((p, s, m) in act_send for p in sources[s])
        if slot.kind is OpKind.W:
            return (s, m) in bwd_uid
        if targets[s]:
            return all((t, s, m) in grad_send for t in targets[s])
        return (s, m) in fwd_uid

    cursors = [0] * n_stages
    total_slots = sum(len(p.slots) for p in schedule.programs)
    emitted = 0
    progress = True
    while progress:
        progress = False
        for stage in plan.stages:
            program = schedule.program(stage.index)
            while cursors[stage.index] < len(program.slots):
                slot = program.slots[cursors[stage.index]]
                if not ready(stage, slot):
                    break
                if slot.kind is OpKind.F:
                    emit_forward(stage, slot.microbatch)
                elif slot.kind is OpKind.B:
                    emit_backward(stage, slot.microbatch)
                else:
                    emit_wgrad(stage, slot.microbatch)
                cursors[stage.index] += 1
                emitted += 1
                progress = True
    if emitted != total_slots:
        raise RuntimeError(
            f"pipeline schedule deadlocked after {emitted}/"
            f"{total_slots} slots (inconsistent stage programs)")

    # Weight-gradient all-reduce across pipeline replicas at drain,
    # gated on the stage's last gradient-producing compute op (the
    # final W on zero-bubble schedules, the final backward otherwise).
    if plan.replicas > 1:
        for stage in plan.stages:
            if stage.weight_bytes:
                ops.add(EngineKind.COMM,
                        pricing.collective_time(config.collectives,
                                                Primitive.ALL_REDUCE,
                                                stage.weight_bytes),
                        [last_grad_uid[stage.index]],
                        tag=f"sync-dw:s{stage.index}",
                        nbytes=stage.weight_bytes,
                        channel=chan(stage.index))
    return ops


def pipeline_stats(plan: PipelinePlan,
                   timeline: Timeline) -> PipelineStats:
    """Per-device bubble/compute accounting of a scheduled pipeline.

    Rows are physical devices (timeline channels); under the
    interleaved kind each row folds the device's virtual stages
    together.  A stage busier than the makespan would mean the
    timeline over-counted work, so that is an invariant violation,
    not something to clamp away silently.
    """
    makespan = timeline.makespan
    tolerance = 1e-9 * max(1.0, makespan)
    compute = []
    bubble = []
    for channel in range(plan.n_channels):
        busy = timeline.busy_time(EngineKind.COMPUTE, channel)
        gap = makespan - busy
        if gap < -tolerance:
            raise RuntimeError(
                f"stage {channel} busy time {busy!r} exceeds makespan "
                f"{makespan!r}: timeline over-counted compute")
        compute.append(busy)
        bubble.append(gap if gap > 0.0 else 0.0)
    offload = [0] * plan.n_channels
    in_flight = [0] * plan.n_channels
    wgrad = [0.0] * plan.n_channels
    for stage in plan.stages:
        channel = plan.channel_of(stage.index)
        offload[channel] += stage.offload_bytes
        in_flight[channel] += stage.max_in_flight
        wgrad[channel] += stage.wgrad_time \
            * plan.schedule.n_microbatches
    return PipelineStats(
        schedule=plan.schedule.kind.value,
        n_stages=plan.n_channels,
        n_microbatches=plan.schedule.n_microbatches,
        microbatch=plan.microbatch,
        replicas=plan.replicas,
        stage_compute=tuple(compute),
        stage_bubble=tuple(bubble),
        stage_offload_bytes=tuple(offload),
        stage_max_in_flight=tuple(in_flight),
        stage_wgrad=(tuple(wgrad) if plan.schedule.splits_wgrad
                     else ()))
