"""Lower a microbatch schedule onto the engine-level timeline.

Each pipeline stage is a device running the familiar four engines, so
stage *s* owns timeline channel *s* (:mod:`repro.core.timeline`):

* forward/backward microbatch work on ``COMPUTE``;
* boundary activations (and their gradients) as point-to-point ``COMM``
  ops on the *sending* stage's channel, priced over half the device's
  links (the half facing one neighbor in the ring topologies);
* per-microbatch activation-stash offload/prefetch on the DMA engines,
  with the vDNN back-pressure and prefetch-lookahead windows of the
  non-pipelined scheduler;
* the weight-gradient all-reduce at drain, when leftover devices form
  data-parallel replicas of the pipeline.

A microbatch's stash is offloaded only when the schedule keeps it
alive for more than ``offload_window`` slots -- the pinned-buffer
budget covers shorter lifetimes.  This is where fill-drain and 1F1B
diverge: fill-drain stashes every microbatch for ~``M`` slots and pays
the round-trip, 1F1B retires stage ``s``'s stash within ``P - s``
slots and mostly stays resident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.ring_algorithm import Primitive
from repro.core import pricing
from repro.core.metrics import PipelineStats
from repro.core.optable import OpSink, Timeline, new_op_sink
from repro.core.schedule import vmem_pricer
from repro.core.system import SystemConfig
from repro.core.timeline import EngineKind
from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind
from repro.pipeline.partition import (PipelineStage, crossing_sends,
                                      partition_stages,
                                      stageable_layer_count)
from repro.pipeline.schedules import (PipelineSchedule, ScheduleKind,
                                      build_schedule)
from repro.vmem.prefetch import (FetchSite, PrefetchContext,
                                 PrefetchSchedule, prefetch_policy)


@dataclass(frozen=True)
class StageWork:
    """One stage's per-microbatch work, fully timed."""

    index: int
    layer_names: tuple[str, ...]
    fwd_time: float
    bwd_time: float
    #: Unique trainable bytes held by this stage (shared groups once).
    weight_bytes: int
    #: Offloadable activation bytes one microbatch stashes here.
    stash_bytes: int
    #: Outgoing boundary traffic, aggregated per consumer stage:
    #: (consumer stage, total bytes per microbatch).  Multiple
    #: crossing edges to one stage (residual + block output) bundle
    #: into a single transfer.
    sends: tuple[tuple[int, int], ...]
    #: Per-microbatch offload decision (schedule lifetime > window).
    offloaded: tuple[bool, ...]
    #: Peak microbatches in flight under the schedule.
    max_in_flight: int

    @property
    def offload_bytes(self) -> int:
        """Bytes this stage offloads per iteration (one way)."""
        return self.stash_bytes * sum(self.offloaded)


@dataclass(frozen=True)
class PipelinePlan:
    """Everything needed to emit (and introspect) a pipeline iteration."""

    network: str
    batch: int
    microbatch: int
    schedule: PipelineSchedule
    stages: tuple[StageWork, ...]
    #: Data-parallel replicas of the whole pipeline (n_devices // P).
    replicas: int

    @property
    def n_stages(self) -> int:
        return self.schedule.n_stages

    @property
    def stage_offload_bytes(self) -> tuple[int, ...]:
        return tuple(stage.offload_bytes for stage in self.stages)

    @property
    def offload_bytes_per_device(self) -> int:
        """The bottleneck (worst-stage) device's offload bytes."""
        return max(self.stage_offload_bytes)

    @property
    def sync_bytes_per_iteration(self) -> int:
        """Activation/gradient p2p plus the drain all-reduce bytes."""
        total = 0
        for stage in self.stages:
            for _, nbytes in stage.sends:
                total += 2 * nbytes * self.schedule.n_microbatches
            if self.replicas > 1:
                total += stage.weight_bytes
        return total

    @property
    def max_stage_footprint_bytes(self) -> int:
        """Worst stage's resident need: weights + grads + peak stash."""
        return max(2 * stage.weight_bytes
                   + stage.stash_bytes * stage.max_in_flight
                   for stage in self.stages)


def _p2p_time(config: SystemConfig, nbytes: int) -> float:
    """One neighbor-to-neighbor transfer: half the device's links."""
    bandwidth = config.device.aggregate_link_bw / 2
    return config.device.link.latency + nbytes / bandwidth


def _stage_weight_bytes(net: Network, stage: PipelineStage) -> int:
    seen: set[str] = set()
    total = 0
    for name in stage.layer_names:
        layer = net.layer(name)
        if not layer.weight_elems:
            continue
        if layer.weight_group:
            if layer.weight_group in seen:
                continue
            seen.add(layer.weight_group)
        total += layer.weight_bytes
    return total


def _stage_times(net: Network, stage: PipelineStage,
                 config: SystemConfig, microbatch: int) \
        -> tuple[float, float]:
    """(fwd, bwd) compute time of one stage for one microbatch."""
    device = config.device
    fwd = bwd = 0.0
    for name in stage.layer_names:
        layer = net.layer(name)
        if layer.kind is LayerKind.INPUT:
            continue
        fwd += pricing.layer_fwd_time(device, layer, microbatch)
        bwd += pricing.layer_bwd_time(device, layer, microbatch)
        # Cheap layers are recomputed during backward instead of
        # migrated (footnote 4), per microbatch.
        if layer.is_cheap and config.virtualizes:
            bwd += pricing.layer_fwd_time(device, layer, microbatch)
    return fwd, bwd


def _stage_stash_bytes(net: Network, stage: PipelineStage,
                       microbatch: int) -> int:
    """Offloadable (non-cheap, non-input) activation bytes per mb."""
    return sum(net.layer(name).out_bytes(microbatch)
               for name in stage.layer_names
               if not net.layer(name).is_cheap
               and net.layer(name).kind is not LayerKind.INPUT)


def resolve_stage_count(net: Network, config: SystemConfig) -> int:
    """The pipeline depth a config implies for a network."""
    requested = config.pipeline_stages or config.n_devices
    return max(1, min(requested, stageable_layer_count(net)))


def plan_pipeline(net: Network, config: SystemConfig,
                  batch: int) -> PipelinePlan:
    """Partition, schedule, and time one pipeline-parallel iteration."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    n_stages = resolve_stage_count(net, config)
    n_microbatches = config.pipeline_microbatches
    if batch % n_microbatches:
        # Simulating a padded batch would silently skew throughput
        # against the data/model-parallel cells at the same batch.
        raise ValueError(
            f"batch {batch} is not divisible by "
            f"pipeline_microbatches={n_microbatches}")
    microbatch = batch // n_microbatches
    kind = ScheduleKind(config.pipeline_schedule)
    schedule = build_schedule(kind, n_stages, n_microbatches)

    stages = partition_stages(net, n_stages)
    sends = crossing_sends(net, stages)

    works = []
    for stage in stages:
        program = schedule.program(stage.index)
        fwd, bwd = _stage_times(net, stage, config, microbatch)
        stash = _stage_stash_bytes(net, stage, microbatch)
        offloaded = tuple(
            config.virtualizes and stash > 0
            and program.stash_slots(m) > config.offload_window
            for m in range(n_microbatches))
        bytes_to: dict[int, int] = {}
        for producer, to in sends[stage.index]:
            bytes_to[to] = bytes_to.get(to, 0) \
                + net.layer(producer).out_bytes(microbatch)
        works.append(StageWork(
            index=stage.index, layer_names=stage.layer_names,
            fwd_time=fwd, bwd_time=bwd,
            weight_bytes=_stage_weight_bytes(net, stage),
            stash_bytes=stash,
            sends=tuple(sorted(bytes_to.items())),
            offloaded=offloaded,
            max_in_flight=program.max_in_flight))

    return PipelinePlan(
        network=net.name, batch=batch, microbatch=microbatch,
        schedule=schedule, stages=tuple(works),
        replicas=max(1, config.n_devices // n_stages))


def _stage_fetch_microbatches(plan: PipelinePlan,
                              stage: StageWork) -> tuple[int, ...]:
    """Offloaded microbatches of one stage, in backward-slot order."""
    program = plan.schedule.program(stage.index)
    order = [slot.microbatch for slot in program.slots
             if not slot.is_forward]
    return tuple(m for m in order if stage.offloaded[m])


def _stage_bwd_position(plan: PipelinePlan,
                        stage: StageWork) -> dict[int, int]:
    """Microbatch -> index of its backward slot in program order."""
    program = plan.schedule.program(stage.index)
    order = [slot.microbatch for slot in program.slots
             if not slot.is_forward]
    return {m: pos for pos, m in enumerate(order)}


def _pipeline_seconds(plan: PipelinePlan,
                      config: SystemConfig) -> tuple[float, float]:
    """(compute, communication) seconds of one pipeline iteration."""
    n_microbatches = plan.schedule.n_microbatches
    compute = sum((stage.fwd_time + stage.bwd_time) * n_microbatches
                  for stage in plan.stages)
    comm = 0.0
    for stage in plan.stages:
        for _, nbytes in stage.sends:
            comm += 2 * n_microbatches * _p2p_time(config, nbytes)
        if plan.replicas > 1 and stage.weight_bytes:
            comm += pricing.collective_time(config.collectives,
                                            Primitive.ALL_REDUCE,
                                            stage.weight_bytes)
    return compute, comm


def pipeline_pricer(plan: PipelinePlan, config: SystemConfig):
    """The stash-DMA pricer of one pipeline iteration."""
    compute, comm = _pipeline_seconds(plan, config)
    return vmem_pricer(config, compute, comm)


def plan_pipeline_prefetch(plan: PipelinePlan, config: SystemConfig,
                           pricer=None) \
        -> tuple[PrefetchSchedule, ...]:
    """Run the configured prefetch policy over every stage's stash.

    Each stage owns a private DMA channel, so the policy plans each
    stage independently: the fetch sites are the stage's offloaded
    microbatches in backward-slot order, and the step estimates are the
    stage's per-microbatch backward time.
    """
    if pricer is None:
        pricer = pipeline_pricer(plan, config)
    policy = prefetch_policy(config.prefetch_policy)
    schedules = []
    for stage in plan.stages:
        positions = _stage_bwd_position(plan, stage)
        n_steps = len(positions)
        sites = []
        fetch_seconds = []
        for m in _stage_fetch_microbatches(plan, stage):
            sites.append(FetchSite(producer=f"s{stage.index}:m{m}",
                                   use_step=positions[m],
                                   nbytes=stage.stash_bytes))
            fetch_seconds.append(pricer(stage.stash_bytes))
        ctx = PrefetchContext(
            n_steps=n_steps, sites=tuple(sites),
            step_seconds=tuple(stage.bwd_time
                               for _ in range(n_steps)),
            fetch_seconds=tuple(fetch_seconds),
            window=config.prefetch_window,
            stash=config.prefetch_stash)
        schedules.append(policy.plan(ctx))
    return tuple(schedules)


def build_pipeline_ops(plan: PipelinePlan, config: SystemConfig,
                       prefetch: tuple[PrefetchSchedule, ...] | None
                       = None, pricer=None) -> OpSink:
    """Emit the pipeline's ops; stage *s* runs on timeline channel *s*.

    Emission walks every stage's program in slot order, interleaving
    stages as cross-stage dependencies allow, so per-channel issue
    order equals program order (engines execute in issue order).
    Stash prefetches are gated per the active policy's per-stage issue
    plan (the legacy bounded lookahead under ``on-demand``).
    """
    if pricer is None:
        pricer = pipeline_pricer(plan, config)
    if prefetch is None:
        prefetch = plan_pipeline_prefetch(plan, config, pricer)
    # Per stage: microbatch -> (its fetch issue, the waste emitted
    # just before it).
    stage_issue: list[dict[int, object]] = []
    stage_waste: list[dict[int, tuple]] = []
    for stage, sched in zip(plan.stages, prefetch):
        order = _stage_fetch_microbatches(plan, stage)
        waste_before = sched.waste_before()
        stage_issue.append({m: sched.issues[i]
                            for i, m in enumerate(order)})
        stage_waste.append({m: waste_before.get(i, ())
                            for i, m in enumerate(order)})
    ops = new_op_sink()
    schedule = plan.schedule
    n_stages = schedule.n_stages

    targets = {s.index: tuple(to for to, _ in s.sends)
               for s in plan.stages}
    sources: dict[int, list[int]] = {s.index: [] for s in plan.stages}
    for stage in plan.stages:
        for to, _ in stage.sends:
            if stage.index not in sources[to]:
                sources[to].append(stage.index)

    fwd_uid: dict[tuple[int, int], int] = {}
    act_send: dict[tuple[int, int, int], int] = {}
    grad_send: dict[tuple[int, int, int], int] = {}
    offload_uid: dict[tuple[int, int], int] = {}
    offload_order: list[list[int]] = [[] for _ in range(n_stages)]
    bwd_uids: list[list[int]] = [[] for _ in range(n_stages)]

    def emit_forward(stage: StageWork, m: int) -> None:
        s = stage.index
        deps = [act_send[(p, s, m)] for p in sources[s]]
        # vDNN pinned-buffer back-pressure, per stage.
        if len(offload_order[s]) >= config.offload_window:
            deps.append(offload_order[s][-config.offload_window])
        uid = ops.add(EngineKind.COMPUTE, stage.fwd_time, deps,
                      tag=f"fwd:s{s}:m{m}", channel=s)
        fwd_uid[(s, m)] = uid
        for to, nbytes in stage.sends:
            act_send[(s, to, m)] = ops.add(
                EngineKind.COMM, _p2p_time(config, nbytes), [uid],
                tag=f"send-act:s{s}>s{to}:m{m}", nbytes=nbytes,
                channel=s)
        if stage.offloaded[m]:
            uid_off = ops.add(
                EngineKind.DMA_OUT,
                pricer(stage.stash_bytes), [uid],
                tag=f"offload:s{s}:m{m}", nbytes=stage.stash_bytes,
                channel=s)
            offload_uid[(s, m)] = uid_off
            offload_order[s].append(uid_off)

    def emit_backward(stage: StageWork, m: int) -> None:
        s = stage.index
        if targets[s]:
            deps = [grad_send[(t, s, m)] for t in targets[s]]
        else:
            # The loss-side stage turns around on its own forward.
            deps = [fwd_uid[(s, m)]]
        if stage.offloaded[m]:
            # Prefetch gated per the policy's issue plan for this
            # stage (legacy bounded lookahead under on-demand).
            issue = stage_issue[s][m]
            for waste in stage_waste[s][m]:
                waste_gate = ([] if waste.gate_step is None
                              else [bwd_uids[s][waste.gate_step]])
                ops.add(EngineKind.DMA_IN, pricer(waste.nbytes),
                        waste_gate, tag=f"waste:{waste.label}",
                        nbytes=waste.nbytes, channel=s)
            gate = ([] if issue.gate_step is None
                    else [bwd_uids[s][issue.gate_step]])
            deps.append(ops.add(
                EngineKind.DMA_IN,
                pricer(stage.stash_bytes),
                gate + [offload_uid[(s, m)]],
                tag=f"prefetch:s{s}:m{m}", nbytes=stage.stash_bytes,
                channel=s))
        uid = ops.add(EngineKind.COMPUTE, stage.bwd_time, deps,
                      tag=f"bwd:s{s}:m{m}", channel=s)
        bwd_uids[s].append(uid)
        for p in sources[s]:
            nbytes = next(b for to, b in plan.stages[p].sends
                          if to == s)
            grad_send[(s, p, m)] = ops.add(
                EngineKind.COMM, _p2p_time(config, nbytes), [uid],
                tag=f"send-grad:s{s}>s{p}:m{m}", nbytes=nbytes,
                channel=s)

    def ready(stage: StageWork, m: int, is_forward: bool) -> bool:
        s = stage.index
        if is_forward:
            return all((p, s, m) in act_send for p in sources[s])
        if targets[s]:
            return all((t, s, m) in grad_send for t in targets[s])
        return (s, m) in fwd_uid

    cursors = [0] * n_stages
    total_slots = sum(len(p.slots) for p in schedule.programs)
    emitted = 0
    progress = True
    while progress:
        progress = False
        for stage in plan.stages:
            program = schedule.program(stage.index)
            while cursors[stage.index] < len(program.slots):
                slot = program.slots[cursors[stage.index]]
                if not ready(stage, slot.microbatch, slot.is_forward):
                    break
                if slot.is_forward:
                    emit_forward(stage, slot.microbatch)
                else:
                    emit_backward(stage, slot.microbatch)
                cursors[stage.index] += 1
                emitted += 1
                progress = True
    if emitted != total_slots:
        raise RuntimeError(
            f"pipeline schedule deadlocked after {emitted}/"
            f"{total_slots} slots (inconsistent stage programs)")

    # Weight-gradient all-reduce across pipeline replicas at drain.
    if plan.replicas > 1:
        for stage in plan.stages:
            if stage.weight_bytes:
                ops.add(EngineKind.COMM,
                        pricing.collective_time(config.collectives,
                                                Primitive.ALL_REDUCE,
                                                stage.weight_bytes),
                        [bwd_uids[stage.index][-1]],
                        tag=f"sync-dw:s{stage.index}",
                        nbytes=stage.weight_bytes,
                        channel=stage.index)
    return ops


def pipeline_stats(plan: PipelinePlan,
                   timeline: Timeline) -> PipelineStats:
    """Per-stage bubble/compute accounting of a scheduled pipeline."""
    compute = []
    bubble = []
    for stage in plan.stages:
        busy = timeline.busy_time(EngineKind.COMPUTE, stage.index)
        compute.append(busy)
        bubble.append(max(0.0, timeline.makespan - busy))
    return PipelineStats(
        schedule=plan.schedule.kind.value,
        n_stages=plan.n_stages,
        n_microbatches=plan.schedule.n_microbatches,
        microbatch=plan.microbatch,
        replicas=plan.replicas,
        stage_compute=tuple(compute),
        stage_bubble=tuple(bubble),
        stage_offload_bytes=plan.stage_offload_bytes,
        stage_max_in_flight=tuple(stage.max_in_flight
                                  for stage in plan.stages))
