"""Microbatch schedule generation: GPipe, 1F1B, and zero-bubble kinds.

A :class:`PipelineSchedule` is pure structure -- per-stage ordered
slots of microbatch work, no times attached.  The two classic
schedules share the same dependency graph (so, absent memory effects,
the same fill/drain bubble: the well-known ``(P-1) * (t_f + t_b)`` of
both GPipe and 1F1B), but differ sharply in *activation lifetime*:
fill-drain keeps every microbatch's stash alive across the whole
forward phase (peak ``M`` in flight), while 1F1B caps stage *s* at
``P - s`` microbatches.  That lifetime gap is what the
memory-virtualization runtime turns into a measurable bubble gap --
long-lived stashes are offloaded and their prefetches stall backward
compute (:mod:`repro.pipeline.lowering`).

The zero-bubble kinds additionally split each backward into an
activation-gradient op (``B``, on the critical path: it feeds the
upstream grad send) and a weight-gradient op (``W``, deferrable
filler).  Deferring ``W`` shortens the stage-to-stage backward chain
to ``t_B`` and spends the banked ``t_W`` inside the fill/drain idle,
after the style of the ZB-H1 schedule (sail-sg zero-bubble).  The
activation stash is still freed at ``B``; only the (smaller) weight
-gradient inputs are held until ``W``, so the deferral depth is capped
at the stage's 1F1B warmup to stay under the same memory bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ScheduleKind(enum.Enum):
    GPIPE = "gpipe"
    ONE_F_ONE_B = "1f1b"
    ZB_H1 = "zb-h1"
    INTERLEAVED = "interleaved"
    ZB_AUTO = "zb-auto"

    @property
    def splits_wgrad(self) -> bool:
        """Whether the kind emits separate B (dX) and W (dW) ops."""
        return self in _SPLIT_KINDS

    @property
    def virtual_chunks(self) -> int:
        """Virtual stages hosted per device (Megatron-style vpp)."""
        return 2 if self is ScheduleKind.INTERLEAVED else 1


_SPLIT_KINDS = frozenset({ScheduleKind.ZB_H1, ScheduleKind.INTERLEAVED,
                          ScheduleKind.ZB_AUTO})

#: Canonical kind values in presentation order.
SCHEDULE_ORDER = tuple(kind.value for kind in ScheduleKind)

#: Accepted spellings -> canonical ``ScheduleKind`` values.
SCHEDULE_ALIASES = {
    "gpipe": "gpipe",
    "fill-drain": "gpipe",
    "1f1b": "1f1b",
    "one-f-one-b": "1f1b",
    "zb-h1": "zb-h1",
    "zb": "zb-h1",
    "zero-bubble": "zb-h1",
    "interleaved": "interleaved",
    "vpp": "interleaved",
    "zb-v": "interleaved",
    "zb-auto": "zb-auto",
    "auto": "zb-auto",
}


def parse_schedule_kind(raw: str) -> ScheduleKind:
    """``ScheduleKind`` for a canonical value or alias (ValueError)."""
    try:
        return ScheduleKind(SCHEDULE_ALIASES.get(str(raw).lower(), raw))
    except ValueError:
        raise ValueError(
            f"'{raw}' is not a valid ScheduleKind; known: "
            + ", ".join(SCHEDULE_ORDER)) from None


class OpKind(enum.Enum):
    """What a slot computes: forward, activation-grad, weight-grad."""

    F = "F"
    B = "B"
    W = "W"


@dataclass(frozen=True)
class Slot:
    """One unit of stage work: a microbatch's F, B, or W op.

    ``kind`` defaults from ``is_forward`` so the classic two-phase
    constructor ``Slot(m, is_forward)`` keeps meaning F/B; zero-bubble
    schedules pass ``OpKind.W`` explicitly (with ``is_forward=False``,
    so legacy consumers see W as backward-phase work).
    """

    microbatch: int
    is_forward: bool
    kind: OpKind | None = None

    def __post_init__(self) -> None:
        if self.kind is None:
            object.__setattr__(
                self, "kind", OpKind.F if self.is_forward else OpKind.B)
        elif (self.kind is OpKind.F) != self.is_forward:
            raise ValueError(
                f"slot kind {self.kind} inconsistent with "
                f"is_forward={self.is_forward}")


def _f(m: int) -> Slot:
    return Slot(m, True)


def _b(m: int) -> Slot:
    return Slot(m, False)


def _w(m: int) -> Slot:
    return Slot(m, False, OpKind.W)


@dataclass(frozen=True)
class StageProgram:
    """One stage's ordered slot sequence."""

    stage: int
    slots: tuple[Slot, ...]
    #: ``(microbatch, kind) -> slot position``, built once so lowering
    #: does O(1) lookups instead of an O(M) scan per query.
    _index: dict = field(default_factory=dict, init=False, repr=False,
                         compare=False)

    #: ``_w_before[i]`` counts W slots among ``slots[:i]`` (prefix
    #: sums, so ``stash_slots`` can discount W filler in O(1)).
    _w_before: tuple = field(default=(), init=False, repr=False,
                             compare=False)

    def __post_init__(self) -> None:
        index: dict[tuple[int, OpKind], int] = {}
        w_before = [0]
        for position, slot in enumerate(self.slots):
            key = (slot.microbatch, slot.kind)
            if key in index:
                raise ValueError(
                    f"stage {self.stage} repeats slot {key}")
            index[key] = position
            w_before.append(w_before[-1]
                            + (slot.kind is OpKind.W))
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_w_before", tuple(w_before))

    def slot_index(self, microbatch: int, is_forward: bool) -> int:
        kind = OpKind.F if is_forward else OpKind.B
        try:
            return self._index[(microbatch, kind)]
        except KeyError:
            raise KeyError((self.stage, microbatch, is_forward)) \
                from None

    def kind_index(self, microbatch: int, kind: OpKind) -> int:
        try:
            return self._index[(microbatch, kind)]
        except KeyError:
            raise KeyError((self.stage, microbatch, kind)) from None

    def stash_slots(self, microbatch: int) -> int:
        """Slots a microbatch's activations stay stashed: the count of
        other F/B work units executed between its forward and backward
        (the activation-grad op -- zero-bubble stashes are freed at B).
        Deferred W slots are short filler and do not count toward the
        lifetime, so the offload-window heuristic sees the same stash
        ages on a split schedule as on its 1F1B skeleton."""
        fwd = self.slot_index(microbatch, True)
        bwd = self.slot_index(microbatch, False)
        return bwd - fwd - 1 \
            - (self._w_before[bwd] - self._w_before[fwd + 1])

    @property
    def max_in_flight(self) -> int:
        """Peak live activation stashes (forwards minus B-backwards).

        W slots do not extend the activation lifetime: the stash is
        released when B consumes it.
        """
        live = peak = 0
        for slot in self.slots:
            if slot.kind is OpKind.F:
                live += 1
            elif slot.kind is OpKind.B:
                live -= 1
            peak = max(peak, live)
        return peak

    @property
    def max_w_backlog(self) -> int:
        """Peak count of microbatches whose B ran but W is still
        pending -- each holds its weight-gradient inputs resident."""
        pending = peak = 0
        for slot in self.slots:
            if slot.kind is OpKind.B:
                pending += 1
            elif slot.kind is OpKind.W:
                pending -= 1
            peak = max(peak, pending)
        return peak

    @property
    def has_wgrad(self) -> bool:
        return any(slot.kind is OpKind.W for slot in self.slots)


@dataclass(frozen=True)
class PipelineSchedule:
    """All stages' programs for one training iteration."""

    kind: ScheduleKind
    n_stages: int
    n_microbatches: int
    programs: tuple[StageProgram, ...]

    def program(self, stage: int) -> StageProgram:
        return self.programs[stage]

    @property
    def splits_wgrad(self) -> bool:
        return any(program.has_wgrad for program in self.programs)


@dataclass(frozen=True)
class ScheduleCosts:
    """Per-stage op costs feeding the zb-auto slot-ordering search.

    All tuples are indexed by stage.  ``t_bwd`` is the activation-grad
    (B) time alone; ``send_fwd[s]`` prices stage ``s``'s activation
    send toward ``s+1`` and ``send_bwd[s]`` its gradient send toward
    ``s-1`` (zero at the respective pipeline ends).
    """

    t_fwd: tuple[float, ...]
    t_bwd: tuple[float, ...]
    t_wgrad: tuple[float, ...]
    send_fwd: tuple[float, ...]
    send_bwd: tuple[float, ...]


def _gpipe_program(stage: int, n_microbatches: int) -> StageProgram:
    """Fill-drain: every forward, then every backward (same order)."""
    slots = [_f(m) for m in range(n_microbatches)]
    slots += [_b(m) for m in range(n_microbatches)]
    return StageProgram(stage=stage, slots=tuple(slots))


def _one_f_one_b_program(stage: int, n_stages: int,
                         n_microbatches: int) -> StageProgram:
    """1F1B: warm up ``P - 1 - s`` forwards, alternate, then drain."""
    warmup = min(n_stages - 1 - stage, n_microbatches)
    slots = [_f(m) for m in range(warmup)]
    for m in range(n_microbatches - warmup):
        slots.append(_f(warmup + m))
        slots.append(_b(m))
    for m in range(n_microbatches - warmup, n_microbatches):
        slots.append(_b(m))
    return StageProgram(stage=stage, slots=tuple(slots))


def _zero_bubble_program(stage: int, n_stages: int, n_microbatches: int,
                         defer: int, drain_w: int) -> StageProgram:
    """1F1B slot order with W split off and deferred as bubble filler.

    ``defer`` bounds how many microbatches may sit between a B and its
    W during the steady state (the weight-grad-input backlog, capped at
    the stage's warmup so memory stays at the 1F1B bound); ``drain_w``
    is how many banked W ops are retired per drain-phase B, filling the
    idle gaps between grad arrivals.  Leftover W ops flush at the tail.
    """
    warmup = min(n_stages - 1 - stage, n_microbatches)
    defer = max(0, min(defer, warmup, n_microbatches))
    slots = [_f(m) for m in range(warmup)]
    next_w = 0

    def retire(limit: int, upto: int) -> None:
        nonlocal next_w
        emitted = 0
        while next_w <= upto and emitted < limit:
            slots.append(_w(next_w))
            next_w += 1
            emitted += 1

    for m in range(n_microbatches - warmup):
        slots.append(_f(warmup + m))
        slots.append(_b(m))
        if m + 1 - next_w > defer:
            retire(m + 1 - next_w - defer, m)
    for m in range(n_microbatches - warmup, n_microbatches):
        slots.append(_b(m))
        retire(drain_w, m)
    retire(n_microbatches - next_w, n_microbatches - 1)
    return StageProgram(stage=stage, slots=tuple(slots))


def _zb_h1_params(n_stages: int,
                  n_microbatches: int) -> list[tuple[int, int]]:
    """The fixed ZB-H1 heuristic: defer by the warmup depth, retire
    one banked W per drain gap."""
    return [(min(n_stages - 1 - s, n_microbatches), 1)
            for s in range(n_stages)]


def evaluate_makespan(programs: tuple[StageProgram, ...],
                      costs: ScheduleCosts) -> float:
    """Analytic makespan of slot programs under the simulator's model.

    Mirrors the emitter's semantics -- one in-order compute engine per
    stage, F gated on the upstream activation send, B gated on the
    downstream gradient send (or the stage's own F at the loss stage),
    W gated on its own B -- but prices sends as fixed latencies rather
    than occupying a COMM engine.  It is the auto-scheduler's cheap
    inner-loop objective; the found schedule is validated by replaying
    through ``simulate()``.
    """
    n_stages = len(programs)
    cursors = [0] * n_stages
    engine_free = [0.0] * n_stages
    f_done: dict[tuple[int, int], float] = {}
    b_done: dict[tuple[int, int], float] = {}
    total = sum(len(p.slots) for p in programs)
    emitted = 0
    progress = True
    while progress:
        progress = False
        for s in range(n_stages):
            slots = programs[s].slots
            while cursors[s] < len(slots):
                slot = slots[cursors[s]]
                m = slot.microbatch
                if slot.kind is OpKind.F:
                    if s > 0:
                        if (s - 1, m) not in f_done:
                            break
                        ready = f_done[(s - 1, m)] + costs.send_fwd[s - 1]
                    else:
                        ready = 0.0
                    finish = max(engine_free[s], ready) + costs.t_fwd[s]
                    f_done[(s, m)] = finish
                elif slot.kind is OpKind.B:
                    if s < n_stages - 1:
                        if (s + 1, m) not in b_done:
                            break
                        ready = b_done[(s + 1, m)] + costs.send_bwd[s + 1]
                    else:
                        ready = f_done[(s, m)]
                    finish = max(engine_free[s], ready) + costs.t_bwd[s]
                    b_done[(s, m)] = finish
                else:
                    finish = max(engine_free[s], b_done[(s, m)]) \
                        + costs.t_wgrad[s]
                engine_free[s] = finish
                cursors[s] += 1
                emitted += 1
                progress = True
    if emitted != total:
        raise RuntimeError(
            f"schedule deadlocked after {emitted}/{total} slots in "
            "analytic evaluation (inconsistent stage programs)")
    return max(engine_free) if engine_free else 0.0


def _auto_zero_bubble_params(n_stages: int, n_microbatches: int,
                             costs: ScheduleCosts) \
        -> list[tuple[int, int]]:
    """Coordinate descent over per-stage (defer, drain_w) knobs.

    Starts at the ZB-H1 heuristic and greedily improves one stage at a
    time against the analytic makespan, two sweeps.  Deterministic;
    the deferral depth never exceeds the stage's warmup, keeping the
    weight-grad-input backlog under the 1F1B memory bound.
    """

    def build(params: list[tuple[int, int]]) \
            -> tuple[StageProgram, ...]:
        return tuple(
            _zero_bubble_program(s, n_stages, n_microbatches, d, k)
            for s, (d, k) in enumerate(params))

    params = _zb_h1_params(n_stages, n_microbatches)
    best = evaluate_makespan(build(params), costs)
    for _ in range(2):
        for s in range(n_stages):
            warmup = min(n_stages - 1 - s, n_microbatches)
            for defer in sorted({0, warmup // 2, warmup}):
                for drain_w in (0, 1, 2, n_microbatches):
                    if (defer, drain_w) == params[s]:
                        continue
                    trial = list(params)
                    trial[s] = (defer, drain_w)
                    span = evaluate_makespan(build(trial), costs)
                    if span < best * (1.0 - 1e-12):
                        best = span
                        params = trial
    return params


def build_schedule(kind: ScheduleKind, n_stages: int,
                   n_microbatches: int,
                   costs: ScheduleCosts | None = None) \
        -> PipelineSchedule:
    """Generate every stage's program for ``kind``.

    ``costs`` feeds the ``zb-auto`` slot-ordering search; without it
    the auto kind falls back to the fixed ZB-H1 parameters.  The other
    kinds ignore it.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    if n_microbatches < 1:
        raise ValueError("need at least one microbatch")
    if kind is ScheduleKind.GPIPE:
        programs = tuple(_gpipe_program(s, n_microbatches)
                         for s in range(n_stages))
    elif kind is ScheduleKind.ONE_F_ONE_B:
        programs = tuple(
            _one_f_one_b_program(s, n_stages, n_microbatches)
            for s in range(n_stages))
    else:
        if kind is ScheduleKind.ZB_AUTO and costs is not None:
            params = _auto_zero_bubble_params(n_stages, n_microbatches,
                                              costs)
        else:
            params = _zb_h1_params(n_stages, n_microbatches)
        programs = tuple(
            _zero_bubble_program(s, n_stages, n_microbatches, d, k)
            for s, (d, k) in enumerate(params))
    return PipelineSchedule(kind=kind, n_stages=n_stages,
                            n_microbatches=n_microbatches,
                            programs=programs)


def structural_bubble_time(n_stages: int, t_fwd: float, t_bwd: float,
                           t_wgrad: float = 0.0) -> float:
    """The schedule-independent fill/drain lower bound.

    With an undifferentiated backward (``t_wgrad == 0``) both GPipe
    and 1F1B idle each stage for ``(P-1) * (t_f + t_b)`` in aggregate
    when memory is free; measured bubbles exceed this bound by exactly
    the memory system's exposed stall time.  Splitting ``t_wgrad`` out
    of ``t_bwd`` (which stays the *total* backward time) lets a
    zero-bubble schedule fill up to ``2 * (P-1) * t_W`` of that idle
    with deferred weight-gradient work -- ZB-H1's
    ``(P-1) * (t_f + t_B - t_W)`` bound -- so the lower bound drops
    accordingly, floored at zero.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    return max(0.0, (n_stages - 1) * (t_fwd + t_bwd - 2.0 * t_wgrad))
