"""Microbatch schedule generation: GPipe fill-drain and 1F1B.

A :class:`PipelineSchedule` is pure structure -- per-stage ordered
slots of forward/backward microbatch work, no times attached.  The two
classic schedules share the same dependency graph (so, absent memory
effects, the same fill/drain bubble: the well-known
``(P-1) * (t_f + t_b)`` of both GPipe and 1F1B), but differ sharply in
*activation lifetime*: fill-drain keeps every microbatch's stash alive
across the whole forward phase (peak ``M`` in flight), while 1F1B caps
stage *s* at ``P - s`` microbatches.  That lifetime gap is what the
memory-virtualization runtime turns into a measurable bubble gap --
long-lived stashes are offloaded and their prefetches stall backward
compute (:mod:`repro.pipeline.lowering`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ScheduleKind(enum.Enum):
    GPIPE = "gpipe"
    ONE_F_ONE_B = "1f1b"


@dataclass(frozen=True)
class Slot:
    """One unit of stage work: a microbatch's forward or backward."""

    microbatch: int
    is_forward: bool


@dataclass(frozen=True)
class StageProgram:
    """One stage's ordered slot sequence."""

    stage: int
    slots: tuple[Slot, ...]

    def slot_index(self, microbatch: int, is_forward: bool) -> int:
        for index, slot in enumerate(self.slots):
            if slot.microbatch == microbatch \
                    and slot.is_forward == is_forward:
                return index
        raise KeyError((self.stage, microbatch, is_forward))

    def stash_slots(self, microbatch: int) -> int:
        """Slots a microbatch's activations stay stashed: the count of
        other work units executed between its forward and backward."""
        return self.slot_index(microbatch, False) \
            - self.slot_index(microbatch, True) - 1

    @property
    def max_in_flight(self) -> int:
        """Peak live activation stashes (forwards minus backwards)."""
        live = peak = 0
        for slot in self.slots:
            live += 1 if slot.is_forward else -1
            peak = max(peak, live)
        return peak


@dataclass(frozen=True)
class PipelineSchedule:
    """All stages' programs for one training iteration."""

    kind: ScheduleKind
    n_stages: int
    n_microbatches: int
    programs: tuple[StageProgram, ...]

    def program(self, stage: int) -> StageProgram:
        return self.programs[stage]


def _gpipe_program(stage: int, n_microbatches: int) -> StageProgram:
    """Fill-drain: every forward, then every backward (same order)."""
    slots = [Slot(m, True) for m in range(n_microbatches)]
    slots += [Slot(m, False) for m in range(n_microbatches)]
    return StageProgram(stage=stage, slots=tuple(slots))


def _one_f_one_b_program(stage: int, n_stages: int,
                         n_microbatches: int) -> StageProgram:
    """1F1B: warm up ``P - 1 - s`` forwards, alternate, then drain."""
    warmup = min(n_stages - 1 - stage, n_microbatches)
    slots = [Slot(m, True) for m in range(warmup)]
    for m in range(n_microbatches - warmup):
        slots.append(Slot(warmup + m, True))
        slots.append(Slot(m, False))
    for m in range(n_microbatches - warmup, n_microbatches):
        slots.append(Slot(m, False))
    return StageProgram(stage=stage, slots=tuple(slots))


def build_schedule(kind: ScheduleKind, n_stages: int,
                   n_microbatches: int) -> PipelineSchedule:
    """Generate every stage's program for ``kind``."""
    if n_stages < 1:
        raise ValueError("need at least one stage")
    if n_microbatches < 1:
        raise ValueError("need at least one microbatch")
    if kind is ScheduleKind.GPIPE:
        programs = tuple(_gpipe_program(s, n_microbatches)
                         for s in range(n_stages))
    else:
        programs = tuple(
            _one_f_one_b_program(s, n_stages, n_microbatches)
            for s in range(n_stages))
    return PipelineSchedule(kind=kind, n_stages=n_stages,
                            n_microbatches=n_microbatches,
                            programs=programs)


def structural_bubble_time(n_stages: int, t_fwd: float,
                           t_bwd: float) -> float:
    """The schedule-independent fill/drain lower bound.

    Both GPipe and 1F1B idle each stage for ``(P-1) * (t_f + t_b)`` in
    aggregate when memory is free; measured bubbles exceed this bound
    by exactly the memory system's exposed stall time.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    return (n_stages - 1) * (t_fwd + t_bwd)
