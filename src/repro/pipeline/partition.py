"""Stage partitioning for pipeline-parallel training.

A pipeline stage is a *contiguous* slice of the network's topological
order, so every activation crossing a stage boundary flows forward
(DAG edges never point backward in insertion order).  Stages are
balanced on forward-plus-backward MACs: the slowest stage paces the
whole pipeline, so the partitioner minimizes the worst stage's
arithmetic, with streamed elements as a tie-break for GEMM-less
layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind


@dataclass(frozen=True)
class PipelineStage:
    """One contiguous stage: a device's slice of the network."""

    index: int
    layer_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.layer_names:
            raise ValueError(f"stage {self.index} is empty")


def _layer_cost(net: Network, name: str) -> float:
    """Balance weight of one layer: fwd + bwd MACs (+ stream tie-break)."""
    layer = net.layer(name)
    macs = layer.fwd_macs(1) + layer.bwd_macs(1)
    return float(macs) + 1e-6 * layer.stream_elems


def stageable_layer_count(net: Network) -> int:
    """Layers that can anchor a stage (the input pseudo-layers cannot)."""
    return sum(1 for layer in net.layers
               if layer.kind is not LayerKind.INPUT)


def partition_stages(net: Network,
                     n_stages: int) -> tuple[PipelineStage, ...]:
    """Split ``net`` into ``n_stages`` contiguous, balanced stages.

    Greedy threshold partitioning over the topological order: close a
    stage once it reaches its proportional share of the total cost,
    while always leaving at least one stageable (non-input) layer for
    each remaining stage.  Input pseudo-layers are zero-cost; one that
    precedes a stage boundary may land on either side of it, in which
    case its (small) slice is simply sent across like any other
    crossing activation.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    if n_stages > stageable_layer_count(net):
        raise ValueError(
            f"cannot split {net.name} ({stageable_layer_count(net)} "
            f"stageable layers) into {n_stages} stages")

    names = net.layer_names
    costs = [_layer_cost(net, name) for name in names]
    total = sum(costs)
    # suffix[i]: stageable layers at positions >= i.
    suffix = [0] * (len(names) + 1)
    for i in range(len(names) - 1, -1, -1):
        is_input = net.layer(names[i]).kind is LayerKind.INPUT
        suffix[i] = suffix[i + 1] + (0 if is_input else 1)

    stages: list[PipelineStage] = []
    start = 0
    accumulated = 0.0
    for index in range(n_stages):
        remaining = n_stages - index - 1
        target = total * (index + 1) / n_stages
        end = start
        has_work = False
        while end < len(names):
            if has_work and remaining:
                if suffix[end] == remaining:
                    break  # just enough layers left for later stages
                if accumulated >= target:
                    break  # reached this stage's cost share
            layer = net.layer(names[end])
            if layer.kind is not LayerKind.INPUT:
                has_work = True
            accumulated += costs[end]
            end += 1
        stages.append(PipelineStage(
            index=index, layer_names=tuple(names[start:end])))
        start = end
    return tuple(stages)


def stage_of_layer(stages: tuple[PipelineStage, ...]) -> dict[str, int]:
    """Map every layer name to its stage index."""
    return {name: stage.index for stage in stages
            for name in stage.layer_names}


def crossing_sends(net: Network, stages: tuple[PipelineStage, ...]) \
        -> dict[int, tuple[tuple[str, int], ...]]:
    """Per-stage outgoing activation edges: stage -> ((layer, to), ...).

    A producer whose feature map feeds several layers of one later
    stage is sent to that stage once; a producer feeding several
    *different* later stages is sent once per consuming stage
    (peer-to-peer, no relaying).
    """
    owner = stage_of_layer(stages)
    sends: dict[int, list[tuple[str, int]]] = {
        stage.index: [] for stage in stages}
    for name in net.layer_names:
        targets = sorted({owner[succ] for succ in net.successors(name)
                          if owner[succ] > owner[name]})
        for target in targets:
            sends[owner[name]].append((name, target))
    return {index: tuple(edges) for index, edges in sends.items()}
