"""Pipeline-parallel training: stage partitioning, microbatch
schedules, and their lowering onto the engine-level timeline.

Quickstart::

    from repro import simulate, design_point, ParallelStrategy

    result = simulate(design_point("MC-DLA(B)"), "GPT2", batch=64,
                      strategy=ParallelStrategy.PIPELINE)
    print(result.pipeline.bubble_fraction)

The schedule (``"gpipe"``, ``"1f1b"``, or the zero-bubble kinds
``"zb-h1"`` / ``"interleaved"`` / ``"zb-auto"``), pipeline depth, and
microbatch count are :class:`~repro.core.system.SystemConfig` fields
(``pipeline_schedule`` / ``pipeline_stages`` /
``pipeline_microbatches``), so campaigns sweep them through ordinary
``replacements``.
"""

from repro.pipeline.lowering import (PipelinePlan, StageWork,
                                     build_pipeline_ops, pipeline_stats,
                                     plan_pipeline, resolve_stage_count)
from repro.pipeline.partition import (PipelineStage, crossing_sends,
                                      partition_stages, stage_of_layer,
                                      stageable_layer_count)
from repro.pipeline.schedules import (SCHEDULE_ALIASES, SCHEDULE_ORDER,
                                      OpKind, PipelineSchedule,
                                      ScheduleCosts, ScheduleKind, Slot,
                                      StageProgram, build_schedule,
                                      evaluate_makespan,
                                      parse_schedule_kind,
                                      structural_bubble_time)

__all__ = [
    "OpKind", "PipelinePlan", "PipelineSchedule", "PipelineStage",
    "SCHEDULE_ALIASES", "SCHEDULE_ORDER", "ScheduleCosts",
    "ScheduleKind", "Slot", "StageProgram", "StageWork",
    "build_pipeline_ops", "build_schedule", "crossing_sends",
    "evaluate_makespan", "parse_schedule_kind", "partition_stages",
    "pipeline_stats", "plan_pipeline", "resolve_stage_count",
    "stage_of_layer", "stageable_layer_count",
    "structural_bubble_time",
]
