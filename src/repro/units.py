"""Common unit constants and formatting helpers.

Throughout the library, sizes are expressed in **bytes**, bandwidths in
**bytes per second**, times in **seconds**, and compute in **MACs**
(multiply-accumulate operations) unless a name says otherwise.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# Vendors quote link/memory bandwidth in decimal units (1 GB/s = 1e9 B/s).
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9
TBPS = 1e12

US = 1e-6
MS = 1e-3

FP32_BYTES = 4

GIGA = 1e9
TERA = 1e12


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix (e.g. ``1.5 GiB``)."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.2f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (s / ms / us / ns)."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def fmt_bandwidth(bytes_per_sec: float) -> str:
    """Render a bandwidth in decimal GB/s, the convention of the paper."""
    return f"{bytes_per_sec / GBPS:.1f} GB/s"


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean, the averaging the paper uses for all summary numbers."""
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
