"""Canonical names and friendly aliases shared by every CLI.

One table, three consumers: ``python -m repro serve``, ``python -m
repro cluster``, and the ``trace`` subcommand all accept the exact
Figure 11/13 design names plus the short aliases below, and the same
for workloads.  Keeping the mapping here (instead of copy-pasting it
per CLI) means a new design point or alias lands everywhere at once.
"""

from __future__ import annotations

from repro.core.design_points import DESIGN_ORDER
from repro.dnn.registry import WORKLOAD_NAMES
from repro.faults.model import FAULT_MODEL_ORDER
from repro.pipeline.schedules import SCHEDULE_ALIASES, SCHEDULE_ORDER

#: Friendly aliases on top of the exact design-point names.
DESIGN_ALIASES = {
    "dc": "DC-DLA",
    "hc": "HC-DLA",
    "mc-star": "MC-DLA(S)",
    "mc-s": "MC-DLA(S)",
    "mc-dimm": "MC-DLA(L)",
    "mc-local": "MC-DLA(L)",
    "mc-l": "MC-DLA(L)",
    "mc-hbm": "MC-DLA(B)",
    "mc-bw": "MC-DLA(B)",
    "mc-b": "MC-DLA(B)",
    "oracle": "DC-DLA(O)",
}

#: Friendly aliases on top of the registered workload names.
NETWORK_ALIASES = {
    "bert": "BERT-Large",
}

#: Friendly aliases on top of the named fault models.
FAULT_ALIASES = {
    "healthy": "none",
    "ok": "none",
    "flaky": "flaky-link",
    "flap": "flaky-link",
    "degraded": "degraded-link",
    "slow-link": "degraded-link",
    "slow-device": "straggler",
    "throttled": "straggler",
    "pool-loss": "node-loss",
    "everything": "storm",
}


def resolve_design(raw: str) -> str:
    """Map a design name or alias to its canonical form."""
    lowered = raw.strip().lower()
    if lowered in DESIGN_ALIASES:
        return DESIGN_ALIASES[lowered]
    for name in DESIGN_ORDER:
        if lowered == name.lower():
            return name
    raise KeyError(
        f"unknown design {raw!r}; known: {', '.join(DESIGN_ORDER)} "
        f"(aliases: {', '.join(sorted(DESIGN_ALIASES))})")


def resolve_network(raw: str) -> str:
    """Map a workload name or alias to its canonical form."""
    lowered = raw.strip().lower()
    if lowered in NETWORK_ALIASES:
        return NETWORK_ALIASES[lowered]
    for name in WORKLOAD_NAMES:
        if lowered == name.lower():
            return name
    raise KeyError(f"unknown network {raw!r}; "
                   f"known: {', '.join(WORKLOAD_NAMES)}")


def resolve_schedule(raw: str) -> str:
    """Map a pipeline-schedule name or alias to its canonical form."""
    lowered = raw.strip().lower()
    if lowered in SCHEDULE_ALIASES:
        return SCHEDULE_ALIASES[lowered]
    aliases = sorted(set(SCHEDULE_ALIASES) - set(SCHEDULE_ORDER))
    raise KeyError(
        f"unknown schedule {raw!r}; known: {', '.join(SCHEDULE_ORDER)} "
        f"(aliases: {', '.join(aliases)})")


def resolve_fault_model(raw: str) -> str:
    """Map a fault-model name or alias to its canonical form."""
    lowered = raw.strip().lower()
    if lowered in FAULT_ALIASES:
        return FAULT_ALIASES[lowered]
    if lowered in FAULT_MODEL_ORDER:
        return lowered
    raise KeyError(
        f"unknown fault model {raw!r}; "
        f"known: {', '.join(FAULT_MODEL_ORDER)} "
        f"(aliases: {', '.join(sorted(FAULT_ALIASES))})")
