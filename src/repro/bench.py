"""``python -m repro bench``: committed performance baselines.

Four suites time the simulator's subsystems end to end and write one
JSON baseline each into the repository root:

========================  ============================================
``BENCH_core.json``       single ``simulate()`` calls, cold and warm
``BENCH_campaign.json``   the full 6x8x2 evaluation grid, plus the
                          ``REPRO_SCALAR_CORE=1`` reference run the
                          headline speedup is quoted against
``BENCH_cluster.json``    one multi-job cluster simulation
``BENCH_prefetch.json``   the prefetch-policy training sweep
========================  ============================================

Every timing is recorded twice: raw ``seconds`` and ``normalized``
(seconds divided by a fixed CPU calibration spin timed in the same
process), so baselines survive moves between machines of different
single-core speed.  Regression checks compare normalized values; a
suite fails when any entry runs more than ``TOLERANCE`` (20%) over its
committed baseline.

``--quick`` runs the reduced CI sections only (the bench-regression CI
step's budget is a few seconds); ``--update`` rewrites the committed
baselines from this run.  ``repro.core.pricing.clear_caches()`` is
called before every cold timing so cold numbers measure simulation,
never memo replay.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: Allowed normalized slowdown before a bench regression fails.
TOLERANCE = 0.20

#: Entries whose baseline is shorter than this are exempt from the
#: regression gate -- at sub-5 ms scale, shared-runner jitter dwarfs
#: any real change.
NOISE_FLOOR_SECONDS = 0.005

#: Repository root (``BENCH_*.json`` live next to ``README.md``).
REPO_ROOT = Path(__file__).resolve().parents[2]

SUITES = ("core", "campaign", "cluster", "prefetch")


def bench_path(suite: str, root: Path = REPO_ROOT) -> Path:
    """The committed baseline file of one suite."""
    return root / f"BENCH_{suite}.json"


def calibration_spin() -> float:
    """Seconds for a fixed CPU-bound spin (machine-speed yardstick).

    Pure-Python arithmetic, no allocation churn: tracks the
    interpreter-bound inner loops the simulator spends its time in
    better than a numpy kernel would.
    """
    best = float("inf")
    for _ in range(9):
        t0 = time.perf_counter()
        acc = 0.0
        for i in range(500_000):
            acc += i * 1e-9
        best = min(best, time.perf_counter() - t0)
    if best <= 0.0:  # pragma: no cover - clock pathologies
        raise RuntimeError("calibration spin measured no time")
    return best


def _time(fn, *, cold: bool) -> float:
    """Best-of-5 wall-clock seconds of ``fn()``.

    ``cold`` empties every pricing memo before *each* round, so the
    number measures simulation work; warm timings deliberately keep
    the memos hot and measure the cached steady state.  Best-of-N with
    N=5 because shared CI runners schedule noisily; the minimum is the
    closest observable to the workload's true cost.
    """
    from repro.core import pricing

    best = float("inf")
    for _ in range(5):
        if cold:
            pricing.clear_caches()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _scalar(fn) -> float:
    """Cold-time ``fn()`` under the scalar reference core."""
    from repro.core import pricing
    from repro.core.optable import SCALAR_CORE_ENV

    prior = os.environ.get(SCALAR_CORE_ENV)
    os.environ[SCALAR_CORE_ENV] = "1"
    try:
        pricing.clear_caches()
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0
    finally:
        if prior is None:
            del os.environ[SCALAR_CORE_ENV]
        else:
            os.environ[SCALAR_CORE_ENV] = prior
        pricing.clear_caches()


# -- Suite workloads -------------------------------------------------------


def _suite_core(quick: bool) -> dict[str, float]:
    from repro.core.design_points import design_point
    from repro.core.simulator import simulate
    from repro.training.parallel import ParallelStrategy

    if quick:
        cfg = design_point("MC-DLA(B)")

        def run() -> None:
            # A dozen iterations: single-digit-ms timings are noise.
            for _ in range(6):
                simulate(cfg, "AlexNet", 256, ParallelStrategy.DATA)
                simulate(cfg, "VGG-E", 256, ParallelStrategy.DATA)

        return {"alexnet-vgg-mcb-cold": _time(run, cold=True),
                "alexnet-vgg-mcb-warm": _time(run, cold=False)}
    cfg = design_point("MC-DLA(B)")
    vgg = lambda: simulate(cfg, "VGG-E", 512,  # noqa: E731
                           ParallelStrategy.DATA)
    goog = lambda: simulate(cfg, "GoogLeNet", 512,  # noqa: E731
                            ParallelStrategy.MODEL)
    return {"vgg-mcb-cold": _time(vgg, cold=True),
            "vgg-mcb-warm": _time(vgg, cold=False),
            "googlenet-mcb-model-cold": _time(goog, cold=True),
            "vgg-mcb-scalar": _scalar(vgg)}


def _suite_campaign(quick: bool) -> dict[str, float]:
    from repro.campaign import run_campaign
    from repro.campaign.points import grid
    from repro.experiments.matrix import compute_evaluation_matrix

    if quick:
        points = grid(("DC-DLA", "HC-DLA", "MC-DLA(B)"),
                      ("AlexNet", "VGG-E", "GoogLeNet", "RNN-GEMV"),
                      batches=(256,))
        run = lambda: run_campaign(points).raise_failures()  # noqa: E731
        return {"mini-grid-cold": _time(run, cold=True),
                "mini-grid-warm": _time(run, cold=False)}
    run = lambda: compute_evaluation_matrix(512)  # noqa: E731
    return {"grid-512-cold": _time(run, cold=True),
            "grid-512-warm": _time(run, cold=False),
            "grid-512-scalar": _scalar(run)}


def _suite_cluster(quick: bool) -> dict[str, float]:
    from repro.cluster.simulator import simulate_cluster
    from repro.core.design_points import design_point

    cfg = design_point("MC-DLA(B)")
    n_jobs = 8 if quick else 24
    run = lambda: simulate_cluster(  # noqa: E731
        cfg, policy="fifo", n_jobs=n_jobs, seed=7)
    out = {"fifo-cold": _time(run, cold=True),
           "fifo-warm": _time(run, cold=False)}
    if not quick:
        out["fifo-scalar"] = _scalar(run)
    return out


def _suite_prefetch(quick: bool) -> dict[str, float]:
    from repro.experiments.prefetch_comparison import (
        run_prefetch_comparison)

    if quick:
        run = lambda: run_prefetch_comparison(  # noqa: E731
            modes=("training",), cache=None)
        return {"all-policy-training-cold": _time(run, cold=True)}
    run = lambda: run_prefetch_comparison(  # noqa: E731
        modes=("training",), cache=None)
    return {"all-policy-training-cold": _time(run, cold=True),
            "all-policy-training-warm": _time(run, cold=False),
            "all-policy-training-scalar": _scalar(run)}


_SUITE_FNS = {"core": _suite_core, "campaign": _suite_campaign,
              "cluster": _suite_cluster, "prefetch": _suite_prefetch}


# -- Baseline files --------------------------------------------------------


def run_suite(suite: str, *, quick: bool,
              spin: float) -> dict[str, object]:
    """One section of one suite: entries + derived speedup."""
    raw = _SUITE_FNS[suite](quick)
    entries = {
        label: {"seconds": round(seconds, 6),
                "normalized": round(seconds / spin, 3)}
        for label, seconds in raw.items()}
    section: dict[str, object] = {"entries": entries}
    scalars = [k for k in raw if k.endswith("-scalar")]
    for label in scalars:
        cold = label[:-len("-scalar")] + "-cold"
        if cold in raw and raw[cold] > 0:
            section["speedup"] = round(raw[label] / raw[cold], 2)
    return section


def check_section(suite: str, section: str,
                  current: dict[str, object],
                  baseline: dict[str, object]) -> list[str]:
    """Normalized-time regressions of one section vs its baseline."""
    problems = []
    base_entries = baseline.get("entries", {})
    for label, cell in current["entries"].items():
        base = base_entries.get(label)
        if base is None:
            continue
        # Entries under the noise floor cannot regress meaningfully
        # (scheduler jitter on shared runners exceeds the tolerance).
        if base.get("seconds", 0.0) < NOISE_FLOOR_SECONDS:
            continue
        now = cell["normalized"]
        ref = base["normalized"]
        # A real regression inflates the raw seconds *and* the
        # spin-normalized value on the machine that measures it;
        # requiring both filters out calibration-spin jitter without
        # losing cross-machine comparability.
        raw_regressed = (base["seconds"] > 0 and cell["seconds"]
                         > base["seconds"] * (1.0 + TOLERANCE))
        if ref > 0 and now > ref * (1.0 + TOLERANCE) and raw_regressed:
            problems.append(
                f"{suite}/{section}/{label}: normalized {now:.2f} vs "
                f"baseline {ref:.2f} (+{(now / ref - 1) * 100:.0f}%, "
                f"tolerance {TOLERANCE * 100:.0f}%)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time the simulator's subsystems and diff against "
                    "the committed BENCH_*.json baselines.")
    parser.add_argument("--suites", default=",".join(SUITES),
                        help="comma-separated subset (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: run only the reduced sections "
                             "(a few seconds total)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baselines from "
                             "this run (runs full AND quick sections)")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help=argparse.SUPPRESS)
    from repro.telemetry.session import (TelemetrySession,
                                         add_telemetry_argument)
    add_telemetry_argument(parser)
    args = parser.parse_args(argv)

    suites = [s.strip() for s in args.suites.split(",") if s.strip()]
    unknown = [s for s in suites if s not in SUITES]
    if unknown:
        print(f"unknown suite(s): {', '.join(unknown)}; known: "
              f"{', '.join(SUITES)}", file=sys.stderr)
        return 2
    root = Path(args.root)

    # With --telemetry the timings run probes-on: diff them against a
    # plain run to measure the instrumentation overhead itself.
    session = TelemetrySession(
        tool="bench",
        argv=list(argv) if argv is not None else sys.argv[1:],
        enabled=args.telemetry,
        config={"suites": suites, "quick": args.quick,
                "update": args.update})
    with session:
        spin = calibration_spin()
        print(f"calibration spin: {spin * 1e3:.2f} ms")
        problems: list[str] = []
        retry: list[tuple[str, str]] = []
        for suite in suites:
            sections = (("full", "quick") if args.update
                        else (("quick",) if args.quick else ("full",)))
            measured = {}
            for section in sections:
                t0 = time.perf_counter()
                measured[section] = run_suite(suite,
                                              quick=section == "quick",
                                              spin=spin)
                took = time.perf_counter() - t0
                n = len(measured[section]["entries"])
                print(f"{suite}/{section}: {n} timings in {took:.2f}s")
                for label, cell in measured[section]["entries"].items():
                    print(f"  {label:<28} "
                          f"{cell['seconds'] * 1e3:9.2f} ms "
                          f"(x{cell['normalized']:.1f} spin)")
                speedup = measured[section].get("speedup")
                if speedup is not None:
                    print(f"  scalar/vectorized speedup: "
                          f"{speedup:.1f}x")

            path = bench_path(suite, root)
            if args.update:
                doc = {"suite": suite,
                       "calibration_seconds": round(spin, 6),
                       "tolerance": TOLERANCE, **measured}
                path.write_text(json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n")
                print(f"wrote {path}")
                continue
            if not path.exists():
                problems.append(f"{suite}: no baseline at {path} "
                                f"(run with --update to create it)")
                continue
            baseline = json.loads(path.read_text())
            for section, current in measured.items():
                found = check_section(suite, section, current,
                                      baseline.get(section, {}))
                if found:
                    retry.append((suite, section))
                problems.extend(found)

        # Confirm-on-retry: a real regression is deterministic, a
        # noisy neighbor on a shared runner is not.  Re-measure each
        # suspect section once (fresh spin) and keep only regressions
        # that reproduce.
        if retry and not args.update:
            confirmed: list[str] = []
            spin = calibration_spin()
            print(f"\nre-checking {len(retry)} suspect section(s) "
                  f"(spin {spin * 1e3:.2f} ms)")
            for suite, section in retry:
                again = run_suite(suite, quick=section == "quick",
                                  spin=spin)
                baseline = json.loads(
                    bench_path(suite, root).read_text())
                confirmed.extend(check_section(
                    suite, section, again, baseline.get(section, {})))
            problems = [p for p in problems
                        if not p.startswith(tuple(
                            f"{s}/{sec}/" for s, sec in retry))]
            problems.extend(confirmed)

    if problems:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    if not args.update:
        print("\nbench regression check passed "
              f"(tolerance {TOLERANCE * 100:.0f}%)")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
