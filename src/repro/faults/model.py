"""Seeded, deterministic fault models for the simulated system.

A :class:`FaultModel` describes *what goes wrong* -- timed link
degradation (flaps), standing link degradation, straggler devices,
loss of a fraction of the disaggregated memory pool -- plus the
*recovery* knobs the engines use to degrade gracefully: SLO-aware load
shedding and request timeouts in serving, and checkpoint/restore retry
backoff in the cluster scheduler.

The module is a leaf: it imports nothing from the core layer, so
:class:`repro.core.system.SystemConfig` can validate its
``fault_model`` knob against :data:`FAULT_MODEL_ORDER` without a
cycle.  All timing is derived from integer arithmetic seeded by
``seed``, so fault schedules are bit-identical across runs and
platforms.
"""

from __future__ import annotations

from dataclasses import dataclass


def _unit_hash(seed: int, k: int) -> float:
    """Deterministic pseudo-random fraction in [0, 1) for window ``k``.

    A 64-bit splitmix-style integer mix -- no ``random`` module, no
    transcendental floats -- so flap schedules are reproducible across
    platforms and Python versions.
    """
    x = (seed * 0x9E3779B97F4A7C15 + k * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x / 2.0 ** 64


@dataclass(frozen=True)
class FaultModel:
    """One named fault scenario, lowered by :mod:`repro.faults.lowering`.

    Every knob defaults to its inert value, so ``FaultModel()`` is the
    null model: lowering it is the identity and the engines take their
    unmodified fast paths.
    """

    name: str = "none"
    #: Seed of the flap-window jitter (independent of workload seeds).
    seed: int = 0
    #: Seconds between link-flap onsets; 0 disables flaps.
    flap_period: float = 0.0
    #: Seconds each flap lasts; must leave windows disjoint
    #: (``flap_duration <= 0.75 * flap_period``).
    flap_duration: float = 0.0
    #: Link bandwidth multiplier while a flap is active, in (0, 1];
    #: 1.0 means flaps carry no degradation.
    link_degradation: float = 1.0
    #: Standing link bandwidth multiplier in (0, 1], applied for the
    #: whole run (a failed lane, a downtrained link); 1.0 = healthy.
    link_derating: float = 1.0
    #: Devices running slow (thermal throttling, a failing HBM stack).
    #: Weak-scaling data parallelism synchronizes every iteration, so
    #: one straggler gates the whole gang.
    straggler_devices: int = 0
    #: Compute slowdown factor of a straggler (>= 1).
    straggler_slowdown: float = 1.0
    #: Fraction of the memory pool lost to a node failure, in [0, 1).
    node_loss_fraction: float = 0.0
    #: When the pool node dies (cluster-mode seconds; iteration-level
    #: runs treat any loss as standing).
    node_loss_time: float = 0.0
    #: Serving sheds a request whose projected queueing delay exceeds
    #: this multiple of the SLO; 0 disables shedding.
    shed_slo_mult: float = 0.0
    #: Serving counts a completion as timed out past this multiple of
    #: the SLO; 0 disables timeouts.
    timeout_slo_mult: float = 0.0
    #: Cluster retry backoff after a fault-induced eviction (seconds,
    #: doubled per prior preemption of the job); 0 retries immediately.
    retry_backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.flap_period < 0 or self.flap_duration < 0:
            raise ValueError("flap timing must be non-negative")
        if self.flap_duration > 0 and self.flap_period <= 0:
            raise ValueError("flap_duration needs a flap_period")
        if self.flap_period > 0 and \
                self.flap_duration > 0.75 * self.flap_period:
            raise ValueError("flap windows must stay disjoint "
                             "(flap_duration <= 0.75 * flap_period)")
        if not 0.0 < self.link_degradation <= 1.0:
            raise ValueError("link_degradation must lie in (0, 1]")
        if not 0.0 < self.link_derating <= 1.0:
            raise ValueError("link_derating must lie in (0, 1]")
        if self.straggler_devices < 0:
            raise ValueError("straggler_devices must be >= 0")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if not 0.0 <= self.node_loss_fraction < 1.0:
            raise ValueError("node_loss_fraction must lie in [0, 1)")
        if self.node_loss_time < 0:
            raise ValueError("node_loss_time must be non-negative")
        if min(self.shed_slo_mult, self.timeout_slo_mult,
               self.retry_backoff) < 0:
            raise ValueError("recovery knobs must be non-negative")

    # ------------------------------------------------------------------
    # Derived severity
    # ------------------------------------------------------------------
    @property
    def flaps(self) -> bool:
        """Whether timed flaps carry any degradation at all."""
        return (self.flap_period > 0 and self.flap_duration > 0
                and self.link_degradation < 1.0)

    @property
    def flap_duty(self) -> float:
        """Fraction of wall time spent inside a flap window."""
        if not self.flaps:
            return 0.0
        return self.flap_duration / self.flap_period

    @property
    def bandwidth_multiplier(self) -> float:
        """Steady-state link bandwidth multiplier (duty-cycle blended).

        Iteration-level runs model flaps as this time-averaged
        derating on top of any standing ``link_derating``; the cluster
        scheduler applies the raw ``link_degradation`` inside explicit
        flap windows instead (see :meth:`standing_multiplier`).
        """
        return self.link_derating * (
            1.0 - self.flap_duty * (1.0 - self.link_degradation))

    @property
    def standing_multiplier(self) -> float:
        """Link bandwidth multiplier outside flap windows."""
        return self.link_derating

    @property
    def compute_multiplier(self) -> float:
        """Gang compute slowdown injected by stragglers (>= 1)."""
        return (self.straggler_slowdown
                if self.straggler_devices > 0 else 1.0)

    @property
    def is_null(self) -> bool:
        """True when lowering this model is provably the identity."""
        return (not self.flaps
                and self.link_derating == 1.0
                and self.compute_multiplier == 1.0
                and self.node_loss_fraction == 0.0
                and self.shed_slo_mult == 0.0
                and self.timeout_slo_mult == 0.0)

    # ------------------------------------------------------------------
    # Timed flap windows (cluster mode)
    # ------------------------------------------------------------------
    def flap_window(self, k: int) -> tuple[float, float]:
        """The ``k``-th flap window (1-based) as ``(start, end)``.

        Onsets land at ``k * flap_period`` plus a seeded jitter of at
        most a quarter period, which together with the disjointness
        validation keeps consecutive windows non-overlapping.
        """
        if not self.flaps:
            raise ValueError("model has no flap windows")
        if k < 1:
            raise ValueError("flap windows are 1-based")
        onset = self.flap_period * (k + 0.25 * _unit_hash(self.seed, k))
        return onset, onset + self.flap_duration

    def in_flap(self, t: float) -> bool:
        """Whether ``t`` falls inside a flap window [start, end)."""
        if not self.flaps or t < self.flap_period:
            return False
        k = max(1, int(t / self.flap_period) - 1)
        for i in (k, k + 1, k + 2):
            start, end = self.flap_window(i)
            if start <= t < end:
                return True
            if start > t:
                break
        return False

    def next_flap_boundary(self, t: float) -> float:
        """The first window start/end strictly after ``t``."""
        if not self.flaps:
            raise ValueError("model has no flap windows")
        k = max(1, int(t / self.flap_period) - 1)
        while True:
            start, end = self.flap_window(k)
            if start > t:
                return start
            if end > t:
                return end
            k += 1

    def flap_count_until(self, horizon: float) -> int:
        """Flap onsets strictly before ``horizon`` (injected events)."""
        if not self.flaps or horizon <= 0:
            return 0
        count = 0
        k = 1
        while True:
            start, _ = self.flap_window(k)
            if start >= horizon:
                return count
            count += 1
            k += 1

    def standing_events(self) -> int:
        """Injected events that are not timed: stragglers and the
        (at most one) pool-node loss."""
        events = self.straggler_devices if self.compute_multiplier > 1 \
            else 0
        if self.node_loss_fraction > 0:
            events += 1
        return events


#: Named fault scenarios, from benign to severe.  ``none`` is the
#: default on every :class:`~repro.core.system.SystemConfig` and is
#: provably inert.
FAULT_MODELS: dict[str, FaultModel] = {
    "none": FaultModel(),
    # A link that drops to quarter bandwidth 3 s out of every 30 s.
    "flaky-link": FaultModel(
        name="flaky-link", flap_period=30.0, flap_duration=3.0,
        link_degradation=0.25, shed_slo_mult=6.0,
        timeout_slo_mult=12.0, retry_backoff=2.0),
    # A permanently half-bandwidth link (failed lane / downtrained).
    "degraded-link": FaultModel(
        name="degraded-link", link_derating=0.5, shed_slo_mult=6.0,
        timeout_slo_mult=12.0, retry_backoff=2.0),
    # One thermally-throttled device gates every synchronization.
    "straggler": FaultModel(
        name="straggler", straggler_devices=1,
        straggler_slowdown=1.5, shed_slo_mult=6.0,
        timeout_slo_mult=12.0, retry_backoff=2.0),
    # A quarter of the memory pool dies two minutes in.
    "node-loss": FaultModel(
        name="node-loss", node_loss_fraction=0.25,
        node_loss_time=120.0, shed_slo_mult=6.0,
        timeout_slo_mult=12.0, retry_backoff=5.0),
    # Everything at once: flapping links, a straggler, and a pool
    # failure ninety seconds in.
    "storm": FaultModel(
        name="storm", flap_period=20.0, flap_duration=4.0,
        link_degradation=0.25, straggler_devices=1,
        straggler_slowdown=1.3, node_loss_fraction=0.25,
        node_loss_time=90.0, shed_slo_mult=4.0,
        timeout_slo_mult=8.0, retry_backoff=5.0),
}

#: Canonical ordering for CLIs, campaign axes, and reports.
FAULT_MODEL_ORDER: tuple[str, ...] = (
    "none", "flaky-link", "degraded-link", "straggler", "node-loss",
    "storm")


def fault_model(name: str) -> FaultModel:
    """Look up a named fault model (raises ``KeyError`` with the
    known names when unknown)."""
    try:
        return FAULT_MODELS[name]
    except KeyError:
        raise KeyError(f"unknown fault model {name!r}; known: "
                       f"{', '.join(FAULT_MODEL_ORDER)}") from None
