"""repro.faults: seeded, deterministic fault injection + recovery.

A :class:`~repro.faults.model.FaultModel` names a failure scenario --
link flaps, standing link derating, straggler devices, memory-node
loss -- plus the recovery knobs (serving shed/timeout multipliers,
cluster retry backoff).  :mod:`repro.faults.lowering` re-prices an
ordinary :class:`~repro.core.system.SystemConfig` under a model, so
the engines never grow fault-specific pricing math, and the ``"none"``
model is provably inert: lowering it is the identity and every healthy
run stays byte-identical.

Select a model with ``SystemConfig(fault_model="storm")``, the
``--fault-models`` campaign axis, or ``python -m repro faults``.
"""

from repro.faults.lowering import (active_fault_model, degraded_config,
                                   healthy_config,
                                   iteration_fault_stats,
                                   record_fault_stats)
from repro.faults.model import (FAULT_MODEL_ORDER, FAULT_MODELS,
                                FaultModel, fault_model)

__all__ = [
    "FAULT_MODEL_ORDER", "FAULT_MODELS", "FaultModel",
    "active_fault_model", "degraded_config", "fault_model",
    "healthy_config", "iteration_fault_stats", "record_fault_stats",
]
