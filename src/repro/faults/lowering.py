"""Lowering a :class:`~repro.faults.model.FaultModel` onto a design.

Faults never add new pricing math: they *re-price* the existing
models.  Link flaps and deratings scale the collective ring channels
and the virtualization channel; memory-node loss shrinks the effective
backing-store bandwidth (survivors carry the displaced traffic);
stragglers slow the PE-array clock, which gates every synchronizing
gang.  :func:`degraded_config` returns an ordinary
:class:`~repro.core.system.SystemConfig` with ``fault_model`` reset to
``"none"``, so the degraded run goes through the exact byte-stable
pipeline a healthy run does.
"""

from __future__ import annotations

import dataclasses

from repro.core.metrics import FaultStats
from repro.core.system import SystemConfig
from repro.faults.model import FAULT_MODELS, FaultModel, fault_model


def active_fault_model(config: SystemConfig) -> FaultModel | None:
    """The config's fault model, or ``None`` when it is inert.

    The null check is one dict lookup plus a handful of float
    comparisons, so the healthy fast path stays hot.
    """
    if config.fault_model == "none":
        return None
    model = fault_model(config.fault_model)
    return None if model.is_null else model


def healthy_config(config: SystemConfig) -> SystemConfig:
    """The same design with faults switched off (the reference twin)."""
    if config.fault_model == "none":
        return config
    return dataclasses.replace(config, fault_model="none")


def degraded_config(config: SystemConfig,
                    include_flaps: bool = True) -> SystemConfig:
    """Re-price a design under its fault model's standing degradation.

    ``include_flaps=True`` (iteration-level runs) blends timed flaps
    into a duty-cycle bandwidth derating; the cluster scheduler passes
    ``False`` and applies flap windows explicitly on its timeline so
    the same flap is never billed twice.  The returned config carries
    ``fault_model="none"`` -- lowering is a one-way door.
    """
    model = active_fault_model(config)
    if model is None:
        return healthy_config(config)

    bw_mult = (model.bandwidth_multiplier if include_flaps
               else model.standing_multiplier)

    collectives = config.collectives
    if bw_mult < 1.0:
        channels = tuple(
            dataclasses.replace(ch, bandwidth=ch.bandwidth * bw_mult)
            for ch in collectives.channels)
        collectives = dataclasses.replace(collectives,
                                          channels=channels)

    # Memory-node loss only degrades designs whose backing store *is*
    # the pool; host-backed designs (DC/HC) ride through it.
    vmem_mult = bw_mult
    if model.node_loss_fraction > 0 and config.memory_node is not None:
        vmem_mult *= 1.0 - model.node_loss_fraction

    vmem = config.vmem
    if vmem_mult < 1.0 and vmem.enabled:
        channel = dataclasses.replace(
            vmem.channel,
            peak_bw=vmem.channel.peak_bw * vmem_mult,
            concurrent_bw=vmem.channel.concurrent_bw * vmem_mult)
        vmem = dataclasses.replace(vmem, channel=channel)

    device = config.device
    if model.compute_multiplier > 1.0:
        pe = device.pe_array
        pe = dataclasses.replace(
            pe, frequency=pe.frequency / model.compute_multiplier)
        device = dataclasses.replace(device, pe_array=pe)

    return dataclasses.replace(
        config, device=device, collectives=collectives, vmem=vmem,
        fault_model="none")


def iteration_fault_stats(model: FaultModel, *, faulted_time: float,
                          healthy_time: float) -> FaultStats:
    """Fold one degraded iteration against its healthy twin.

    ``degraded_seconds`` is the iteration time spent under degradation:
    the whole iteration for standing faults, the flap duty-cycle share
    otherwise.  ``availability`` is the healthy/faulted throughput
    ratio -- the fraction of nominal capacity the faulted system
    delivers.
    """
    standing = (model.standing_multiplier < 1.0
                or model.compute_multiplier > 1.0
                or model.node_loss_fraction > 0)
    fraction = 1.0 if standing else model.flap_duty
    slowdown = faulted_time / healthy_time if healthy_time > 0 else 1.0
    return FaultStats(
        model=model.name,
        injected_events=(model.flap_count_until(faulted_time)
                         + model.standing_events()),
        degraded_seconds=fraction * faulted_time,
        slowdown=slowdown,
        retries=0,
        shed_requests=0,
        timed_out_requests=0,
        recovery_bytes=0,
        availability=min(1.0, 1.0 / slowdown if slowdown > 0 else 1.0),
    )


def record_fault_stats(stats: FaultStats, mode: str) -> None:
    """Telemetry probe: fold one run's fault accounting into the
    process-wide registry (no-op when telemetry is off)."""
    from repro.telemetry.registry import metrics_registry
    registry = metrics_registry()
    if registry is None:
        return
    labels = {"model": stats.model, "mode": mode}
    registry.counter(
        "repro_faults_injected_total",
        "fault events injected (flap onsets, stragglers, node losses)",
        **labels).inc(stats.injected_events)
    registry.counter(
        "repro_faults_retries_total",
        "fault-induced evictions retried with backoff",
        **labels).inc(stats.retries)
    registry.counter(
        "repro_faults_shed_requests_total",
        "requests shed by SLO-aware load shedding",
        **labels).inc(stats.shed_requests)
    registry.counter(
        "repro_faults_timed_out_requests_total",
        "completions past the request timeout",
        **labels).inc(stats.timed_out_requests)
    registry.counter(
        "repro_faults_recovery_bytes_total",
        "checkpoint/restore bytes billed to fault recovery",
        **labels).inc(stats.recovery_bytes)


__all__ = [
    "FAULT_MODELS", "FaultModel", "active_fault_model",
    "degraded_config", "fault_model", "healthy_config",
    "iteration_fault_stats", "record_fault_stats",
]
