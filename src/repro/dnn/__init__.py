"""DNN workload substrate: layers, network DAGs, and Table III models."""

from repro.dnn.builder import NetBuilder, TensorRef, conv_out_dim
from repro.dnn.graph import Network, NetworkSummary, input_layer
from repro.dnn.layers import (CHEAP_KINDS, RECURRENT_KINDS, WEIGHTED_KINDS,
                              Layer, LayerKind)
from repro.dnn.registry import (BENCHMARK_NAMES, CNN_NAMES, RNN_NAMES,
                                TRANSFORMER_NAMES, WORKLOAD_NAMES,
                                BenchmarkInfo, all_benchmarks,
                                all_workloads, benchmark_info,
                                build_network)
from repro.dnn.shapes import (Gemm, attention_gemms, conv_gemm, fc_gemm,
                              rnn_gemm, token_fc_gemm)

__all__ = [
    "BENCHMARK_NAMES", "CNN_NAMES", "RNN_NAMES", "TRANSFORMER_NAMES",
    "WORKLOAD_NAMES", "CHEAP_KINDS", "RECURRENT_KINDS", "WEIGHTED_KINDS",
    "BenchmarkInfo", "Gemm", "Layer", "LayerKind", "NetBuilder",
    "Network", "NetworkSummary", "TensorRef", "all_benchmarks",
    "all_workloads", "attention_gemms", "benchmark_info",
    "build_network", "conv_gemm", "conv_out_dim", "fc_gemm",
    "input_layer", "rnn_gemm", "token_fc_gemm",
]
