"""The network DAG.

The paper's memory virtualization (Section II-B) hinges on the DL
framework extracting a compile-time DAG of the network and using data
dependencies to derive each tensor's *reuse distance*, which in turn
schedules the offload/prefetch DMA operations.  :class:`Network` is that
DAG: nodes are :class:`~repro.dnn.layers.Layer` objects, edges are
producer -> consumer feature-map dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.dnn.layers import Layer, LayerKind
from repro.units import FP32_BYTES


class Network:
    """A directed acyclic graph of layers with analysis helpers.

    Layers are kept in insertion order, which must be a valid topological
    order (builders construct networks front to back); this keeps
    simulation schedules deterministic.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._order: list[str] = []
        #: Mutation counter; bumps on every :meth:`add_layer`.  Caches
        #: keyed on ``(network, version)`` can never replay stale
        #: adjacency or pricing for a graph edited after caching.
        self._version = 0
        self._adjacency: tuple[dict[str, int], dict[str, list[str]],
                               dict[str, list[str]]] | None = None
        self._layer_map: dict[str, Layer] | None = None

    @property
    def version(self) -> int:
        """Monotonic mutation counter (for external memo keys)."""
        return self._version

    def _adj(self) -> tuple[dict[str, int], dict[str, list[str]],
                            dict[str, list[str]]]:
        """(position, predecessors, successors) maps, built once.

        The per-call ``position`` dict comprehension in adjacency
        queries was quadratic over a simulation (every layer queries
        every other layer's index); this builds all three maps in one
        pass and caches them until the next mutation.
        """
        if self._adjacency is None:
            position = {n: i for i, n in enumerate(self._order)}
            by_pos = position.__getitem__
            preds = {n: sorted(self._graph.predecessors(n), key=by_pos)
                     for n in self._order}
            succs = {n: sorted(self._graph.successors(n), key=by_pos)
                     for n in self._order}
            self._adjacency = (position, preds, succs)
        return self._adjacency

    # -- Construction ------------------------------------------------------

    def add_layer(self, layer: Layer, inputs: list[str] | None = None) -> Layer:
        """Add ``layer``, wiring edges from each named producer."""
        if layer.name in self._graph:
            raise ValueError(f"duplicate layer name: {layer.name}")
        for src in inputs or []:
            if src not in self._graph:
                raise ValueError(
                    f"layer {layer.name} consumes unknown layer {src}")
        self._graph.add_node(layer.name, layer=layer)
        self._order.append(layer.name)
        for src in inputs or []:
            self._graph.add_edge(src, layer.name)
        self._version += 1
        self._adjacency = None
        self._layer_map = None
        return layer

    def validate(self) -> None:
        """Check the invariants builders must maintain."""
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError(f"network {self.name} contains a cycle")
        position = {name: i for i, name in enumerate(self._order)}
        for src, dst in self._graph.edges:
            if position[src] >= position[dst]:
                raise ValueError(
                    f"insertion order is not topological: {src} -> {dst}")
        non_input = [n for n in self._order
                     if self.layer(n).kind is not LayerKind.INPUT]
        for name in non_input:
            if not list(self._graph.predecessors(name)):
                raise ValueError(f"non-input layer {name} has no producer")

    # -- Accessors ---------------------------------------------------------

    def layer(self, name: str) -> Layer:
        """The :class:`Layer` registered as ``name``.

        Served from a flat name map (rebuilt on mutation); the raw
        networkx node-attribute lookup costs several dict hops and the
        simulator asks for layers hundreds of times per op table.
        """
        layer_map = self._layer_map
        if layer_map is None:
            layer_map = self._layer_map = {
                n: self._graph.nodes[n]["layer"] for n in self._order}
        try:
            return layer_map[name]
        except KeyError:
            # Unknown names keep raising the networkx KeyError shape.
            return self._graph.nodes[name]["layer"]

    @property
    def layer_names(self) -> list[str]:
        """Layer names in (topological) insertion order."""
        return list(self._order)

    @property
    def layers(self) -> list[Layer]:
        return [self.layer(n) for n in self._order]

    def predecessors(self, name: str) -> list[str]:
        """Producers of ``name``, in topological (insertion) order."""
        if name in self._graph:
            return list(self._adj()[1][name])
        return list(self._graph.predecessors(name))  # raises NetworkXError

    def successors(self, name: str) -> list[str]:
        """Consumers of ``name``, in topological (insertion) order."""
        if name in self._graph:
            return list(self._adj()[2][name])
        return list(self._graph.successors(name))  # raises NetworkXError

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    # -- Analyses ----------------------------------------------------------

    def last_forward_consumer(self, name: str) -> str:
        """The topologically-last layer that reads ``name``'s output.

        A tensor becomes eligible for offload to the backing store only
        after this layer's forward pass has run (Section IV: "pushes all
        layers' feature maps to the backing store after its last reuse
        during forward propagation").  A layer with no consumers is its
        own last consumer.
        """
        succs = self.successors(name)
        return succs[-1] if succs else name

    def reuse_distance(self, name: str) -> int:
        """Layers between last forward use and first backward use.

        With forward order ``0..L-1`` and backward order ``L-1..0``, a
        tensor produced by layer *i* and last consumed in forward by
        layer *j* is next needed by layer *j*'s backward pass; the gap is
        the number of layer computations in between -- the scheduling
        slack available to hide its migration.
        """
        position = self._adj()[0]
        total = len(self._order)
        last_use = position[self.last_forward_consumer(name)]
        # Forward steps remaining after last use, plus backward steps
        # until control returns to the consumer.
        return 2 * (total - 1 - last_use)

    @property
    def learned_layer_count(self) -> int:
        """Number of learned layers -- the paper's Table III layer count.

        Counts convolutional and fully-connected layers (the convention
        behind "AlexNet 8", "VGG-E 19", ...); batch-norm scale/shift
        parameters are not counted as layers.  Recurrent networks count
        each distinct cell (``weight_group``) once, not per timestep.
        """
        groups: set[str] = set()
        count = 0
        for layer in self.layers:
            if layer.kind in (LayerKind.CONV, LayerKind.FC):
                count += 1
            elif layer.is_recurrent and layer.weight_group:
                groups.add(layer.weight_group)
        return count + len(groups)

    def weight_bytes(self) -> int:
        """Total unique weight bytes (shared groups counted once)."""
        seen_groups: set[str] = set()
        total = 0
        for layer in self.layers:
            if not layer.weight_elems:
                continue
            if layer.weight_group:
                if layer.weight_group in seen_groups:
                    continue
                seen_groups.add(layer.weight_group)
            total += layer.weight_bytes
        return total

    def feature_map_bytes(self, batch: int) -> int:
        """Total forward feature-map bytes at a batch size (all layers)."""
        return sum(layer.out_bytes(batch) for layer in self.layers)

    def virtualized_bytes(self, batch: int) -> int:
        """Feature-map bytes subject to offload (cheap layers excluded)."""
        return sum(layer.out_bytes(batch) for layer in self.layers
                   if not layer.is_cheap and layer.kind is not LayerKind.INPUT)

    def training_footprint_bytes(self, batch: int) -> int:
        """Memory needed to train without virtualization: O(N) in depth.

        Counts weights, weight gradients, and every layer's forward
        feature map (all retained for the backward pass).
        """
        return 2 * self.weight_bytes() + self.feature_map_bytes(batch)

    def inference_footprint_bytes(self, batch: int) -> int:
        """Memory needed to run forward-only with resident weights.

        Forward-only execution retains no feature maps: a ping-pong
        pair of the largest activation buffers suffices, on top of the
        (unique) weights.
        """
        peak = max((layer.out_bytes(batch) for layer in self.layers),
                   default=0)
        return self.weight_bytes() + 2 * peak

    def fwd_macs(self, batch: int) -> int:
        return sum(layer.fwd_macs(batch) for layer in self.layers)

    def bwd_macs(self, batch: int) -> int:
        return sum(layer.bwd_macs(batch) for layer in self.layers)


@dataclass(frozen=True)
class NetworkSummary:
    """Headline statistics of a network at a batch size (for reports)."""

    name: str
    layer_count: int
    learned_layers: int
    weight_mbytes: float
    feature_map_mbytes: float
    footprint_mbytes: float
    fwd_gmacs: float

    @staticmethod
    def of(net: Network, batch: int) -> "NetworkSummary":
        return NetworkSummary(
            name=net.name,
            layer_count=len(net),
            learned_layers=net.learned_layer_count,
            weight_mbytes=net.weight_bytes() / (1024 * 1024),
            feature_map_mbytes=net.feature_map_bytes(batch) / (1024 * 1024),
            footprint_mbytes=net.training_footprint_bytes(batch) / (1024 * 1024),
            fwd_gmacs=net.fwd_macs(batch) / 1e9,
        )


def input_layer(name: str, elems: int) -> Layer:
    """Convenience constructor for the network input pseudo-layer."""
    return Layer(name=name, kind=LayerKind.INPUT, out_elems=elems)


def fmap_edge_bytes(net: Network, src: str, batch: int) -> int:
    """Bytes flowing along a producer edge at a batch size."""
    return net.layer(src).out_elems * batch * FP32_BYTES
