"""Layer descriptors for the DNN workload substrate.

A :class:`Layer` captures everything the system simulator needs to know
about one network layer:

* its forward arithmetic, lowered to GEMMs (:mod:`repro.dnn.shapes`) or an
  element-wise streaming pass,
* the size of its output feature map (per sample), which is what the
  memory virtualization runtime migrates between memory tiers, and
* its weight footprint, which is what data-parallel training synchronizes
  (the ``dW`` all-reduce) and model-parallel training partitions.

Layers are intentionally framework-agnostic value objects; the training
semantics (forward/backward expansion, synchronization sizing) live in
:mod:`repro.training`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dnn.shapes import Gemm
from repro.units import FP32_BYTES


class LayerKind(enum.Enum):
    """Taxonomy of layer types used across the benchmark families."""

    INPUT = "input"
    CONV = "conv"
    FC = "fc"
    POOL = "pool"
    ACT = "act"
    LRN = "lrn"
    BATCHNORM = "batchnorm"
    CONCAT = "concat"
    ELTWISE = "eltwise"
    SOFTMAX = "softmax"
    DROPOUT = "dropout"
    RNN_CELL = "rnn_cell"
    LSTM_CELL = "lstm_cell"
    GRU_CELL = "gru_cell"
    # -- Transformer family ------------------------------------------
    EMBEDDING = "embedding"
    ATTENTION = "attention"
    LAYERNORM = "layernorm"
    GELU = "gelu"


#: Layers whose forward pass is so cheap that the runtime memory manager
#: re-computes their outputs during backpropagation instead of migrating
#: them to the backing store (the MXNet-style optimization the paper
#: adopts in Section IV, footnote 4).
CHEAP_KINDS = frozenset({
    LayerKind.POOL,
    LayerKind.ACT,
    LayerKind.LRN,
    LayerKind.BATCHNORM,
    LayerKind.CONCAT,
    LayerKind.ELTWISE,
    LayerKind.SOFTMAX,
    LayerKind.DROPOUT,
    LayerKind.LAYERNORM,
    LayerKind.GELU,
})

#: Layers that hold trainable weights.
WEIGHTED_KINDS = frozenset({
    LayerKind.CONV,
    LayerKind.FC,
    LayerKind.BATCHNORM,
    LayerKind.RNN_CELL,
    LayerKind.LSTM_CELL,
    LayerKind.GRU_CELL,
    LayerKind.EMBEDDING,
    LayerKind.LAYERNORM,
})

#: Recurrent cell kinds (share weights across timesteps).
RECURRENT_KINDS = frozenset({
    LayerKind.RNN_CELL,
    LayerKind.LSTM_CELL,
    LayerKind.GRU_CELL,
})


@dataclass(frozen=True)
class Layer:
    """One layer of a DNN, sized per training sample.

    Attributes:
        name: Unique name within its network.
        kind: The :class:`LayerKind` taxonomy entry.
        out_elems: Output feature-map elements *per sample*.  For
            recurrent cells this is the per-timestep state that must be
            retained for backpropagation-through-time (hidden state, and
            the cell state for LSTMs).
        weight_elems: Trainable parameter count.  Recurrent cells report
            the full cell weights; weight *sharing* across timesteps is
            handled by :mod:`repro.training` via ``weight_group``.
        gemms: Forward-pass GEMMs.  Empty for element-wise layers.
        stream_elems: Elements touched per sample by an element-wise
            forward pass (read + write), used for memory-bound timing of
            layers without GEMMs.
        weight_group: Layers sharing this non-empty key share one physical
            weight buffer (recurrent cells across timesteps).
    """

    name: str
    kind: LayerKind
    out_elems: int
    weight_elems: int = 0
    gemms: tuple[Gemm, ...] = field(default_factory=tuple)
    stream_elems: int = 0
    weight_group: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        if self.out_elems < 0 or self.weight_elems < 0 or self.stream_elems < 0:
            raise ValueError(f"negative size in layer {self.name}")
        if self.weight_elems and self.kind not in WEIGHTED_KINDS:
            raise ValueError(
                f"layer {self.name}: kind {self.kind} cannot carry weights")

    # -- Derived sizes ----------------------------------------------------

    @property
    def is_cheap(self) -> bool:
        """True when the backward pass recomputes this layer's output."""
        return self.kind in CHEAP_KINDS

    @property
    def is_recurrent(self) -> bool:
        return self.kind in RECURRENT_KINDS

    @property
    def weight_bytes(self) -> int:
        return self.weight_elems * FP32_BYTES

    def out_bytes(self, batch: int) -> int:
        """Output feature-map bytes at a given batch size."""
        _check_batch(batch)
        return self.out_elems * batch * FP32_BYTES

    def fwd_macs(self, batch: int) -> int:
        """Forward multiply-accumulate count at a given batch size."""
        _check_batch(batch)
        return sum(g.at_batch(batch).macs for g in self.gemms)

    def bwd_macs(self, batch: int) -> int:
        """Backward MACs: the dX and dW GEMMs each match forward work."""
        return 2 * self.fwd_macs(batch)

    def fwd_gemms(self, batch: int) -> list[Gemm]:
        """Concrete forward GEMMs at a given batch size."""
        _check_batch(batch)
        return [g.at_batch(batch) for g in self.gemms]

    def bwd_gemms(self, batch: int) -> list[Gemm]:
        """Concrete backward GEMMs (input-gradient and weight-gradient).

        For a forward GEMM ``[M,K]x[K,N]`` the backward pass computes
        ``dX = dY.Wt`` (``[M,N]x[N,K]``) and ``dW = Xt.dY``
        (``[K,M]x[M,N]``); both match the forward MAC count.  The
        im2col duplication moves with the activation operand: dX's
        *output* and dW's *input* are the duplicated matrices.
        """
        resolved = self.fwd_gemms(batch)
        grads: list[Gemm] = []
        for g in resolved:
            grads.append(Gemm(g.m, g.k, g.n, c_reuse=g.a_reuse))   # dX
            grads.append(Gemm(g.k, g.n, g.m, a_reuse=g.a_reuse))   # dW
        return grads

    def fwd_stream_bytes(self, batch: int) -> int:
        """Bytes streamed by an element-wise forward pass."""
        _check_batch(batch)
        return self.stream_elems * batch * FP32_BYTES


def _check_batch(batch: int) -> None:
    if batch <= 0:
        raise ValueError("batch must be positive")
