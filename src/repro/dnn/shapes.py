"""Shape descriptors used to lower DNN layers onto the accelerator.

Every layer's arithmetic is expressed as one or more GEMM operations (the
device model of the paper optimizes "generic GEMM", Section IV) or as an
element-wise streaming pass for layers with negligible arithmetic
intensity (activations, pooling, normalization, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Gemm:
    """A single M x K @ K x N matrix multiplication.

    ``m_per_sample`` is True when the M dimension scales with the training
    batch size (convolutions lower each sample's output positions into
    rows; fully-connected and recurrent layers contribute one row per
    sample).

    ``a_reuse``/``c_reuse`` capture operand duplication introduced by
    im2col lowering: a convolution's [M x K] activation matrix repeats
    each input element ``kernel_elems`` times, but the physical feature
    map is streamed from memory only once, so its DRAM traffic is
    ``M*K / a_reuse`` (and symmetrically ``M*N / c_reuse`` for gradient
    GEMMs whose *output* is an im2col'd tensor).
    """

    m: int
    n: int
    k: int
    m_per_sample: bool = False
    a_reuse: int = 1
    c_reuse: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError(f"GEMM dimensions must be positive: {self}")
        if self.a_reuse < 1 or self.c_reuse < 1:
            raise ValueError(f"reuse factors must be >= 1: {self}")

    def at_batch(self, batch: int) -> "Gemm":
        """Resolve the batch-dependent M dimension for a concrete batch."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        m = self.m * batch if self.m_per_sample else self.m
        return Gemm(m, self.n, self.k, m_per_sample=False,
                    a_reuse=self.a_reuse, c_reuse=self.c_reuse)

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of this GEMM."""
        return self.m * self.n * self.k

    @property
    def traffic_elems(self) -> int:
        """Memory elements streamed: A and B read once (im2col
        duplication removed), C written once."""
        return (self.m * self.k // self.a_reuse + self.k * self.n
                + self.m * self.n // self.c_reuse)

    @property
    def operand_elems(self) -> int:
        """Logical matrix elements (duplication included)."""
        return self.m * self.k + self.k * self.n + self.m * self.n


def conv_gemm(out_positions: int, out_channels: int,
              in_channels: int, kernel_elems: int) -> Gemm:
    """Lower a convolution to its im2col GEMM (per-sample M)."""
    return Gemm(m=out_positions, n=out_channels,
                k=in_channels * kernel_elems, m_per_sample=True,
                a_reuse=kernel_elems)


def fc_gemm(out_features: int, in_features: int) -> Gemm:
    """Lower a fully-connected layer: one output row per sample."""
    return Gemm(m=1, n=out_features, k=in_features, m_per_sample=True)


def rnn_gemm(gate_features: int, in_features: int) -> Gemm:
    """Lower one recurrent-cell matrix product: one row per sample."""
    return Gemm(m=1, n=gate_features, k=in_features, m_per_sample=True)


def token_fc_gemm(seq: int, out_features: int, in_features: int) -> Gemm:
    """Lower a position-wise (token-level) projection of a transformer.

    Unlike :func:`fc_gemm`, every token of the sequence contributes one
    output row, so M scales with ``seq * batch``.
    """
    return Gemm(m=seq, n=out_features, k=in_features, m_per_sample=True)


def decode_attention_gemms(context: int, heads: int,
                           head_dim: int) -> tuple[Gemm, Gemm]:
    """Lower one autoregressive decode step's attention GEMMs.

    A single query token attends over ``context`` cached KV entries:
    the score GEMM is ``[heads x d] @ [d x context]`` and the context
    GEMM ``[heads x context] @ [context x d]`` per sample -- GEMV-class
    shapes whose arithmetic intensity is far below the prefill
    (:func:`attention_gemms`) and which therefore lean on memory
    bandwidth, the serving-era memory wall.
    """
    score = Gemm(m=heads, n=context, k=head_dim, m_per_sample=True)
    ctx = Gemm(m=heads, n=head_dim, k=context, m_per_sample=True)
    return score, ctx


def attention_gemms(seq: int, heads: int, head_dim: int) -> tuple[Gemm,
                                                                  Gemm]:
    """Lower multi-head self-attention's two batched GEMMs.

    Per head and sample: the *score* GEMM ``Q.Kt`` ([seq x d] @
    [d x seq]) and the *context* GEMM ``P.V`` ([seq x seq] @ [seq x d]).
    Heads batch along M (``m = seq * heads`` rows per sample), so both
    MAC counts scale as ``batch * heads * seq^2 * head_dim`` -- the
    quadratic-in-sequence term that distinguishes attention from the
    projection GEMMs.
    """
    score = Gemm(m=seq * heads, n=seq, k=head_dim, m_per_sample=True)
    context = Gemm(m=seq * heads, n=head_dim, k=seq, m_per_sample=True)
    return score, context
