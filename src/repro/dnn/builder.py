"""Fluent builder for convolutional network graphs.

Keeps track of spatial dimensions and channel counts so model definitions
read like the original papers' tables (kernel / stride / pad / channels)
while the builder derives output shapes, GEMM lowering, and DAG wiring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Network, input_layer
from repro.dnn.layers import Layer, LayerKind
from repro.dnn.shapes import conv_gemm, fc_gemm


@dataclass(frozen=True)
class TensorRef:
    """A named feature map with its spatial shape (H x W x C)."""

    name: str
    height: int
    width: int
    channels: int

    @property
    def elems(self) -> int:
        return self.height * self.width * self.channels


def conv_out_dim(size: int, kernel: int, stride: int, pad: int) -> int:
    """Standard convolution/pool output-dimension arithmetic."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"degenerate output dim: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}")
    return out


class NetBuilder:
    """Builds a :class:`Network` layer by layer, tracking shapes."""

    def __init__(self, name: str) -> None:
        self.net = Network(name)
        self._counter: dict[str, int] = {}

    def _unique(self, prefix: str) -> str:
        index = self._counter.get(prefix, 0) + 1
        self._counter[prefix] = index
        return f"{prefix}{index}"

    # -- Layer constructors -------------------------------------------------

    def image_input(self, height: int, width: int, channels: int,
                    name: str = "data") -> TensorRef:
        self.net.add_layer(input_layer(name, height * width * channels))
        return TensorRef(name, height, width, channels)

    def conv(self, src: TensorRef, out_channels: int, kernel: int,
             stride: int = 1, pad: int = 0, name: str | None = None,
             groups: int = 1) -> TensorRef:
        """2-D convolution.  ``groups`` models AlexNet's split convs."""
        if src.channels % groups or out_channels % groups:
            raise ValueError("channels must divide groups")
        oh = conv_out_dim(src.height, kernel, stride, pad)
        ow = conv_out_dim(src.width, kernel, stride, pad)
        name = name or self._unique("conv")
        in_per_group = src.channels // groups
        out_per_group = out_channels // groups
        gemms = tuple(
            conv_gemm(oh * ow, out_per_group, in_per_group, kernel * kernel)
            for _ in range(groups))
        weights = groups * out_per_group * in_per_group * kernel * kernel
        self.net.add_layer(
            Layer(name=name, kind=LayerKind.CONV,
                  out_elems=oh * ow * out_channels,
                  weight_elems=weights, gemms=gemms),
            inputs=[src.name])
        return TensorRef(name, oh, ow, out_channels)

    def relu(self, src: TensorRef, name: str | None = None) -> TensorRef:
        return self._eltwise(src, LayerKind.ACT, name or self._unique("relu"))

    def lrn(self, src: TensorRef, name: str | None = None) -> TensorRef:
        return self._eltwise(src, LayerKind.LRN, name or self._unique("lrn"))

    def batchnorm(self, src: TensorRef, name: str | None = None) -> TensorRef:
        name = name or self._unique("bn")
        self.net.add_layer(
            Layer(name=name, kind=LayerKind.BATCHNORM,
                  out_elems=src.elems, weight_elems=2 * src.channels,
                  stream_elems=2 * src.elems),
            inputs=[src.name])
        return TensorRef(name, src.height, src.width, src.channels)

    def dropout(self, src: TensorRef, name: str | None = None) -> TensorRef:
        return self._eltwise(src, LayerKind.DROPOUT,
                             name or self._unique("drop"))

    def _eltwise(self, src: TensorRef, kind: LayerKind,
                 name: str) -> TensorRef:
        self.net.add_layer(
            Layer(name=name, kind=kind, out_elems=src.elems,
                  stream_elems=2 * src.elems),
            inputs=[src.name])
        return TensorRef(name, src.height, src.width, src.channels)

    def pool(self, src: TensorRef, kernel: int, stride: int,
             pad: int = 0, name: str | None = None,
             global_pool: bool = False) -> TensorRef:
        name = name or self._unique("pool")
        if global_pool:
            oh = ow = 1
        else:
            oh = conv_out_dim(src.height, kernel, stride, pad)
            ow = conv_out_dim(src.width, kernel, stride, pad)
        self.net.add_layer(
            Layer(name=name, kind=LayerKind.POOL,
                  out_elems=oh * ow * src.channels,
                  stream_elems=src.elems + oh * ow * src.channels),
            inputs=[src.name])
        return TensorRef(name, oh, ow, src.channels)

    def concat(self, srcs: list[TensorRef],
               name: str | None = None) -> TensorRef:
        if not srcs:
            raise ValueError("concat requires at least one input")
        first = srcs[0]
        if any((s.height, s.width) != (first.height, first.width)
               for s in srcs):
            raise ValueError("concat inputs must share spatial dims")
        name = name or self._unique("concat")
        channels = sum(s.channels for s in srcs)
        elems = first.height * first.width * channels
        self.net.add_layer(
            Layer(name=name, kind=LayerKind.CONCAT, out_elems=elems,
                  stream_elems=2 * elems),
            inputs=[s.name for s in srcs])
        return TensorRef(name, first.height, first.width, channels)

    def add(self, lhs: TensorRef, rhs: TensorRef,
            name: str | None = None) -> TensorRef:
        if (lhs.height, lhs.width, lhs.channels) != \
                (rhs.height, rhs.width, rhs.channels):
            raise ValueError("eltwise-add inputs must have identical shape")
        name = name or self._unique("add")
        self.net.add_layer(
            Layer(name=name, kind=LayerKind.ELTWISE, out_elems=lhs.elems,
                  stream_elems=3 * lhs.elems),
            inputs=[lhs.name, rhs.name])
        return TensorRef(name, lhs.height, lhs.width, lhs.channels)

    def fc(self, src: TensorRef, out_features: int,
           name: str | None = None) -> TensorRef:
        name = name or self._unique("fc")
        in_features = src.elems
        self.net.add_layer(
            Layer(name=name, kind=LayerKind.FC, out_elems=out_features,
                  weight_elems=in_features * out_features,
                  gemms=(fc_gemm(out_features, in_features),)),
            inputs=[src.name])
        return TensorRef(name, 1, 1, out_features)

    def softmax(self, src: TensorRef, name: str | None = None) -> TensorRef:
        return self._eltwise(src, LayerKind.SOFTMAX,
                             name or self._unique("softmax"))

    def build(self) -> Network:
        self.net.validate()
        return self.net
