"""Model builders for the eight Table III benchmarks."""

from repro.dnn.models.alexnet import build_alexnet
from repro.dnn.models.googlenet import build_googlenet
from repro.dnn.models.resnet import build_resnet34
from repro.dnn.models.rnn import (RNN_SPECS, RnnSpec, build_rnn,
                                  build_rnn_gemv, build_rnn_gru,
                                  build_rnn_lstm1, build_rnn_lstm2)
from repro.dnn.models.transformer import (TRANSFORMER_SPECS,
                                          TransformerSpec,
                                          build_bert_large,
                                          build_gpt2, build_transformer)
from repro.dnn.models.vgg import build_vgg_e

__all__ = [
    "RNN_SPECS", "RnnSpec", "TRANSFORMER_SPECS", "TransformerSpec",
    "build_alexnet", "build_bert_large", "build_googlenet", "build_gpt2",
    "build_resnet34", "build_rnn", "build_rnn_gemv", "build_rnn_gru",
    "build_rnn_lstm1", "build_rnn_lstm2", "build_transformer",
    "build_vgg_e",
]
