"""Transformer benchmark networks: BERT-Large- and GPT-2-class models.

The paper's evaluation (Table III) predates the transformer era; these
builders extend the workload substrate with the models that stress
memory-centric designs hardest today: deep stacks of identical blocks
whose per-token activations dominate device memory and whose balanced,
repetitive structure is what makes pipeline parallelism
(:mod:`repro.pipeline`) effective.

Each encoder/decoder block lowers to the standard six GEMM sites (QKV
projection, the two batched attention GEMMs, the output projection, and
the two feed-forward projections) plus the cheap layernorm / GELU /
residual layers the migration policy recomputes.  The LM head shares
its weight buffer with the token embedding (weight tying) via
``weight_group``, exactly like recurrent cells share weights across
timesteps; its output is modeled as the per-token loss vector (fused
softmax-cross-entropy), not the materialized ``seq x vocab`` logits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Network, input_layer
from repro.dnn.layers import Layer, LayerKind
from repro.dnn.shapes import (attention_gemms, decode_attention_gemms,
                              token_fc_gemm)


@dataclass(frozen=True)
class TransformerSpec:
    """Configuration of a transformer-stack benchmark."""

    name: str
    blocks: int
    hidden: int
    heads: int
    seq: int
    vocab: int
    #: Feed-forward expansion factor (4x in BERT and GPT-2).
    ffn_mult: int = 4

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ValueError(
                f"{self.name}: hidden ({self.hidden}) must divide "
                f"evenly across {self.heads} heads")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def token_elems(self) -> int:
        """Elements of one sequence's hidden states (per sample)."""
        return self.seq * self.hidden

    @property
    def embedding_elems(self) -> int:
        """Token table plus learned position embeddings."""
        return (self.vocab + self.seq) * self.hidden


#: The two evaluated configurations: a BERT-Large-class encoder
#: (24 x 1024, 16 heads, 340M-parameter class) and a GPT-2-class
#: decoder (12 x 768, 12 heads, 117M-parameter class).
TRANSFORMER_SPECS = {
    "BERT-Large": TransformerSpec("BERT-Large", blocks=24, hidden=1024,
                                  heads=16, seq=512, vocab=30522),
    "GPT2": TransformerSpec("GPT2", blocks=12, hidden=768,
                            heads=12, seq=1024, vocab=50257),
}


def _cheap(net: Network, name: str, kind: LayerKind, elems: int,
           inputs: list[str], weight_elems: int = 0,
           stream_mult: int = 2) -> str:
    net.add_layer(Layer(name=name, kind=kind, out_elems=elems,
                        weight_elems=weight_elems,
                        stream_elems=stream_mult * elems),
                  inputs=inputs)
    return name


def _projection(net: Network, name: str, spec: TransformerSpec,
                out_features: int, in_features: int, src: str,
                weight_group: str = "") -> str:
    net.add_layer(
        Layer(name=name, kind=LayerKind.FC,
              out_elems=spec.seq * out_features,
              weight_elems=in_features * out_features,
              gemms=(token_fc_gemm(spec.seq, out_features, in_features),),
              weight_group=weight_group),
        inputs=[src])
    return name


def _block(net: Network, spec: TransformerSpec, index: int,
           src: str) -> str:
    """One pre-norm encoder/decoder block; returns its output layer."""
    h, sh = spec.hidden, spec.token_elems
    p = f"b{index}_"

    ln1 = _cheap(net, p + "ln1", LayerKind.LAYERNORM, sh, [src],
                 weight_elems=2 * h)
    qkv = _projection(net, p + "qkv", spec, 3 * h, h, ln1)
    attn = net.add_layer(
        Layer(name=p + "attn", kind=LayerKind.ATTENTION, out_elems=sh,
              gemms=attention_gemms(spec.seq, spec.heads, spec.head_dim)),
        inputs=[qkv]).name
    proj = _projection(net, p + "proj", spec, h, h, attn)
    res1 = _cheap(net, p + "res1", LayerKind.ELTWISE, sh,
                  [src, proj], stream_mult=3)

    ln2 = _cheap(net, p + "ln2", LayerKind.LAYERNORM, sh, [res1],
                 weight_elems=2 * h)
    ffn1 = _projection(net, p + "ffn1", spec, spec.ffn_mult * h, h, ln2)
    gelu = _cheap(net, p + "gelu", LayerKind.GELU,
                  spec.ffn_mult * sh, [ffn1])
    ffn2 = _projection(net, p + "ffn2", spec, h, spec.ffn_mult * h, gelu)
    return _cheap(net, p + "res2", LayerKind.ELTWISE, sh,
                  [res1, ffn2], stream_mult=3)


def build_transformer(spec: TransformerSpec) -> Network:
    """Build ``spec`` as a DAG: embedding, blocks, tied LM head."""
    net = Network(spec.name)
    tie_group = f"{spec.name}_embed"

    net.add_layer(input_layer("tokens", spec.seq))
    net.add_layer(
        Layer(name="embed", kind=LayerKind.EMBEDDING,
              out_elems=spec.token_elems,
              weight_elems=spec.embedding_elems,
              stream_elems=2 * spec.token_elems,
              weight_group=tie_group),
        inputs=["tokens"])

    out = "embed"
    for index in range(spec.blocks):
        out = _block(net, spec, index, out)

    final = _cheap(net, "ln_f", LayerKind.LAYERNORM, spec.token_elems,
                   [out], weight_elems=2 * spec.hidden)
    # Tied LM head: the vocab-projection GEMM runs against the shared
    # embedding table; the fused softmax-cross-entropy emits one loss
    # element per token rather than materializing the logits.
    net.add_layer(
        Layer(name="lm_head", kind=LayerKind.FC, out_elems=spec.seq,
              weight_elems=spec.embedding_elems,
              gemms=(token_fc_gemm(spec.seq, spec.vocab, spec.hidden),),
              weight_group=tie_group),
        inputs=[final])

    net.validate()
    return net


def build_transformer_decode(spec: TransformerSpec,
                             context: int | None = None) -> Network:
    """One autoregressive decode step of ``spec`` as a DAG.

    A single query token runs through every block, attending over
    ``context`` cached KV entries (default: the full ``spec.seq``
    window).  Projections collapse to per-token GEMVs and attention to
    :func:`~repro.dnn.shapes.decode_attention_gemms`; the weight
    matrices are unchanged, which is exactly why serving decode traffic
    is weight-bandwidth-bound.  Used by the continuous batcher of
    :mod:`repro.serving` to price per-step iteration latency.
    """
    ctx = spec.seq if context is None else context
    if ctx <= 0:
        raise ValueError("decode context must be positive")
    net = Network(f"{spec.name}-decode")
    tie_group = f"{spec.name}_decode_embed"
    h = spec.hidden

    net.add_layer(input_layer("token", 1))
    net.add_layer(
        Layer(name="embed", kind=LayerKind.EMBEDDING, out_elems=h,
              weight_elems=spec.embedding_elems, stream_elems=2 * h,
              weight_group=tie_group),
        inputs=["token"])

    src = "embed"
    for index in range(spec.blocks):
        p = f"b{index}_"
        ln1 = _cheap(net, p + "ln1", LayerKind.LAYERNORM, h, [src],
                     weight_elems=2 * h)
        qkv = _projection_rows(net, p + "qkv", 1, 3 * h, h, ln1)
        attn = net.add_layer(
            Layer(name=p + "attn", kind=LayerKind.ATTENTION, out_elems=h,
                  gemms=decode_attention_gemms(ctx, spec.heads,
                                               spec.head_dim)),
            inputs=[qkv]).name
        proj = _projection_rows(net, p + "proj", 1, h, h, attn)
        res1 = _cheap(net, p + "res1", LayerKind.ELTWISE, h,
                      [src, proj], stream_mult=3)
        ln2 = _cheap(net, p + "ln2", LayerKind.LAYERNORM, h, [res1],
                     weight_elems=2 * h)
        ffn1 = _projection_rows(net, p + "ffn1", 1, spec.ffn_mult * h,
                                h, ln2)
        gelu = _cheap(net, p + "gelu", LayerKind.GELU,
                      spec.ffn_mult * h, [ffn1])
        ffn2 = _projection_rows(net, p + "ffn2", 1, h,
                                spec.ffn_mult * h, gelu)
        src = _cheap(net, p + "res2", LayerKind.ELTWISE, h,
                     [res1, ffn2], stream_mult=3)

    final = _cheap(net, "ln_f", LayerKind.LAYERNORM, h, [src],
                   weight_elems=2 * h)
    net.add_layer(
        Layer(name="lm_head", kind=LayerKind.FC, out_elems=1,
              weight_elems=spec.embedding_elems,
              gemms=(token_fc_gemm(1, spec.vocab, h),),
              weight_group=tie_group),
        inputs=[final])

    net.validate()
    return net


def _projection_rows(net: Network, name: str, rows: int,
                     out_features: int, in_features: int,
                     src: str) -> str:
    net.add_layer(
        Layer(name=name, kind=LayerKind.FC,
              out_elems=rows * out_features,
              weight_elems=in_features * out_features,
              gemms=(token_fc_gemm(rows, out_features, in_features),)),
        inputs=[src])
    return name


def build_bert_large() -> Network:
    return build_transformer(TRANSFORMER_SPECS["BERT-Large"])


def build_gpt2() -> Network:
    return build_transformer(TRANSFORMER_SPECS["GPT2"])
