"""GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015).

3 stem convolutions + 9 inception modules x 6 convolutions + 1 FC
classifier = 58 learned layers, matching Table III ("GoogLeNet, 58").
Auxiliary classifiers are training-time-only heads that the benchmark
suite (and most training configs) omit.
"""

from __future__ import annotations

from repro.dnn.builder import NetBuilder, TensorRef
from repro.dnn.graph import Network

# (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool-proj) channel counts for
# the nine inception modules, in network order.
_INCEPTION = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(b: NetBuilder, x: TensorRef, tag: str) -> TensorRef:
    """One inception module: four parallel branches concatenated."""
    c1, c3r, c3, c5r, c5, cp = _INCEPTION[tag]

    branch1 = b.relu(b.conv(x, c1, kernel=1, name=f"inc{tag}_1x1"))

    branch3 = b.relu(b.conv(x, c3r, kernel=1, name=f"inc{tag}_3x3r"))
    branch3 = b.relu(b.conv(branch3, c3, kernel=3, pad=1,
                            name=f"inc{tag}_3x3"))

    branch5 = b.relu(b.conv(x, c5r, kernel=1, name=f"inc{tag}_5x5r"))
    branch5 = b.relu(b.conv(branch5, c5, kernel=5, pad=2,
                            name=f"inc{tag}_5x5"))

    pooled = b.pool(x, kernel=3, stride=1, pad=1, name=f"inc{tag}_pool")
    branchp = b.relu(b.conv(pooled, cp, kernel=1, name=f"inc{tag}_proj"))

    return b.concat([branch1, branch3, branch5, branchp],
                    name=f"inc{tag}_out")


def build_googlenet() -> Network:
    b = NetBuilder("GoogLeNet")
    x = b.image_input(224, 224, 3)

    x = b.conv(x, 64, kernel=7, stride=2, pad=3, name="conv1")
    x = b.relu(x)
    x = b.pool(x, kernel=3, stride=2, pad=1)
    x = b.lrn(x)

    x = b.conv(x, 64, kernel=1, name="conv2_reduce")
    x = b.relu(x)
    x = b.conv(x, 192, kernel=3, pad=1, name="conv2")
    x = b.relu(x)
    x = b.lrn(x)
    x = b.pool(x, kernel=3, stride=2, pad=1)

    x = _inception(b, x, "3a")
    x = _inception(b, x, "3b")
    x = b.pool(x, kernel=3, stride=2, pad=1)

    for tag in ("4a", "4b", "4c", "4d", "4e"):
        x = _inception(b, x, tag)
    x = b.pool(x, kernel=3, stride=2, pad=1)

    x = _inception(b, x, "5a")
    x = _inception(b, x, "5b")

    x = b.pool(x, kernel=7, stride=1, global_pool=True, name="avgpool")
    x = b.dropout(x)
    x = b.fc(x, 1000, name="fc")
    b.softmax(x)
    return b.build()
