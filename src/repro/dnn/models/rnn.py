"""Recurrent benchmark networks from Baidu's DeepBench suite.

The paper (Table III) evaluates four RNN applications: a GEMV-based
vanilla RNN (speech recognition, 50 timesteps), two LSTMs (machine
translation, 25 timesteps; language modeling, 25 timesteps), and a GRU
(speech recognition, 187 timesteps).  Hidden sizes follow the DeepBench
configurations for those application domains.

Each timestep is materialized as one cell layer in the DAG: cells share
weights via ``weight_group`` but each timestep's state (hidden, and cell
state for LSTMs) is a distinct feature map that backpropagation-through-
time must retain -- which is exactly what the memory virtualization
runtime migrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Network, input_layer
from repro.dnn.layers import Layer, LayerKind
from repro.dnn.shapes import rnn_gemm


@dataclass(frozen=True)
class RnnSpec:
    """Configuration of a single-layer recurrent benchmark."""

    name: str
    kind: LayerKind
    hidden: int
    input_dim: int
    timesteps: int

    @property
    def gates(self) -> int:
        """Gate multiplier: 1 (vanilla), 4 (LSTM), 3 (GRU)."""
        if self.kind is LayerKind.LSTM_CELL:
            return 4
        if self.kind is LayerKind.GRU_CELL:
            return 3
        return 1

    @property
    def state_elems(self) -> int:
        """Per-timestep state retained for backpropagation-through-time.

        The chain rule needs the gate activations, not just the output:
        a vanilla cell keeps its pre-activation and hidden state (2h);
        an LSTM keeps four gates, the cell state, and the hidden state
        (6h); a GRU keeps three gates and the hidden state (4h).
        """
        if self.kind is LayerKind.LSTM_CELL:
            return 6 * self.hidden
        if self.kind is LayerKind.GRU_CELL:
            return 4 * self.hidden
        return 2 * self.hidden

    @property
    def weight_elems(self) -> int:
        """Input-to-hidden plus hidden-to-hidden weights."""
        return self.gates * self.hidden * (self.input_dim + self.hidden)


# DeepBench-derived configurations; timesteps match Table III exactly.
RNN_SPECS = {
    "RNN-GEMV": RnnSpec("RNN-GEMV", LayerKind.RNN_CELL,
                        hidden=2560, input_dim=2560, timesteps=50),
    "RNN-LSTM-1": RnnSpec("RNN-LSTM-1", LayerKind.LSTM_CELL,
                          hidden=1024, input_dim=1024, timesteps=25),
    "RNN-LSTM-2": RnnSpec("RNN-LSTM-2", LayerKind.LSTM_CELL,
                          hidden=8192, input_dim=1024, timesteps=25),
    "RNN-GRU": RnnSpec("RNN-GRU", LayerKind.GRU_CELL,
                       hidden=2816, input_dim=2816, timesteps=187),
}


def build_rnn(spec: RnnSpec) -> Network:
    """Unroll ``spec`` into a DAG with one cell layer per timestep.

    Each timestep gets its own input slice ``x_t{t}`` so that data
    dependencies (and model-parallel gradient reductions) are sized per
    step, not per sequence.
    """
    net = Network(spec.name)
    group = f"{spec.name}_cell"

    gate_features = spec.gates * spec.hidden
    gemms = (rnn_gemm(gate_features, spec.input_dim),
             rnn_gemm(gate_features, spec.hidden))

    previous = None
    for t in range(spec.timesteps):
        slice_name = f"x_t{t}"
        net.add_layer(input_layer(slice_name, spec.input_dim))
        inputs = [slice_name] if previous is None \
            else [slice_name, previous]
        cell = Layer(
            name=f"cell_t{t}",
            kind=spec.kind,
            out_elems=spec.state_elems,
            weight_elems=spec.weight_elems,
            gemms=gemms,
            # Gate non-linearities stream the full gate activations.
            stream_elems=2 * gate_features,
            weight_group=group,
        )
        net.add_layer(cell, inputs=inputs)
        previous = cell.name

    net.validate()
    return net


def build_rnn_gemv() -> Network:
    return build_rnn(RNN_SPECS["RNN-GEMV"])


def build_rnn_lstm1() -> Network:
    return build_rnn(RNN_SPECS["RNN-LSTM-1"])


def build_rnn_lstm2() -> Network:
    return build_rnn(RNN_SPECS["RNN-LSTM-2"])


def build_rnn_gru() -> Network:
    return build_rnn(RNN_SPECS["RNN-GRU"])
