"""A video-understanding workload (paper Section V-E).

State-of-the-art video captioning/QA models combine a per-frame CNN
encoder with recurrent layers (S2VT-style); training them end to end
blows past single-device memory, forcing practitioners to freeze parts
of the model or crop frames/timesteps.  This builder composes a VGG-
style frame encoder with an LSTM decoder over ``frames`` timesteps --
the class of workload MC-DLA's expanded memory pool unlocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.builder import NetBuilder, TensorRef
from repro.dnn.graph import Network
from repro.dnn.layers import Layer, LayerKind
from repro.dnn.shapes import rnn_gemm


@dataclass(frozen=True)
class VideoSpec:
    """Configuration of the video-to-text workload."""

    frames: int = 16            # video frames per clip
    frame_size: int = 224       # input resolution
    encoder_channels: int = 64  # first-stage width (VGG-style doubling)
    hidden: int = 1024          # LSTM decoder width
    caption_steps: int = 20     # decoder timesteps

    def __post_init__(self) -> None:
        if min(self.frames, self.frame_size, self.encoder_channels,
               self.hidden, self.caption_steps) <= 0:
            raise ValueError("all video-spec fields must be positive")


def _frame_encoder(b: NetBuilder, x: TensorRef, frame: int,
                   base_channels: int) -> TensorRef:
    """A compact VGG-style tower shared per frame (weights per frame
    are distinct here: end-to-end training, nothing frozen)."""
    channels = base_channels
    for stage in range(1, 5):
        x = b.conv(x, channels, kernel=3, pad=1,
                   name=f"f{frame}_conv{stage}")
        x = b.relu(x, name=f"f{frame}_relu{stage}")
        x = b.pool(x, kernel=2, stride=2, name=f"f{frame}_pool{stage}")
        channels = min(2 * channels, 512)
    return b.pool(x, kernel=x.height, stride=1, global_pool=True,
                  name=f"f{frame}_gap")


def build_video_net(spec: VideoSpec = VideoSpec()) -> Network:
    """Frames -> CNN encoders -> LSTM over frames -> caption decoder."""
    b = NetBuilder("Video-CNN-LSTM")

    features = []
    for frame in range(spec.frames):
        x = b.image_input(spec.frame_size, spec.frame_size, 3,
                          name=f"frame{frame}")
        features.append(_frame_encoder(b, x, frame,
                                       spec.encoder_channels))

    gates = 4 * spec.hidden
    previous: str | None = None
    for t, feat in enumerate(features):
        inputs = [feat.name] if previous is None \
            else [feat.name, previous]
        cell = Layer(name=f"enc_lstm_t{t}", kind=LayerKind.LSTM_CELL,
                     out_elems=6 * spec.hidden,
                     weight_elems=gates * (feat.elems + spec.hidden),
                     gemms=(rnn_gemm(gates, feat.elems),
                            rnn_gemm(gates, spec.hidden)),
                     stream_elems=2 * gates,
                     weight_group="enc_lstm")
        b.net.add_layer(cell, inputs=inputs)
        previous = cell.name

    for t in range(spec.caption_steps):
        cell = Layer(name=f"dec_lstm_t{t}", kind=LayerKind.LSTM_CELL,
                     out_elems=6 * spec.hidden,
                     weight_elems=gates * 2 * spec.hidden,
                     gemms=(rnn_gemm(gates, spec.hidden),
                            rnn_gemm(gates, spec.hidden)),
                     stream_elems=2 * gates,
                     weight_group="dec_lstm")
        b.net.add_layer(cell, inputs=[previous])
        previous = cell.name

    net = b.build()
    return net
