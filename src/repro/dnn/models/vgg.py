"""VGG configuration E, i.e. VGG-19 (Simonyan & Zisserman, 2015).

16 convolutional layers + 3 fully-connected layers = 19 learned layers,
matching Table III of the paper ("VGG-E, 19 layers").
"""

from __future__ import annotations

from repro.dnn.builder import NetBuilder, TensorRef
from repro.dnn.graph import Network

# Convolutions per stage for configuration E; every stage doubles
# channels (capped at 512) and ends with a 2x2/2 max-pool.
_STAGES = ((2, 64), (2, 128), (4, 256), (4, 512), (4, 512))


def build_vgg_e() -> Network:
    b = NetBuilder("VGG-E")
    x: TensorRef = b.image_input(224, 224, 3)
    for stage_index, (conv_count, channels) in enumerate(_STAGES, start=1):
        for conv_index in range(1, conv_count + 1):
            x = b.conv(x, out_channels=channels, kernel=3, pad=1,
                       name=f"conv{stage_index}_{conv_index}")
            x = b.relu(x)
        x = b.pool(x, kernel=2, stride=2)

    x = b.fc(x, 4096, name="fc6")
    x = b.relu(x)
    x = b.dropout(x)
    x = b.fc(x, 4096, name="fc7")
    x = b.relu(x)
    x = b.dropout(x)
    x = b.fc(x, 1000, name="fc8")
    b.softmax(x)
    return b.build()
