"""AlexNet (Krizhevsky et al., NIPS 2012) -- 8 learned layers.

Dimensions follow the single-tower Caffe deployment (227x227 input);
the grouped convolutions of the original two-GPU layout are kept
(conv2/conv4/conv5 use groups=2), matching the parameter counts of the
paper.
"""

from __future__ import annotations

from repro.dnn.builder import NetBuilder
from repro.dnn.graph import Network


def build_alexnet() -> Network:
    b = NetBuilder("AlexNet")
    x = b.image_input(227, 227, 3)

    x = b.conv(x, out_channels=96, kernel=11, stride=4, name="conv1")
    x = b.relu(x)
    x = b.lrn(x)
    x = b.pool(x, kernel=3, stride=2)

    x = b.conv(x, out_channels=256, kernel=5, pad=2, groups=2, name="conv2")
    x = b.relu(x)
    x = b.lrn(x)
    x = b.pool(x, kernel=3, stride=2)

    x = b.conv(x, out_channels=384, kernel=3, pad=1, name="conv3")
    x = b.relu(x)
    x = b.conv(x, out_channels=384, kernel=3, pad=1, groups=2, name="conv4")
    x = b.relu(x)
    x = b.conv(x, out_channels=256, kernel=3, pad=1, groups=2, name="conv5")
    x = b.relu(x)
    x = b.pool(x, kernel=3, stride=2)

    x = b.fc(x, 4096, name="fc6")
    x = b.relu(x)
    x = b.dropout(x)
    x = b.fc(x, 4096, name="fc7")
    x = b.relu(x)
    x = b.dropout(x)
    x = b.fc(x, 1000, name="fc8")
    b.softmax(x)
    return b.build()
