"""ResNet-34 (He et al., CVPR 2016).

1 stem convolution + 16 basic blocks x 2 convolutions + 1 FC = 34 learned
layers, matching Table III ("ResNet, 34").  Shortcuts use the
parameter-free option A (stride-2 subsample + zero-padded channels) so
the learned-layer count matches the network's name exactly.
"""

from __future__ import annotations

from repro.dnn.builder import NetBuilder, TensorRef
from repro.dnn.graph import Network
from repro.dnn.layers import Layer, LayerKind

# (block count, channels) per stage; stages after the first downsample.
_STAGES = ((3, 64), (4, 128), (6, 256), (3, 512))


def _shortcut(b: NetBuilder, x: TensorRef, channels: int,
              stride: int, name: str) -> TensorRef:
    """Option-A shortcut: identity, or subsample + zero-pad channels."""
    if stride == 1 and x.channels == channels:
        return x
    height = x.height // stride
    width = x.width // stride
    elems = height * width * channels
    b.net.add_layer(
        Layer(name=name, kind=LayerKind.POOL, out_elems=elems,
              stream_elems=x.elems + elems),
        inputs=[x.name])
    return TensorRef(name, height, width, channels)


def _basic_block(b: NetBuilder, x: TensorRef, channels: int,
                 stride: int, tag: str) -> TensorRef:
    out = b.conv(x, channels, kernel=3, stride=stride, pad=1,
                 name=f"{tag}_conv1")
    out = b.batchnorm(out, name=f"{tag}_bn1")
    out = b.relu(out, name=f"{tag}_relu1")
    out = b.conv(out, channels, kernel=3, pad=1, name=f"{tag}_conv2")
    out = b.batchnorm(out, name=f"{tag}_bn2")
    identity = _shortcut(b, x, channels, stride, f"{tag}_short")
    out = b.add(out, identity, name=f"{tag}_add")
    return b.relu(out, name=f"{tag}_relu2")


def build_resnet34() -> Network:
    b = NetBuilder("ResNet")
    x = b.image_input(224, 224, 3)

    x = b.conv(x, 64, kernel=7, stride=2, pad=3, name="conv1")
    x = b.batchnorm(x, name="bn1")
    x = b.relu(x)
    x = b.pool(x, kernel=3, stride=2, pad=1)

    for stage_index, (blocks, channels) in enumerate(_STAGES, start=1):
        for block_index in range(1, blocks + 1):
            stride = 2 if stage_index > 1 and block_index == 1 else 1
            x = _basic_block(b, x, channels, stride,
                             tag=f"s{stage_index}b{block_index}")

    x = b.pool(x, kernel=7, stride=1, global_pool=True, name="avgpool")
    x = b.fc(x, 1000, name="fc")
    b.softmax(x)
    return b.build()
