"""Benchmark registry: Table III's eight applications plus extensions.

``BENCHMARK_NAMES`` stays exactly the paper's eight workloads (the
figures iterate it), while ``WORKLOAD_NAMES`` adds the transformer
family (:mod:`repro.dnn.models.transformer`) that post-dates the paper
-- every registered workload runs on all six design points.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

from repro.dnn.graph import Network
from repro.dnn.models.alexnet import build_alexnet
from repro.dnn.models.googlenet import build_googlenet
from repro.dnn.models.resnet import build_resnet34
from repro.dnn.models.rnn import (build_rnn_gemv, build_rnn_gru,
                                  build_rnn_lstm1, build_rnn_lstm2)
from repro.dnn.models.transformer import (TRANSFORMER_SPECS,
                                          build_bert_large, build_gpt2,
                                          build_transformer_decode)
from repro.dnn.models.vgg import build_vgg_e


@dataclass(frozen=True)
class BenchmarkInfo:
    """One registered workload (Table III rows, plus extensions)."""

    name: str
    application: str
    detail: str      # "# of layers" for CNNs, "Timesteps" for RNNs, ...
    builder: Callable[[], Network]
    family: str      # "cnn" | "rnn" | "transformer"

    @property
    def is_cnn(self) -> bool:
        return self.family == "cnn"


#: The paper's Table III rows, in presentation order.
_BENCHMARKS: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("AlexNet", "Image recognition", "8 layers",
                  build_alexnet, "cnn"),
    BenchmarkInfo("GoogLeNet", "Image recognition", "58 layers",
                  build_googlenet, "cnn"),
    BenchmarkInfo("VGG-E", "Image recognition", "19 layers",
                  build_vgg_e, "cnn"),
    BenchmarkInfo("ResNet", "Image recognition", "34 layers",
                  build_resnet34, "cnn"),
    BenchmarkInfo("RNN-GEMV", "Speech recognition", "50 timesteps",
                  build_rnn_gemv, "rnn"),
    BenchmarkInfo("RNN-LSTM-1", "Machine translation", "25 timesteps",
                  build_rnn_lstm1, "rnn"),
    BenchmarkInfo("RNN-LSTM-2", "Language modeling", "25 timesteps",
                  build_rnn_lstm2, "rnn"),
    BenchmarkInfo("RNN-GRU", "Speech recognition", "187 timesteps",
                  build_rnn_gru, "rnn"),
)

#: Post-paper extensions: the transformer workload family.
_TRANSFORMERS: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("BERT-Large", "Language understanding", "24 blocks",
                  build_bert_large, "transformer"),
    BenchmarkInfo("GPT2", "Language modeling", "12 blocks",
                  build_gpt2, "transformer"),
)

_ALL: tuple[BenchmarkInfo, ...] = _BENCHMARKS + _TRANSFORMERS

#: Benchmark names in the paper's presentation order (Table III only).
BENCHMARK_NAMES: tuple[str, ...] = tuple(b.name for b in _BENCHMARKS)
CNN_NAMES: tuple[str, ...] = tuple(
    b.name for b in _BENCHMARKS if b.family == "cnn")
RNN_NAMES: tuple[str, ...] = tuple(
    b.name for b in _BENCHMARKS if b.family == "rnn")
TRANSFORMER_NAMES: tuple[str, ...] = tuple(b.name for b in _TRANSFORMERS)
#: Every registered workload: Table III plus the transformer family.
WORKLOAD_NAMES: tuple[str, ...] = tuple(b.name for b in _ALL)


def benchmark_info(name: str) -> BenchmarkInfo:
    """Look up a registered workload by name."""
    for info in _ALL:
        if info.name == name:
            return info
    raise KeyError(f"unknown benchmark {name!r}; "
                   f"known: {', '.join(WORKLOAD_NAMES)}")


@lru_cache(maxsize=None)
def build_network(name: str) -> Network:
    """Build (and cache) a registered network by name."""
    return benchmark_info(name).builder()


@lru_cache(maxsize=None)
def decode_network(name: str, context: int | None = None) -> Network:
    """The single-token decode-step variant of a transformer workload.

    Serving's continuous batcher prices per-step iteration time on
    these GEMV-class networks; non-transformer workloads have no
    decode phase and raise ``KeyError``.
    """
    if name not in TRANSFORMER_SPECS:
        raise KeyError(
            f"workload {name!r} has no decode-step variant; "
            f"transformers: {', '.join(TRANSFORMER_SPECS)}")
    return build_transformer_decode(TRANSFORMER_SPECS[name], context)


def all_benchmarks() -> list[BenchmarkInfo]:
    """The paper's eight Table III rows (extensions excluded)."""
    return list(_BENCHMARKS)


def all_workloads() -> list[BenchmarkInfo]:
    """Every registered workload, extensions included."""
    return list(_ALL)
