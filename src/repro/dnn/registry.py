"""Benchmark registry: the eight applications of the paper's Table III."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

from repro.dnn.graph import Network
from repro.dnn.models.alexnet import build_alexnet
from repro.dnn.models.googlenet import build_googlenet
from repro.dnn.models.resnet import build_resnet34
from repro.dnn.models.rnn import (build_rnn_gemv, build_rnn_gru,
                                  build_rnn_lstm1, build_rnn_lstm2)
from repro.dnn.models.vgg import build_vgg_e


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of Table III."""

    name: str
    application: str
    detail: str          # "# of layers" for CNNs, "Timesteps" for RNNs
    builder: Callable[[], Network]
    is_cnn: bool


_BENCHMARKS: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("AlexNet", "Image recognition", "8 layers",
                  build_alexnet, True),
    BenchmarkInfo("GoogLeNet", "Image recognition", "58 layers",
                  build_googlenet, True),
    BenchmarkInfo("VGG-E", "Image recognition", "19 layers",
                  build_vgg_e, True),
    BenchmarkInfo("ResNet", "Image recognition", "34 layers",
                  build_resnet34, True),
    BenchmarkInfo("RNN-GEMV", "Speech recognition", "50 timesteps",
                  build_rnn_gemv, False),
    BenchmarkInfo("RNN-LSTM-1", "Machine translation", "25 timesteps",
                  build_rnn_lstm1, False),
    BenchmarkInfo("RNN-LSTM-2", "Language modeling", "25 timesteps",
                  build_rnn_lstm2, False),
    BenchmarkInfo("RNN-GRU", "Speech recognition", "187 timesteps",
                  build_rnn_gru, False),
)

#: Benchmark names in the paper's presentation order.
BENCHMARK_NAMES: tuple[str, ...] = tuple(b.name for b in _BENCHMARKS)
CNN_NAMES: tuple[str, ...] = tuple(b.name for b in _BENCHMARKS if b.is_cnn)
RNN_NAMES: tuple[str, ...] = tuple(
    b.name for b in _BENCHMARKS if not b.is_cnn)


def benchmark_info(name: str) -> BenchmarkInfo:
    """Look up a Table III row by name."""
    for info in _BENCHMARKS:
        if info.name == name:
            return info
    raise KeyError(f"unknown benchmark {name!r}; "
                   f"known: {', '.join(BENCHMARK_NAMES)}")


@lru_cache(maxsize=None)
def build_network(name: str) -> Network:
    """Build (and cache) a benchmark network by Table III name."""
    return benchmark_info(name).builder()


def all_benchmarks() -> list[BenchmarkInfo]:
    return list(_BENCHMARKS)
