"""Parallel-training partitioning (paper Section II-C, Figure 3).

Two strategies, matching the evaluation:

* **Data-parallel**: every worker holds the full model and 1/P of the
  batch; the only synchronization is the ``dW`` all-reduce during
  backpropagation (recurrent cells accumulate ``dW`` across timesteps
  and synchronize once per weight group).
* **Model-parallel** (Krizhevsky-style [51]): every worker holds 1/P of
  each layer's units and the full batch; forward all-gathers each
  layer's output feature map and backward all-reduces the input
  gradients -- synchronization at every layer boundary, which is why
  model-parallelism stresses the device-side interconnect.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.collectives.ring_algorithm import Primitive
from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind
from repro.dnn.shapes import Gemm
from repro.units import FP32_BYTES


class ParallelStrategy(enum.Enum):
    DATA = "data-parallel"
    MODEL = "model-parallel"
    #: Microbatched pipeline parallelism (GPipe / 1F1B): stages are
    #: contiguous layer groups, scheduled by :mod:`repro.pipeline`.
    PIPELINE = "pipeline-parallel"


@dataclass(frozen=True)
class SyncOp:
    """One collective a layer triggers."""

    primitive: Primitive
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError("sync size must be positive")


@dataclass(frozen=True)
class PartitionedLayer:
    """One layer's per-device work under a parallel strategy."""

    name: str
    kind: LayerKind
    fwd_gemms: tuple[Gemm, ...]
    bwd_gemms: tuple[Gemm, ...]
    fwd_stream_bytes: int
    #: Per-device bytes of this layer's output shard (what the memory
    #: virtualization runtime migrates on this device).
    out_shard_bytes: int
    fwd_sync: SyncOp | None
    bwd_sync: SyncOp | None
    is_cheap: bool

    @property
    def fwd_macs(self) -> int:
        return sum(g.macs for g in self.fwd_gemms)


def _shard_gemms(gemms: list[Gemm], shards: int) -> tuple[Gemm, ...]:
    """Split each GEMM's output-feature dimension N across devices."""
    return tuple(Gemm(g.m, max(1, math.ceil(g.n / shards)), g.k,
                      a_reuse=g.a_reuse, c_reuse=g.c_reuse)
                 for g in gemms)


def _grad_gemms(fwd: tuple[Gemm, ...]) -> tuple[Gemm, ...]:
    grads: list[Gemm] = []
    for g in fwd:
        grads.append(Gemm(g.m, g.k, g.n, c_reuse=g.a_reuse))   # dX
        grads.append(Gemm(g.k, g.n, g.m, a_reuse=g.a_reuse))   # dW
    return tuple(grads)


def _input_bytes(net: Network, name: str, batch: int) -> int:
    return sum(net.layer(p).out_elems for p in net.predecessors(name)) \
        * batch * FP32_BYTES


def _recurrent_sync_layers(net: Network) -> dict[str, int]:
    """Map weight groups to the layer whose backward pass runs last.

    Recurrent ``dW`` accumulates across timesteps; the all-reduce fires
    after the group's final backward step, i.e. at the topologically
    *first* member (backward runs in reverse).
    """
    firsts: dict[str, str] = {}
    sizes: dict[str, int] = {}
    for layer in net.layers:  # topological order
        group = layer.weight_group
        if group and group not in firsts:
            firsts[group] = layer.name
            sizes[group] = layer.weight_bytes
    return {firsts[g]: sizes[g] for g in firsts}


def _partition_data(net: Network, batch: int,
                    n_devices: int) -> list[PartitionedLayer]:
    # Weak scaling, Section II-C: every worker holds the full model and
    # "is assigned a different batch of the overall training dataset" --
    # the batch size is per worker, so per-device compute and feature
    # maps do not shrink as devices are added (the global batch grows).
    local_batch = batch
    group_sync = _recurrent_sync_layers(net) if n_devices > 1 else {}
    parts = []
    for layer in net.layers:
        fwd = tuple(layer.fwd_gemms(local_batch))
        bwd_sync = None
        if n_devices > 1 and layer.weight_elems:
            if layer.weight_group:
                if layer.name in group_sync:
                    bwd_sync = SyncOp(Primitive.ALL_REDUCE,
                                      group_sync[layer.name])
            else:
                bwd_sync = SyncOp(Primitive.ALL_REDUCE, layer.weight_bytes)
        parts.append(PartitionedLayer(
            name=layer.name, kind=layer.kind,
            fwd_gemms=fwd, bwd_gemms=_grad_gemms(fwd),
            fwd_stream_bytes=layer.fwd_stream_bytes(local_batch),
            out_shard_bytes=layer.out_bytes(local_batch),
            fwd_sync=None, bwd_sync=bwd_sync,
            is_cheap=layer.is_cheap))
    return parts


def _partition_model(net: Network, batch: int,
                     n_devices: int) -> list[PartitionedLayer]:
    parts = []
    for layer in net.layers:
        full = tuple(layer.fwd_gemms(batch))
        fwd = _shard_gemms(list(full), n_devices)
        fwd_sync = None
        bwd_sync = None
        if n_devices > 1 and fwd and layer.kind is not LayerKind.INPUT:
            # Workers hold output shards; the next layer's split weights
            # consume the full feature map: all-gather Y.
            fwd_sync = SyncOp(Primitive.ALL_GATHER, layer.out_bytes(batch))
            # Each worker's weight shard yields a partial dX over the
            # full input: all-reduce the input gradients.
            in_bytes = _input_bytes(net, layer.name, batch)
            if in_bytes:
                bwd_sync = SyncOp(Primitive.ALL_REDUCE, in_bytes)
        # The all-gather materializes the *full* feature map on every
        # worker (it feeds the next layer's split weights), so that is
        # what the memory manager migrates per device -- model-parallel
        # training multiplies per-device virtualization traffic, which
        # is why it stresses DC-DLA even harder (Figure 11(b)).
        parts.append(PartitionedLayer(
            name=layer.name, kind=layer.kind,
            fwd_gemms=fwd, bwd_gemms=_grad_gemms(fwd),
            fwd_stream_bytes=max(
                1, layer.fwd_stream_bytes(batch) // n_devices)
            if layer.fwd_stream_bytes else 0,
            out_shard_bytes=layer.out_bytes(batch),
            fwd_sync=fwd_sync, bwd_sync=bwd_sync,
            is_cheap=layer.is_cheap))
    return parts


def partition(net: Network, batch: int, strategy: ParallelStrategy,
              n_devices: int) -> list[PartitionedLayer]:
    """Per-device layer work for one training iteration."""
    if n_devices <= 0:
        raise ValueError("need at least one device")
    if batch <= 0:
        raise ValueError("batch must be positive")
    if strategy is ParallelStrategy.PIPELINE:
        raise ValueError(
            "pipeline parallelism partitions the network into stages, "
            "not per-layer shards; use repro.pipeline.plan_pipeline")
    if strategy is ParallelStrategy.DATA:
        return _partition_data(net, batch, n_devices)
    return _partition_model(net, batch, n_devices)


def total_sync_bytes(parts: list[PartitionedLayer]) -> int:
    """Bytes synchronized per iteration (both directions of the step)."""
    total = 0
    for part in parts:
        for sync in (part.fwd_sync, part.bwd_sync):
            if sync is not None:
                total += sync.nbytes
    return total
