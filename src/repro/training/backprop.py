"""Training-step structure: forward/backward expansion of the DAG.

A training iteration (Section II-A) runs forward propagation through
the layers in topological order, then backpropagation in reverse,
deriving dX and dW per layer.  :class:`TrainingStep` materializes that
order along with the recompute sites the migration policy introduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind
from repro.vmem.policy import MigrationAction, TensorPlan


@dataclass(frozen=True)
class TrainingStep:
    """Deterministic op orders of one iteration over a network."""

    network: str
    fwd_order: tuple[str, ...]
    bwd_order: tuple[str, ...]
    #: backward layer -> cheap layers recomputed just before it.
    recompute_sites: dict[str, tuple[str, ...]]
    #: backward layer -> offloaded tensors prefetched for it.
    prefetch_sites: dict[str, tuple[str, ...]]

    @property
    def depth(self) -> int:
        return len(self.fwd_order)


def expand(net: Network, plans: list[TensorPlan]) -> TrainingStep:
    """Expand a network + migration plan into a training step.

    Forward order is the DAG's topological order; backward order is its
    reverse, skipping the input pseudo-layer.  Each offloaded tensor is
    prefetched before the backward pass of its topologically-last
    forward consumer (its *first* backward use); each recomputed tensor
    is regenerated at the same point.
    """
    fwd = tuple(net.layer_names)
    bwd = tuple(name for name in reversed(fwd)
                if net.layer(name).kind is not LayerKind.INPUT)

    prefetch: dict[str, list[str]] = {}
    recompute: dict[str, list[str]] = {}
    for plan in plans:
        if plan.action is MigrationAction.OFFLOAD:
            prefetch.setdefault(plan.prefetch_before, []).append(
                plan.producer)
        elif plan.action is MigrationAction.RECOMPUTE:
            recompute.setdefault(plan.prefetch_before, []).append(
                plan.producer)

    return TrainingStep(
        network=net.name,
        fwd_order=fwd,
        bwd_order=bwd,
        recompute_sites={k: tuple(v) for k, v in recompute.items()},
        prefetch_sites={k: tuple(v) for k, v in prefetch.items()},
    )
