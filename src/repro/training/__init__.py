"""Training-step modeling: parallelization and backprop expansion."""

from repro.training.backprop import TrainingStep, expand
from repro.training.parallel import (ParallelStrategy, PartitionedLayer,
                                     SyncOp, partition, total_sync_bytes)

__all__ = [
    "ParallelStrategy", "PartitionedLayer", "SyncOp", "TrainingStep",
    "expand", "partition", "total_sync_bytes",
]
