"""Result records of a simulated training iteration.

Both records round-trip losslessly through plain dicts (``to_dict`` /
``from_dict``) so the campaign layer can persist them as JSON: floats
survive exactly because ``json`` serializes the shortest repr that
parses back to the same IEEE-754 value.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from repro.training.parallel import ParallelStrategy


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (exact order
    statistic; survives JSON round trips bit-for-bit).  Shared by the
    serving and cluster statistics layers."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0 < q <= 100:
        raise ValueError("percentile rank must be in (0, 100]")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class MetricPathError(ValueError):
    """A dotted metric path does not resolve on a result."""


def resolve_metric(result: "SimulationResult", path: str) -> float:
    """Resolve a dotted attribute path to one numeric metric.

    ``"iteration_time"``, ``"breakdown.vmem_share"``,
    ``"cluster.jct_p95"``, ``"prefetch.stall_seconds"`` -- any chain of
    dataclass fields and properties ending in a number.  Booleans fold
    to 0.0/1.0 so capacity predicates (``fits_in_device_memory``) bind
    like any other metric.  Raises :class:`MetricPathError` when a
    segment is missing, or lands on an optional payload that this
    result did not produce (e.g. ``cluster.*`` on a training result).
    """
    value: Any = result
    walked: list[str] = []
    for segment in path.split("."):
        if value is None:
            raise MetricPathError(
                f"metric {path!r}: {'.'.join(walked)!r} is None on "
                f"this result (mode={result.mode.value}); the claim "
                f"binds a payload this scenario does not produce")
        try:
            value = getattr(value, segment)
        except AttributeError:
            raise MetricPathError(
                f"metric {path!r}: {type(value).__name__} has no "
                f"attribute {segment!r}") from None
        walked.append(segment)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    raise MetricPathError(
        f"metric {path!r} resolved to {type(value).__name__}, "
        f"not a number")


class ExecutionMode(enum.Enum):
    """What one ``simulate()`` call models.

    ``TRAINING`` is the paper's iteration (forward + backward +
    migration + synchronization).  ``INFERENCE`` is a forward-only
    batch with multi-tenant weight streaming from the backing store
    (:func:`repro.core.schedule.plan_inference`).  ``SERVING`` marks a
    result produced by the request-level serving simulation
    (:mod:`repro.serving`), whose payload lives in
    :class:`ServingStats`.  ``CLUSTER`` marks a result produced by the
    multi-job cluster scheduler (:mod:`repro.cluster`), whose payload
    lives in :class:`ClusterStats`.
    """

    TRAINING = "training"
    INFERENCE = "inference"
    SERVING = "serving"
    CLUSTER = "cluster"


@dataclass(frozen=True)
class LatencyBreakdown:
    """The three stacked latencies of the paper's Figure 11.

    These are *raw* per-engine totals; they do not sum to the iteration
    time because the framework overlaps computation with
    synchronization and memory virtualization (the figure's caption).
    """

    compute: float
    sync: float
    vmem: float

    def __post_init__(self) -> None:
        if min(self.compute, self.sync, self.vmem) < 0:
            raise ValueError("latency components must be non-negative")

    @property
    def total(self) -> float:
        return self.compute + self.sync + self.vmem

    @property
    def vmem_share(self) -> float:
        """Virtualization share of the raw engine totals, in [0, 1].

        Above 0.5 the run is vmem-bound: migration alone outweighs
        compute and synchronization combined.
        """
        total = self.total
        return self.vmem / total if total > 0 else 0.0

    def normalized_to(self, reference_total: float) -> "LatencyBreakdown":
        if reference_total <= 0:
            raise ValueError("reference total must be positive")
        return LatencyBreakdown(self.compute / reference_total,
                                self.sync / reference_total,
                                self.vmem / reference_total)

    def to_dict(self) -> dict[str, float]:
        return {"compute": self.compute, "sync": self.sync,
                "vmem": self.vmem}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "LatencyBreakdown":
        return cls(compute=data["compute"], sync=data["sync"],
                   vmem=data["vmem"])


@dataclass(frozen=True)
class PipelineStats:
    """Per-stage accounting of one pipeline-parallel iteration.

    ``stage_bubble`` is each stage's compute-engine idle time over the
    iteration makespan -- fill/drain waits plus any stall the memory
    system injects (exposed activation prefetches).  All parallel
    tuples are indexed by stage.
    """

    schedule: str
    n_stages: int
    n_microbatches: int
    microbatch: int
    #: Data-parallel replicas of the whole pipeline (1 = none).
    replicas: int
    stage_compute: tuple[float, ...]
    stage_bubble: tuple[float, ...]
    #: Bytes each stage offloads to the backing store per iteration.
    stage_offload_bytes: tuple[int, ...]
    #: Peak microbatches in flight per stage (the activation stash
    #: depth: M under fill-drain, at most P-s under 1F1B).
    stage_max_in_flight: tuple[int, ...]
    #: Deferred weight-grad (W) seconds per stage over the iteration;
    #: empty on schedules that keep the backward undifferentiated
    #: (then W time is folded into ``stage_compute`` backwards).
    stage_wgrad: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        counts = {len(self.stage_compute), len(self.stage_bubble),
                  len(self.stage_offload_bytes),
                  len(self.stage_max_in_flight)}
        if self.stage_wgrad:
            counts.add(len(self.stage_wgrad))
        if counts != {self.n_stages}:
            raise ValueError("per-stage tuples must match n_stages")
        if min(self.stage_bubble) < -1e-9:
            raise ValueError("negative bubble time")

    @property
    def bubble_time(self) -> float:
        """Total compute-idle time summed over stages."""
        return sum(self.stage_bubble)

    @property
    def bubble_fraction(self) -> float:
        """Idle share of all stage-compute timelines.

        Each stage contributes ``makespan`` of wall-clock, so the
        denominator ``sum(bubble) + sum(compute)`` equals
        ``n_stages * makespan`` without storing the makespan.
        """
        total = self.bubble_time + sum(self.stage_compute)
        return self.bubble_time / total if total > 0 else 0.0

    @property
    def wgrad_time(self) -> float:
        """Total deferred weight-grad seconds summed over stages."""
        return sum(self.stage_wgrad)

    @property
    def wgrad_fill_fraction(self) -> float:
        """Deferred W work relative to the idle it competes with.

        ``wgrad / (wgrad + bubble)``: 0 on undifferentiated schedules,
        approaching 1 as deferred weight-grad work crowds out the
        remaining fill/drain idle.
        """
        total = self.wgrad_time + self.bubble_time
        return self.wgrad_time / total if total > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        data = {
            "schedule": self.schedule,
            "n_stages": self.n_stages,
            "n_microbatches": self.n_microbatches,
            "microbatch": self.microbatch,
            "replicas": self.replicas,
            "stage_compute": list(self.stage_compute),
            "stage_bubble": list(self.stage_bubble),
            "stage_offload_bytes": list(self.stage_offload_bytes),
            "stage_max_in_flight": list(self.stage_max_in_flight),
        }
        # Emitted only by the B/W-splitting schedules so legacy
        # snapshots stay byte-identical.
        if self.stage_wgrad:
            data["stage_wgrad"] = list(self.stage_wgrad)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PipelineStats":
        return cls(
            schedule=data["schedule"],
            n_stages=data["n_stages"],
            n_microbatches=data["n_microbatches"],
            microbatch=data["microbatch"],
            replicas=data["replicas"],
            stage_compute=tuple(data["stage_compute"]),
            stage_bubble=tuple(data["stage_bubble"]),
            stage_offload_bytes=tuple(data["stage_offload_bytes"]),
            stage_max_in_flight=tuple(data["stage_max_in_flight"]),
            stage_wgrad=tuple(data.get("stage_wgrad", ())),
        )


@dataclass(frozen=True)
class PrefetchStats:
    """What the vmem prefetch/eviction policy did to one schedule.

    Produced by :func:`repro.vmem.prefetch.collect_prefetch_stats` from
    the scheduled timeline.  ``late``/``jit``/``early`` form the
    timeliness histogram over the real (consumer-feeding) prefetches:
    a fetch is *late* when its consumer had to wait for it, *jit* when
    it finished within one of its own transfer times of the consumer
    unblocking, and *early* otherwise.  ``wasted_bytes`` counts
    speculative traffic nothing consumed (mispredictions plus the first
    trip of every evicted tensor); ``contended_seconds`` is the
    measured overlap of migration DMAs with collective traffic on the
    shared links.  All counts are exact integers and every float
    round-trips losslessly through JSON.
    """

    policy: str
    n_prefetches: int
    #: All bytes moved device-bound on the prefetch engine, waste
    #: included.
    prefetch_bytes: int
    wasted_bytes: int
    evictions: int
    #: Seconds compute spent blocked on prefetch DMAs.
    stall_seconds: float
    late: int
    jit: int
    early: int
    #: Fraction of prefetches that did not stall their consumer.
    hit_rate: float
    contended_seconds: float

    def __post_init__(self) -> None:
        if min(self.n_prefetches, self.prefetch_bytes,
               self.wasted_bytes, self.evictions, self.late, self.jit,
               self.early) < 0:
            raise ValueError("prefetch counts must be non-negative")
        if self.late + self.jit + self.early != self.n_prefetches:
            raise ValueError("timeliness histogram must cover every "
                             "prefetch")
        if min(self.stall_seconds, self.contended_seconds) < 0:
            raise ValueError("prefetch timings must be non-negative")
        if not 0.0 <= self.hit_rate <= 1.0:
            raise ValueError("hit rate must lie in [0, 1]")

    @property
    def timeliness(self) -> dict[str, int]:
        """The histogram as a plain mapping (rendering convenience)."""
        return {"late": self.late, "jit": self.jit, "early": self.early}

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "n_prefetches": self.n_prefetches,
            "prefetch_bytes": self.prefetch_bytes,
            "wasted_bytes": self.wasted_bytes,
            "evictions": self.evictions,
            "stall_seconds": self.stall_seconds,
            "late": self.late,
            "jit": self.jit,
            "early": self.early,
            "hit_rate": self.hit_rate,
            "contended_seconds": self.contended_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PrefetchStats":
        return cls(**{field: data[field] for field in (
            "policy", "n_prefetches", "prefetch_bytes", "wasted_bytes",
            "evictions", "stall_seconds", "late", "jit", "early",
            "hit_rate", "contended_seconds")})


@dataclass(frozen=True)
class FaultStats:
    """What a fault model injected into one run, and what it cost.

    Produced only when a non-null :class:`repro.faults.model.FaultModel`
    is active; healthy results carry ``faults=None`` so disabled fault
    injection is byte-invisible.  ``slowdown`` compares the faulted run
    against its healthy twin (same design, same workload, fault model
    stripped); ``availability`` is the fraction of nominal capacity the
    degraded system delivered (1.0 = unharmed).
    """

    model: str
    #: Flap onsets within the run horizon plus standing faults
    #: (each straggler once, the pool-node loss once).
    injected_events: int
    #: Wall-clock seconds the run spent under active degradation.
    degraded_seconds: float
    #: Faulted time over healthy-twin time (makespan for cluster runs,
    #: representative batch latency for serving).
    slowdown: float
    #: Fault-induced evictions retried with backoff (cluster mode).
    retries: int
    #: Requests dropped by SLO-aware load shedding (serving mode).
    shed_requests: int
    #: Completions past the request timeout (serving mode).
    timed_out_requests: int
    #: Checkpoint + restore bytes billed to fault recovery.
    recovery_bytes: int
    #: Delivered over nominal capacity, in [0, 1].
    availability: float

    def __post_init__(self) -> None:
        if not self.model or self.model == "none":
            raise ValueError("fault stats need a non-null model name")
        if min(self.injected_events, self.retries, self.shed_requests,
               self.timed_out_requests, self.recovery_bytes) < 0:
            raise ValueError("fault counts must be non-negative")
        if self.degraded_seconds < 0:
            raise ValueError("degraded_seconds must be non-negative")
        if self.slowdown <= 0:
            raise ValueError("slowdown must be positive")
        if not 0.0 <= self.availability <= 1.0 + 1e-9:
            raise ValueError("availability must lie in [0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "injected_events": self.injected_events,
            "degraded_seconds": self.degraded_seconds,
            "slowdown": self.slowdown,
            "retries": self.retries,
            "shed_requests": self.shed_requests,
            "timed_out_requests": self.timed_out_requests,
            "recovery_bytes": self.recovery_bytes,
            "availability": self.availability,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultStats":
        return cls(**{field: data[field] for field in (
            "model", "injected_events", "degraded_seconds", "slowdown",
            "retries", "shed_requests", "timed_out_requests",
            "recovery_bytes", "availability")})


@dataclass(frozen=True)
class ServingStats:
    """Request-level outcome of one inference-serving simulation.

    Latencies are end-to-end (arrival to completion, queueing included)
    in seconds; percentiles use the nearest-rank method so they are
    exact order statistics of the completed-request population and
    round-trip losslessly through JSON.  ``goodput`` counts only
    requests completed within the SLO.
    """

    arrival: str          # arrival-process label, e.g. "poisson(r=200)"
    batcher: str          # "dynamic" | "continuous"
    max_batch: int
    max_wait: float       # batching deadline (seconds)
    slo: float            # latency objective (seconds)
    n_requests: int
    n_servers: int
    #: Wall-clock span of the simulation (first arrival to last
    #: completion).
    duration: float
    #: Nominal offered load of the arrival process (requests/sec).
    offered_rate: float
    #: Completed requests per second over ``duration``.
    throughput: float
    #: SLO-satisfying completions per second over ``duration``.
    goodput: float
    #: Fraction of requests completed within the SLO.
    slo_attainment: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    queue_delay_mean: float
    service_mean: float
    mean_batch_size: float
    #: Aggregate server busy time over ``n_servers * duration``.
    utilization: float

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError("request count must be non-negative")
        if self.n_servers <= 0:
            raise ValueError("need at least one server")
        if self.n_requests == 0:
            # A trace that completed nothing (zero offered load, or
            # every request shed under fault injection) folds to a
            # well-defined all-zero record.
            if self.duration != 0.0 or self.throughput != 0.0 \
                    or self.latency_max != 0.0:
                raise ValueError("empty-trace stats must be zeroed")
            return
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.slo_attainment <= 1.0:
            raise ValueError("slo_attainment must be a fraction")
        if not (self.latency_p50 <= self.latency_p95
                <= self.latency_p99 <= self.latency_max):
            raise ValueError("latency percentiles must be ordered")
        if self.utilization < 0.0 or self.utilization > 1.0 + 1e-9:
            raise ValueError("utilization must lie in [0, 1]")

    @property
    def tail_amplification(self) -> float:
        """p99 over p50 -- how much queueing stretches the tail."""
        return (self.latency_p99 / self.latency_p50
                if self.latency_p50 > 0 else 0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "arrival": self.arrival,
            "batcher": self.batcher,
            "max_batch": self.max_batch,
            "max_wait": self.max_wait,
            "slo": self.slo,
            "n_requests": self.n_requests,
            "n_servers": self.n_servers,
            "duration": self.duration,
            "offered_rate": self.offered_rate,
            "throughput": self.throughput,
            "goodput": self.goodput,
            "slo_attainment": self.slo_attainment,
            "latency_mean": self.latency_mean,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_max": self.latency_max,
            "queue_delay_mean": self.queue_delay_mean,
            "service_mean": self.service_mean,
            "mean_batch_size": self.mean_batch_size,
            "utilization": self.utilization,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServingStats":
        return cls(**{field: data[field] for field in (
            "arrival", "batcher", "max_batch", "max_wait", "slo",
            "n_requests", "n_servers", "duration", "offered_rate",
            "throughput", "goodput", "slo_attainment", "latency_mean",
            "latency_p50", "latency_p95", "latency_p99", "latency_max",
            "queue_delay_mean", "service_mean", "mean_batch_size",
            "utilization")})


@dataclass(frozen=True)
class ClusterStats:
    """Fleet-level outcome of one multi-job cluster simulation.

    Job completion times (JCT) are end-to-end (submission to finish,
    queueing and preemption overheads included) in seconds, reported
    as exact nearest-rank order statistics so they round-trip
    losslessly through JSON.  ``pool_utilization`` is the time-average
    of ``min(reserved, capacity) / capacity`` over the makespan;
    ``fragmentation`` is the time-averaged fraction of fleet devices
    idle while at least one job waited (capacity stranded by gang and
    pool constraints), bounded in [0, 1].
    """

    policy: str
    job_mix: str
    n_jobs: int
    n_devices: int        # fleet width (devices)
    pool_capacity: int    # shared pool bytes
    oversubscription: float
    makespan: float
    #: Completed jobs per second over the makespan.
    throughput: float
    jct_mean: float
    jct_p50: float
    jct_p95: float
    queue_delay_mean: float
    #: Time-averaged fraction of fleet devices busy.
    device_utilization: float
    pool_utilization: float
    #: Time-averaged peak-relative pool pressure: ``reserved /
    #: capacity`` without the cap, so oversubscribed intervals push it
    #: above 1.
    pool_pressure: float
    fragmentation: float
    preemptions: int
    #: Checkpoint + restore bytes moved through the pool by preemption.
    checkpoint_bytes: int

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ValueError("stats need at least one job")
        if self.n_devices <= 0:
            raise ValueError("need at least one device")
        if self.makespan <= 0:
            raise ValueError("makespan must be positive")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription factor must be >= 1")
        if not self.jct_p50 <= self.jct_p95:
            raise ValueError("JCT percentiles must be ordered")
        for name in ("device_utilization", "pool_utilization",
                     "fragmentation"):
            value = getattr(self, name)
            if value < 0.0 or value > 1.0 + 1e-9:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.preemptions < 0 or self.checkpoint_bytes < 0:
            raise ValueError("preemption accounting must be >= 0")

    @property
    def queueing_share(self) -> float:
        """Mean queueing delay over mean JCT -- how much of a job's
        lifetime is spent waiting rather than running."""
        return (self.queue_delay_mean / self.jct_mean
                if self.jct_mean > 0 else 0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "job_mix": self.job_mix,
            "n_jobs": self.n_jobs,
            "n_devices": self.n_devices,
            "pool_capacity": self.pool_capacity,
            "oversubscription": self.oversubscription,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "jct_mean": self.jct_mean,
            "jct_p50": self.jct_p50,
            "jct_p95": self.jct_p95,
            "queue_delay_mean": self.queue_delay_mean,
            "device_utilization": self.device_utilization,
            "pool_utilization": self.pool_utilization,
            "pool_pressure": self.pool_pressure,
            "fragmentation": self.fragmentation,
            "preemptions": self.preemptions,
            "checkpoint_bytes": self.checkpoint_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClusterStats":
        return cls(**{field: data[field] for field in (
            "policy", "job_mix", "n_jobs", "n_devices", "pool_capacity",
            "oversubscription", "makespan", "throughput", "jct_mean",
            "jct_p50", "jct_p95", "queue_delay_mean",
            "device_utilization", "pool_utilization", "pool_pressure",
            "fragmentation", "preemptions", "checkpoint_bytes")})


@dataclass(frozen=True)
class SimulationResult:
    """One (design point, network, batch, strategy) simulation.

    ``iteration_time`` and every :class:`LatencyBreakdown` component
    are seconds; ``offload_bytes_per_device``, ``sync_bytes``, and
    ``host_traffic_bytes_per_device`` are bytes per iteration.
    """

    system: str
    network: str
    batch: int
    strategy: ParallelStrategy
    n_devices: int
    iteration_time: float
    breakdown: LatencyBreakdown
    offload_bytes_per_device: int
    sync_bytes: int
    #: Virtualization bytes through *host* DRAM per device (0 when the
    #: backing store is a memory-node or migration is off).
    host_traffic_bytes_per_device: int
    #: Whether the whole training footprint fits in device memory
    #: without virtualization.
    fits_in_device_memory: bool
    #: Per-stage pipeline accounting (``ParallelStrategy.PIPELINE``
    #: only; ``None`` for data/model-parallel runs).
    pipeline: PipelineStats | None = None
    #: What this result models; training iterations by default.
    mode: ExecutionMode = ExecutionMode.TRAINING
    #: Request-level serving statistics (``ExecutionMode.SERVING``
    #: only; ``None`` otherwise).
    serving: ServingStats | None = None
    #: Fleet-level scheduler statistics (``ExecutionMode.CLUSTER``
    #: only; ``None`` otherwise).
    cluster: ClusterStats | None = None
    #: Prefetch-policy accounting of the scheduled timeline: populated
    #: for training, inference, and pipeline results, and for serving
    #: results (from the representative ``max_batch`` forward
    #: simulation).  ``None`` only for the fleet-level cluster
    #: simulation, whose payload aggregates many jobs' timelines.
    prefetch: PrefetchStats | None = None
    #: Fault-injection accounting (:mod:`repro.faults`); ``None``
    #: whenever the fault model is ``"none"`` or inert, so healthy
    #: results are byte-identical with the fault engine absent.
    faults: FaultStats | None = None

    def __post_init__(self) -> None:
        if self.iteration_time <= 0:
            raise ValueError("iteration time must be positive")

    @property
    def throughput(self) -> float:
        """Training throughput in samples/sec across the node."""
        return self.batch / self.iteration_time

    @property
    def round_trip_bytes_per_device(self) -> int:
        return 2 * self.offload_bytes_per_device

    def speedup_over(self, other: "SimulationResult") -> float:
        if (self.network, self.batch, self.strategy) != \
                (other.network, other.batch, other.strategy):
            raise ValueError("speedup requires matching workloads")
        return other.iteration_time / self.iteration_time

    def performance_vs(self, oracle: "SimulationResult") -> float:
        """Throughput normalized to the oracle (Figure 13's y-axis)."""
        if (self.network, self.batch, self.strategy) != \
                (oracle.network, oracle.batch, oracle.strategy):
            raise ValueError("normalization requires matching workloads")
        return oracle.iteration_time / self.iteration_time

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of this result."""
        return {
            "system": self.system,
            "network": self.network,
            "batch": self.batch,
            "strategy": self.strategy.value,
            "n_devices": self.n_devices,
            "iteration_time": self.iteration_time,
            "breakdown": self.breakdown.to_dict(),
            "offload_bytes_per_device": self.offload_bytes_per_device,
            "sync_bytes": self.sync_bytes,
            "host_traffic_bytes_per_device":
                self.host_traffic_bytes_per_device,
            "fits_in_device_memory": self.fits_in_device_memory,
            "pipeline": (self.pipeline.to_dict()
                         if self.pipeline is not None else None),
            "mode": self.mode.value,
            "serving": (self.serving.to_dict()
                        if self.serving is not None else None),
            "cluster": (self.cluster.to_dict()
                        if self.cluster is not None else None),
            "prefetch": (self.prefetch.to_dict()
                         if self.prefetch is not None else None),
            "faults": (self.faults.to_dict()
                       if self.faults is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (exact)."""
        pipeline = data.get("pipeline")
        serving = data.get("serving")
        cluster = data.get("cluster")
        prefetch = data.get("prefetch")
        faults = data.get("faults")
        return cls(
            system=data["system"],
            network=data["network"],
            batch=data["batch"],
            strategy=ParallelStrategy(data["strategy"]),
            n_devices=data["n_devices"],
            iteration_time=data["iteration_time"],
            breakdown=LatencyBreakdown.from_dict(data["breakdown"]),
            offload_bytes_per_device=data["offload_bytes_per_device"],
            sync_bytes=data["sync_bytes"],
            host_traffic_bytes_per_device=data[
                "host_traffic_bytes_per_device"],
            fits_in_device_memory=data["fits_in_device_memory"],
            pipeline=(PipelineStats.from_dict(pipeline)
                      if pipeline is not None else None),
            mode=ExecutionMode(data.get("mode", "training")),
            serving=(ServingStats.from_dict(serving)
                     if serving is not None else None),
            cluster=(ClusterStats.from_dict(cluster)
                     if cluster is not None else None),
            prefetch=(PrefetchStats.from_dict(prefetch)
                      if prefetch is not None else None),
            faults=(FaultStats.from_dict(faults)
                    if faults is not None else None),
        )
