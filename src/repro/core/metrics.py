"""Result records of a simulated training iteration.

Both records round-trip losslessly through plain dicts (``to_dict`` /
``from_dict``) so the campaign layer can persist them as JSON: floats
survive exactly because ``json`` serializes the shortest repr that
parses back to the same IEEE-754 value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.training.parallel import ParallelStrategy


@dataclass(frozen=True)
class LatencyBreakdown:
    """The three stacked latencies of the paper's Figure 11.

    These are *raw* per-engine totals; they do not sum to the iteration
    time because the framework overlaps computation with
    synchronization and memory virtualization (the figure's caption).
    """

    compute: float
    sync: float
    vmem: float

    def __post_init__(self) -> None:
        if min(self.compute, self.sync, self.vmem) < 0:
            raise ValueError("latency components must be non-negative")

    @property
    def total(self) -> float:
        return self.compute + self.sync + self.vmem

    def normalized_to(self, reference_total: float) -> "LatencyBreakdown":
        if reference_total <= 0:
            raise ValueError("reference total must be positive")
        return LatencyBreakdown(self.compute / reference_total,
                                self.sync / reference_total,
                                self.vmem / reference_total)

    def to_dict(self) -> dict[str, float]:
        return {"compute": self.compute, "sync": self.sync,
                "vmem": self.vmem}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "LatencyBreakdown":
        return cls(compute=data["compute"], sync=data["sync"],
                   vmem=data["vmem"])


@dataclass(frozen=True)
class PipelineStats:
    """Per-stage accounting of one pipeline-parallel iteration.

    ``stage_bubble`` is each stage's compute-engine idle time over the
    iteration makespan -- fill/drain waits plus any stall the memory
    system injects (exposed activation prefetches).  All parallel
    tuples are indexed by stage.
    """

    schedule: str
    n_stages: int
    n_microbatches: int
    microbatch: int
    #: Data-parallel replicas of the whole pipeline (1 = none).
    replicas: int
    stage_compute: tuple[float, ...]
    stage_bubble: tuple[float, ...]
    #: Bytes each stage offloads to the backing store per iteration.
    stage_offload_bytes: tuple[int, ...]
    #: Peak microbatches in flight per stage (the activation stash
    #: depth: M under fill-drain, at most P-s under 1F1B).
    stage_max_in_flight: tuple[int, ...]

    def __post_init__(self) -> None:
        counts = {len(self.stage_compute), len(self.stage_bubble),
                  len(self.stage_offload_bytes),
                  len(self.stage_max_in_flight)}
        if counts != {self.n_stages}:
            raise ValueError("per-stage tuples must match n_stages")
        if min(self.stage_bubble) < -1e-9:
            raise ValueError("negative bubble time")

    @property
    def bubble_time(self) -> float:
        """Total compute-idle time summed over stages."""
        return sum(self.stage_bubble)

    @property
    def bubble_fraction(self) -> float:
        """Idle share of all stage-compute timelines.

        Each stage contributes ``makespan`` of wall-clock, so the
        denominator ``sum(bubble) + sum(compute)`` equals
        ``n_stages * makespan`` without storing the makespan.
        """
        total = self.bubble_time + sum(self.stage_compute)
        return self.bubble_time / total if total > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "schedule": self.schedule,
            "n_stages": self.n_stages,
            "n_microbatches": self.n_microbatches,
            "microbatch": self.microbatch,
            "replicas": self.replicas,
            "stage_compute": list(self.stage_compute),
            "stage_bubble": list(self.stage_bubble),
            "stage_offload_bytes": list(self.stage_offload_bytes),
            "stage_max_in_flight": list(self.stage_max_in_flight),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PipelineStats":
        return cls(
            schedule=data["schedule"],
            n_stages=data["n_stages"],
            n_microbatches=data["n_microbatches"],
            microbatch=data["microbatch"],
            replicas=data["replicas"],
            stage_compute=tuple(data["stage_compute"]),
            stage_bubble=tuple(data["stage_bubble"]),
            stage_offload_bytes=tuple(data["stage_offload_bytes"]),
            stage_max_in_flight=tuple(data["stage_max_in_flight"]),
        )


@dataclass(frozen=True)
class SimulationResult:
    """One (design point, network, batch, strategy) simulation."""

    system: str
    network: str
    batch: int
    strategy: ParallelStrategy
    n_devices: int
    iteration_time: float
    breakdown: LatencyBreakdown
    offload_bytes_per_device: int
    sync_bytes: int
    #: Virtualization bytes through *host* DRAM per device (0 when the
    #: backing store is a memory-node or migration is off).
    host_traffic_bytes_per_device: int
    #: Whether the whole training footprint fits in device memory
    #: without virtualization.
    fits_in_device_memory: bool
    #: Per-stage pipeline accounting (``ParallelStrategy.PIPELINE``
    #: only; ``None`` for data/model-parallel runs).
    pipeline: PipelineStats | None = None

    def __post_init__(self) -> None:
        if self.iteration_time <= 0:
            raise ValueError("iteration time must be positive")

    @property
    def throughput(self) -> float:
        """Training throughput in samples/sec across the node."""
        return self.batch / self.iteration_time

    @property
    def round_trip_bytes_per_device(self) -> int:
        return 2 * self.offload_bytes_per_device

    def speedup_over(self, other: "SimulationResult") -> float:
        if (self.network, self.batch, self.strategy) != \
                (other.network, other.batch, other.strategy):
            raise ValueError("speedup requires matching workloads")
        return other.iteration_time / self.iteration_time

    def performance_vs(self, oracle: "SimulationResult") -> float:
        """Throughput normalized to the oracle (Figure 13's y-axis)."""
        if (self.network, self.batch, self.strategy) != \
                (oracle.network, oracle.batch, oracle.strategy):
            raise ValueError("normalization requires matching workloads")
        return oracle.iteration_time / self.iteration_time

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of this result."""
        return {
            "system": self.system,
            "network": self.network,
            "batch": self.batch,
            "strategy": self.strategy.value,
            "n_devices": self.n_devices,
            "iteration_time": self.iteration_time,
            "breakdown": self.breakdown.to_dict(),
            "offload_bytes_per_device": self.offload_bytes_per_device,
            "sync_bytes": self.sync_bytes,
            "host_traffic_bytes_per_device":
                self.host_traffic_bytes_per_device,
            "fits_in_device_memory": self.fits_in_device_memory,
            "pipeline": (self.pipeline.to_dict()
                         if self.pipeline is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (exact)."""
        pipeline = data.get("pipeline")
        return cls(
            system=data["system"],
            network=data["network"],
            batch=data["batch"],
            strategy=ParallelStrategy(data["strategy"]),
            n_devices=data["n_devices"],
            iteration_time=data["iteration_time"],
            breakdown=LatencyBreakdown.from_dict(data["breakdown"]),
            offload_bytes_per_device=data["offload_bytes_per_device"],
            sync_bytes=data["sync_bytes"],
            host_traffic_bytes_per_device=data[
                "host_traffic_bytes_per_device"],
            fits_in_device_memory=data["fits_in_device_memory"],
            pipeline=(PipelineStats.from_dict(pipeline)
                      if pipeline is not None else None),
        )
