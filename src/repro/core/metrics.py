"""Result records of a simulated training iteration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.training.parallel import ParallelStrategy


@dataclass(frozen=True)
class LatencyBreakdown:
    """The three stacked latencies of the paper's Figure 11.

    These are *raw* per-engine totals; they do not sum to the iteration
    time because the framework overlaps computation with
    synchronization and memory virtualization (the figure's caption).
    """

    compute: float
    sync: float
    vmem: float

    def __post_init__(self) -> None:
        if min(self.compute, self.sync, self.vmem) < 0:
            raise ValueError("latency components must be non-negative")

    @property
    def total(self) -> float:
        return self.compute + self.sync + self.vmem

    def normalized_to(self, reference_total: float) -> "LatencyBreakdown":
        if reference_total <= 0:
            raise ValueError("reference total must be positive")
        return LatencyBreakdown(self.compute / reference_total,
                                self.sync / reference_total,
                                self.vmem / reference_total)


@dataclass(frozen=True)
class SimulationResult:
    """One (design point, network, batch, strategy) simulation."""

    system: str
    network: str
    batch: int
    strategy: ParallelStrategy
    n_devices: int
    iteration_time: float
    breakdown: LatencyBreakdown
    offload_bytes_per_device: int
    sync_bytes: int
    #: Virtualization bytes through *host* DRAM per device (0 when the
    #: backing store is a memory-node or migration is off).
    host_traffic_bytes_per_device: int
    #: Whether the whole training footprint fits in device memory
    #: without virtualization.
    fits_in_device_memory: bool

    def __post_init__(self) -> None:
        if self.iteration_time <= 0:
            raise ValueError("iteration time must be positive")

    @property
    def throughput(self) -> float:
        """Training throughput in samples/sec across the node."""
        return self.batch / self.iteration_time

    @property
    def round_trip_bytes_per_device(self) -> int:
        return 2 * self.offload_bytes_per_device

    def speedup_over(self, other: "SimulationResult") -> float:
        if (self.network, self.batch, self.strategy) != \
                (other.network, other.batch, other.strategy):
            raise ValueError("speedup requires matching workloads")
        return other.iteration_time / self.iteration_time

    def performance_vs(self, oracle: "SimulationResult") -> float:
        """Throughput normalized to the oracle (Figure 13's y-axis)."""
        if (self.network, self.batch, self.strategy) != \
                (oracle.network, oracle.batch, oracle.strategy):
            raise ValueError("normalization requires matching workloads")
        return oracle.iteration_time / self.iteration_time
