"""System-architecture composition: devices + interconnect + backing store.

A :class:`SystemConfig` is one concrete design point: the device-node
spec, the interconnect's collective ring channels, the virtualization
channel, the backing store's properties, and the host sockets.  The
simulator consumes nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.device import BASELINE_DEVICE, DeviceSpec
from repro.collectives.multi_ring import (RingChannel,
                                          striped_collective_time,
                                          striped_collective_time_array)
from repro.collectives.ring_algorithm import (DEFAULT_SPEC, CollectiveSpec,
                                              Primitive)
from repro.host.cpu import CpuSocketSpec
from repro.interconnect.builders import SystemTopology, VmemChannel, VmemTarget
from repro.memnode.memory_node import MemoryNodeSpec
from repro.units import US


@dataclass(frozen=True)
class CollectiveModel:
    """Prices collectives over a design's ring channels."""

    channels: tuple[RingChannel, ...]
    spec: CollectiveSpec = DEFAULT_SPEC

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("a system needs at least one ring channel")

    def time(self, primitive: Primitive, nbytes: int) -> float:
        """Latency (seconds) of one collective of ``nbytes`` total."""
        if nbytes == 0:
            return 0.0
        return striped_collective_time(primitive, list(self.channels),
                                       nbytes, self.spec)

    def time_array(self, primitive: Primitive, sizes) -> np.ndarray:
        """Vectorized :meth:`time` over a column of message sizes.

        Elementwise bit-identical to per-size scalar calls (same
        striping, same ring model, float64 throughout).
        """
        return striped_collective_time_array(
            primitive, list(self.channels), sizes, self.spec)

    @classmethod
    def from_topology(cls, topo: SystemTopology,
                      spec: CollectiveSpec = DEFAULT_SPEC) \
            -> "CollectiveModel":
        channels = tuple(RingChannel(size=h, bandwidth=bw)
                         for h, bw in topo.collective_channels())
        return cls(channels=channels, spec=spec)


@dataclass(frozen=True)
class VmemModel:
    """Prices backing-store transfers for one device."""

    channel: VmemChannel
    dma_setup: float = 2.0 * US
    #: Compression ratio applied to migrated traffic (the cDMA
    #: sensitivity study, Section V-B; 1.0 = no compression).
    compression: float = 1.0

    def __post_init__(self) -> None:
        if self.compression < 1.0:
            raise ValueError("compression ratio must be >= 1")
        if self.dma_setup < 0:
            raise ValueError("negative DMA setup time")

    @property
    def enabled(self) -> bool:
        return self.channel.target is not VmemTarget.NONE

    def transfer_time(self, nbytes: int, concurrent: bool = True) -> float:
        """One offload or prefetch DMA of ``nbytes``."""
        if not self.enabled:
            raise RuntimeError("oracle design has no migration channel")
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0.0
        bw = (self.channel.concurrent_bw if concurrent
              else self.channel.peak_bw)
        return self.dma_setup + (nbytes / self.compression) / bw

    def contended_transfer_time(self, nbytes: int,
                                contended_fraction: float) -> float:
        """One DMA priced with overlap-aware link sharing.

        The virtualization channel rides the same links as collectives
        and weight streaming; during the fraction of the iteration
        those are active the DMA runs at ``concurrent_bw``, and at
        ``peak_bw`` otherwise.  ``contended_fraction = 1`` recovers the
        legacy always-contended pricing of :meth:`transfer_time`.
        """
        if not 0.0 <= contended_fraction <= 1.0:
            raise ValueError("contended fraction must lie in [0, 1]")
        if not self.enabled:
            raise RuntimeError("oracle design has no migration channel")
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0.0
        bw = (contended_fraction * self.channel.concurrent_bw
              + (1.0 - contended_fraction) * self.channel.peak_bw)
        return self.dma_setup + (nbytes / self.compression) / bw

    def _transfer_time_array(self, sizes, bw: float) -> np.ndarray:
        if not self.enabled:
            raise RuntimeError("oracle design has no migration channel")
        arr = np.asarray(sizes, dtype=np.float64)
        if arr.size and float(arr.min()) < 0:
            raise ValueError("negative transfer size")
        priced = self.dma_setup + (arr / self.compression) / bw
        return np.where(arr == 0.0, 0.0, priced)

    def transfer_time_array(self, sizes,
                            concurrent: bool = True) -> np.ndarray:
        """Vectorized :meth:`transfer_time` over a column of sizes.

        Elementwise bit-identical to per-size scalar calls (float64
        throughout; zero sizes price to exactly 0.0).
        """
        bw = (self.channel.concurrent_bw if concurrent
              else self.channel.peak_bw)
        return self._transfer_time_array(sizes, bw)

    def contended_transfer_time_array(self, sizes,
                                      contended_fraction: float) \
            -> np.ndarray:
        """Vectorized :meth:`contended_transfer_time` over sizes."""
        if not 0.0 <= contended_fraction <= 1.0:
            raise ValueError("contended fraction must lie in [0, 1]")
        bw = (contended_fraction * self.channel.concurrent_bw
              + (1.0 - contended_fraction) * self.channel.peak_bw)
        return self._transfer_time_array(sizes, bw)


@dataclass(frozen=True)
class SystemConfig:
    """One complete design point, ready to simulate."""

    name: str
    device: DeviceSpec = BASELINE_DEVICE
    n_devices: int = 8
    collectives: CollectiveModel = None  # type: ignore[assignment]
    vmem: VmemModel = None               # type: ignore[assignment]
    memory_node: MemoryNodeSpec | None = None
    host_socket: CpuSocketSpec | None = None
    #: vDNN pinned-buffer depth: how many offloads may be in flight
    #: before forward compute stalls (double buffering).
    offload_window: int = 2
    #: Prefetch lookahead in backward steps.
    prefetch_window: int = 2
    #: Pipeline-parallel depth (``ParallelStrategy.PIPELINE``); 0 means
    #: one stage per device.  Devices left over after staging form
    #: data-parallel replicas that all-reduce weight gradients at drain.
    pipeline_stages: int = 0
    #: Microbatches per iteration under pipeline parallelism.
    pipeline_microbatches: int = 8
    #: Microbatch schedule: ``"1f1b"`` or ``"gpipe"`` (a plain string so
    #: campaign replacements stay JSON-trivial; parsed by
    #: :mod:`repro.pipeline.schedules`).
    pipeline_schedule: str = "1f1b"
    #: Prefetch/eviction policy of the vmem offload path (a plain
    #: string for the same campaign-replacement reason; resolved by
    #: :func:`repro.vmem.prefetch.prefetch_policy`).  ``"on-demand"``
    #: is the seed's hard-wired bounded lookahead, byte-for-byte.
    prefetch_policy: str = "on-demand"
    #: Stash capacity (outstanding prefetched-but-unconsumed tensors)
    #: bounding the speculative policies; exceeding it forces eviction.
    prefetch_stash: int = 8
    #: Named fault scenario (a plain string for the same
    #: campaign-replacement reason; resolved by
    #: :func:`repro.faults.model.fault_model`).  ``"none"`` is inert:
    #: results are byte-identical to a build without the fault engine.
    fault_model: str = "none"

    def __post_init__(self) -> None:
        # Imported here: repro.vmem.prefetch is a leaf of the core
        # layer and importing it at module scope would be circular for
        # readers of repro.core.system's public names.
        from repro.faults.model import FAULT_MODEL_ORDER
        from repro.vmem.prefetch import PREFETCH_POLICY_ORDER
        if self.n_devices <= 0:
            raise ValueError("need at least one device")
        if self.collectives is None or self.vmem is None:
            raise ValueError("collectives and vmem models are required")
        if self.offload_window < 1 or self.prefetch_window < 1:
            raise ValueError("windows must be >= 1")
        if self.pipeline_stages < 0:
            raise ValueError("pipeline_stages must be >= 0")
        if self.pipeline_microbatches < 1:
            raise ValueError("pipeline_microbatches must be >= 1")
        if self.prefetch_policy not in PREFETCH_POLICY_ORDER:
            raise ValueError(
                f"unknown prefetch policy {self.prefetch_policy!r}; "
                f"known: {', '.join(PREFETCH_POLICY_ORDER)}")
        if self.prefetch_stash < 1:
            raise ValueError("prefetch_stash must be >= 1")
        if self.fault_model not in FAULT_MODEL_ORDER:
            raise ValueError(
                f"unknown fault model {self.fault_model!r}; "
                f"known: {', '.join(FAULT_MODEL_ORDER)}")

    @property
    def virtualizes(self) -> bool:
        return self.vmem.enabled

    @property
    def uses_host_memory(self) -> bool:
        return self.vmem.channel.target is VmemTarget.HOST

    def total_memory_capacity(self) -> int:
        """Device HBM plus the attached memory-node pool, system-wide."""
        total = self.n_devices * self.device.memory_capacity
        if self.memory_node is not None:
            total += self.n_devices * self.memory_node.capacity
        return total
