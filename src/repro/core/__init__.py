"""Core contribution: system design points and the training simulator."""

from repro.core.design_points import (DESIGN_ORDER, all_design_points,
                                      dc_dla, dc_dla_oracle, design_point,
                                      hc_dla, mc_dla_bw, mc_dla_local,
                                      mc_dla_star, single_device,
                                      single_device_oracle)
from repro.core.metrics import (LatencyBreakdown, PipelineStats,
                                SimulationResult)
from repro.core.schedule import (IterationPlan, build_iteration_ops,
                                 plan_iteration)
from repro.core.simulator import (DEFAULT_BATCH, host_bandwidth_usage,
                                  iteration_timeline, simulate)
from repro.core.system import CollectiveModel, SystemConfig, VmemModel
from repro.core.timeline import (EngineKind, Op, OpList, ScheduledOp,
                                 TimelineResult, run_timeline)

__all__ = [
    "CollectiveModel", "DEFAULT_BATCH", "DESIGN_ORDER", "EngineKind",
    "IterationPlan", "LatencyBreakdown", "Op", "OpList", "PipelineStats",
    "ScheduledOp", "SimulationResult", "SystemConfig", "TimelineResult",
    "VmemModel", "all_design_points", "build_iteration_ops", "dc_dla",
    "dc_dla_oracle", "design_point", "hc_dla", "host_bandwidth_usage",
    "iteration_timeline", "mc_dla_bw", "mc_dla_local", "mc_dla_star",
    "plan_iteration", "run_timeline", "simulate", "single_device",
    "single_device_oracle",
]
