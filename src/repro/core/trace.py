"""Timeline trace export.

Turns a scheduled iteration into inspectable artifacts:

* :func:`to_records` -- plain dicts (op, engine, channel, start,
  finish, bytes), convenient for numpy/pandas-style analysis;
* :func:`to_chrome_trace` -- the Chrome/Perfetto ``trace_event`` JSON
  format (open in ``chrome://tracing`` or https://ui.perfetto.dev)
  with one row per engine -- per stage, for multi-channel pipeline
  timelines -- and optional bubble slices marking compute idle gaps;
* :func:`engine_utilization` -- busy fraction per engine over the
  iteration, the quickest way to see which resource bounds a design.

Slice categories come from an explicit tag-prefix registry
(:data:`TAG_CATEGORIES`); unknown prefixes fall back to ``"other"``
rather than being silently filed under a wrong category, and
:func:`tag_category` can be asked to ``strict``-fail instead so tests
catch unregistered tags.
"""

from __future__ import annotations

import json

from repro.core.timeline import EngineKind, TimelineResult

#: Stable row ordering for trace viewers (within one channel).
_ENGINE_ROWS = {
    EngineKind.COMPUTE: 0,
    EngineKind.COMM: 1,
    EngineKind.DMA_OUT: 2,
    EngineKind.DMA_IN: 3,
}

#: Tag prefix (before the first ``:``) -> trace category.  The
#: ``send-act``/``send-grad``/``bubble`` entries cover the
#: pipeline-parallel lowering's tags.
TAG_CATEGORIES: dict[str, str] = {
    "fwd": "compute", "bwd": "compute", "wgrad": "compute",
    "recompute": "compute",
    "offload": "migration", "prefetch": "migration",
    "wfetch": "migration", "waste": "migration",
    "sync-fwd": "collective", "sync-bwd": "collective",
    "sync-dw": "collective",
    "send-act": "pipeline", "send-grad": "pipeline",
    "bubble": "bubble",
}


def register_tag_category(prefix: str, category: str) -> None:
    """Register a tag prefix so custom schedules categorize cleanly."""
    if not prefix or ":" in prefix:
        raise ValueError(f"bad tag prefix {prefix!r}")
    if not category:
        raise ValueError("category must be non-empty")
    TAG_CATEGORIES[prefix] = category


def tag_category(tag: str, strict: bool = False) -> str:
    """The category of one op tag; unknown prefixes are ``"other"``.

    With ``strict=True`` an unregistered prefix raises instead, so
    schedule authors notice missing :func:`register_tag_category`
    calls rather than shipping miscategorized traces.
    """
    prefix = tag.split(":", 1)[0]
    category = TAG_CATEGORIES.get(prefix)
    if category is None:
        if strict:
            raise KeyError(
                f"op tag {tag!r} has no registered category; call "
                f"register_tag_category({prefix!r}, ...)")
        return "other"
    return category


def to_records(result: TimelineResult) -> list[dict]:
    """One dict per scheduled op, in start-time order."""
    records = [
        {
            "uid": s.op.uid,
            "tag": s.op.tag,
            "engine": s.op.engine.value,
            "channel": s.op.channel,
            "start": s.start,
            "finish": s.finish,
            "duration": s.op.duration,
            "nbytes": s.op.nbytes,
        }
        for s in result.scheduled
    ]
    records.sort(key=lambda r: (r["start"], r["uid"]))
    return records


def _row_name(engine: EngineKind, channel: int,
              multi_channel: bool) -> str:
    if multi_channel:
        return f"stage{channel}/{engine.value}"
    return engine.value


def _bubble_events(result: TimelineResult, pid: int,
                   tid_of) -> list[dict]:
    """Compute-idle slices per channel, between first and last op."""
    events = []
    for channel in result.channels:
        compute = sorted(result.ops_on(EngineKind.COMPUTE, channel),
                         key=lambda s: s.start)
        for before, after in zip(compute, compute[1:]):
            gap = after.start - before.finish
            if gap > 0:
                events.append({
                    "name": f"bubble:s{channel}",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid_of(EngineKind.COMPUTE, channel),
                    "ts": before.finish * 1e6,
                    "dur": gap * 1e6,
                    "cat": tag_category("bubble"),
                    "args": {"bytes": 0},
                })
    return events


def to_chrome_trace(result: TimelineResult, pid: int = 1,
                    include_bubbles: bool = False,
                    host_spans=None) -> str:
    """Serialize the timeline as Chrome ``trace_event`` JSON.

    ``include_bubbles`` adds explicit idle slices on each compute row
    (between its first and last op) -- the visual bubble of a pipeline
    schedule.

    ``host_spans`` merges host-side wall-clock spans (from
    :mod:`repro.telemetry.spans`) into the same trace: the host rows
    export at ``pid=0`` so they sort above the simulated engine rows,
    and one Perfetto view shows where the *simulator* spent its time
    over the timeline it produced.  Note the two processes tick
    different clocks -- host microseconds vs simulated microseconds.
    """
    channels = result.channels
    multi = len(channels) > 1
    rows = len(_ENGINE_ROWS)

    def tid_of(engine: EngineKind, channel: int) -> int:
        return channels.index(channel) * rows + _ENGINE_ROWS[engine]

    events = [
        {
            "name": _row_name(engine, channel, multi),
            "ph": "M",  # metadata: thread (row) names
            "pid": pid,
            "tid": tid_of(engine, channel),
            "cat": "__metadata",
            "args": {"name": _row_name(engine, channel, multi)},
        }
        for channel in channels
        for engine in _ENGINE_ROWS
    ]
    for s in result.scheduled:
        if s.op.duration <= 0:
            continue
        events.append({
            "name": s.op.tag,
            "ph": "X",  # complete event
            "pid": pid,
            "tid": tid_of(s.op.engine, s.op.channel),
            "ts": s.start * 1e6,       # microseconds
            "dur": s.op.duration * 1e6,
            "cat": tag_category(s.op.tag),
            "args": {"bytes": s.op.nbytes},
        })
    if include_bubbles:
        events.extend(_bubble_events(result, pid, tid_of))
    if host_spans is not None:
        from repro.telemetry.spans import chrome_span_events
        merged = chrome_span_events(host_spans)
        merged.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "simulated timeline"}})
        events = merged + events
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"})


#: Job lifecycle slice names for cluster traces, in row order.
_CLUSTER_PHASES = ("queued", "running", "preempted")


def cluster_chrome_trace(events, pid: int = 1) -> str:
    """Chrome ``trace_event`` JSON for one cluster run.

    ``events`` is the ledger's per-job lifecycle stream --
    ``(kind, jid, time)`` tuples with kind ``arrive`` / ``start`` /
    ``preempt`` / ``finish`` (see
    :class:`repro.cluster.simulator._Ledger`).  Each job becomes one
    row (``tid = jid``) of lifecycle slices: ``queued`` from arrival
    (or preemption) until dispatch, ``running`` from dispatch until
    preemption or completion, ``preempted`` marking the
    checkpoint-and-requeue interval.  Fleet-wide ``fault`` events
    (``jid = -1``, e.g. a pool-node loss) render as global instants.
    Times are simulated seconds, exported as microseconds.
    """
    per_job: dict[int, list[tuple[str, float]]] = {}
    fault_instants: list[float] = []
    for kind, jid, when in events:
        if kind == "fault":
            fault_instants.append(when)
            continue
        per_job.setdefault(jid, []).append((kind, when))

    trace_events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "cluster jobs"}}]
    for when in fault_instants:
        trace_events.append({
            "name": "fault", "cat": "fault", "ph": "i", "s": "p",
            "pid": pid, "tid": 0, "ts": when * 1e6, "args": {}})
    for jid in sorted(per_job):
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": jid,
            "cat": "__metadata", "args": {"name": f"job{jid}"}})

    def slice_event(name: str, jid: int, start: float,
                    end: float) -> dict:
        return {
            "name": name, "cat": name, "ph": "X", "pid": pid,
            "tid": jid, "ts": start * 1e6,
            "dur": max(0.0, end - start) * 1e6,
            "args": {"jid": jid},
        }

    for jid in sorted(per_job):
        waiting_since: float | None = None
        waiting_as = "queued"
        running_since: float | None = None
        for kind, when in per_job[jid]:
            if kind == "arrive":
                waiting_since = when
                waiting_as = "queued"
            elif kind == "start":
                if waiting_since is not None:
                    trace_events.append(slice_event(
                        waiting_as, jid, waiting_since, when))
                    waiting_since = None
                running_since = when
            elif kind == "preempt":
                if running_since is not None:
                    trace_events.append(slice_event(
                        "running", jid, running_since, when))
                    running_since = None
                waiting_since = when
                waiting_as = "preempted"
            elif kind == "finish":
                if running_since is not None:
                    trace_events.append(slice_event(
                        "running", jid, running_since, when))
                    running_since = None
            else:
                raise ValueError(f"unknown lifecycle event {kind!r}")
    return json.dumps({"traceEvents": trace_events,
                       "displayTimeUnit": "ms"})


def engine_utilization(result: TimelineResult,
                       per_channel: bool = False) -> dict[str, float]:
    """Busy fraction of each engine over the iteration makespan.

    Multi-channel (pipeline) timelines report the *fleet average*:
    total busy time across stages over ``n_stages * makespan``.  With
    ``per_channel=True`` the dict instead carries one
    ``"engine[channel]"`` entry per (engine, channel) pair, each the
    channel's own busy fraction of the makespan -- what the telemetry
    summary table reports for pipeline stages.
    """
    channels = result.channels
    if per_channel:
        if result.makespan <= 0:
            return {f"{engine.value}[{channel}]": 0.0
                    for channel in channels for engine in EngineKind}
        return {
            f"{engine.value}[{channel}]":
                result.busy_time(engine, channel) / result.makespan
            for channel in channels for engine in EngineKind}
    if result.makespan <= 0:
        return {engine.value: 0.0 for engine in EngineKind}
    denominator = result.makespan * len(channels)
    return {engine.value: result.busy_time(engine) / denominator
            for engine in EngineKind}
