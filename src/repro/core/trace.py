"""Timeline trace export.

Turns a scheduled iteration into inspectable artifacts:

* :func:`to_records` -- plain dicts (op, engine, start, finish, bytes),
  convenient for numpy/pandas-style analysis;
* :func:`to_chrome_trace` -- the Chrome/Perfetto ``trace_event`` JSON
  format (open in ``chrome://tracing`` or https://ui.perfetto.dev) with
  one row per engine;
* :func:`engine_utilization` -- busy fraction per engine over the
  iteration, the quickest way to see which resource bounds a design.
"""

from __future__ import annotations

import json

from repro.core.timeline import EngineKind, TimelineResult

#: Stable row ordering for trace viewers.
_ENGINE_ROWS = {
    EngineKind.COMPUTE: 0,
    EngineKind.COMM: 1,
    EngineKind.DMA_OUT: 2,
    EngineKind.DMA_IN: 3,
}

_CATEGORY_OF_PREFIX = {
    "fwd": "compute", "bwd": "compute", "recompute": "compute",
    "offload": "migration", "prefetch": "migration",
    "sync-fwd": "collective", "sync-bwd": "collective",
}


def to_records(result: TimelineResult) -> list[dict]:
    """One dict per scheduled op, in start-time order."""
    records = [
        {
            "uid": s.op.uid,
            "tag": s.op.tag,
            "engine": s.op.engine.value,
            "start": s.start,
            "finish": s.finish,
            "duration": s.op.duration,
            "nbytes": s.op.nbytes,
        }
        for s in result.scheduled
    ]
    records.sort(key=lambda r: (r["start"], r["uid"]))
    return records


def _category(tag: str) -> str:
    prefix = tag.split(":", 1)[0]
    return _CATEGORY_OF_PREFIX.get(prefix, "other")


def to_chrome_trace(result: TimelineResult, pid: int = 1) -> str:
    """Serialize the timeline as Chrome ``trace_event`` JSON."""
    events = [
        {
            "name": engine.value,
            "ph": "M",  # metadata: thread (row) names
            "pid": pid,
            "tid": row,
            "cat": "__metadata",
            "args": {"name": engine.value},
        }
        for engine, row in _ENGINE_ROWS.items()
    ]
    for s in result.scheduled:
        if s.op.duration <= 0:
            continue
        events.append({
            "name": s.op.tag,
            "ph": "X",  # complete event
            "pid": pid,
            "tid": _ENGINE_ROWS[s.op.engine],
            "ts": s.start * 1e6,       # microseconds
            "dur": s.op.duration * 1e6,
            "cat": _category(s.op.tag),
            "args": {"bytes": s.op.nbytes},
        })
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"})


def engine_utilization(result: TimelineResult) -> dict[str, float]:
    """Busy fraction of each engine over the iteration makespan."""
    if result.makespan <= 0:
        return {engine.value: 0.0 for engine in EngineKind}
    return {engine.value: result.busy_time(engine) / result.makespan
            for engine in EngineKind}
