"""The evaluated system design points (paper Section V).

Six designs, one factory each:

========== ===============================================================
DC-DLA     device-centric baseline (DGX-1V-style), PCIe gen3 virtualization
HC-DLA     host-centric (Summit-style), 3 links/device to a 300 GB/s socket
MC-DLA(S)  memory-centric, folded/star interconnect of Figure 7(b)
MC-DLA(L)  memory-centric ring of Figure 7(c), LOCAL page placement
MC-DLA(B)  memory-centric ring of Figure 7(c), BW_AWARE page placement
DC-DLA(O)  oracle: infinite device memory, no migration
========== ===============================================================

Sensitivity variants of Section V-B (PCIe gen4, TPUv2-class devices,
DGX-2-class nodes, cDMA compression) are parameterized on the same
factories.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.accelerator.device import BASELINE_DEVICE, DeviceSpec
from repro.core.optable import scalar_core_enabled
from repro.core.system import CollectiveModel, SystemConfig, VmemModel
from repro.collectives.multi_ring import RingChannel
from repro.host.cpu import HYPOTHETICAL_HC, XEON, CpuSocketSpec
from repro.interconnect.builders import (NO_VMEM, VmemChannel, VmemTarget,
                                         build_dc_dla, build_hc_dla,
                                         build_mc_dla_ring,
                                         build_mc_dla_star)
from repro.interconnect.link import NVLINK, PCIE_GEN3, LinkSpec
from repro.memnode.memory_node import MemoryNodeSpec

#: Presentation order of Figure 11/13's x-axis.
DESIGN_ORDER = ("DC-DLA", "HC-DLA", "MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)",
                "DC-DLA(O)")


def dc_dla(n_devices: int = 8, device: DeviceSpec = BASELINE_DEVICE,
           link: LinkSpec = NVLINK, pcie: LinkSpec = PCIE_GEN3,
           compression: float = 1.0, shared_uplinks: bool = False,
           socket: CpuSocketSpec = XEON) -> SystemConfig:
    """Device-centric baseline; ``pcie``/``compression`` parameterize the
    gen4 and cDMA sensitivity studies, ``shared_uplinks`` the DGX-1-style
    PCIe-tree contention ablation."""
    if n_devices == 1:
        return single_device("DC-DLA-1dev", device, pcie,
                             compression=compression, socket=socket)
    topo = build_dc_dla(n_devices, link=link, pcie=pcie,
                        shared_uplinks=shared_uplinks)
    return SystemConfig(
        name="DC-DLA", device=device, n_devices=n_devices,
        collectives=CollectiveModel.from_topology(topo),
        vmem=VmemModel(topo.vmem, compression=compression),
        host_socket=socket)


def hc_dla(n_devices: int = 8,
           device: DeviceSpec = BASELINE_DEVICE,
           link: LinkSpec = NVLINK) -> SystemConfig:
    """Host-centric design with the hypothetical 300 GB/s socket."""
    topo = build_hc_dla(n_devices, link=link)
    return SystemConfig(
        name="HC-DLA", device=device, n_devices=n_devices,
        collectives=CollectiveModel.from_topology(topo),
        vmem=VmemModel(topo.vmem),
        host_socket=HYPOTHETICAL_HC)


def _mc_memory_node(link: LinkSpec) -> MemoryNodeSpec:
    return MemoryNodeSpec(link=link)


def mc_dla_star(n_devices: int = 8, device: DeviceSpec = BASELINE_DEVICE,
                link: LinkSpec = NVLINK) -> SystemConfig:
    """MC-DLA(S): the folded interconnect of Figure 7(b)."""
    topo = build_mc_dla_star(n_devices, link=link)
    node = _mc_memory_node(link)
    return SystemConfig(
        name="MC-DLA(S)", device=device, n_devices=n_devices,
        collectives=CollectiveModel.from_topology(topo),
        vmem=VmemModel(topo.vmem),
        memory_node=node)


def _mc_dla_ring(name: str, n_devices: int, device: DeviceSpec,
                 link: LinkSpec, local_policy: bool) -> SystemConfig:
    topo = build_mc_dla_ring(n_devices, link=link)
    node = _mc_memory_node(link)
    channel = topo.vmem
    if local_policy:
        # LOCAL placement reaches one neighbour only: N/2 links.
        channel = VmemChannel(VmemTarget.MEMORY_NODE,
                              peak_bw=channel.peak_bw / 2,
                              concurrent_bw=channel.concurrent_bw / 2)
    # The DIMMs cap each group at half the node's memory bandwidth.
    group_cap = node.group_memory_bw * 2  # two groups per device
    channel = VmemChannel(channel.target,
                          peak_bw=min(channel.peak_bw, group_cap),
                          concurrent_bw=min(channel.concurrent_bw,
                                            group_cap))
    return SystemConfig(
        name=name, device=device, n_devices=n_devices,
        collectives=CollectiveModel.from_topology(topo),
        vmem=VmemModel(channel),
        memory_node=node)


def mc_dla_local(n_devices: int = 8, device: DeviceSpec = BASELINE_DEVICE,
                 link: LinkSpec = NVLINK) -> SystemConfig:
    """MC-DLA(L): ring interconnect, LOCAL page-allocation policy."""
    return _mc_dla_ring("MC-DLA(L)", n_devices, device, link,
                        local_policy=True)


def mc_dla_bw(n_devices: int = 8, device: DeviceSpec = BASELINE_DEVICE,
              link: LinkSpec = NVLINK) -> SystemConfig:
    """MC-DLA(B): ring interconnect, BW_AWARE page-allocation policy."""
    return _mc_dla_ring("MC-DLA(B)", n_devices, device, link,
                        local_policy=False)


def dc_dla_oracle(n_devices: int = 8,
                  device: DeviceSpec = BASELINE_DEVICE,
                  link: LinkSpec = NVLINK) -> SystemConfig:
    """DC-DLA(O): unbuildable oracle with infinite device memory."""
    if n_devices == 1:
        return SystemConfig(
            name="DC-DLA(O)", device=device, n_devices=1,
            collectives=_trivial_collectives(),
            vmem=VmemModel(NO_VMEM))
    topo = build_dc_dla(n_devices, link=link)
    return SystemConfig(
        name="DC-DLA(O)", device=device, n_devices=n_devices,
        collectives=CollectiveModel.from_topology(topo),
        vmem=VmemModel(NO_VMEM))


def _trivial_collectives() -> CollectiveModel:
    """Placeholder channels for single-device configs (never exercised)."""
    return CollectiveModel(channels=(RingChannel(2, NVLINK.bidir_bw),))


def single_device(name: str, device: DeviceSpec,
                  pcie: LinkSpec = PCIE_GEN3, compression: float = 1.0,
                  socket: CpuSocketSpec = XEON) -> SystemConfig:
    """A one-device system virtualizing over PCIe (Figure 2's setup)."""
    channel = VmemChannel(VmemTarget.HOST, peak_bw=pcie.uni_bw,
                          concurrent_bw=pcie.uni_bw)
    return SystemConfig(
        name=name, device=device, n_devices=1,
        collectives=_trivial_collectives(),
        vmem=VmemModel(channel, compression=compression),
        host_socket=socket)


def single_device_oracle(name: str, device: DeviceSpec) -> SystemConfig:
    """A one-device system with no migration (Figure 2's ideal bar)."""
    return SystemConfig(
        name=name, device=device, n_devices=1,
        collectives=_trivial_collectives(),
        vmem=VmemModel(NO_VMEM))


_FACTORIES: dict[str, Callable[..., SystemConfig]] = {
    "DC-DLA": dc_dla,
    "HC-DLA": hc_dla,
    "MC-DLA(S)": mc_dla_star,
    "MC-DLA(L)": mc_dla_local,
    "MC-DLA(B)": mc_dla_bw,
    "DC-DLA(O)": dc_dla_oracle,
}


#: name -> built default config.  SystemConfig is frozen (as is every
#: model it aggregates), so one instance is safely shared by every
#: campaign cell; rebuilding the interconnect per cell shows up in
#: grid profiles.  Bypassed under REPRO_SCALAR_CORE=1 so the escape
#: hatch reproduces the seed's work, and cleared by
#: :func:`repro.core.pricing.clear_caches`.
_DEFAULT_BUILDS: dict[str, SystemConfig] = {}


def clear_design_point_cache() -> None:
    """Drop memoized default builds (cold-benchmark hygiene)."""
    _DEFAULT_BUILDS.clear()


def design_point(name: str, **kwargs) -> SystemConfig:
    """Build a design point by its Figure 11/13 name."""
    if not kwargs and not scalar_core_enabled():
        built = _DEFAULT_BUILDS.get(name)
        if built is not None:
            return built
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown design point {name!r}; "
                       f"known: {', '.join(DESIGN_ORDER)}") from None
    config = factory(**kwargs)
    if not kwargs and not scalar_core_enabled():
        _DEFAULT_BUILDS[name] = config
    return config


def all_design_points(**kwargs) -> list[SystemConfig]:
    """All six designs in presentation order."""
    return [design_point(name, **kwargs) for name in DESIGN_ORDER]
