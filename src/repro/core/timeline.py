"""Engine-level timeline scheduler.

Each device-node runs four engines concurrently (the paper's simulator
overlaps computation with synchronization and memory virtualization,
Figure 11's caption):

* ``COMPUTE`` -- the PE array (forward/backward/recompute kernels);
* ``DMA_OUT`` -- offload copies to the backing store;
* ``DMA_IN``  -- prefetch copies back (links are full duplex);
* ``COMM``    -- collective operations on the ring networks.

Ops declare dependencies; every engine executes its ops in issue order.
The scheduler is a deterministic list scheduler: an op starts when its
engine is free and all dependencies have finished.  Because the
evaluated workloads are SPMD-symmetric across devices, one device's
timeline (with collectives priced at full-system cost) is the node's.

Pipeline-parallel training breaks that symmetry: each stage is a
different device doing different work.  Ops therefore carry a
``channel`` index -- channel *c* owns a private instance of each of the
four engines (stage *c*'s device) -- and one :class:`OpList` can hold a
whole pipeline's asymmetric timeline.  SPMD schedules simply leave
every op on channel 0 and behave exactly as before.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EngineKind(enum.Enum):
    """The four concurrent engines of one device-node."""

    COMPUTE = "compute"
    DMA_OUT = "dma-out"
    DMA_IN = "dma-in"
    COMM = "comm"


@dataclass(frozen=True)
class Op:
    """One schedulable operation.

    ``duration`` is seconds, ``nbytes`` the payload bytes the op moves
    (0 for pure compute), and ``deps`` uids of earlier ops that must
    finish before this one starts.
    """

    uid: int
    engine: EngineKind
    duration: float
    deps: tuple[int, ...]
    tag: str
    nbytes: int = 0
    #: Engine instance: ops on different channels run concurrently even
    #: on the same :class:`EngineKind` (pipeline stages; 0 = SPMD).
    channel: int = 0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"op {self.tag}: negative duration")
        if self.nbytes < 0:
            raise ValueError(f"op {self.tag}: negative byte count")
        if self.channel < 0:
            raise ValueError(f"op {self.tag}: negative channel")
        if any(d >= self.uid for d in self.deps):
            raise ValueError(
                f"op {self.tag}: dependency on a later op (cycle)")


@dataclass
class OpList:
    """Append-only op container guaranteeing valid uid ordering."""

    ops: list[Op] = field(default_factory=list)

    def add(self, engine: EngineKind, duration: float, deps: list[int],
            tag: str, nbytes: int = 0, channel: int = 0) -> int:
        """Append an op and return its uid (dense, starting at 0).

        ``duration`` is seconds; ``deps`` must reference earlier uids.
        The columnar :class:`~repro.core.optable.OpTable` exposes the
        same signature, so emitters work against either container.
        """
        uid = len(self.ops)
        self.ops.append(Op(uid=uid, engine=engine, duration=duration,
                           deps=tuple(deps), tag=tag, nbytes=nbytes,
                           channel=channel))
        return uid

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class ScheduledOp:
    op: Op
    start: float
    finish: float


@dataclass(frozen=True)
class TimelineResult:
    """Outcome of scheduling one iteration's ops.

    ``busy`` aggregates across channels (the historical SPMD view);
    ``busy_per_channel`` keeps the per-stage split pipeline metrics
    need.
    """

    scheduled: tuple[ScheduledOp, ...]
    makespan: float
    busy: dict[EngineKind, float]
    busy_per_channel: dict[tuple[EngineKind, int], float] \
        = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.busy_per_channel is None:
            object.__setattr__(
                self, "busy_per_channel",
                {(engine, 0): time for engine, time in self.busy.items()})

    def finish_of(self, uid: int) -> float:
        """Completion time (seconds) of op ``uid``."""
        return self.scheduled[uid].finish

    def ops_on(self, engine: EngineKind,
               channel: int | None = None) -> list[ScheduledOp]:
        """Scheduled ops of one engine, in issue (uid) order.

        Event order IS uid order even across equal timestamps -- the
        property tests hold both cores to this.
        """
        return [s for s in self.scheduled if s.op.engine is engine
                and (channel is None or s.op.channel == channel)]

    def busy_time(self, engine: EngineKind,
                  channel: int | None = None) -> float:
        """Total seconds ``engine`` spent executing ops (not idle),
        across all channels unless one is given."""
        if channel is None:
            return self.busy.get(engine, 0.0)
        return self.busy_per_channel.get((engine, channel), 0.0)

    @property
    def channels(self) -> tuple[int, ...]:
        """Channel indices present, ascending (SPMD timelines: (0,))."""
        return tuple(sorted({s.op.channel for s in self.scheduled})) \
            or (0,)


def run_timeline(ops: OpList) -> TimelineResult:
    """List-schedule ``ops``; engines serialize, deps must finish first.

    This is the scalar reference scheduler.  The default (vectorized)
    core schedules the columnar :class:`~repro.core.optable.OpTable`
    through :func:`~repro.core.optable.schedule_table`; the two are
    held byte-identical by ``tests/test_optable_properties.py``.
    """
    engine_free: dict[tuple[EngineKind, int], float] = {}
    busy: dict[EngineKind, float] = {e: 0.0 for e in EngineKind}
    busy_per_channel: dict[tuple[EngineKind, int], float] = {}
    finish: list[float] = []
    scheduled: list[ScheduledOp] = []

    for op in ops.ops:
        slot = (op.engine, op.channel)
        ready = max((finish[d] for d in op.deps), default=0.0)
        start = max(engine_free.get(slot, 0.0), ready)
        end = start + op.duration
        engine_free[slot] = end
        busy[op.engine] += op.duration
        busy_per_channel[slot] = busy_per_channel.get(slot, 0.0) \
            + op.duration
        finish.append(end)
        scheduled.append(ScheduledOp(op=op, start=start, finish=end))

    makespan = max(finish, default=0.0)
    return TimelineResult(scheduled=tuple(scheduled), makespan=makespan,
                          busy=busy, busy_per_channel=busy_per_channel)
