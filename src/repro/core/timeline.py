"""Engine-level timeline scheduler.

Each device-node runs four engines concurrently (the paper's simulator
overlaps computation with synchronization and memory virtualization,
Figure 11's caption):

* ``COMPUTE`` -- the PE array (forward/backward/recompute kernels);
* ``DMA_OUT`` -- offload copies to the backing store;
* ``DMA_IN``  -- prefetch copies back (links are full duplex);
* ``COMM``    -- collective operations on the ring networks.

Ops declare dependencies; every engine executes its ops in issue order.
The scheduler is a deterministic list scheduler: an op starts when its
engine is free and all dependencies have finished.  Because the
evaluated workloads are SPMD-symmetric across devices, one device's
timeline (with collectives priced at full-system cost) is the node's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EngineKind(enum.Enum):
    COMPUTE = "compute"
    DMA_OUT = "dma-out"
    DMA_IN = "dma-in"
    COMM = "comm"


@dataclass(frozen=True)
class Op:
    """One scheduled operation."""

    uid: int
    engine: EngineKind
    duration: float
    deps: tuple[int, ...]
    tag: str
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"op {self.tag}: negative duration")
        if self.nbytes < 0:
            raise ValueError(f"op {self.tag}: negative byte count")
        if any(d >= self.uid for d in self.deps):
            raise ValueError(
                f"op {self.tag}: dependency on a later op (cycle)")


@dataclass
class OpList:
    """Append-only op container guaranteeing valid uid ordering."""

    ops: list[Op] = field(default_factory=list)

    def add(self, engine: EngineKind, duration: float, deps: list[int],
            tag: str, nbytes: int = 0) -> int:
        uid = len(self.ops)
        self.ops.append(Op(uid=uid, engine=engine, duration=duration,
                           deps=tuple(deps), tag=tag, nbytes=nbytes))
        return uid

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class ScheduledOp:
    op: Op
    start: float
    finish: float


@dataclass(frozen=True)
class TimelineResult:
    """Outcome of scheduling one iteration's ops."""

    scheduled: tuple[ScheduledOp, ...]
    makespan: float
    busy: dict[EngineKind, float]

    def finish_of(self, uid: int) -> float:
        return self.scheduled[uid].finish

    def ops_on(self, engine: EngineKind) -> list[ScheduledOp]:
        return [s for s in self.scheduled if s.op.engine is engine]

    def busy_time(self, engine: EngineKind) -> float:
        return self.busy.get(engine, 0.0)


def run_timeline(ops: OpList) -> TimelineResult:
    """List-schedule ``ops``; engines serialize, deps must finish first."""
    engine_free: dict[EngineKind, float] = {e: 0.0 for e in EngineKind}
    busy: dict[EngineKind, float] = {e: 0.0 for e in EngineKind}
    finish: list[float] = []
    scheduled: list[ScheduledOp] = []

    for op in ops.ops:
        ready = max((finish[d] for d in op.deps), default=0.0)
        start = max(engine_free[op.engine], ready)
        end = start + op.duration
        engine_free[op.engine] = end
        busy[op.engine] += op.duration
        finish.append(end)
        scheduled.append(ScheduledOp(op=op, start=start, finish=end))

    makespan = max(finish, default=0.0)
    return TimelineResult(scheduled=tuple(scheduled), makespan=makespan,
                          busy=busy)
