"""Build one training iteration's op list for the timeline scheduler.

This is where the paper's three latency components meet: forward and
backward computation on the PE array, offload/prefetch DMAs on the
virtualization channel (with vDNN's pinned-buffer back-pressure and
bounded prefetch lookahead), and collective synchronization on the ring
networks.  The resulting op sink (a columnar
:class:`~repro.core.optable.OpTable` by default, or a scalar
:class:`~repro.core.timeline.OpList` under ``REPRO_SCALAR_CORE=1``)
encodes every overlap opportunity and every stall the design point
implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.core import pricing
from repro.core.optable import OpSink, new_op_sink
from repro.core.system import SystemConfig
from repro.core.timeline import EngineKind
from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind
from repro.training.backprop import TrainingStep
from repro.training.parallel import ParallelStrategy, PartitionedLayer
from repro.vmem.policy import MigrationAction
from repro.vmem.prefetch import (ON_DEMAND, FetchSite, PrefetchContext,
                                 PrefetchSchedule, prefetch_policy)


@dataclass(frozen=True)
class IterationPlan:
    """Everything needed to schedule (and introspect) one iteration."""

    net: Network
    batch: int
    strategy: ParallelStrategy
    parts: dict[str, PartitionedLayer]
    step: TrainingStep
    #: producer layer -> per-device shard bytes migrated (0 if resident).
    migrated_shards: dict[str, int]

    @property
    def offload_bytes_per_device(self) -> int:
        return sum(self.migrated_shards.values())

    @property
    def round_trip_bytes_per_device(self) -> int:
        return 2 * self.offload_bytes_per_device

    @property
    def sync_bytes_per_iteration(self) -> int:
        total = 0
        for part in self.parts.values():
            for sync in (part.fwd_sync, part.bwd_sync):
                if sync is not None:
                    total += sync.nbytes
        return total


def plan_iteration(net: Network, config: SystemConfig, batch: int,
                   strategy: ParallelStrategy) -> IterationPlan:
    """Partition the network and derive the migration plan."""
    parts = {p.name: p for p in pricing.cached_partition(
        net, batch, strategy, config.n_devices)}
    tensor_plans, step = pricing.cached_migration(
        net, batch, config.virtualizes)
    migrated = {
        plan.producer: parts[plan.producer].out_shard_bytes
        for plan in tensor_plans
        if plan.action is MigrationAction.OFFLOAD
    }
    return IterationPlan(net=net, batch=batch, strategy=strategy,
                         parts=parts, step=step, migrated_shards=migrated)


def contention_fraction(compute_seconds: float,
                        comm_seconds: float) -> float:
    """Share of the iteration during which migration DMAs contend.

    Collectives occupy the shared links for roughly ``comm_seconds``
    of a ``compute_seconds``-long iteration, so a DMA issued at an
    arbitrary point is contended with that probability.  Both terms
    come from the plan (not a schedule), so every policy of one cell
    prices its transfers identically -- the clairvoyant oracle's
    dominance is a scheduling property, never a pricing artifact.
    """
    if compute_seconds <= 0.0:
        return 1.0
    return min(1.0, comm_seconds / compute_seconds)


def vmem_pricer(config: SystemConfig, compute_seconds: float,
                comm_seconds: float) -> Callable[[int], float]:
    """The DMA pricing the active prefetch policy implies.

    The legacy ``on-demand`` baseline keeps the paper's conservative
    always-contended pricing (its schedules must stay byte-identical
    to the seed's); the policy engine prices with the plan's measured
    contention fraction instead.
    """
    if config.prefetch_policy == ON_DEMAND:
        return pricing.memoized_pricer(
            config.vmem.transfer_time,
            array_fn=config.vmem.transfer_time_array)
    fraction = contention_fraction(compute_seconds, comm_seconds)
    return pricing.memoized_pricer(
        lambda nbytes: config.vmem.contended_transfer_time(nbytes,
                                                           fraction),
        array_fn=lambda sizes: config.vmem.contended_transfer_time_array(
            sizes, fraction))


def _price_many(pricer: Callable[[int], float],
                sizes: list[int]) -> list[float]:
    """Price a list of transfer sizes through ``pricer``.

    Uses the pricer's vectorized ``many`` batch API when it has one
    (the memoized pricers of :mod:`repro.core.pricing` do); otherwise
    falls back to per-size calls.  Values are identical either way.
    """
    many = getattr(pricer, "many", None)
    if many is not None:
        return many(sizes)
    return [pricer(nbytes) for nbytes in sizes]


def _iteration_seconds(plan: IterationPlan,
                       config: SystemConfig) -> tuple[float, float]:
    """(compute, collective) seconds of one training iteration plan."""
    times = pricing.layer_times(plan.net, config.device, plan.batch,
                                plan.strategy, config.n_devices)
    collective = pricing.collective_pricer(config.collectives)
    compute = 0.0
    comm = 0.0
    for name in plan.step.fwd_order:
        if plan.net.layer(name).kind is LayerKind.INPUT:
            continue
        part = plan.parts[name]
        fwd_s, bwd_s = times[name]
        compute += fwd_s
        compute += bwd_s
        for sync in (part.fwd_sync, part.bwd_sync):
            if sync is not None:
                comm += collective(sync.primitive, sync.nbytes)
    return compute, comm


def iteration_pricer(plan: IterationPlan,
                     config: SystemConfig) -> Callable[[int], float]:
    """The migration-DMA pricer of one training iteration."""
    compute, comm = _iteration_seconds(plan, config)
    return vmem_pricer(config, compute, comm)


def plan_training_prefetch(plan: IterationPlan, config: SystemConfig,
                           pricer: Callable[[int], float] | None
                           = None) -> PrefetchSchedule:
    """Run the configured prefetch policy over a training iteration."""
    if pricer is None:
        pricer = iteration_pricer(plan, config)
    times = pricing.layer_times(plan.net, config.device, plan.batch,
                                plan.strategy, config.n_devices)
    step_seconds = []
    sites = []
    shards = []
    for step_index, name in enumerate(plan.step.bwd_order):
        step_seconds.append(times[name][1])
        for producer in plan.step.prefetch_sites.get(name, ()):
            shard = plan.migrated_shards[producer]
            sites.append(FetchSite(producer=producer,
                                   use_step=step_index, nbytes=shard))
            shards.append(shard)
    fetch_seconds = _price_many(pricer, shards)
    ctx = PrefetchContext(
        n_steps=len(plan.step.bwd_order), sites=tuple(sites),
        step_seconds=tuple(step_seconds),
        fetch_seconds=tuple(fetch_seconds),
        window=config.prefetch_window, stash=config.prefetch_stash)
    return prefetch_policy(config.prefetch_policy).plan(ctx)


@dataclass(frozen=True)
class InferencePlan:
    """One forward-only (serving) batch on a design point.

    Inference has no backward pass and therefore no feature-map
    offload; what stresses the memory system instead is *weight
    streaming*: a consolidated serving node hosts many tenant models,
    so a request batch finds its model's weights cold in the backing
    store and must fetch them over the virtualization channel.
    Mirroring the paper's stress-test methodology (every eligible
    tensor migrates regardless of fit, Section IV), every weighted
    layer streams its weights; only designs without a migration channel
    (the oracle) keep weights resident.
    """

    net: Network
    batch: int
    strategy: ParallelStrategy
    parts: dict[str, PartitionedLayer]
    #: layer -> per-device weight bytes fetched from the backing store
    #: (tied ``weight_group`` buffers are fetched once, at the first
    #: member).
    streamed_weights: dict[str, int]

    @property
    def weight_stream_bytes_per_device(self) -> int:
        return sum(self.streamed_weights.values())

    @property
    def sync_bytes_per_iteration(self) -> int:
        total = 0
        for part in self.parts.values():
            if part.fwd_sync is not None:
                total += part.fwd_sync.nbytes
        return total


def plan_inference(net: Network, config: SystemConfig, batch: int,
                   strategy: ParallelStrategy) -> InferencePlan:
    """Partition the network and derive the weight-streaming plan."""
    if strategy is ParallelStrategy.PIPELINE:
        raise ValueError(
            "inference serving replicates the model per device; "
            "pipeline-parallel inference is not modeled")
    parts = {p.name: p for p in pricing.cached_partition(
        net, batch, strategy, config.n_devices)}
    streamed: dict[str, int] = {}
    if config.virtualizes:
        seen_groups: set[str] = set()
        for layer in net.layers:
            if not layer.weight_elems:
                continue
            if layer.weight_group:
                if layer.weight_group in seen_groups:
                    continue
                seen_groups.add(layer.weight_group)
            nbytes = layer.weight_bytes
            if strategy is ParallelStrategy.MODEL:
                # Model-parallel shards each weight matrix N-wise.
                nbytes = max(1, nbytes // config.n_devices)
            streamed[layer.name] = nbytes
    return InferencePlan(net=net, batch=batch, strategy=strategy,
                         parts=parts, streamed_weights=streamed)


def _inference_seconds(plan: InferencePlan,
                       config: SystemConfig) -> tuple[float, float]:
    """(compute, collective) seconds of one forward-only batch plan."""
    times = pricing.layer_times(plan.net, config.device, plan.batch,
                                plan.strategy, config.n_devices)
    collective = pricing.collective_pricer(config.collectives)
    compute = 0.0
    comm = 0.0
    for name in plan.net.layer_names:
        if plan.net.layer(name).kind is LayerKind.INPUT:
            continue
        part = plan.parts[name]
        compute += times[name][0]
        if part.fwd_sync is not None:
            comm += collective(part.fwd_sync.primitive,
                               part.fwd_sync.nbytes)
    return compute, comm


def inference_pricer(plan: InferencePlan,
                     config: SystemConfig) -> Callable[[int], float]:
    """The weight-streaming DMA pricer of one inference batch."""
    compute, comm = _inference_seconds(plan, config)
    return vmem_pricer(config, compute, comm)


def plan_inference_prefetch(plan: InferencePlan, config: SystemConfig,
                            pricer: Callable[[int], float] | None
                            = None) -> PrefetchSchedule:
    """Run the configured prefetch policy over the weight stream.

    Streamed weights are fetch sites exactly like training stashes:
    the consuming step of layer *k*'s weights is its forward compute,
    indexed by position among the non-input layers.
    """
    if pricer is None:
        pricer = inference_pricer(plan, config)
    times = pricing.layer_times(plan.net, config.device, plan.batch,
                                plan.strategy, config.n_devices)
    step_seconds = []
    sites = []
    weights = []
    step_index = 0
    for name in plan.net.layer_names:
        layer = plan.net.layer(name)
        if layer.kind is LayerKind.INPUT:
            continue
        step_seconds.append(times[name][0])
        if name in plan.streamed_weights:
            nbytes = plan.streamed_weights[name]
            sites.append(FetchSite(producer=name, use_step=step_index,
                                   nbytes=nbytes))
            weights.append(nbytes)
        step_index += 1
    fetch_seconds = _price_many(pricer, weights)
    ctx = PrefetchContext(
        n_steps=step_index, sites=tuple(sites),
        step_seconds=tuple(step_seconds),
        fetch_seconds=tuple(fetch_seconds),
        window=config.prefetch_window, stash=config.prefetch_stash)
    return prefetch_policy(config.prefetch_policy).plan(ctx)


def build_inference_ops(plan: InferencePlan, config: SystemConfig,
                        prefetch: PrefetchSchedule | None = None,
                        pricer: Callable[[int], float] | None = None) \
        -> OpSink:
    """Emit one forward-only batch's ops in issue order.

    Weight fetches ride the prefetch DMA engine, gated per the active
    prefetch policy (the legacy bounded lookahead under ``on-demand``),
    so a fast backing store hides them behind compute and a slow one
    exposes them -- the serving-time memory wall.
    """
    if pricer is None:
        pricer = inference_pricer(plan, config)
    if prefetch is None:
        prefetch = plan_inference_prefetch(plan, config, pricer)
    waste_before = prefetch.waste_before()
    ops = new_op_sink()
    collective = pricing.collective_pricer(config.collectives)
    times = pricing.layer_times(plan.net, config.device, plan.batch,
                                plan.strategy, config.n_devices)
    net = plan.net
    parts = plan.parts

    ready: dict[str, int | None] = {}
    sync_uid: dict[str, int] = {}
    computes: list[int] = []
    site_index = 0

    def fetch_gate(gate_step: int | None) -> list[int]:
        return [] if gate_step is None else [computes[gate_step]]

    for name in net.layer_names:
        layer = net.layer(name)
        if layer.kind is LayerKind.INPUT:
            ready[name] = None
            continue
        part = parts[name]

        preds = net.predecessors(name)
        deps = [ready[p] for p in preds if ready.get(p) is not None]
        # Chunk-pipelined layer-boundary collectives, exactly as in the
        # training forward pass: wait on grandparents' all-gathers.
        for p in preds:
            for gp in net.predecessors(p):
                if gp in sync_uid:
                    deps.append(sync_uid[gp])

        if name in plan.streamed_weights:
            issue = prefetch.issues[site_index]
            for waste in waste_before.get(site_index, ()):
                ops.add(EngineKind.DMA_IN, pricer(waste.nbytes),
                        fetch_gate(waste.gate_step),
                        tag=f"waste:{waste.label}", nbytes=waste.nbytes)
            site_index += 1
            nbytes = plan.streamed_weights[name]
            fetch = ops.add(EngineKind.DMA_IN, pricer(nbytes),
                            fetch_gate(issue.gate_step),
                            tag=f"wfetch:{name}", nbytes=nbytes)
            deps.append(fetch)

        compute = ops.add(EngineKind.COMPUTE, times[name][0],
                          deps, tag=f"fwd:{name}")
        computes.append(compute)
        if part.fwd_sync is not None:
            sync_uid[name] = ops.add(
                EngineKind.COMM,
                collective(part.fwd_sync.primitive,
                           part.fwd_sync.nbytes),
                [compute], tag=f"sync-fwd:{name}",
                nbytes=part.fwd_sync.nbytes)
        ready[name] = compute

    return ops


def build_iteration_ops(plan: IterationPlan, config: SystemConfig,
                        prefetch: PrefetchSchedule | None = None,
                        pricer: Callable[[int], float] | None = None,
                        split_wgrad: bool = False) -> OpSink:
    """Emit the iteration's ops in dependency-consistent issue order.

    ``prefetch`` carries the active policy's issue plan (computed from
    the config's ``prefetch_policy`` when omitted); the ``on-demand``
    baseline reproduces the seed's gate structure and pricing
    byte-for-byte.  Callers that already derived the DMA ``pricer``
    (one O(layers) plan walk) can pass it to avoid recomputing.

    With ``split_wgrad`` each weighted layer's backward is emitted as
    two ops -- ``bwd:{name}`` (activation grad, what successors and dX
    reductions wait on) and ``wgrad:{name}`` (weight grad, what dW
    all-reduces wait on) -- mirroring the zero-bubble pipeline B/W
    split at single-device granularity.  Off (the default) the op
    stream is byte-identical to the seed's.
    """
    if pricer is None:
        pricer = iteration_pricer(plan, config)
    if prefetch is None:
        prefetch = plan_training_prefetch(plan, config, pricer)
    waste_before = prefetch.waste_before()
    ops = new_op_sink()
    collective = pricing.collective_pricer(config.collectives)
    times = pricing.layer_times(plan.net, config.device, plan.batch,
                                plan.strategy, config.n_devices)
    net = plan.net
    parts = plan.parts
    site_index = 0

    fwd_ready: dict[str, int | None] = {}
    fwd_sync_uid: dict[str, int] = {}
    offload_uid: dict[str, int] = {}     # producer -> its offload op
    offload_order: list[int] = []

    # ---- Forward propagation -------------------------------------------
    for name in plan.step.fwd_order:
        layer = net.layer(name)
        part = parts[name]
        if layer.kind is LayerKind.INPUT:
            fwd_ready[name] = None
            continue

        preds = net.predecessors(name)
        deps = [fwd_ready[p] for p in preds
                if fwd_ready.get(p) is not None]
        # Layer-boundary collectives are chunk-pipelined with the
        # consumer's compute (NCCL-style): a layer may run one step
        # ahead of communication, so it waits on its *grandparents'*
        # all-gathers, not its parents'.
        for p in preds:
            for gp in net.predecessors(p):
                if gp in fwd_sync_uid:
                    deps.append(fwd_sync_uid[gp])
        # vDNN pinned-buffer back-pressure: at most `offload_window`
        # offloads may be outstanding before compute stalls.
        if len(offload_order) >= config.offload_window:
            deps.append(offload_order[-config.offload_window])
        compute = ops.add(EngineKind.COMPUTE, times[name][0],
                          deps, tag=f"fwd:{name}")
        ready = compute
        if part.fwd_sync is not None:
            sync = ops.add(EngineKind.COMM,
                           collective(part.fwd_sync.primitive,
                                      part.fwd_sync.nbytes),
                           [compute], tag=f"sync-fwd:{name}",
                           nbytes=part.fwd_sync.nbytes)
            fwd_sync_uid[name] = sync
            ready = sync
        fwd_ready[name] = compute if part.fwd_sync is not None else ready

        # Offload every tensor whose last forward reuse is this layer;
        # a gathered tensor only becomes complete after its collective.
        for producer in plan.step.prefetch_sites.get(name, ()):
            shard = plan.migrated_shards[producer]
            uid = ops.add(EngineKind.DMA_OUT, pricer(shard),
                          [ready], tag=f"offload:{producer}",
                          nbytes=shard)
            offload_uid[producer] = uid
            offload_order.append(uid)

    # ---- Backward propagation ------------------------------------------
    bwd_ready: dict[str, int] = {}
    bwd_sync_uid: dict[str, int] = {}
    bwd_computes: list[int] = []
    for step_index, name in enumerate(plan.step.bwd_order):
        layer = net.layer(name)
        part = parts[name]

        succs = net.successors(name)
        deps = [bwd_ready[s] for s in succs if s in bwd_ready]
        # Pipelined gradient collectives: one step of run-ahead, so a
        # layer's backward waits on its grand-successors' dX reductions.
        if plan.strategy is ParallelStrategy.MODEL:
            for s in succs:
                for gs in net.successors(s):
                    if gs in bwd_sync_uid:
                        deps.append(bwd_sync_uid[gs])
        if not deps and fwd_ready.get(name) is not None:
            # The loss-side frontier starts once forward has finished.
            deps = [fwd_ready[name]]  # type: ignore[list-item]

        # Prefetches feeding this backward step, gated per the active
        # policy's issue plan (the legacy bounded lookahead under
        # on-demand; earlier or later elsewhere on the axis).
        prefetch_ids = []
        for producer in plan.step.prefetch_sites.get(name, ()):
            issue = prefetch.issues[site_index]
            for waste in waste_before.get(site_index, ()):
                waste_gate = ([] if waste.gate_step is None
                              else [bwd_computes[waste.gate_step]])
                ops.add(EngineKind.DMA_IN, pricer(waste.nbytes),
                        waste_gate, tag=f"waste:{waste.label}",
                        nbytes=waste.nbytes)
            site_index += 1
            gate = ([] if issue.gate_step is None
                    else [bwd_computes[issue.gate_step]])
            shard = plan.migrated_shards[producer]
            prefetch_ids.append(ops.add(
                EngineKind.DMA_IN, pricer(shard),
                gate + [offload_uid[producer]],
                tag=f"prefetch:{producer}", nbytes=shard))

        # Cheap tensors regenerated instead of migrated (footnote 4).
        recompute_ids = []
        for producer in plan.step.recompute_sites.get(name, ()):
            recompute_ids.append(ops.add(
                EngineKind.COMPUTE, times[producer][0],
                list(prefetch_ids), tag=f"recompute:{producer}"))

        bwd_seconds = times[name][1]
        wgrad_seconds = 0.0
        if split_wgrad and part.bwd_gemms:
            wgrad_seconds = config.device.op_time(
                part.bwd_gemms[1::2], 0)
            bwd_seconds = max(0.0, bwd_seconds - wgrad_seconds)

        compute = ops.add(EngineKind.COMPUTE, bwd_seconds,
                          deps + prefetch_ids + recompute_ids,
                          tag=f"bwd:{name}")
        bwd_computes.append(compute)
        grad_done = compute
        if wgrad_seconds > 0.0:
            grad_done = ops.add(EngineKind.COMPUTE, wgrad_seconds,
                                [compute], tag=f"wgrad:{name}")

        if part.bwd_sync is not None:
            # dX reductions (model parallel) only need the activation
            # grad; dW all-reduces wait for the weight grad.
            sync_dep = (compute
                        if plan.strategy is ParallelStrategy.MODEL
                        else grad_done)
            sync = ops.add(EngineKind.COMM,
                           collective(part.bwd_sync.primitive,
                                      part.bwd_sync.nbytes),
                           [sync_dep], tag=f"sync-bwd:{name}",
                           nbytes=part.bwd_sync.nbytes)
            # Model-parallel dX reductions gate the grand-producers'
            # backward pass (pipelined, above); data-parallel dW
            # all-reduces only gate iteration end.
            bwd_sync_uid[name] = sync
        bwd_ready[name] = compute

    return ops
